//! `rmsc` — the Reaction Modeling Suite command-line driver.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rms_suite::cli::parse_args(&args).and_then(|cmd| rms_suite::cli::run(&cmd)) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            // Rendered compiler diagnostics are already multi-line and
            // self-describing; everything else gets the program prefix.
            match &e {
                rms_suite::cli::CliError::Diagnostic(d) => eprintln!("{d}"),
                other => eprintln!("rmsc: {other}"),
            }
            // Bad invocations and rejected models exit 2, runtime
            // failures exit 1.
            std::process::exit(e.exit_code());
        }
    }
}
