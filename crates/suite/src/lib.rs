//! # rms-suite — the Reaction Modeling Suite, end to end
//!
//! One-stop facade over the whole pipeline of the paper's Figure 2:
//!
//! ```text
//! RDL source ──► chemical compiler ──► reaction network
//!     rate/bound statements ──► RCIP ──► rate table
//! network + rates ──► equation generator ──► ODE system
//! ODE system ──► algebraic optimizer + CSE ──► tape / C code
//! tape + data files ──► parallel parameter estimator ──► fitted kinetics
//! ```
//!
//! Compilation routes through the pass-managed [`CompilerSession`] in
//! `rms-driver`: every compile is staged, instrumented (see
//! [`SuiteModel::report`]), and cached by content address, so repeated
//! compiles of the same model — CLI invocations, estimator sweeps,
//! benchmark harnesses — share one artifact per process.
//!
//! ```
//! use rms_suite::{compile_source, OptLevel};
//!
//! let model = compile_source(r#"
//!     rate K_sc = 2;
//!     molecule DiS = "CSSC" init 1.0;
//!     rule scission {
//!         site bond S ~ S order single;
//!         action disconnect;
//!         rate K_sc;
//!     }
//! "#, OptLevel::Full).unwrap();
//! assert_eq!(model.system.len(), 2);
//! let c_code = model.emit_c("ode_rhs");
//! assert!(c_code.contains("void ode_rhs"));
//! ```

#![warn(missing_docs)]

use std::sync::Arc;

pub mod cli;

pub use rms_core::{
    compact_registers, compile_jacobian, compile_sensitivity, differentiate_forest, emit_c,
    emit_kernel, generic_compile, generic_compile_best_effort, lower, optimize,
    optimize_with_passes, probe_toolchain, species_dependencies, CompiledOde, CseOptions,
    ExecFrame, ExecTape, Expr, ExprForest, GenericError, GenericOptions, JacobianTapes, KernelMeta,
    KernelSpec, NativeError, NativeKernel, OptLevel, Passes, SensitivityTapes, Tape, Toolchain,
    FMA_CONTRACTS, IR_BYTES_PER_OP, PAPER_MEMORY_BUDGET,
};
pub use rms_driver::{
    cache, CacheMode, CacheStats, CacheStatus, Compiled, CompiledArtifact, CompilerSession,
    Diagnostic, PipelineReport, SessionOptions, Span, Stage, StageRecord,
};
pub use rms_molecule as molecule;
pub use rms_nlopt::{bounded_fd_step, FitStatistics, LmOptions, LmResult, Residual, StopReason};
pub use rms_odegen::{generate, GenerateOptions, OdeSystem, OpCounts};
pub use rms_parallel::{
    available_threads, block_schedule, lpt_schedule, makespan, run_cluster, run_cluster_with,
    CommConfig, CommError, EstimatorConfig, EstimatorError, ExperimentFile, FailurePolicy,
    FaultPlan, FaultySimulator, HealthReport, ParallelEstimator, RankPanic, ResidualJacobianMode,
    RetryPolicy, ScheduleError, Simulator,
};
pub use rms_rcip::RateTable;
pub use rms_rdl::{
    compile as compile_network, compile_with_options, expand_program, parse_rdl, CompiledModel,
    EngineOptions, NetworkStats, Program, ReactionNetwork,
};
pub use rms_solver::{
    fd_jacobian, fd_jacobian_colored, fd_step, solve_adams, solve_bdf, solve_bdf_sensitivities,
    solve_bdf_with_jacobian, solve_rk45, AnalyticJacobian, CsrMatrix, FnRhs, JacobianSource,
    LinearSolver, OdeRhs, SensitivityRhs, SolveStats, SolverOptions, SparseLu, SparseNewton,
    SparsityPattern, SymbolicLu,
};
pub use rms_workload as workload;
pub use rms_workload::{
    resolve_auto, EngineMode, ExecRhs, JacobianMode, NativeJacobian, NativeRhs, NativeSensitivity,
    TapeJacobian, TapeSensitivity, TapeSimulator, NATIVE_CROSSOVER_INSTRS,
};

/// Any error from the end-to-end pipeline: a span-carrying diagnostic
/// naming the [`Stage`] that rejected the model.
pub type SuiteError = Diagnostic;

/// A fully compiled model: the output of every pipeline stage, kept
/// together for inspection and simulation. Derefs to the underlying
/// [`CompiledArtifact`] (`model.network`, `model.system`,
/// `model.compiled`, `model.rates`, `model.report`, …), which cache hits
/// share process-wide.
pub struct SuiteModel {
    artifact: Arc<CompiledArtifact>,
}

impl std::ops::Deref for SuiteModel {
    type Target = CompiledArtifact;

    fn deref(&self) -> &CompiledArtifact {
        &self.artifact
    }
}

impl SuiteModel {
    /// Wrap a session-compiled artifact (the [`CompilerSession`] output).
    pub fn from_artifact(artifact: Arc<CompiledArtifact>) -> SuiteModel {
        SuiteModel { artifact }
    }

    /// The shared artifact handle.
    pub fn artifact(&self) -> &Arc<CompiledArtifact> {
        &self.artifact
    }

    /// Emit the generated C function (the paper's backend output).
    pub fn emit_c(&self, name: &str) -> String {
        emit_c(&self.compiled.forest, name)
    }

    /// Emit the complete native kernel source for this model: scalar
    /// `ode_rhs`, batched `ode_rhs_batch`, analytic-Jacobian `ode_jac`
    /// and sensitivity `ode_sens` — exactly what the *Codegen* stage
    /// hands to the system C compiler (`rmsc compile --emit c`).
    pub fn emit_native_c(&self) -> String {
        let jacobian = self.jacobian();
        let sensitivity = self.sensitivity();
        emit_kernel(&KernelSpec {
            name: &self.name,
            rhs: &self.compiled.tape,
            jacobian: Some(&jacobian),
            sensitivity: Some(&sensitivity),
            rolled: None,
            key: self.key,
        })
    }

    /// Simulate the system from its declared initial concentrations,
    /// returning the full state at each requested time (BDF stiff solver
    /// with dense finite-difference Jacobians — the historic default).
    pub fn simulate(
        &self,
        times: &[f64],
        options: SolverOptions,
    ) -> Result<Vec<Vec<f64>>, rms_solver::SolverError> {
        self.simulate_with_jacobian(times, options, JacobianMode::FdDense)
    }

    /// [`simulate`](SuiteModel::simulate) with an explicit Jacobian
    /// source. [`JacobianMode::Analytic`] uses the artifact's cached
    /// sparse Jacobian tapes when the session compiled them (see
    /// [`jacobian`](SuiteModel::jacobian)). Runs on the default
    /// execution engine ([`EngineMode::Exec`]).
    pub fn simulate_with_jacobian(
        &self,
        times: &[f64],
        options: SolverOptions,
        mode: JacobianMode,
    ) -> Result<Vec<Vec<f64>>, rms_solver::SolverError> {
        self.simulate_configured(times, options, mode, EngineMode::default())
    }

    /// Fully configured simulation: explicit Jacobian source *and*
    /// right-hand-side engine. [`EngineMode::Exec`] reuses the
    /// artifact's pre-decoded [`ExecTape`] (the pipeline's *ExecDecode*
    /// stage) when present; [`EngineMode::Interp`] walks the legacy tape
    /// interpreter.
    pub fn simulate_configured(
        &self,
        times: &[f64],
        options: SolverOptions,
        mode: JacobianMode,
        engine: EngineMode,
    ) -> Result<Vec<Vec<f64>>, rms_solver::SolverError> {
        match engine {
            EngineMode::Exec => {
                let decoded;
                let exec = match &self.artifact.exec {
                    Some(exec) => exec,
                    None => {
                        decoded = ExecTape::compile(&self.compiled.tape);
                        &decoded
                    }
                };
                let rhs = ExecRhs::new(exec, &self.system.rate_values);
                self.solve_bdf_configured(&rhs, times, options, mode)
            }
            EngineMode::Interp => {
                let tape = &self.compiled.tape;
                let scratch = std::cell::RefCell::new(Vec::new());
                let rhs =
                    rms_solver::FnRhs::new(self.system.len(), |_t, y: &[f64], ydot: &mut [f64]| {
                        tape.eval_with_scratch(
                            &self.system.rate_values,
                            y,
                            ydot,
                            &mut scratch.borrow_mut(),
                        );
                    });
                self.solve_bdf_configured(&rhs, times, options, mode)
            }
            EngineMode::Native => match &self.artifact.native {
                Some(kernel) => {
                    let rhs = NativeRhs::new(kernel, &self.system.rate_values);
                    self.solve_bdf_configured(&rhs, times, options, mode)
                }
                // Graceful degradation: no kernel on this artifact (native
                // not requested at compile time, no toolchain, codegen
                // failure) → the exec engine. The CLI renders
                // `artifact.native_diag` so the fallback is visible.
                None => self.simulate_configured(times, options, mode, EngineMode::Exec),
            },
            EngineMode::Auto => {
                let (resolved, _) = self.engine_choice(EngineMode::Auto);
                self.simulate_configured(times, options, mode, resolved)
            }
        }
    }

    /// Which engine a run at `engine` will actually use, with a
    /// human-readable reason. Explicit modes resolve to themselves;
    /// [`EngineMode::Auto`] applies the instruction-count/I-cache
    /// crossover heuristic against the attached native kernel (see
    /// [`resolve_auto`]).
    pub fn engine_choice(&self, engine: EngineMode) -> (EngineMode, String) {
        if engine != EngineMode::Auto {
            return (engine, format!("{engine} engine explicitly selected"));
        }
        let instrs = self
            .artifact
            .exec
            .as_ref()
            .map_or(self.compiled.tape.len(), |e| e.len());
        resolve_auto(instrs, self.artifact.native.as_deref())
    }

    /// Engine-generic BDF solve under a chosen Jacobian source.
    fn solve_bdf_configured<R: OdeRhs>(
        &self,
        rhs: &R,
        times: &[f64],
        options: SolverOptions,
        mode: JacobianMode,
    ) -> Result<Vec<Vec<f64>>, rms_solver::SolverError> {
        // Declared before the solve so the provider outlives the borrow
        // the solver holds on it.
        let tapes;
        let provider;
        let source = match mode {
            JacobianMode::Analytic => {
                tapes = self.jacobian();
                provider = TapeJacobian::new(&tapes, &self.system.rate_values);
                JacobianSource::AnalyticTape(&provider)
            }
            JacobianMode::FdColored => JacobianSource::FdColored(SparsityPattern::new(
                species_dependencies(&self.compiled.tape),
                self.system.len(),
            )),
            JacobianMode::FdDense => JacobianSource::FdDense,
        };
        let (sol, _) =
            solve_bdf_with_jacobian(rhs, 0.0, &self.system.initial, times, options, source)?;
        Ok(sol)
    }

    /// The analytic sparse Jacobian tapes for this model (CSE-shared
    /// with the right-hand side). Returns the artifact's cached tapes
    /// when the session ran the *Deriv* stage; compiles them on the fly
    /// otherwise.
    pub fn jacobian(&self) -> JacobianTapes {
        match &self.artifact.jacobian {
            Some(tapes) => tapes.clone(),
            None => compile_jacobian(&self.compiled.forest, Some(CseOptions::default())),
        }
    }

    /// The parameter-sensitivity tapes for this model (RHS + Jacobian +
    /// `∂f/∂p` sharing one register file). Returns the artifact's cached
    /// tapes when the session compiled them
    /// ([`SessionOptions::sensitivity`]); compiles them on the fly
    /// otherwise.
    pub fn sensitivity(&self) -> SensitivityTapes {
        match &self.artifact.sensitivity {
            Some(tapes) => tapes.clone(),
            None => compile_sensitivity(&self.compiled.forest, Some(CseOptions::default())),
        }
    }

    /// Concentration index of a named species.
    pub fn species_index(&self, name: &str) -> Option<usize> {
        self.network.species_by_name(name).map(|id| id.0 as usize)
    }

    /// Build a [`TapeSimulator`] measuring the summed concentration of
    /// the named species (e.g. all crosslink products). The simulator
    /// reuses the artifact's pre-decoded execution tape and analytic
    /// Jacobian rather than re-deriving them.
    pub fn simulator_for(&self, observed: &[&str]) -> TapeSimulator {
        let mut observable = vec![0.0; self.system.len()];
        for name in observed {
            if let Some(idx) = self.species_index(name) {
                observable[idx] = 1.0;
            }
        }
        TapeSimulator::from_artifact(&self.artifact, observable)
    }
}

/// The one place pass wiring happens: a [`CompilerSession`] at a named
/// level, with the equation generator's §3.1 merging following the
/// level's simplify switch (off only at [`OptLevel::None`], Table 1's
/// baseline). Both [`compile_source`] and [`compile_model`] delegate
/// here, as does the CLI.
pub fn session_for(level: OptLevel) -> CompilerSession {
    CompilerSession::new(level)
}

/// Compile RDL source text all the way to an optimized, executable
/// model. Cached: recompiling identical source at the same level shares
/// one artifact per process.
pub fn compile_source(source: &str, level: OptLevel) -> Result<SuiteModel, SuiteError> {
    Ok(SuiteModel::from_artifact(
        session_for(level).compile_source("<rdl>", source)?.artifact,
    ))
}

/// Compile an already-built network (programmatic workloads). Cached by
/// the network's structural fingerprint.
pub fn compile_model(
    network: ReactionNetwork,
    rates: RateTable,
    level: OptLevel,
) -> Result<SuiteModel, SuiteError> {
    Ok(SuiteModel::from_artifact(
        session_for(level)
            .compile_network("<network>", network, rates)?
            .artifact,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        rate K_sc = 2;
        rate K_rec = 1;
        molecule TetraS = "CS{n}C" for n in 2..4 init 1.0;
        rule scission {
            site bond S ~ S order single;
            action disconnect;
            rate K_sc;
        }
        rule recombine {
            site pair S & radical, S & radical;
            action connect single;
            rate K_rec;
        }
        limit atoms 12;
        forbid chain S > 4;
    "#;

    #[test]
    fn end_to_end_compiles() {
        let model = compile_source(SRC, OptLevel::Full).unwrap();
        assert!(model.system.len() >= 3);
        assert!(model.compiled.tape.op_counts().total() > 0);
        let c = model.emit_c("rubber_rhs");
        assert!(c.contains("void rubber_rhs"));
        // The session attached a staged report to the artifact.
        assert!(model.report.stage(Stage::Parse).is_some());
        assert!(model.report.stage(Stage::Lower).is_some());
    }

    #[test]
    fn optimization_levels_preserve_dynamics() {
        let times = [0.1, 0.5];
        let reference = compile_source(SRC, OptLevel::None)
            .unwrap()
            .simulate(&times, SolverOptions::default())
            .unwrap();
        for level in [OptLevel::Simplify, OptLevel::Algebraic, OptLevel::Full] {
            let sol = compile_source(SRC, level)
                .unwrap()
                .simulate(&times, SolverOptions::default())
                .unwrap();
            for (a, b) in reference.iter().flatten().zip(sol.iter().flatten()) {
                assert!((a - b).abs() < 1e-6, "{level}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn species_lookup_and_observable() {
        let model = compile_source(SRC, OptLevel::Full).unwrap();
        assert!(model.species_index("TetraS_2").is_some());
        assert!(model.species_index("nope").is_none());
        let sim = model.simulator_for(&["TetraS_2"]);
        let v = sim.simulate(&model.system.rate_values, 0, &[0.05]).unwrap();
        // TetraS_2 is consumed from 1.0 downwards.
        assert!(v[0] > 0.0 && v[0] < 1.0, "{v:?}");
    }

    #[test]
    fn repeated_compiles_share_the_artifact() {
        let a = compile_source(SRC, OptLevel::Full).unwrap();
        let b = compile_source(SRC, OptLevel::Full).unwrap();
        assert!(Arc::ptr_eq(a.artifact(), b.artifact()));
    }
}
