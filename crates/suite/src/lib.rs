//! # rms-suite — the Reaction Modeling Suite, end to end
//!
//! One-stop facade over the whole pipeline of the paper's Figure 2:
//!
//! ```text
//! RDL source ──► chemical compiler ──► reaction network
//!     rate/bound statements ──► RCIP ──► rate table
//! network + rates ──► equation generator ──► ODE system
//! ODE system ──► algebraic optimizer + CSE ──► tape / C code
//! tape + data files ──► parallel parameter estimator ──► fitted kinetics
//! ```
//!
//! ```
//! use rms_suite::{compile_source, OptLevel};
//!
//! let model = compile_source(r#"
//!     rate K_sc = 2;
//!     molecule DiS = "CSSC" init 1.0;
//!     rule scission {
//!         site bond S ~ S order single;
//!         action disconnect;
//!         rate K_sc;
//!     }
//! "#, OptLevel::Full).unwrap();
//! assert_eq!(model.system.len(), 2);
//! let c_code = model.emit_c("ode_rhs");
//! assert!(c_code.contains("void ode_rhs"));
//! ```

#![warn(missing_docs)]

use std::fmt;

pub mod cli;

pub use rms_core::{
    compact_registers, compile_jacobian, differentiate_forest, emit_c, generic_compile,
    generic_compile_best_effort, lower, optimize, optimize_with_passes, species_dependencies,
    CompiledOde, CseOptions, ExecFrame, ExecTape, Expr, ExprForest, GenericError, GenericOptions,
    JacobianTapes, OptLevel, Passes, Tape, FMA_CONTRACTS, IR_BYTES_PER_OP, PAPER_MEMORY_BUDGET,
};
pub use rms_molecule as molecule;
pub use rms_nlopt::{LmOptions, LmResult, StopReason};
pub use rms_odegen::{generate, GenerateOptions, OdeSystem, OpCounts};
pub use rms_parallel::{
    block_schedule, lpt_schedule, makespan, run_cluster, run_cluster_with, CommConfig, CommError,
    EstimatorConfig, EstimatorError, ExperimentFile, FailurePolicy, FaultPlan, FaultySimulator,
    HealthReport, ParallelEstimator, RankPanic, RetryPolicy, ScheduleError, Simulator,
};
pub use rms_rcip::RateTable;
pub use rms_rdl::{compile as compile_network, parse_rdl, CompiledModel, ReactionNetwork};
pub use rms_solver::{
    fd_jacobian, fd_jacobian_colored, fd_step, solve_adams, solve_bdf, solve_bdf_with_jacobian,
    solve_rk45, AnalyticJacobian, CsrMatrix, FnRhs, JacobianSource, OdeRhs, SolveStats,
    SolverOptions, SparsityPattern,
};
pub use rms_workload as workload;
pub use rms_workload::{EngineMode, ExecRhs, JacobianMode, TapeJacobian, TapeSimulator};

/// Any error from the end-to-end pipeline.
#[derive(Debug)]
pub enum SuiteError {
    /// Chemical-compiler (RDL) error.
    Rdl(rms_rdl::RdlError),
    /// Equation-generation error.
    Odegen(rms_odegen::OdegenError),
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::Rdl(e) => write!(f, "chemical compiler: {e}"),
            SuiteError::Odegen(e) => write!(f, "equation generator: {e}"),
        }
    }
}

impl std::error::Error for SuiteError {}

impl From<rms_rdl::RdlError> for SuiteError {
    fn from(e: rms_rdl::RdlError) -> Self {
        SuiteError::Rdl(e)
    }
}

impl From<rms_odegen::OdegenError> for SuiteError {
    fn from(e: rms_odegen::OdegenError) -> Self {
        SuiteError::Odegen(e)
    }
}

/// A fully compiled model: the output of every pipeline stage, kept
/// together for inspection and simulation.
pub struct SuiteModel {
    /// The reaction network (chemical compiler output).
    pub network: ReactionNetwork,
    /// Evaluated, value-deduplicated rate constants (RCIP output).
    pub rates: RateTable,
    /// The ODE system (equation generator output).
    pub system: OdeSystem,
    /// Optimizer output: forest, tape, per-stage stats.
    pub compiled: CompiledOde,
}

impl SuiteModel {
    /// Emit the generated C function (the paper's backend output).
    pub fn emit_c(&self, name: &str) -> String {
        emit_c(&self.compiled.forest, name)
    }

    /// Simulate the system from its declared initial concentrations,
    /// returning the full state at each requested time (BDF stiff solver
    /// with dense finite-difference Jacobians — the historic default).
    pub fn simulate(
        &self,
        times: &[f64],
        options: SolverOptions,
    ) -> Result<Vec<Vec<f64>>, rms_solver::SolverError> {
        self.simulate_with_jacobian(times, options, JacobianMode::FdDense)
    }

    /// [`simulate`](SuiteModel::simulate) with an explicit Jacobian
    /// source. [`JacobianMode::Analytic`] compiles the sparse Jacobian
    /// tapes on the fly via [`jacobian`](SuiteModel::jacobian). Runs on
    /// the default execution engine ([`EngineMode::Exec`]).
    pub fn simulate_with_jacobian(
        &self,
        times: &[f64],
        options: SolverOptions,
        mode: JacobianMode,
    ) -> Result<Vec<Vec<f64>>, rms_solver::SolverError> {
        self.simulate_configured(times, options, mode, EngineMode::default())
    }

    /// Fully configured simulation: explicit Jacobian source *and*
    /// right-hand-side engine. [`EngineMode::Exec`] pre-decodes the tape
    /// into an [`ExecTape`] for this solve; [`EngineMode::Interp`] walks
    /// the legacy tape interpreter.
    pub fn simulate_configured(
        &self,
        times: &[f64],
        options: SolverOptions,
        mode: JacobianMode,
        engine: EngineMode,
    ) -> Result<Vec<Vec<f64>>, rms_solver::SolverError> {
        match engine {
            EngineMode::Exec => {
                let exec = ExecTape::compile(&self.compiled.tape);
                let rhs = ExecRhs::new(&exec, &self.system.rate_values);
                self.solve_bdf_configured(&rhs, times, options, mode)
            }
            EngineMode::Interp => {
                let tape = &self.compiled.tape;
                let scratch = std::cell::RefCell::new(Vec::new());
                let rhs =
                    rms_solver::FnRhs::new(self.system.len(), |_t, y: &[f64], ydot: &mut [f64]| {
                        tape.eval_with_scratch(
                            &self.system.rate_values,
                            y,
                            ydot,
                            &mut scratch.borrow_mut(),
                        );
                    });
                self.solve_bdf_configured(&rhs, times, options, mode)
            }
        }
    }

    /// Engine-generic BDF solve under a chosen Jacobian source.
    fn solve_bdf_configured<R: OdeRhs>(
        &self,
        rhs: &R,
        times: &[f64],
        options: SolverOptions,
        mode: JacobianMode,
    ) -> Result<Vec<Vec<f64>>, rms_solver::SolverError> {
        // Declared before the solve so the provider outlives the borrow
        // the solver holds on it.
        let tapes;
        let provider;
        let source = match mode {
            JacobianMode::Analytic => {
                tapes = self.jacobian();
                provider = TapeJacobian::new(&tapes, &self.system.rate_values);
                JacobianSource::AnalyticTape(&provider)
            }
            JacobianMode::FdColored => JacobianSource::FdColored(SparsityPattern::new(
                species_dependencies(&self.compiled.tape),
                self.system.len(),
            )),
            JacobianMode::FdDense => JacobianSource::FdDense,
        };
        let (sol, _) =
            solve_bdf_with_jacobian(rhs, 0.0, &self.system.initial, times, options, source)?;
        Ok(sol)
    }

    /// Compile the analytic sparse Jacobian tapes for this model
    /// (CSE-shared with the right-hand side).
    pub fn jacobian(&self) -> JacobianTapes {
        compile_jacobian(&self.compiled.forest, Some(CseOptions::default()))
    }

    /// Concentration index of a named species.
    pub fn species_index(&self, name: &str) -> Option<usize> {
        self.network.species_by_name(name).map(|id| id.0 as usize)
    }

    /// Build a [`TapeSimulator`] measuring the summed concentration of
    /// the named species (e.g. all crosslink products).
    pub fn simulator_for(&self, observed: &[&str]) -> TapeSimulator {
        let mut observable = vec![0.0; self.system.len()];
        for name in observed {
            if let Some(idx) = self.species_index(name) {
                observable[idx] = 1.0;
            }
        }
        TapeSimulator::new(
            self.compiled.tape.clone(),
            self.system.initial.clone(),
            observable,
        )
    }
}

/// Compile RDL source text all the way to an optimized, executable model.
pub fn compile_source(source: &str, level: OptLevel) -> Result<SuiteModel, SuiteError> {
    let program = parse_rdl(source)?;
    let CompiledModel { network, rates } = compile_network(&program)?;
    // The equation table always applies §3.1 on the fly except at the
    // fully unoptimized level (Table 1's baseline).
    let simplify = level != OptLevel::None;
    let system = generate(&network, &rates, GenerateOptions { simplify })?;
    let compiled = optimize(&system, level);
    Ok(SuiteModel {
        network,
        rates,
        system,
        compiled,
    })
}

/// Compile an already-built network (programmatic workloads).
pub fn compile_model(
    network: ReactionNetwork,
    rates: RateTable,
    level: OptLevel,
) -> Result<SuiteModel, SuiteError> {
    let simplify = level != OptLevel::None;
    let system = generate(&network, &rates, GenerateOptions { simplify })?;
    let compiled = optimize(&system, level);
    Ok(SuiteModel {
        network,
        rates,
        system,
        compiled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        rate K_sc = 2;
        rate K_rec = 1;
        molecule TetraS = "CS{n}C" for n in 2..4 init 1.0;
        rule scission {
            site bond S ~ S order single;
            action disconnect;
            rate K_sc;
        }
        rule recombine {
            site pair S & radical, S & radical;
            action connect single;
            rate K_rec;
        }
        limit atoms 12;
        forbid chain S > 4;
    "#;

    #[test]
    fn end_to_end_compiles() {
        let model = compile_source(SRC, OptLevel::Full).unwrap();
        assert!(model.system.len() >= 3);
        assert!(model.compiled.tape.op_counts().total() > 0);
        let c = model.emit_c("rubber_rhs");
        assert!(c.contains("void rubber_rhs"));
    }

    #[test]
    fn optimization_levels_preserve_dynamics() {
        let times = [0.1, 0.5];
        let reference = compile_source(SRC, OptLevel::None)
            .unwrap()
            .simulate(&times, SolverOptions::default())
            .unwrap();
        for level in [OptLevel::Simplify, OptLevel::Algebraic, OptLevel::Full] {
            let sol = compile_source(SRC, level)
                .unwrap()
                .simulate(&times, SolverOptions::default())
                .unwrap();
            for (a, b) in reference.iter().flatten().zip(sol.iter().flatten()) {
                assert!((a - b).abs() < 1e-6, "{level}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn species_lookup_and_observable() {
        let model = compile_source(SRC, OptLevel::Full).unwrap();
        assert!(model.species_index("TetraS_2").is_some());
        assert!(model.species_index("nope").is_none());
        let sim = model.simulator_for(&["TetraS_2"]);
        let v = sim.simulate(&model.system.rate_values, 0, &[0.05]).unwrap();
        // TetraS_2 is consumed from 1.0 downwards.
        assert!(v[0] > 0.0 && v[0] < 1.0, "{v:?}");
    }
}
