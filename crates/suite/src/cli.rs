//! The `rmsc` command-line driver: compile, inspect, simulate, and fit
//! RDL models from the shell. All logic lives here (pure functions over
//! parsed arguments) so it is unit-testable; `src/bin/rmsc.rs` is a thin
//! wrapper.

use std::path::{Path, PathBuf};
use std::time::Duration;

use rms_nlopt::FitStatistics;
use rms_parallel::{EstimatorConfig, ExperimentFile, FailurePolicy, RetryPolicy};

use crate::{
    CompilerSession, EngineMode, JacobianMode, LinearSolver, LmOptions, OptLevel,
    ParallelEstimator, ResidualJacobianMode, SessionOptions, SolverOptions, Stage, SuiteModel,
};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Compile an RDL file and print one of its artifacts.
    Compile {
        /// RDL source path.
        input: PathBuf,
        /// Optimization level.
        level: OptLevel,
        /// What to print.
        emit: Emit,
        /// Print this stage's IR instead of the `--emit` artifact.
        dump: Option<Stage>,
        /// Reroll repeated tape stanzas into loop regions before codegen.
        reroll: bool,
        /// Worker threads for network closure (0 = one per core).
        frontend_threads: usize,
        /// On-disk artifact cache directory.
        cache_dir: Option<PathBuf>,
    },
    /// Integrate the model and print a concentration table.
    Simulate {
        /// RDL source path.
        input: PathBuf,
        /// Optimization level.
        level: OptLevel,
        /// Final time.
        tend: f64,
        /// Number of equally spaced output rows.
        steps: usize,
        /// Species to print (empty = all).
        observe: Vec<String>,
        /// Jacobian source for the BDF solver.
        jacobian: JacobianMode,
        /// Direct method for the Newton iteration matrix.
        linear_solver: LinearSolver,
        /// Right-hand-side evaluator.
        engine: EngineMode,
        /// Reroll repeated tape stanzas into loop regions before codegen.
        reroll: bool,
        /// Worker threads for network closure (0 = one per core).
        frontend_threads: usize,
        /// On-disk artifact cache directory.
        cache_dir: Option<PathBuf>,
    },
    /// Synthesize experiment files from the model's nominal kinetics.
    Synthesize {
        /// RDL source path.
        input: PathBuf,
        /// Species whose summed concentration is the measured property.
        observe: Vec<String>,
        /// Output directory for `formulation_XX.dat`.
        out_dir: PathBuf,
        /// Number of files.
        files: usize,
        /// Records per file.
        records: usize,
        /// Cure horizon.
        tend: f64,
    },
    /// Fit the model's bounded rate constants to experiment files.
    Estimate {
        /// RDL source path.
        input: PathBuf,
        /// Directory of `.dat` files.
        data_dir: PathBuf,
        /// Observed species (summed).
        observe: Vec<String>,
        /// Worker ranks.
        workers: usize,
        /// Deadline (seconds) for each collective; `None` waits forever.
        collective_timeout: Option<f64>,
        /// Retry budget for failing simulations.
        max_retries: usize,
        /// Penalize or abort on a permanently failing file.
        on_failure: FailurePolicy,
        /// Jacobian source for the BDF solver in each simulation.
        jacobian: JacobianMode,
        /// How the optimizer builds the residual Jacobian `∂r/∂p`.
        residual_jacobian: ResidualJacobianMode,
        /// Relative finite-difference step for the residual Jacobian and
        /// the fit statistics; `None` derives it from the solver
        /// tolerance (`√rtol`).
        fd_step: Option<f64>,
        /// Direct method for the Newton iteration matrix.
        linear_solver: LinearSolver,
        /// Worker threads for network closure (0 = one per core).
        frontend_threads: usize,
        /// On-disk artifact cache directory.
        cache_dir: Option<PathBuf>,
    },
    /// Run the line-delimited JSON job server on stdin/stdout.
    Serve {
        /// Worker threads executing jobs.
        workers: usize,
        /// Admission-queue bound (full queue rejects immediately).
        queue_capacity: usize,
        /// On-disk artifact cache directory shared by all jobs.
        cache_dir: Option<PathBuf>,
        /// In-memory artifact cache budget in MiB.
        memory_budget_mb: Option<u64>,
        /// Retry budget for transient solver failures.
        max_retries: usize,
        /// Base delay (ms) of the exponential retry backoff.
        retry_base_ms: u64,
        /// Default deadline (ms) for jobs that carry none.
        deadline_ms: Option<u64>,
        /// Chaos: admission sequence numbers whose jobs panic.
        chaos_panic: Vec<usize>,
        /// Chaos: `(sequence, ms)` stalls injected into jobs.
        chaos_stall: Vec<(usize, u64)>,
    },
    /// Print usage.
    Help,
}

/// What `rmsc compile` prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emit {
    /// The reaction network in Fig. 3 form.
    Network,
    /// The ODE system in Fig. 5 form.
    Odes,
    /// The generated native kernel source (scalar + batched RHS,
    /// analytic Jacobian, sensitivity tail).
    C,
    /// Optimizer stage statistics.
    Stats,
    /// Linear conservation laws of the network.
    Conservation,
    /// The staged pipeline report as JSON.
    Report,
}

/// CLI errors, split by phase so the binary can exit with the
/// conventional code: 2 for a bad invocation, 1 for a runtime failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The argument vector was malformed (exit code 2).
    Usage(String),
    /// The compiler rejected the model; the message is the rendered,
    /// span-annotated diagnostic (exit code 2 — the input is at fault,
    /// like a bad invocation).
    Diagnostic(String),
    /// The command itself failed (exit code 1).
    Runtime(String),
}

impl CliError {
    /// The message without the phase tag.
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Diagnostic(m) | CliError::Runtime(m) => m,
        }
    }

    /// Conventional process exit code for this error.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) | CliError::Diagnostic(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError::Runtime(msg.into())
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
rmsc — Reaction Modeling Suite driver

USAGE:
  rmsc compile  <model.rdl> [--level none|simplify|algebraic|full]
                [--emit network|odes|c|stats|conservation|report]
                [--dump-ir STAGE] [--opt reroll=on|off]
                [--frontend-threads N] [--cache-dir DIR]
  rmsc compile-report <model.rdl> [--level L] [--frontend-threads N]
                [--cache-dir DIR]
  rmsc simulate <model.rdl> [--tend T] [--steps N] [--observe A,B,...] [--level L]
                [--jacobian analytic|fd-colored|fd-dense]   (default fd-dense)
                [--linear-solver dense|sparse|auto]         (default auto)
                [--engine interp|exec|native|auto]          (default exec)
                [--opt reroll=on|off]                       (default on)
                [--frontend-threads N] [--cache-dir DIR]
  rmsc synthesize <model.rdl> --observe A,B,... --out DIR [--files N] [--records N] [--tend T]
  rmsc estimate <model.rdl> --data DIR --observe A,B,... [--workers N]
                [--collective-timeout SECS] [--max-retries N]
                [--on-solver-failure penalize|abort]
                [--jacobian analytic|fd-colored|fd-dense]   (default fd-colored)
                [--residual-jacobian analytic|fd]           (default analytic)
                [--fd-step REL]                             (default sqrt(solver rtol))
                [--linear-solver dense|sparse|auto]         (default auto)
                [--frontend-threads N] [--cache-dir DIR]
  rmsc serve    [--workers N] [--queue-capacity N] [--cache-dir DIR]
                [--memory-budget-mb N] [--max-retries N] [--retry-base-ms MS]
                [--deadline-ms MS]
                [--chaos-panic SEQ,SEQ,...] [--chaos-stall SEQ:MS,SEQ:MS,...]
  rmsc help

'serve' reads one JSON job request per line from stdin and streams
JSON events (accepted, result, error, drained) to stdout; see
DESIGN.md §12 for the protocol and failure model. The --chaos-*
flags deterministically inject panics/stalls into the jobs with the
given admission sequence numbers (testing only).

'compile-report' (or 'compile --emit report') prints the staged
pipeline report as JSON: per-stage wall time and artifact sizes, plus
the optimizer's operation counts (the paper's Table 1 columns).

--dump-ir prints one stage's intermediate representation and exits;
STAGE is one of parse, expand, rcip, network, odegen, simplify,
distribute, cse, deriv, lower, exec-decode, codegen.

--frontend-threads sets the worker-thread count for the network-closure
stage (rule matching, graph edits, canonicalization); 0 or omitted uses
one thread per available core, 1 runs the serial path. The generated
network is bit-identical at every thread count — the flag trades wall
time only.

--cache-dir enables the on-disk artifact cache: recompiles of an
unchanged model at the same options are served from DIR.

The --jacobian modes: 'analytic' runs the compiler-emitted sparse
Jacobian tapes (exact derivatives, CSE-shared with the RHS tape);
'fd-colored' uses colored finite differences over the structural
sparsity; 'fd-dense' perturbs every state variable.

The --residual-jacobian modes select how the optimizer obtains the
residual Jacobian ∂r/∂p: 'analytic' integrates the forward sensitivity
ODEs alongside each simulation (one augmented solve per file per
Jacobian, independent of the parameter count, falling back to finite
differences when sensitivities are unavailable); 'fd' re-solves every
file once per parameter with a bound-aware forward difference.
--fd-step sets the relative finite-difference step used by the 'fd'
mode, the fallback path, and the fit statistics; the default √rtol
sits above the ODE solver's noise floor.

The --linear-solver methods factor the Newton iteration matrix
I − hβJ: 'dense' is LU with partial pivoting; 'sparse' is a
fill-reducing (minimum-degree) sparse LU whose symbolic analysis is
computed once from the compiled Jacobian sparsity and reused across
every refactorization; 'auto' picks sparse when the system is large
and sparse enough to win (n ≥ 64, density ≤ 10%).

The --engine modes: 'exec' pre-decodes the tape into the fused
execution engine (operands resolved to frame indices, FMA
superinstructions, SIMD-batched Jacobian sweeps); 'interp' walks the
legacy tape interpreter; 'native' compiles the optimized tape to C,
builds a shared object with the system C compiler (honoring $CC),
caches it by content address in --cache-dir, and dlopens it. When no
toolchain is available the run degrades to 'exec' with a printed
diagnostic rather than failing. 'auto' picks between exec and native
by kernel shape: rerolled (loop-structured) kernels always win, flat
kernels win only below the I-cache crossover (~32k instructions), and
a missing kernel falls back to exec; the chosen engine and the reason
are printed before the table.

--opt reroll=off disables the tape reroll pass, so codegen emits the
historic straight-line (unrolled) kernel; 'on' (the default) detects
runs of structurally identical per-reaction stanzas and collapses them
into data-driven C loops over static stride/index tables — the same
trajectory bit for bit, from a far smaller kernel. The setting is part
of the artifact cache key.

'compile --emit c' prints the complete native kernel source: the
specialized scalar ode_rhs, the batched ode_rhs_batch, the analytic
Jacobian ode_jac and the sensitivity tail ode_sens — exactly what
the native engine hands to the C compiler.
";

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_level(args: &[String]) -> Result<OptLevel, CliError> {
    match flag_value(args, "--level") {
        None | Some("full") => Ok(OptLevel::Full),
        Some("none") => Ok(OptLevel::None),
        Some("simplify") => Ok(OptLevel::Simplify),
        Some("algebraic") => Ok(OptLevel::Algebraic),
        Some(other) => Err(usage_err(format!("unknown --level '{other}'"))),
    }
}

fn parse_jacobian(args: &[String], default: JacobianMode) -> Result<JacobianMode, CliError> {
    match flag_value(args, "--jacobian") {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e: String| usage_err(e)),
    }
}

fn parse_linear_solver(args: &[String]) -> Result<LinearSolver, CliError> {
    match flag_value(args, "--linear-solver") {
        None => Ok(LinearSolver::default()),
        Some(v) => v.parse().map_err(|e: String| usage_err(e)),
    }
}

fn parse_engine(args: &[String]) -> Result<EngineMode, CliError> {
    match flag_value(args, "--engine") {
        None => Ok(EngineMode::default()),
        Some(v) => v.parse().map_err(|e: String| usage_err(e)),
    }
}

/// Parse `--opt reroll=on|off` (repeatable; last occurrence wins).
/// Returns whether the reroll pass is enabled — the default is on.
fn parse_opt_reroll(args: &[String]) -> Result<bool, CliError> {
    let mut reroll = true;
    for (i, a) in args.iter().enumerate() {
        if a != "--opt" {
            continue;
        }
        match args.get(i + 1).map(String::as_str) {
            Some("reroll=on") => reroll = true,
            Some("reroll=off") => reroll = false,
            Some(other) => {
                return Err(usage_err(format!(
                    "unknown --opt '{other}' (expected reroll=on or reroll=off)"
                )))
            }
            None => return Err(usage_err("--opt requires a value (reroll=on|off)")),
        }
    }
    Ok(reroll)
}

fn parse_observe(args: &[String]) -> Vec<String> {
    flag_value(args, "--observe")
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_default()
}

fn parse_cache_dir(args: &[String]) -> Option<PathBuf> {
    flag_value(args, "--cache-dir").map(PathBuf::from)
}

fn parse_dump(args: &[String]) -> Result<Option<Stage>, CliError> {
    match flag_value(args, "--dump-ir") {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(usage_err),
    }
}

/// Reject any `--flag` not in `known` so a typo'd option is a usage
/// error instead of being silently ignored.
fn reject_unknown_flags(args: &[String], known: &[&str]) -> Result<(), CliError> {
    if let Some(bad) = args
        .iter()
        .filter(|a| a.starts_with("--"))
        .find(|a| !known.contains(&a.as_str()))
    {
        return Err(usage_err(format!(
            "unknown option '{bad}' (expected one of: {})",
            known.join(", ")
        )));
    }
    Ok(())
}

fn parse_num<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, CliError> {
    match flag_value(args, key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| usage_err(format!("{key} takes a number, got '{v}'"))),
    }
}

/// Parse an argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(Command::Help);
    }
    let input = |idx: usize| -> Result<PathBuf, CliError> {
        args.get(idx)
            .filter(|a| !a.starts_with("--"))
            .map(PathBuf::from)
            .ok_or_else(|| usage_err("expected a model file path"))
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "compile" => Ok(Command::Compile {
            input: {
                reject_unknown_flags(
                    args,
                    &[
                        "--level",
                        "--emit",
                        "--dump-ir",
                        "--opt",
                        "--frontend-threads",
                        "--cache-dir",
                    ],
                )?;
                input(1)?
            },
            level: parse_level(args)?,
            emit: match flag_value(args, "--emit") {
                None | Some("stats") => Emit::Stats,
                Some("network") => Emit::Network,
                Some("odes") => Emit::Odes,
                Some("c") => Emit::C,
                Some("conservation") => Emit::Conservation,
                Some("report") => Emit::Report,
                Some(other) => return Err(usage_err(format!("unknown --emit '{other}'"))),
            },
            dump: parse_dump(args)?,
            reroll: parse_opt_reroll(args)?,
            frontend_threads: parse_num(args, "--frontend-threads", 0)?,
            cache_dir: parse_cache_dir(args),
        }),
        "compile-report" => Ok(Command::Compile {
            input: {
                reject_unknown_flags(args, &["--level", "--frontend-threads", "--cache-dir"])?;
                input(1)?
            },
            level: parse_level(args)?,
            emit: Emit::Report,
            dump: None,
            reroll: true,
            frontend_threads: parse_num(args, "--frontend-threads", 0)?,
            cache_dir: parse_cache_dir(args),
        }),
        "simulate" => Ok(Command::Simulate {
            input: {
                reject_unknown_flags(
                    args,
                    &[
                        "--level",
                        "--tend",
                        "--steps",
                        "--observe",
                        "--jacobian",
                        "--linear-solver",
                        "--engine",
                        "--opt",
                        "--frontend-threads",
                        "--cache-dir",
                    ],
                )?;
                input(1)?
            },
            level: parse_level(args)?,
            tend: parse_num(args, "--tend", 1.0)?,
            steps: parse_num(args, "--steps", 10)?,
            observe: parse_observe(args),
            jacobian: parse_jacobian(args, JacobianMode::FdDense)?,
            linear_solver: parse_linear_solver(args)?,
            engine: parse_engine(args)?,
            reroll: parse_opt_reroll(args)?,
            frontend_threads: parse_num(args, "--frontend-threads", 0)?,
            cache_dir: parse_cache_dir(args),
        }),
        "synthesize" => Ok(Command::Synthesize {
            input: {
                reject_unknown_flags(
                    args,
                    &["--observe", "--out", "--files", "--records", "--tend"],
                )?;
                input(1)?
            },
            observe: parse_observe(args),
            out_dir: flag_value(args, "--out")
                .map(PathBuf::from)
                .ok_or_else(|| usage_err("synthesize requires --out DIR"))?,
            files: parse_num(args, "--files", 16)?,
            records: parse_num(args, "--records", 200)?,
            tend: parse_num(args, "--tend", 2.0)?,
        }),
        "estimate" => {
            reject_unknown_flags(
                args,
                &[
                    "--data",
                    "--observe",
                    "--workers",
                    "--collective-timeout",
                    "--max-retries",
                    "--on-solver-failure",
                    "--jacobian",
                    "--residual-jacobian",
                    "--fd-step",
                    "--linear-solver",
                    "--frontend-threads",
                    "--cache-dir",
                ],
            )?;
            let workers = parse_num(args, "--workers", 2)?;
            if workers == 0 {
                return Err(usage_err("--workers must be at least 1"));
            }
            let collective_timeout = match flag_value(args, "--collective-timeout") {
                None => None,
                Some(v) => {
                    let secs: f64 = v.parse().map_err(|_| {
                        usage_err(format!("--collective-timeout takes seconds, got '{v}'"))
                    })?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(usage_err(format!(
                            "--collective-timeout must be a positive number of seconds, got '{v}'"
                        )));
                    }
                    Some(secs)
                }
            };
            let on_failure = match flag_value(args, "--on-solver-failure") {
                None => FailurePolicy::Penalize,
                Some(v) => v.parse().map_err(|e: String| usage_err(e))?,
            };
            let residual_jacobian = match flag_value(args, "--residual-jacobian") {
                None => ResidualJacobianMode::default(),
                Some(v) => v.parse().map_err(|e: String| usage_err(e))?,
            };
            let fd_step = match flag_value(args, "--fd-step") {
                None => None,
                Some(v) => {
                    let step: f64 = v
                        .parse()
                        .map_err(|_| usage_err(format!("--fd-step takes a number, got '{v}'")))?;
                    if !step.is_finite() || step <= 0.0 {
                        return Err(usage_err(format!(
                            "--fd-step must be a positive relative step, got '{v}'"
                        )));
                    }
                    Some(step)
                }
            };
            Ok(Command::Estimate {
                input: input(1)?,
                data_dir: flag_value(args, "--data")
                    .map(PathBuf::from)
                    .ok_or_else(|| usage_err("estimate requires --data DIR"))?,
                observe: parse_observe(args),
                workers,
                collective_timeout,
                max_retries: parse_num(args, "--max-retries", 1)?,
                on_failure,
                jacobian: parse_jacobian(args, JacobianMode::FdColored)?,
                residual_jacobian,
                fd_step,
                linear_solver: parse_linear_solver(args)?,
                frontend_threads: parse_num(args, "--frontend-threads", 0)?,
                cache_dir: parse_cache_dir(args),
            })
        }
        "serve" => {
            reject_unknown_flags(
                args,
                &[
                    "--workers",
                    "--queue-capacity",
                    "--cache-dir",
                    "--memory-budget-mb",
                    "--max-retries",
                    "--retry-base-ms",
                    "--deadline-ms",
                    "--chaos-panic",
                    "--chaos-stall",
                ],
            )?;
            let workers = parse_num(args, "--workers", 2)?;
            if workers == 0 {
                return Err(usage_err("--workers must be at least 1"));
            }
            let chaos_panic = match flag_value(args, "--chaos-panic") {
                None => Vec::new(),
                Some(list) => list
                    .split(',')
                    .map(|s| {
                        s.trim().parse().map_err(|_| {
                            usage_err(format!("--chaos-panic takes sequence numbers, got '{s}'"))
                        })
                    })
                    .collect::<Result<_, _>>()?,
            };
            let chaos_stall = match flag_value(args, "--chaos-stall") {
                None => Vec::new(),
                Some(list) => list
                    .split(',')
                    .map(|pair| {
                        pair.split_once(':')
                            .and_then(|(seq, ms)| {
                                Some((seq.trim().parse().ok()?, ms.trim().parse().ok()?))
                            })
                            .ok_or_else(|| {
                                usage_err(format!("--chaos-stall takes SEQ:MS pairs, got '{pair}'"))
                            })
                    })
                    .collect::<Result<_, _>>()?,
            };
            Ok(Command::Serve {
                workers,
                queue_capacity: parse_num(args, "--queue-capacity", 32)?,
                cache_dir: parse_cache_dir(args),
                memory_budget_mb: flag_value(args, "--memory-budget-mb")
                    .map(|v| {
                        v.parse().map_err(|_| {
                            usage_err(format!("--memory-budget-mb takes a number, got '{v}'"))
                        })
                    })
                    .transpose()?,
                max_retries: parse_num(args, "--max-retries", 1)?,
                retry_base_ms: parse_num(args, "--retry-base-ms", 0)?,
                deadline_ms: flag_value(args, "--deadline-ms")
                    .map(|v| {
                        v.parse().map_err(|_| {
                            usage_err(format!("--deadline-ms takes milliseconds, got '{v}'"))
                        })
                    })
                    .transpose()?,
                chaos_panic,
                chaos_stall,
            })
        }
        other => Err(usage_err(format!("unknown subcommand '{other}'\n{USAGE}"))),
    }
}

/// Everything the CLI can ask of a compile beyond the level.
struct LoadOptions<'a> {
    cache_dir: Option<&'a Path>,
    dump: Option<Stage>,
    /// Run the *Deriv* stage so the artifact carries the analytic
    /// Jacobian tapes (set when `--jacobian analytic` will use them).
    deriv: bool,
    /// Also compile the parameter-sensitivity tapes (set when
    /// `--residual-jacobian analytic` will consume them).
    sensitivity: bool,
    /// Run the *Codegen* stage: emit C, invoke the system compiler and
    /// attach the dlopened kernel (set when `--engine native` or
    /// `--engine auto`). Codegen failures never fail the compile — the
    /// artifact carries a diagnostic instead.
    native: bool,
    /// Reroll repeated tape stanzas into loop regions before codegen
    /// (`--opt reroll=on|off`; on by default).
    reroll: bool,
    /// Worker threads for the network-closure stage
    /// (`--frontend-threads N`; 0 = one per available core).
    frontend_threads: usize,
}

impl Default for LoadOptions<'_> {
    fn default() -> Self {
        LoadOptions {
            cache_dir: None,
            dump: None,
            deriv: false,
            sensitivity: false,
            native: false,
            reroll: true,
            frontend_threads: 0,
        }
    }
}

/// Compile `path` through a [`CompilerSession`]. A missing or unreadable
/// file is a runtime failure (exit 1); a model the compiler rejects is a
/// rendered, span-annotated diagnostic (exit 2).
fn load_model(
    path: &Path,
    level: OptLevel,
    opts: LoadOptions,
) -> Result<(SuiteModel, Option<String>), CliError> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read {}: {e}", path.display())))?;
    let filename = path.display().to_string();
    let mut session = SessionOptions::new(level);
    session.cache_dir = opts.cache_dir.map(Path::to_path_buf);
    session.dump = opts.dump;
    session.deriv = opts.deriv;
    session.sensitivity = opts.sensitivity;
    session.native = opts.native;
    session.reroll = opts.reroll;
    session.frontend_threads = opts.frontend_threads;
    let compiled = CompilerSession::with_options(session)
        .compile_source(&filename, &source)
        .map_err(|d| CliError::Diagnostic(d.render(&filename, &source)))?;
    // Warnings (e.g. closure stopped at the generation cap while rules
    // were still growing) go to stderr and do not change the exit code.
    for warning in &compiled.artifact.warnings {
        eprintln!("{}", warning.render(&filename, &source));
    }
    Ok((SuiteModel::from_artifact(compiled.artifact), compiled.dump))
}

fn observable_or_all(model: &SuiteModel, observe: &[String]) -> Result<Vec<f64>, CliError> {
    let mut weights = vec![0.0; model.system.len()];
    if observe.is_empty() {
        weights.iter_mut().for_each(|w| *w = 1.0);
        return Ok(weights);
    }
    for name in observe {
        let idx = model
            .species_index(name)
            .ok_or_else(|| err(format!("unknown species '{name}'")))?;
        weights[idx] = 1.0;
    }
    Ok(weights)
}

/// Execute a command, returning its stdout text.
pub fn run(command: &Command) -> Result<String, CliError> {
    use std::fmt::Write;
    match command {
        Command::Help => Ok(USAGE.to_string()),
        // Streams events to stdout directly (the one command whose
        // output is unbounded and interactive); returns nothing.
        Command::Serve {
            workers,
            queue_capacity,
            cache_dir,
            memory_budget_mb,
            max_retries,
            retry_base_ms,
            deadline_ms,
            chaos_panic,
            chaos_stall,
        } => {
            let faults = if chaos_panic.is_empty() && chaos_stall.is_empty() {
                None
            } else {
                let mut plan = rms_parallel::FaultPlan::new();
                for &seq in chaos_panic {
                    plan = plan.panic_file(seq);
                }
                for &(seq, ms) in chaos_stall {
                    plan = plan.stall_file(seq, Duration::from_millis(ms));
                }
                Some(plan)
            };
            let config = rms_serve::ServerConfig {
                workers: *workers,
                queue_capacity: *queue_capacity,
                cache_dir: cache_dir.clone(),
                memory_budget: memory_budget_mb.map(|mb| mb * 1024 * 1024),
                retry: RetryPolicy {
                    max_retries: *max_retries,
                    base_delay: Duration::from_millis(*retry_base_ms),
                    ..RetryPolicy::default()
                },
                default_deadline_ms: *deadline_ms,
                faults,
            };
            rms_serve::serve_lines(std::io::stdin().lock(), std::io::stdout(), config)
                .map_err(|e| err(format!("serve transport: {e}")))?;
            Ok(String::new())
        }
        Command::Compile {
            input,
            level,
            emit,
            dump,
            reroll,
            frontend_threads,
            cache_dir,
        } => {
            let (model, dumped) = load_model(
                input,
                *level,
                LoadOptions {
                    cache_dir: cache_dir.as_deref(),
                    dump: *dump,
                    deriv: *dump == Some(Stage::Deriv),
                    sensitivity: false,
                    native: *dump == Some(Stage::Codegen),
                    reroll: *reroll,
                    frontend_threads: *frontend_threads,
                },
            )?;
            if dump.is_some() {
                return Ok(dumped.unwrap_or_else(|| {
                    format!("(stage {} did not run at level {level})\n", dump.unwrap())
                }));
            }
            Ok(match emit {
                Emit::Network => model.network.display_equations(),
                Emit::Odes => model.system.display(),
                Emit::C => model.emit_native_c(),
                Emit::Report => {
                    let mut json = model.report.to_json();
                    json.push('\n');
                    json
                }
                Emit::Conservation => {
                    let laws = rms_odegen::conservation_laws(&model.network);
                    let mut out = String::new();
                    let _ = writeln!(out, "{} conservation law(s) (w . y = const):", laws.len());
                    for (i, w) in laws.iter().enumerate() {
                        let _ = write!(out, "  law {i}: ");
                        let mut first = true;
                        for (j, &coeff) in w.iter().enumerate() {
                            if coeff == 0.0 {
                                continue;
                            }
                            let name = model
                                .network
                                .species(rms_rdl::SpeciesId(j as u32))
                                .name
                                .clone();
                            if !first {
                                let _ = write!(out, " + ");
                            }
                            if (coeff - 1.0).abs() < 1e-9 {
                                let _ = write!(out, "[{name}]");
                            } else {
                                let _ = write!(out, "{coeff:.3}*[{name}]");
                            }
                            first = false;
                        }
                        let _ = writeln!(out);
                    }
                    out
                }
                Emit::Stats => {
                    let s = model.compiled.stages;
                    let mut out = String::new();
                    let _ = writeln!(
                        out,
                        "species: {}  reactions: {}  distinct rates: {}",
                        model.network.species_count(),
                        model.network.reaction_count(),
                        model.rates.distinct_count()
                    );
                    let _ = writeln!(out, "level: {level}");
                    let _ = writeln!(out, "input ops:        {}", s.input);
                    let _ = writeln!(out, "after simplify:   {}", s.after_simplify);
                    let _ = writeln!(out, "after distribute: {}", s.after_distribute);
                    let _ = writeln!(out, "after CSE:        {}", s.after_cse);
                    let _ = writeln!(
                        out,
                        "tape: {} instrs, {} registers ({:.1}% of input ops remain)",
                        model.compiled.tape.len(),
                        model.compiled.tape.n_regs,
                        100.0 * model.compiled.remaining_fraction()
                    );
                    out
                }
            })
        }
        Command::Simulate {
            input,
            level,
            tend,
            steps,
            observe,
            jacobian,
            linear_solver,
            engine,
            reroll,
            frontend_threads,
            cache_dir,
        } => {
            let (model, _) = load_model(
                input,
                *level,
                LoadOptions {
                    cache_dir: cache_dir.as_deref(),
                    deriv: *jacobian == JacobianMode::Analytic,
                    native: matches!(engine, EngineMode::Native | EngineMode::Auto),
                    reroll: *reroll,
                    frontend_threads: *frontend_threads,
                    ..LoadOptions::default()
                },
            )?;
            let times: Vec<f64> = (1..=*steps)
                .map(|i| tend * i as f64 / *steps as f64)
                .collect();
            let options = SolverOptions {
                linear_solver: *linear_solver,
                ..SolverOptions::default()
            };
            let mut out = String::new();
            // Requested native but no kernel attached: say why and run
            // on the exec engine anyway (exit 0 — degradation, not
            // failure).
            if *engine == EngineMode::Native && model.artifact().native.is_none() {
                let why = model
                    .artifact()
                    .native_diag
                    .as_deref()
                    .unwrap_or("no compiled kernel on this artifact");
                let _ = writeln!(out, "warning: native engine unavailable: {why}");
                let _ = writeln!(out, "warning: falling back to the exec engine");
            }
            // Size-aware engine selection: record which engine auto
            // picked and why, so the choice is auditable from the output.
            if *engine == EngineMode::Auto {
                let (chosen, why) = model.engine_choice(*engine);
                let _ = writeln!(out, "engine: {chosen} ({why})");
            }
            let solution = model
                .simulate_configured(&times, options, *jacobian, *engine)
                .map_err(|e| err(format!("solver: {e}")))?;
            let names: Vec<String> = if observe.is_empty() {
                model
                    .network
                    .species_iter()
                    .map(|(_, sp)| sp.name.clone())
                    .collect()
            } else {
                observe.clone()
            };
            let indices: Vec<usize> = names
                .iter()
                .map(|n| {
                    model
                        .species_index(n)
                        .ok_or_else(|| err(format!("unknown species '{n}'")))
                })
                .collect::<Result<_, _>>()?;
            let _ = write!(out, "{:>10}", "t");
            for n in &names {
                let _ = write!(out, "{n:>16}");
            }
            let _ = writeln!(out);
            for (t, y) in times.iter().zip(&solution) {
                let _ = write!(out, "{t:>10.4}");
                for &i in &indices {
                    let _ = write!(out, "{:>16.8}", y[i]);
                }
                let _ = writeln!(out);
            }
            Ok(out)
        }
        Command::Synthesize {
            input,
            observe,
            out_dir,
            files,
            records,
            tend,
        } => {
            let (model, _) = load_model(input, OptLevel::Full, LoadOptions::default())?;
            let weights = observable_or_all(&model, observe)?;
            let simulator = crate::TapeSimulator::from_artifact(model.artifact(), weights);
            let rates = model.system.rate_values.clone();
            let data = crate::workload::synthesize(
                &simulator,
                &rates,
                crate::workload::ExpDataSpec {
                    n_files: *files,
                    records: *records,
                    base_horizon: *tend,
                    horizon_skew: 0.25,
                    noise: 1e-3,
                    seed: 2007,
                },
            )
            .map_err(|e| err(format!("synthesis: {e}")))?;
            std::fs::create_dir_all(out_dir)
                .map_err(|e| err(format!("cannot create {}: {e}", out_dir.display())))?;
            let mut out = String::new();
            for file in &data {
                let path = out_dir.join(format!("{}.dat", file.label));
                file.write(&path)
                    .map_err(|e| err(format!("write {}: {e}", path.display())))?;
                let _ = writeln!(out, "wrote {} ({} records)", path.display(), file.len());
            }
            Ok(out)
        }
        Command::Estimate {
            input,
            data_dir,
            observe,
            workers,
            collective_timeout,
            max_retries,
            on_failure,
            jacobian,
            residual_jacobian,
            fd_step,
            linear_solver,
            frontend_threads,
            cache_dir,
        } => {
            let (model, _) = load_model(
                input,
                OptLevel::Full,
                LoadOptions {
                    cache_dir: cache_dir.as_deref(),
                    deriv: *jacobian == JacobianMode::Analytic,
                    sensitivity: *residual_jacobian == ResidualJacobianMode::Analytic,
                    frontend_threads: *frontend_threads,
                    ..LoadOptions::default()
                },
            )?;
            let weights = observable_or_all(&model, observe)?;
            // `--jacobian analytic` compiled the Deriv stage, so the
            // artifact already carries the tapes the simulator attaches.
            let mut simulator = crate::TapeSimulator::from_artifact(model.artifact(), weights);
            simulator.set_jacobian_mode(*jacobian);
            simulator.set_linear_solver(*linear_solver);
            // Load every .dat file, sorted by name for determinism.
            let mut paths: Vec<PathBuf> = std::fs::read_dir(data_dir)
                .map_err(|e| err(format!("cannot read {}: {e}", data_dir.display())))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "dat"))
                .collect();
            paths.sort();
            if paths.is_empty() {
                return Err(err(format!("no .dat files in {}", data_dir.display())));
            }
            let data: Vec<ExperimentFile> = paths
                .iter()
                .map(|p| ExperimentFile::read(p).map_err(|e| err(format!("{}: {e}", p.display()))))
                .collect::<Result<_, _>>()?;

            if *workers == 0 {
                return Err(err("--workers must be at least 1"));
            }
            let config = EstimatorConfig {
                dynamic_lb: true,
                retry: RetryPolicy::with_max_retries(*max_retries),
                on_failure: *on_failure,
                collective_timeout: collective_timeout.map(Duration::from_secs_f64),
                ..EstimatorConfig::default()
            };
            let estimator = ParallelEstimator::with_config(&simulator, data, *workers, config);
            let names: Vec<String> = (0..model.rates.distinct_count())
                .map(|i| {
                    model
                        .rates
                        .canonical_name(rms_rcip::RateId(i as u32))
                        .to_string()
                })
                .collect();
            let start = model.system.rate_values.clone();
            let (lo, hi) = model.rates.bounds_vectors();
            // The residual is an adaptive ODE solve, so its
            // finite-difference noise floor sits near the solver
            // tolerance: derive the default step from it (√rtol) rather
            // than LmOptions' analytically-smooth √ε default.
            let step = fd_step.unwrap_or_else(|| simulator.options.rtol.sqrt());
            let options = LmOptions {
                max_iters: 60,
                fd_step: step,
                ..LmOptions::default()
            };
            let result = estimator
                .estimate_with_jacobian(&start, &lo, &hi, options, *residual_jacobian)
                .map_err(|e| err(format!("estimation: {e}")))?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "converged: {:?} after {} iterations, {} residual evals, {} Jacobian builds ({residual_jacobian})",
                result.stop, result.iterations, result.fevals, result.jevals
            );
            let _ = writeln!(out, "{:<14} {:>12} {:>12}", "parameter", "start", "fitted");
            for (i, name) in names.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{name:<14} {:>12.6} {:>12.6}",
                    start[i], result.params[i]
                );
            }
            let _ = writeln!(out, "final cost: {:.6e}", result.cost);
            // Statistical information (Fig. 2's dashed component).
            struct Wrap<'a, S: crate::Simulator> {
                estimator: &'a ParallelEstimator<'a, S>,
                n: usize,
                m: usize,
            }
            impl<S: crate::Simulator> rms_nlopt::Residual for Wrap<'_, S> {
                fn n_params(&self) -> usize {
                    self.n
                }
                fn n_residuals(&self) -> usize {
                    self.m
                }
                fn eval(&self, p: &[f64], out: &mut [f64]) -> Result<(), String> {
                    let o = self.estimator.objective(p).map_err(|e| e.to_string())?;
                    out.copy_from_slice(&o.error_vector);
                    Ok(())
                }
            }
            let wrap = Wrap {
                estimator: &estimator,
                n: start.len(),
                m: result.residuals.len(),
            };
            if let Ok(stats) = FitStatistics::evaluate_bounded(
                &wrap,
                &result.params,
                None,
                &lo,
                &hi,
                options.fd_step,
            ) {
                let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
                let _ = writeln!(out, "{}", stats.report(&name_refs));
            }
            // Degradation telemetry: silent when the run was clean.
            let health = estimator.cumulative_health();
            if !health.is_healthy() {
                let _ = write!(out, "{}", health.summary());
            }
            let fallback = simulator.fallback_stats();
            if fallback.bdf_failures > 0 {
                let _ = writeln!(
                    out,
                    "solver fallback: {} BDF failure(s), {} recovered by tightened tolerances, {} by RK45",
                    fallback.bdf_failures,
                    fallback.tightened_recoveries,
                    fallback.rk45_recoveries
                );
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn serve_args_parse_with_chaos_hooks() {
        let cmd = parse_args(&argv(
            "serve --workers 4 --queue-capacity 8 --deadline-ms 500 \
             --max-retries 2 --retry-base-ms 10 --memory-budget-mb 64 \
             --chaos-panic 1,3 --chaos-stall 0:200,2:50",
        ))
        .unwrap();
        match cmd {
            Command::Serve {
                workers,
                queue_capacity,
                memory_budget_mb,
                max_retries,
                retry_base_ms,
                deadline_ms,
                chaos_panic,
                chaos_stall,
                ..
            } => {
                assert_eq!(workers, 4);
                assert_eq!(queue_capacity, 8);
                assert_eq!(memory_budget_mb, Some(64));
                assert_eq!(max_retries, 2);
                assert_eq!(retry_base_ms, 10);
                assert_eq!(deadline_ms, Some(500));
                assert_eq!(chaos_panic, vec![1, 3]);
                assert_eq!(chaos_stall, vec![(0, 200), (2, 50)]);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(matches!(
            parse_args(&argv("serve --bogus 1")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("serve --chaos-stall 3")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("serve --workers 0")),
            Err(CliError::Usage(_))
        ));
    }

    const MODEL: &str = r#"
        rate K_sc = 2;
        molecule DiS = "CSSC" init 1.0;
        rule scission {
            site bond S ~ S order single;
            action disconnect;
            rate K_sc;
        }
    "#;

    fn write_model(dir: &Path) -> PathBuf {
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join("model.rdl");
        std::fs::write(&path, MODEL).unwrap();
        path
    }

    #[test]
    fn parse_compile_variants() {
        let cmd = parse_args(&argv("compile m.rdl --level algebraic --emit c")).unwrap();
        assert_eq!(
            cmd,
            Command::Compile {
                input: PathBuf::from("m.rdl"),
                level: OptLevel::Algebraic,
                emit: Emit::C,
                dump: None,
                reroll: true,
                frontend_threads: 0,
                cache_dir: None,
            }
        );
        // compile-report is sugar for compile --emit report.
        let cmd = parse_args(&argv("compile-report m.rdl --cache-dir .rms-cache")).unwrap();
        assert_eq!(
            cmd,
            Command::Compile {
                input: PathBuf::from("m.rdl"),
                level: OptLevel::Full,
                emit: Emit::Report,
                dump: None,
                reroll: true,
                frontend_threads: 0,
                cache_dir: Some(PathBuf::from(".rms-cache")),
            }
        );
        // --dump-ir takes a stage name; bad names are usage errors.
        match parse_args(&argv("compile m.rdl --dump-ir cse")).unwrap() {
            Command::Compile { dump, .. } => assert_eq!(dump, Some(Stage::Cse)),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("compile m.rdl --dump-ir bogus")).is_err());
        assert!(parse_args(&argv("compile m.rdl --emit bogus")).is_err());
        assert!(parse_args(&argv("compile")).is_err());
        assert!(parse_args(&argv("frobnicate x")).is_err());
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn compile_and_simulate_real_model() {
        let dir = std::env::temp_dir().join("rmsc_cli_test");
        let model = write_model(&dir);
        let model_arg = model.display().to_string();

        let out =
            run(&parse_args(&argv(&format!("compile {model_arg} --emit stats"))).unwrap()).unwrap();
        assert!(out.contains("distinct rates: 1"), "{out}");

        let out =
            run(&parse_args(&argv(&format!("compile {model_arg} --emit c"))).unwrap()).unwrap();
        assert!(out.contains("void ode_rhs"), "{out}");

        let out = run(&parse_args(&argv(&format!(
            "simulate {model_arg} --tend 0.5 --steps 4 --observe DiS"
        )))
        .unwrap())
        .unwrap();
        assert_eq!(out.lines().count(), 5, "{out}");
        assert!(out.contains("DiS"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synthesize_then_estimate_round_trip() {
        let dir = std::env::temp_dir().join("rmsc_cli_estimate");
        std::fs::remove_dir_all(&dir).ok();
        let model = write_model(&dir);
        let model_arg = model.display().to_string();
        let data_dir = dir.join("data");
        let data_arg = data_dir.display().to_string();

        let out = run(&parse_args(&argv(&format!(
            "synthesize {model_arg} --out {data_arg} --files 2 --records 20 --tend 0.5"
        )))
        .unwrap())
        .unwrap();
        assert_eq!(out.lines().count(), 2, "{out}");

        let out = run(&parse_args(&argv(&format!(
            "estimate {model_arg} --data {data_arg} --workers 2"
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("K_sc"), "{out}");
        assert!(out.contains("final cost"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reported() {
        let cmd = parse_args(&argv("compile /definitely/not/here.rdl")).unwrap();
        let result = run(&cmd);
        assert!(result.is_err());
        let error = result.unwrap_err();
        assert!(error.message().contains("cannot read"));
        // A missing file is a runtime failure (exit 1), not a usage error.
        assert_eq!(error.exit_code(), 1);
    }

    #[test]
    fn malformed_model_renders_spanned_diagnostic() {
        let dir = std::env::temp_dir().join("rmsc_cli_diag");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.rdl");
        std::fs::write(&path, "molecule = ;\n").unwrap();
        let cmd = parse_args(&argv(&format!("compile {}", path.display()))).unwrap();
        let error = run(&cmd).unwrap_err();
        // Rejected input exits 2 with a rendered, caret-annotated span.
        assert_eq!(error.exit_code(), 2);
        assert!(error.message().starts_with("error[parse]:"), "{error}");
        assert!(error.message().contains("bad.rdl:1:"), "{error}");
        assert!(error.message().contains('^'), "{error}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compile_report_emits_pipeline_json() {
        let dir = std::env::temp_dir().join("rmsc_cli_report");
        let model = write_model(&dir);
        let out = run(&parse_args(&argv(&format!("compile-report {}", model.display()))).unwrap())
            .unwrap();
        assert!(out.contains("\"stages\""), "{out}");
        assert!(out.contains("\"stage\":\"parse\""), "{out}");
        assert!(out.contains("\"counts\""), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dump_ir_prints_the_requested_stage() {
        let dir = std::env::temp_dir().join("rmsc_cli_dump");
        let model = write_model(&dir);
        let model_arg = model.display().to_string();
        let out =
            run(&parse_args(&argv(&format!("compile {model_arg} --dump-ir odegen"))).unwrap())
                .unwrap();
        assert!(out.contains("d["), "{out}");
        let out = run(&parse_args(&argv(&format!("compile {model_arg} --dump-ir lower"))).unwrap())
            .unwrap();
        assert!(out.contains("; tape:"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_dir_round_trips_through_cli() {
        let dir = std::env::temp_dir().join("rmsc_cli_cache");
        std::fs::remove_dir_all(&dir).ok();
        let model = write_model(&dir);
        let cache = dir.join("cache");
        let cmd = format!(
            "compile {} --emit stats --cache-dir {}",
            model.display(),
            cache.display()
        );
        let first = run(&parse_args(&argv(&cmd)).unwrap()).unwrap();
        // The artifact landed on disk and a recompile agrees.
        assert!(std::fs::read_dir(&cache).unwrap().count() > 0);
        let second = run(&parse_args(&argv(&cmd)).unwrap()).unwrap();
        assert_eq!(first, second);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn estimate_flags_parse_and_validate() {
        let cmd = parse_args(&argv(
            "estimate m.rdl --data d --workers 3 --collective-timeout 2.5 \
             --max-retries 4 --on-solver-failure abort",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Estimate {
                input: PathBuf::from("m.rdl"),
                data_dir: PathBuf::from("d"),
                observe: vec![],
                workers: 3,
                collective_timeout: Some(2.5),
                max_retries: 4,
                on_failure: FailurePolicy::Abort,
                jacobian: JacobianMode::FdColored,
                linear_solver: LinearSolver::Auto,
                frontend_threads: 0,
                cache_dir: None,
                residual_jacobian: ResidualJacobianMode::Analytic,
                fd_step: None,
            }
        );
        // Defaults: 2 workers, no deadline, 1 retry, penalize.
        let cmd = parse_args(&argv("estimate m.rdl --data d")).unwrap();
        assert_eq!(
            cmd,
            Command::Estimate {
                input: PathBuf::from("m.rdl"),
                data_dir: PathBuf::from("d"),
                observe: vec![],
                workers: 2,
                collective_timeout: None,
                max_retries: 1,
                on_failure: FailurePolicy::Penalize,
                jacobian: JacobianMode::FdColored,
                linear_solver: LinearSolver::Auto,
                frontend_threads: 0,
                cache_dir: None,
                residual_jacobian: ResidualJacobianMode::Analytic,
                fd_step: None,
            }
        );
        // The residual-Jacobian mode and FD step are tunable.
        match parse_args(&argv(
            "estimate m.rdl --data d --residual-jacobian fd --fd-step 5e-4",
        ))
        .unwrap()
        {
            Command::Estimate {
                residual_jacobian,
                fd_step,
                ..
            } => {
                assert_eq!(residual_jacobian, ResidualJacobianMode::Fd);
                assert_eq!(fd_step, Some(5e-4));
            }
            other => panic!("{other:?}"),
        }
        // Malformed invocations are usage errors (exit 2).
        for bad in [
            "estimate m.rdl --data d --workers 0",
            "estimate m.rdl --data d --collective-timeout -3",
            "estimate m.rdl --data d --collective-timeout soon",
            "estimate m.rdl --data d --on-solver-failure shrug",
            "estimate m.rdl --data d --max-retries many",
            // Typo'd flags must not be silently ignored.
            "estimate m.rdl --data d --collective-timeut 3",
            "simulate m.rdl --setps 5",
            "compile m.rdl --emti odes",
            // Bad --jacobian values are usage errors too.
            "simulate m.rdl --jacobian newton",
            "estimate m.rdl --data d --jacobian sparse",
            // ... and bad --engine values.
            "simulate m.rdl --engine jit",
            // ... and bad --opt values.
            "simulate m.rdl --opt reroll=maybe",
            "compile m.rdl --opt unroll=off",
            "compile m.rdl --opt",
            // ... and bad --linear-solver values.
            "simulate m.rdl --linear-solver cholesky",
            "estimate m.rdl --data d --linear-solver qr",
            // ... and bad residual-Jacobian flags.
            "estimate m.rdl --data d --residual-jacobian wrong",
            "estimate m.rdl --data d --fd-step nope",
            "estimate m.rdl --data d --fd-step -1",
            "simulate m.rdl --residual-jacobian analytic",
        ] {
            let error = parse_args(&argv(bad)).unwrap_err();
            assert_eq!(error.exit_code(), 2, "{bad}: {error}");
            assert!(!error.message().is_empty());
        }
        // --help anywhere shows usage rather than an unknown-option error.
        assert_eq!(parse_args(&argv("estimate --help")).unwrap(), Command::Help);
    }

    #[test]
    fn jacobian_flag_parses_on_both_subcommands() {
        // simulate defaults to dense FD; estimate defaults to colored FD.
        match parse_args(&argv("simulate m.rdl")).unwrap() {
            Command::Simulate { jacobian, .. } => assert_eq!(jacobian, JacobianMode::FdDense),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("simulate m.rdl --jacobian analytic")).unwrap() {
            Command::Simulate { jacobian, .. } => assert_eq!(jacobian, JacobianMode::Analytic),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("estimate m.rdl --data d --jacobian analytic")).unwrap() {
            Command::Estimate { jacobian, .. } => assert_eq!(jacobian, JacobianMode::Analytic),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("estimate m.rdl --data d --jacobian fd-dense")).unwrap() {
            Command::Estimate { jacobian, .. } => assert_eq!(jacobian, JacobianMode::FdDense),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn linear_solver_flag_parses_on_both_subcommands() {
        // Both subcommands default to auto.
        match parse_args(&argv("simulate m.rdl")).unwrap() {
            Command::Simulate { linear_solver, .. } => {
                assert_eq!(linear_solver, LinearSolver::Auto)
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("simulate m.rdl --linear-solver sparse")).unwrap() {
            Command::Simulate { linear_solver, .. } => {
                assert_eq!(linear_solver, LinearSolver::Sparse)
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("simulate m.rdl --linear-solver dense")).unwrap() {
            Command::Simulate { linear_solver, .. } => {
                assert_eq!(linear_solver, LinearSolver::Dense)
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("estimate m.rdl --data d --linear-solver sparse")).unwrap() {
            Command::Estimate { linear_solver, .. } => {
                assert_eq!(linear_solver, LinearSolver::Sparse)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn engine_flag_parses_with_exec_default() {
        match parse_args(&argv("simulate m.rdl")).unwrap() {
            Command::Simulate { engine, .. } => assert_eq!(engine, EngineMode::Exec),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("simulate m.rdl --engine interp")).unwrap() {
            Command::Simulate { engine, .. } => assert_eq!(engine, EngineMode::Interp),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("simulate m.rdl --engine exec")).unwrap() {
            Command::Simulate { engine, .. } => assert_eq!(engine, EngineMode::Exec),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("simulate m.rdl --engine auto")).unwrap() {
            Command::Simulate { engine, .. } => assert_eq!(engine, EngineMode::Auto),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frontend_threads_flag_parses_everywhere() {
        // Defaults to 0 (one thread per core) on every subcommand.
        match parse_args(&argv("compile m.rdl")).unwrap() {
            Command::Compile {
                frontend_threads, ..
            } => assert_eq!(frontend_threads, 0),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("compile m.rdl --frontend-threads 4")).unwrap() {
            Command::Compile {
                frontend_threads, ..
            } => assert_eq!(frontend_threads, 4),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("compile-report m.rdl --frontend-threads 2")).unwrap() {
            Command::Compile {
                frontend_threads, ..
            } => assert_eq!(frontend_threads, 2),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("simulate m.rdl --frontend-threads 8")).unwrap() {
            Command::Simulate {
                frontend_threads, ..
            } => assert_eq!(frontend_threads, 8),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("estimate m.rdl --data d --frontend-threads 1")).unwrap() {
            Command::Estimate {
                frontend_threads, ..
            } => assert_eq!(frontend_threads, 1),
            other => panic!("{other:?}"),
        }
        // Non-numeric values are usage errors (exit 2).
        let error = parse_args(&argv("compile m.rdl --frontend-threads lots")).unwrap_err();
        assert_eq!(error.exit_code(), 2);
    }

    #[test]
    fn opt_reroll_flag_parses_on_compile_and_simulate() {
        // Defaults to on everywhere.
        match parse_args(&argv("simulate m.rdl")).unwrap() {
            Command::Simulate { reroll, .. } => assert!(reroll),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("simulate m.rdl --opt reroll=off")).unwrap() {
            Command::Simulate { reroll, .. } => assert!(!reroll),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("compile m.rdl --opt reroll=off")).unwrap() {
            Command::Compile { reroll, .. } => assert!(!reroll),
            other => panic!("{other:?}"),
        }
        // Repeated: the last occurrence wins.
        match parse_args(&argv("compile m.rdl --opt reroll=off --opt reroll=on")).unwrap() {
            Command::Compile { reroll, .. } => assert!(reroll),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simulate_engines_print_identical_tables() {
        let dir = std::env::temp_dir().join("rmsc_cli_engine");
        let model = write_model(&dir);
        let model_arg = model.display().to_string();
        let base = format!("simulate {model_arg} --tend 0.5 --steps 4 --observe DiS");
        let exec = run(&parse_args(&argv(&base)).unwrap()).unwrap();
        let interp = run(&parse_args(&argv(&format!("{base} --engine interp"))).unwrap()).unwrap();
        // Without FMA contraction the engines are bitwise identical;
        // with it, step-size decisions could in principle drift, so only
        // the table shape is checked.
        if crate::FMA_CONTRACTS {
            assert_eq!(exec.lines().count(), interp.lines().count());
        } else {
            assert_eq!(exec, interp);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_engine_auto_reports_its_choice() {
        let dir = std::env::temp_dir().join("rmsc_cli_engine_auto");
        let model = write_model(&dir);
        let model_arg = model.display().to_string();
        let base = format!("simulate {model_arg} --tend 0.5 --steps 4 --observe DiS");
        let auto = run(&parse_args(&argv(&format!("{base} --engine auto"))).unwrap()).unwrap();
        // The first line states which engine auto picked and why; the
        // table below it has the same shape as an explicit-engine run.
        let first = auto.lines().next().unwrap();
        assert!(first.starts_with("engine: "), "{first}");
        assert!(first.contains("auto"), "{first}");
        let exec = run(&parse_args(&argv(&base)).unwrap()).unwrap();
        assert_eq!(auto.lines().count(), exec.lines().count() + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_with_analytic_jacobian_matches_default() {
        let dir = std::env::temp_dir().join("rmsc_cli_jacobian");
        let model = write_model(&dir);
        let model_arg = model.display().to_string();
        let base = format!("simulate {model_arg} --tend 0.5 --steps 4 --observe DiS");
        let dense = run(&parse_args(&argv(&base)).unwrap()).unwrap();
        let analytic =
            run(&parse_args(&argv(&format!("{base} --jacobian analytic"))).unwrap()).unwrap();
        let colored =
            run(&parse_args(&argv(&format!("{base} --jacobian fd-colored"))).unwrap()).unwrap();
        // Identical table shape, values within solver tolerance of each
        // other (they agree to the printed precision on this tiny model).
        assert_eq!(dense.lines().count(), analytic.lines().count());
        assert_eq!(dense.lines().count(), colored.lines().count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_species_reported() {
        let dir = std::env::temp_dir().join("rmsc_cli_species");
        let model = write_model(&dir);
        let cmd = parse_args(&argv(&format!(
            "simulate {} --observe Unobtainium",
            model.display()
        )))
        .unwrap();
        let result = run(&cmd);
        assert!(result.is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
