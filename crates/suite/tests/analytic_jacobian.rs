//! Semantics preservation of the compiled analytic Jacobian: the tape
//! pair must agree with finite differences at every optimization level,
//! on both workload models, and the BDF trajectories must be independent
//! of the Jacobian source.

use rms_suite::workload::{generate_model, VulcanizationSpec, VULCANIZATION_RDL};
use rms_suite::{
    compile_model, compile_source, fd_jacobian, fd_jacobian_colored, AnalyticJacobian, FnRhs,
    JacobianMode, OdeRhs, OptLevel, SolverOptions, SuiteModel, TapeJacobian,
};
use std::cell::RefCell;

const LEVELS: [OptLevel; 4] = [
    OptLevel::None,
    OptLevel::Simplify,
    OptLevel::Algebraic,
    OptLevel::Full,
];

fn rdl_model(level: OptLevel) -> SuiteModel {
    compile_source(VULCANIZATION_RDL, level).expect("RDL workload model compiles")
}

fn programmatic_model(level: OptLevel) -> SuiteModel {
    let model = generate_model(VulcanizationSpec {
        sites: 3,
        max_chain: 3,
        neighbourhood: 1,
    });
    compile_model(model.network, model.rates, level).expect("programmatic workload model compiles")
}

/// A generic strictly positive state so every structural entry is
/// exercised away from the zero-concentration special case.
fn probe_state(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.2 + 0.05 * (i % 7) as f64).collect()
}

/// Analytic tape values vs dense FD over the compiled RHS tape, and
/// exactness of the extracted sparsity (off-pattern entries vanish).
fn check_against_dense_fd(model: &SuiteModel, label: &str) {
    let n = model.system.len();
    let tape = &model.compiled.tape;
    let rates = &model.system.rate_values;
    let scratch = RefCell::new(Vec::new());
    let rhs = FnRhs::new(n, |_t, y: &[f64], ydot: &mut [f64]| {
        tape.eval_with_scratch(rates, y, ydot, &mut scratch.borrow_mut());
    });

    let tapes = model.jacobian();
    assert_eq!(tapes.n_species, n, "{label}");
    let provider = TapeJacobian::new(&tapes, rates);
    let y = probe_state(n);
    let mut vals = vec![0.0; tapes.nnz()];
    provider.eval_values(0.0, &y, &mut vals);

    let mut f = vec![0.0; n];
    rhs.eval(0.0, &y, &mut f);
    let (dense, _) = fd_jacobian(&rhs, 0.0, &y, &f);

    let mut in_pattern = vec![vec![false; n]; n];
    for (&(i, j), &a) in tapes.entries.iter().zip(&vals) {
        in_pattern[i as usize][j as usize] = true;
        let b = dense[(i as usize, j as usize)];
        assert!(
            (a - b).abs() <= 1e-6 * a.abs().max(1.0),
            "{label}: entry ({i},{j}): analytic {a} vs dense FD {b}"
        );
    }
    for i in 0..n {
        for j in 0..n {
            if !in_pattern[i][j] {
                let b = dense[(i, j)];
                assert!(
                    b.abs() <= 1e-6,
                    "{label}: ({i},{j}) outside the pattern but dense FD sees {b}"
                );
            }
        }
    }
}

/// Analytic tape values vs colored FD over the exact analytic pattern.
fn check_against_colored_fd(model: &SuiteModel, label: &str) {
    let n = model.system.len();
    let tape = &model.compiled.tape;
    let rates = &model.system.rate_values;
    let scratch = RefCell::new(Vec::new());
    let rhs = FnRhs::new(n, |_t, y: &[f64], ydot: &mut [f64]| {
        tape.eval_with_scratch(rates, y, ydot, &mut scratch.borrow_mut());
    });

    let tapes = model.jacobian();
    let provider = TapeJacobian::new(&tapes, rates);
    let y = probe_state(n);
    let mut vals = vec![0.0; tapes.nnz()];
    provider.eval_values(0.0, &y, &mut vals);

    let pattern = provider.pattern();
    let (colors, n_colors) = pattern.color_columns();
    let mut f = vec![0.0; n];
    rhs.eval(0.0, &y, &mut f);
    let (colored, evals) = fd_jacobian_colored(&rhs, 0.0, &y, &f, pattern, &colors, n_colors);
    assert!(evals <= n, "{label}: coloring should not exceed n");

    for (&(i, j), &a) in tapes.entries.iter().zip(&vals) {
        let b = colored[(i as usize, j as usize)];
        assert!(
            (a - b).abs() <= 1e-6 * a.abs().max(1.0),
            "{label}: entry ({i},{j}): analytic {a} vs colored FD {b}"
        );
    }
}

#[test]
fn analytic_matches_dense_fd_at_every_level_rdl_model() {
    for level in LEVELS {
        check_against_dense_fd(&rdl_model(level), &format!("rdl/{level}"));
    }
}

#[test]
fn analytic_matches_dense_fd_at_every_level_programmatic_model() {
    for level in LEVELS {
        check_against_dense_fd(&programmatic_model(level), &format!("programmatic/{level}"));
    }
}

#[test]
fn analytic_matches_colored_fd_on_both_models() {
    check_against_colored_fd(&rdl_model(OptLevel::Full), "rdl/full");
    check_against_colored_fd(&programmatic_model(OptLevel::Full), "programmatic/full");
}

#[test]
fn bdf_trajectories_agree_across_jacobian_sources() {
    let times = [0.1, 0.4, 1.0];
    for (model, label) in [
        (rdl_model(OptLevel::Full), "rdl"),
        (programmatic_model(OptLevel::Full), "programmatic"),
    ] {
        let dense = model
            .simulate_with_jacobian(&times, SolverOptions::default(), JacobianMode::FdDense)
            .unwrap();
        for mode in [JacobianMode::Analytic, JacobianMode::FdColored] {
            let other = model
                .simulate_with_jacobian(&times, SolverOptions::default(), mode)
                .unwrap();
            for (row, (a_row, b_row)) in dense.iter().zip(&other).enumerate() {
                for (a, b) in a_row.iter().zip(b_row) {
                    assert!(
                        (a - b).abs() <= 1e-4 * a.abs().max(1e-9),
                        "{label}/{mode} t={}: {a} vs {b}",
                        times[row]
                    );
                }
            }
        }
    }
}
