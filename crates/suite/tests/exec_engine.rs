//! Semantics preservation of the pre-decoded execution engine: BDF
//! trajectories must be independent of the `--engine` choice on both
//! workload models, and decode + fusion must preserve the arithmetic
//! operation totals the paper's Table 1 reports.

use rms_suite::workload::{generate_model, VulcanizationSpec, VULCANIZATION_RDL};
use rms_suite::{
    compile_model, compile_source, EngineMode, ExecTape, JacobianMode, OptLevel, SolverOptions,
    SuiteModel, FMA_CONTRACTS,
};

fn rdl_model() -> SuiteModel {
    compile_source(VULCANIZATION_RDL, OptLevel::Full).expect("RDL workload model compiles")
}

fn programmatic_model() -> SuiteModel {
    let model = generate_model(VulcanizationSpec {
        sites: 3,
        max_chain: 3,
        neighbourhood: 1,
    });
    compile_model(model.network, model.rates, OptLevel::Full)
        .expect("programmatic workload model compiles")
}

/// The interpreter and the execution engine must produce equivalent BDF
/// trajectories (1e-6 relative) on both workload models and under every
/// Jacobian source. Without FMA contraction the engines are arithmetic-
/// identical, so the tolerance only has to absorb contraction drift.
#[test]
fn bdf_trajectories_agree_across_engines_on_both_models() {
    let times = [0.1, 0.4, 1.0];
    for (model, label) in [(rdl_model(), "rdl"), (programmatic_model(), "programmatic")] {
        for mode in [
            JacobianMode::FdDense,
            JacobianMode::FdColored,
            JacobianMode::Analytic,
        ] {
            let interp = model
                .simulate_configured(&times, SolverOptions::default(), mode, EngineMode::Interp)
                .unwrap();
            let exec = model
                .simulate_configured(&times, SolverOptions::default(), mode, EngineMode::Exec)
                .unwrap();
            for (row, (a_row, b_row)) in interp.iter().zip(&exec).enumerate() {
                for (a, b) in a_row.iter().zip(b_row) {
                    assert!(
                        (a - b).abs() <= 1e-6 * a.abs().max(1e-9),
                        "{label}/{mode} t={}: interp {a} vs exec {b}",
                        times[row]
                    );
                }
            }
            // Same step-size decisions, same arithmetic: the default
            // (non-contracting) build must agree bitwise.
            if !FMA_CONTRACTS {
                assert_eq!(
                    interp, exec,
                    "{label}/{mode}: engines should be bitwise equal"
                );
            }
        }
    }
}

/// Decode and peephole fusion preserve the operation totals: an FMA
/// superinstruction counts as one multiply plus one add, so
/// `ExecTape::op_counts()` must equal the source tape's on both models.
#[test]
fn exec_op_counts_match_tape_on_both_models() {
    for (model, label) in [(rdl_model(), "rdl"), (programmatic_model(), "programmatic")] {
        let tape = &model.compiled.tape;
        let exec = ExecTape::compile(tape);
        assert_eq!(
            exec.op_counts(),
            tape.op_counts(),
            "{label}: decode/fusion changed the arithmetic op totals"
        );
        // Fusion actually fires on real chemistry tapes (mass-action
        // sums are chains of multiply-accumulates), so the decoded
        // program must be strictly shorter than the source.
        assert!(
            exec.len() < tape.len(),
            "{label}: expected FMA fusion to shorten the program ({} vs {})",
            exec.len(),
            tape.len()
        );
    }
}
