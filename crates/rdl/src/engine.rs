//! The rule engine: applies RDL rules to the molecule set until closure,
//! producing the reaction network (paper §2, "the chemical compiler
//! automatically generates the reaction network that describes all
//! possible reactions").
//!
//! The closure loop is **frontier-driven**: every rule keeps a cursor into
//! the species list and each run scans only the species added since that
//! rule last ran, eliminating the O(generations × species) rescan of the
//! naive algorithm. Within one rule run the match/edit/canonicalize work
//! fans out over an `rms-parallel` scoped worker pool and the results are
//! merged strictly in work-item order, so the resulting network — species
//! ids, names, reaction list, equation table — is bit-identical to the
//! serial path at any thread count.
//!
//! Why the frontier is exact (not an approximation): rescanning a species
//! a rule has already seen can only regenerate reactions that were
//! recorded when the rule first saw it — sites, edits and products are
//! pure functions of the unchanged molecule, and the network dedups both
//! species and reactions — so the rescan contributes no state changes.
//! Dropping it removes work whose only effect was to be deduplicated.
//! For pair sites the same argument applies to pairs: only pairs with at
//! least one not-yet-seen member can produce anything new, and they are
//! visited in the same relative order the full scan would have used.
//!
//! Species dedup runs on interned identities ([`rms_molecule::intern`]):
//! a u64 invariant-hash prefilter decides "definitely new" without any
//! string work, and only hash-bucket collisions compare exact canonical
//! certificates. `EngineOptions { intern: false }` falls back to canonical
//! SMILES strings, and `legacy_rescan: true` restores the full
//! rescan-every-generation schedule — together they reproduce the
//! pre-frontier baseline for benchmarking and differential testing.

use std::time::Instant;

use rms_molecule::{
    canonical_key, identify, parse_smiles, AtomPredicate, BondOrder, BondPredicate, Element,
    Formula, KeyTable, MolIdentity, Molecule,
};
use rms_parallel::{available_threads, scoped_map};
use rms_rcip::RateTable;

use crate::ast::{Action, Forbid, Limits, Program, RuleDecl, Scope, Site};
use crate::error::{RdlError, Result};
use crate::expand::{expand_program, SeedVariant};
use crate::network::{Reaction, ReactionNetwork, SpeciesId};

/// How many work items (species or species pairs) each parallel dispatch
/// processes before merging, bounding the number of un-merged candidate
/// molecules held in memory at once.
const WORK_BATCH: usize = 4096;

/// Frontend execution options. The defaults are the fast path; the other
/// combinations exist for benchmarking and differential testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Worker threads for rule application; `0` means one per core.
    pub threads: usize,
    /// Dedup species through interned certificates (hash prefilter + exact
    /// certificate) instead of canonical SMILES strings.
    pub intern: bool,
    /// Restore the pre-frontier schedule: every rule rescans the full
    /// species set every generation. Combined with `intern: false` and
    /// `threads: 1` this is the measured baseline path.
    pub legacy_rescan: bool,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            threads: 0,
            intern: true,
            legacy_rescan: false,
        }
    }
}

/// Metrics from one network-generation run, surfaced in the driver's
/// pipeline report.
#[derive(Debug, Clone, Default)]
pub struct NetworkStats {
    /// Closure generations executed.
    pub generations: usize,
    /// Whether a generation completed with no new species or reactions
    /// (the closure converged) before the generation cap.
    pub fixpoint: bool,
    /// Rules that still produced new species/reactions in the final
    /// executed generation, when the cap was hit without a fixpoint.
    pub growing_rules: Vec<String>,
    /// Successful rule applications (candidate product molecules built).
    pub rule_applications: u64,
    /// Per-fragment canonical identity computations (certificates or
    /// canonical SMILES, plus one per seed).
    pub canonicalizations: u64,
    /// Interned dedup lookups (0 when interning is off).
    pub prefilter_lookups: u64,
    /// Lookups settled by an empty hash bucket — no certificate compared.
    pub prefilter_hits: u64,
    /// Largest per-rule frontier (species not yet seen by a rule at the
    /// start of one of its runs).
    pub peak_frontier: usize,
    /// Wall-clock seconds per executed generation.
    pub generation_seconds: Vec<f64>,
    /// Resolved worker-thread count.
    pub threads: usize,
}

impl NetworkStats {
    /// Fraction of dedup lookups settled by the invariant-hash prefilter.
    pub fn prefilter_hit_rate(&self) -> f64 {
        if self.prefilter_lookups == 0 {
            0.0
        } else {
            self.prefilter_hits as f64 / self.prefilter_lookups as f64
        }
    }
}

/// The chemical compiler's output: the reaction network plus the evaluated
/// rate-constant table.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    /// All species and reactions.
    pub network: ReactionNetwork,
    /// Evaluated, value-deduplicated rate constants.
    pub rates: RateTable,
    /// Generation metrics for the pipeline report.
    pub stats: NetworkStats,
}

/// Compile an RDL program: expand variants, evaluate rate constants, and
/// apply rules to closure.
///
/// Convenience wrapper over the individually observable phases — rate
/// evaluation ([`RateTable::parse`]), variant expansion
/// ([`expand_program`]), and network closure ([`compile_with`]). Pipeline
/// drivers that want per-phase timing call the phases directly.
pub fn compile(program: &Program) -> Result<CompiledModel> {
    let rates = RateTable::parse(&program.rate_source)?;
    let seeds = expand_program(program)?;
    compile_with(program, rates, &seeds)
}

/// The *Network* phase alone with default [`EngineOptions`].
pub fn compile_with(
    program: &Program,
    rates: RateTable,
    seeds: &[SeedVariant],
) -> Result<CompiledModel> {
    compile_with_options(program, rates, seeds, &EngineOptions::default())
}

/// The *Network* phase alone: validate rules against an already-evaluated
/// rate table, seed species from already-expanded variants, and apply
/// rules to closure under the given execution options. The produced
/// network is identical for every option combination (thread count,
/// interning, frontier vs rescan); only the cost differs.
pub fn compile_with_options(
    program: &Program,
    rates: RateTable,
    seeds: &[SeedVariant],
    options: &EngineOptions,
) -> Result<CompiledModel> {
    // Rule validation up front: rates and scope names must resolve.
    for rule in &program.rules {
        if rates.get(&rule.rate).is_none() {
            return Err(RdlError::UnknownRate {
                rule: rule.name.clone(),
                rate: rule.rate.clone(),
            });
        }
        if let Scope::Named(names) = &rule.scope {
            for name in names {
                if !program.molecules.iter().any(|m| &m.name == name) {
                    return Err(RdlError::UnknownMolecule {
                        rule: rule.name.clone(),
                        molecule: name.clone(),
                    });
                }
            }
        }
    }

    let threads = if options.threads == 0 {
        available_threads()
    } else {
        options.threads
    };
    let mut engine = Engine {
        network: ReactionNetwork::new(),
        families: Vec::new(),
        limits: program.limits,
        forbids: program.forbids.clone(),
        threads,
        legacy: options.legacy_rescan,
        intern: options.intern.then(InternState::default),
        cursors: vec![0; program.rules.len()],
        pair_caches: (0..program.rules.len())
            .map(|_| PairCache::default())
            .collect(),
        stats: NetworkStats {
            threads,
            ..NetworkStats::default()
        },
    };

    // Seed species from the expanded molecule declarations.
    for variant in seeds {
        let mol = parse_smiles(&variant.smiles).map_err(|cause| RdlError::BadSmiles {
            molecule: variant.name.clone(),
            smiles: variant.smiles.clone(),
            cause,
        })?;
        let key = canonical_key(&mol);
        engine.stats.canonicalizations += 1;
        let before = engine.network.species_count();
        let id = engine
            .network
            .add_species(mol, key, &variant.name, variant.initial);
        if engine.network.species_count() > before {
            engine.families.push(Some(variant.family.clone()));
        } else {
            // Duplicate seed structure: the later declaration's family
            // wins, matching the pre-frontier engine.
            engine.families[id.0 as usize] = Some(variant.family.clone());
        }
    }

    // Prime the intern table so generated fragments identical to a seed
    // dedup onto the seed's id.
    if let Some(intern) = engine.intern.as_mut() {
        for (id, sp) in engine.network.species_iter() {
            let structure = sp.structure.as_ref().expect("seeds carry structures");
            let (sym, is_new) = intern.table.intern(&identify(structure));
            debug_assert_eq!((sym as usize, is_new), (id.0 as usize, true));
            if is_new {
                intern.sym_to_species.push(id);
            }
        }
    }

    // Closure: apply every rule each generation until no new species or
    // reactions appear (or the generation limit is reached).
    let mut growing: Vec<String> = Vec::new();
    for _generation in 0..program.limits.max_generations {
        let started = Instant::now();
        let mut changed_rules: Vec<String> = Vec::new();
        for (ri, rule) in program.rules.iter().enumerate() {
            if engine.run_rule(ri, rule)? {
                changed_rules.push(rule.name.clone());
            }
        }
        engine
            .stats
            .generation_seconds
            .push(started.elapsed().as_secs_f64());
        engine.stats.generations += 1;
        if changed_rules.is_empty() {
            engine.stats.fixpoint = true;
            break;
        }
        growing = changed_rules;
    }
    if !engine.stats.fixpoint {
        engine.stats.growing_rules = growing;
    }
    if let Some(intern) = &engine.intern {
        engine.stats.prefilter_lookups = intern.table.lookups;
        engine.stats.prefilter_hits = intern.table.prefilter_hits;
    }

    Ok(CompiledModel {
        network: engine.network,
        rates,
        stats: engine.stats,
    })
}

/// Interned dedup state: the certificate table plus the symbol → species
/// mapping (symbols are dense and assigned in first-seen order, exactly
/// like species ids, so the mapping is a plain `Vec`).
#[derive(Default)]
struct InternState {
    table: KeyTable,
    sym_to_species: Vec<SpeciesId>,
}

/// Cached pair-rule site selections, extended incrementally as species are
/// added so old species are never re-scanned for sites.
#[derive(Default)]
struct PairCache {
    /// Species ids `< scanned` have been classified into `xs`/`ys`.
    scanned: usize,
    /// Species (ascending id) with a non-empty first-position site list.
    xs: Vec<(u32, Vec<usize>)>,
    /// Species (ascending id) with a non-empty second-position site list.
    ys: Vec<(u32, Vec<usize>)>,
}

struct Engine {
    network: ReactionNetwork,
    /// species → declared family name, aligned with species ids (seeds
    /// only; generated species have no family and match only `Scope::Any`).
    families: Vec<Option<String>>,
    limits: Limits,
    forbids: Vec<Forbid>,
    threads: usize,
    legacy: bool,
    intern: Option<InternState>,
    /// Per-rule frontier cursor: species ids below it have been scanned.
    cursors: Vec<usize>,
    pair_caches: Vec<PairCache>,
    stats: NetworkStats,
}

/// A rule's site selector, resolved once per rule run.
enum SitePred {
    Bond(BondPredicate),
    Atom(AtomPredicate),
}

/// A fragment's dedup identity, computed on worker threads.
enum FragId {
    Cert(MolIdentity),
    Key(String),
}

/// One product fragment ready for the merge: structure, identity, and the
/// formula-derived display-name hint.
struct FragCand {
    mol: Molecule,
    ident: FragId,
    name_hint: String,
}

/// One candidate reaction produced by a worker.
struct Candidate {
    reactants: Vec<SpeciesId>,
    frags: Vec<FragCand>,
}

/// Per-work-item worker output.
#[derive(Default)]
struct WorkOut {
    candidates: Vec<Candidate>,
    applications: u64,
    canonicalizations: u64,
}

impl Engine {
    /// Apply one rule across its current frontier. Returns whether
    /// anything new was added.
    fn run_rule(&mut self, ri: usize, rule: &RuleDecl) -> Result<bool> {
        match &rule.site {
            Site::Bond { .. } | Site::Atom(_) => self.run_uni_rule(ri, rule),
            Site::Pair { first, second } => {
                let (first, second) = (first.clone(), second.clone());
                self.run_pair_rule(ri, rule, &first, &second)
            }
        }
    }

    fn take_frontier(&mut self, ri: usize) -> (usize, usize) {
        let count = self.network.species_count();
        let cursor = if self.legacy { 0 } else { self.cursors[ri] };
        self.cursors[ri] = count;
        self.stats.peak_frontier = self.stats.peak_frontier.max(count - cursor);
        (cursor, count)
    }

    fn run_uni_rule(&mut self, ri: usize, rule: &RuleDecl) -> Result<bool> {
        let (cursor, count) = self.take_frontier(ri);
        let ids: Vec<u32> = (cursor..count)
            .filter(|&i| {
                in_scope(&self.families, SpeciesId(i as u32), &rule.scope, 0)
                    && self
                        .network
                        .species(SpeciesId(i as u32))
                        .structure
                        .is_some()
            })
            .map(|i| i as u32)
            .collect();
        let site = match &rule.site {
            Site::Bond { left, right, order } => SitePred::Bond(BondPredicate {
                left: left.clone(),
                right: right.clone(),
                order: *order,
            }),
            Site::Atom(pred) => SitePred::Atom(pred.clone()),
            Site::Pair { .. } => unreachable!("handled in run_pair_rule"),
        };
        let mut changed = false;
        for batch in ids.chunks(WORK_BATCH) {
            let outs = {
                let net = &self.network;
                let limits = self.limits;
                let forbids = &self.forbids[..];
                let interned = self.intern.is_some();
                scoped_map(self.threads, batch, |&id| {
                    uni_work(net, &site, rule.action, limits, forbids, interned, id)
                })
            };
            changed |= self.merge_outputs(rule, outs)?;
        }
        Ok(changed)
    }

    fn run_pair_rule(
        &mut self,
        ri: usize,
        rule: &RuleDecl,
        first: &AtomPredicate,
        second: &AtomPredicate,
    ) -> Result<bool> {
        let Action::Connect(order) = rule.action else {
            unreachable!("validated at parse time")
        };
        let (cursor, count) = self.take_frontier(ri);

        // Extend the cached site lists to cover new species. The legacy
        // schedule recomputes them every run (matching baseline cost).
        let mut cache = if self.legacy {
            PairCache::default()
        } else {
            std::mem::take(&mut self.pair_caches[ri])
        };
        let new_ids: Vec<u32> = (cache.scanned..count).map(|i| i as u32).collect();
        cache.scanned = count;
        let selections = {
            let net = &self.network;
            let families = &self.families[..];
            scoped_map(self.threads, &new_ids, |&id| {
                let sid = SpeciesId(id);
                let Some(mol) = net.species(sid).structure.as_ref() else {
                    return (None, None);
                };
                let sx = in_scope(families, sid, &rule.scope, 0)
                    .then(|| first.select(mol))
                    .filter(|s| !s.is_empty());
                let sy = in_scope(families, sid, &rule.scope, 1)
                    .then(|| second.select(mol))
                    .filter(|s| !s.is_empty());
                (sx, sy)
            })
        };
        for (id, (sx, sy)) in new_ids.iter().zip(selections) {
            if let Some(s) = sx {
                cache.xs.push((*id, s));
            }
            if let Some(s) = sy {
                cache.ys.push((*id, s));
            }
        }

        // New pairs in the order the full x-major scan would visit them:
        // pairs where both members were already seen produced everything
        // they can the last time this rule ran.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (xi, x_entry) in cache.xs.iter().enumerate() {
            for (yi, y_entry) in cache.ys.iter().enumerate() {
                if (x_entry.0 as usize) < cursor && (y_entry.0 as usize) < cursor {
                    continue;
                }
                pairs.push((xi as u32, yi as u32));
            }
        }

        let mut changed = false;
        for batch in pairs.chunks(WORK_BATCH) {
            let outs = {
                let net = &self.network;
                let limits = self.limits;
                let forbids = &self.forbids[..];
                let interned = self.intern.is_some();
                let (xs, ys) = (&cache.xs[..], &cache.ys[..]);
                scoped_map(self.threads, batch, |&(xi, yi)| {
                    pair_work(net, xs, ys, xi, yi, order, limits, forbids, interned)
                })
            };
            changed |= self.merge_outputs(rule, outs)?;
        }
        if !self.legacy {
            self.pair_caches[ri] = cache;
        }
        Ok(changed)
    }

    /// Merge worker outputs into the network strictly in work-item order —
    /// the single serialization point that makes parallel generation
    /// deterministic.
    fn merge_outputs(&mut self, rule: &RuleDecl, outs: Vec<WorkOut>) -> Result<bool> {
        let mut changed = false;
        for out in outs {
            self.stats.rule_applications += out.applications;
            self.stats.canonicalizations += out.canonicalizations;
            for cand in out.candidates {
                changed |= self.merge_candidate(rule, cand)?;
            }
        }
        Ok(changed)
    }

    fn merge_candidate(&mut self, rule: &RuleDecl, cand: Candidate) -> Result<bool> {
        let mut product_ids = Vec::with_capacity(cand.frags.len());
        let mut new_species = false;
        for frag in cand.frags {
            let pid = match frag.ident {
                FragId::Cert(identity) => {
                    let intern = self
                        .intern
                        .as_mut()
                        .expect("certificate candidate without intern table");
                    let (sym, is_new) = intern.table.intern(&identity);
                    if is_new {
                        let id =
                            self.network
                                .add_species_uncanonical(frag.mol, &frag.name_hint, 0.0);
                        intern.sym_to_species.push(id);
                        self.families.push(None);
                        new_species = true;
                        id
                    } else {
                        intern.sym_to_species[sym as usize]
                    }
                }
                FragId::Key(key) => {
                    let before = self.network.species_count();
                    let id = self
                        .network
                        .add_species(frag.mol, key, &frag.name_hint, 0.0);
                    if self.network.species_count() > before {
                        self.families.push(None);
                        new_species = true;
                    }
                    id
                }
            };
            product_ids.push(pid);
        }
        if self.network.species_count() > self.limits.max_species {
            return Err(RdlError::SpeciesLimitExceeded(self.limits.max_species));
        }
        let new_reaction = self.network.add_reaction(Reaction {
            reactants: cand.reactants,
            products: product_ids,
            rate: rule.rate.clone(),
            rule: rule.name.clone(),
        });
        Ok(new_species || new_reaction)
    }
}

fn in_scope(families: &[Option<String>], id: SpeciesId, scope: &Scope, position: usize) -> bool {
    match scope {
        Scope::Any => true,
        Scope::Named(names) => {
            let Some(Some(family)) = families.get(id.0 as usize) else {
                return false;
            };
            if names.len() >= 2 {
                // Positional scopes for pair sites.
                names.get(position).is_some_and(|n| n == family)
            } else {
                names.iter().any(|n| n == family)
            }
        }
    }
}

fn uni_work(
    net: &ReactionNetwork,
    site: &SitePred,
    action: Action,
    limits: Limits,
    forbids: &[Forbid],
    interned: bool,
    id: u32,
) -> WorkOut {
    let mut out = WorkOut::default();
    let sid = SpeciesId(id);
    let Some(mol) = net.species(sid).structure.as_ref() else {
        return out;
    };
    let edits: Vec<MolEdit> = match site {
        SitePred::Bond(pred) => pred
            .select(mol)
            .into_iter()
            .map(|(a, b)| MolEdit::OnBond(a, b))
            .collect(),
        SitePred::Atom(pred) => pred.select(mol).into_iter().map(MolEdit::OnAtom).collect(),
    };
    for edit in edits {
        // Feasibility precheck on the unmodified molecule: a matched site
        // whose edit is chemically impossible (e.g. raising the order of a
        // saturated bond) is rejected without paying for a clone.
        if !edit_feasible(mol, edit, action) {
            continue;
        }
        let mut product = mol.clone();
        let outcome = match (edit, action) {
            (MolEdit::OnBond(a, b), Action::Disconnect) => product.disconnect(a, b),
            (MolEdit::OnBond(a, b), Action::IncreaseBond) => product.increase_bond_order(a, b),
            (MolEdit::OnBond(a, b), Action::DecreaseBond) => product.decrease_bond_order(a, b),
            (MolEdit::OnAtom(a), Action::RemoveHydrogen) => product.remove_hydrogen(a),
            (MolEdit::OnAtom(a), Action::AddHydrogen) => product.add_hydrogen(a),
            _ => unreachable!("validated at parse time"),
        };
        debug_assert!(outcome.is_ok(), "edit_feasible admitted an infeasible edit");
        if outcome.is_err() {
            continue;
        }
        out.applications += 1;
        if let Some(cand) = build_candidate(product, vec![sid], limits, forbids, interned, &mut out)
        {
            out.candidates.push(cand);
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn pair_work(
    net: &ReactionNetwork,
    xs: &[(u32, Vec<usize>)],
    ys: &[(u32, Vec<usize>)],
    xi: u32,
    yi: u32,
    order: BondOrder,
    limits: Limits,
    forbids: &[Forbid],
    interned: bool,
) -> WorkOut {
    let mut out = WorkOut::default();
    let (x, sites_x) = &xs[xi as usize];
    let (y, sites_y) = &ys[yi as usize];
    let mol_x = net
        .species(SpeciesId(*x))
        .structure
        .as_ref()
        .expect("site cache only lists structured species");
    let mol_y = net
        .species(SpeciesId(*y))
        .structure
        .as_ref()
        .expect("site cache only lists structured species");
    if mol_x.atom_count() + mol_y.atom_count() > limits.max_atoms {
        return out;
    }
    for &sx in sites_x {
        for &sy in sites_y {
            // Valence precheck on both endpoints before cloning + merging.
            if !connect_feasible(mol_x, sx, order) || !connect_feasible(mol_y, sy, order) {
                continue;
            }
            let mut merged = mol_x.clone();
            let offset = merged.merge(mol_y);
            if merged.connect(sx, sy + offset, order).is_err() {
                continue;
            }
            out.applications += 1;
            let reactants = vec![SpeciesId(*x), SpeciesId(*y)];
            if let Some(cand) =
                build_candidate(merged, reactants, limits, forbids, interned, &mut out)
            {
                out.candidates.push(cand);
            }
        }
    }
    out
}

/// Split a product into fragments, filter forbidden/oversized forms, and
/// compute each fragment's dedup identity. `None` discards the whole
/// reaction (matching the serial engine's whole-reaction filtering).
fn build_candidate(
    product: Molecule,
    reactants: Vec<SpeciesId>,
    limits: Limits,
    forbids: &[Forbid],
    interned: bool,
    out: &mut WorkOut,
) -> Option<Candidate> {
    let fragments = product.split_components();
    for frag in &fragments {
        if frag.atom_count() > limits.max_atoms || is_forbidden(frag, forbids) {
            return None;
        }
    }
    let mut frags = Vec::with_capacity(fragments.len());
    for frag in fragments {
        out.canonicalizations += 1;
        let ident = if interned {
            FragId::Cert(identify(&frag))
        } else {
            FragId::Key(canonical_key(&frag))
        };
        let name_hint = format!("{}", Formula::of(&frag));
        frags.push(FragCand {
            mol: frag,
            ident,
            name_hint,
        });
    }
    Some(Candidate { reactants, frags })
}

/// Exact mirror of the [`Molecule`] edit preconditions, evaluated without
/// mutating (or cloning) the molecule.
fn edit_feasible(mol: &Molecule, edit: MolEdit, action: Action) -> bool {
    let capacity = |i: usize| {
        mol.atom(i)
            .map(|a| a.radicals.saturating_add(a.hydrogens))
            .unwrap_or(0)
    };
    match (edit, action) {
        (MolEdit::OnBond(a, b), Action::Disconnect) => mol.bond_between(a, b).is_some(),
        (MolEdit::OnBond(a, b), Action::IncreaseBond) => {
            mol.bond_between(a, b).is_some_and(|bond| {
                bond.order.increased().is_some() && capacity(a) >= 1 && capacity(b) >= 1
            })
        }
        (MolEdit::OnBond(a, b), Action::DecreaseBond) => mol
            .bond_between(a, b)
            .is_some_and(|bond| bond.order.decreased().is_some()),
        (MolEdit::OnAtom(a), Action::RemoveHydrogen) => {
            mol.atom(a).is_ok_and(|atom| atom.hydrogens > 0)
        }
        (MolEdit::OnAtom(a), Action::AddHydrogen) => mol.atom(a).is_ok_and(|atom| {
            atom.radicals > 0 || {
                let needed = mol.bond_order_sum(a) + atom.hydrogens + 1;
                atom.element.default_valences().iter().any(|&v| v >= needed)
            }
        }),
        _ => false,
    }
}

/// Whether `connect` at this endpoint would fail its valence check.
fn connect_feasible(mol: &Molecule, idx: usize, order: BondOrder) -> bool {
    mol.atom(idx)
        .is_ok_and(|a| a.radicals.saturating_add(a.hydrogens) >= order.valence_units())
}

fn is_forbidden(mol: &Molecule, forbids: &[Forbid]) -> bool {
    forbids.iter().any(|f| match f {
        Forbid::ChainLongerThan(elem, len) => max_chain(mol, *elem) > *len,
        Forbid::AtomMatching(pred) => (0..mol.atom_count()).any(|i| pred.matches(mol, i)),
    })
}

#[derive(Clone, Copy)]
enum MolEdit {
    OnBond(usize, usize),
    OnAtom(usize),
}

/// Size of the largest connected same-element component.
fn max_chain(mol: &Molecule, elem: Element) -> usize {
    let n = mol.atom_count();
    let mut seen = vec![false; n];
    let mut best = 0;
    for start in 0..n {
        if seen[start] || mol.atom(start).map(|a| a.element) != Ok(elem) {
            continue;
        }
        let mut size = 0;
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(at) = stack.pop() {
            size += 1;
            for nb in mol.neighbors(at).collect::<Vec<_>>() {
                if !seen[nb] && mol.atom(nb).map(|a| a.element) == Ok(elem) {
                    seen[nb] = true;
                    stack.push(nb);
                }
            }
        }
        best = best.max(size);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rdl;

    fn compile_src(src: &str) -> CompiledModel {
        compile(&parse_rdl(src).unwrap()).unwrap()
    }

    #[test]
    fn scission_generates_radical_fragments() {
        let model = compile_src(
            r#"
            rate K_sc = 2;
            molecule DiS = "CSSC" init 1.0;
            rule scission {
                site bond S ~ S order single;
                action disconnect;
                rate K_sc;
            }
            "#,
        );
        // CSSC -> 2 CS radicals: one new species, one reaction.
        assert_eq!(model.network.species_count(), 2);
        assert_eq!(model.network.reaction_count(), 1);
        let r = &model.network.reactions()[0];
        assert_eq!(r.reactants.len(), 1);
        assert_eq!(r.products.len(), 2);
        assert_eq!(r.products[0], r.products[1], "symmetric fragments dedup");
    }

    #[test]
    fn variant_expansion_seeds_all_lengths() {
        let model = compile_src(
            r#"
            rate K = 1;
            molecule Sx = "CS{n}C" for n in 2..4 init 0.1;
            rule noop {
                site bond S ~ S order double;
                action disconnect;
                rate K;
            }
            "#,
        );
        assert_eq!(model.network.species_count(), 3);
        assert!(model.network.species_by_name("Sx_2").is_some());
        assert!(model.network.species_by_name("Sx_4").is_some());
        // No S=S double bonds: nothing reacted.
        assert_eq!(model.network.reaction_count(), 0);
    }

    #[test]
    fn closure_cascades_scission() {
        // CSSSSC can break at 3 S-S bonds; fragments keep breaking.
        let model = compile_src(
            r#"
            rate K = 1;
            molecule S4 = "CS{n}C" for n in 4..4 init 1.0;
            rule scission {
                site bond S ~ S order single;
                action disconnect;
                rate K;
            }
            "#,
        );
        // Fragments: CS., CSS., CSSS. from first scissions, then further
        // breaking of those radicals.
        assert!(model.network.species_count() >= 4, "{}", model.network);
        assert!(model.network.reaction_count() >= 3, "{}", model.network);
    }

    #[test]
    fn chain_depth_context_restricts_scission() {
        // Only interior S-S bonds (both ends depth >= 3) may break.
        let model = compile_src(
            r#"
            rate K = 1;
            molecule S8 = "CS{n}C" for n in 8..8 init 1.0;
            rule interior_scission {
                site bond S & chain(S) >= 3 ~ S & chain(S) >= 3;
                action disconnect;
                rate K;
            }
            "#,
        );
        // The seed has 3 qualifying bonds, producing fragment pairs
        // (S3., S5.) and (S4., S4.). Fragments have no interior bonds deep
        // enough... S5 radical chain: depths 1..: for a 5-chain ends depth 1;
        // interior atom depths 2,3,2? chain of 5: [1,2,3,2,1] -> no bond
        // with both >= 3. So closure stops after one generation.
        let seed_reactions = model
            .network
            .reactions()
            .iter()
            .filter(|r| model.network.species(r.reactants[0]).name == "S8_8")
            .count();
        assert_eq!(seed_reactions, 2, "{}", model.network.display_equations());
        // (3,4) and (4,5) splits give {S3,S5} and {S4,S4}; (5,6) duplicates
        // {S5,S3} and dedups away.
        assert_eq!(model.network.reaction_count(), 2);
    }

    #[test]
    fn crosslink_pair_rule() {
        let model = compile_src(
            r#"
            rate K_h = 1;
            rate K_cl = 2;
            molecule Rubber = "CC=CC" init 1.0;
            molecule Thiyl = "C[S]" init 0.2;
            rule abstraction {
                on Rubber;
                site atom C & allylic & hydrogens >= 1;
                action remove_h;
                rate K_h;
            }
            rule crosslink {
                site pair S & radical, C & radical;
                action connect single;
                rate K_cl;
            }
            "#,
        );
        // Abstraction creates the allylic radical (the two allylic carbons
        // of CC=CC are symmetric, so one deduped reaction); crosslink then
        // couples it with the thiyl radical.
        assert_eq!(
            model.network.reaction_count(),
            2,
            "{}",
            model.network.display_equations()
        );
        let has_crosslink = model
            .network
            .reactions()
            .iter()
            .any(|r| r.rule == "crosslink" && r.reactants.len() == 2);
        assert!(has_crosslink);
    }

    #[test]
    fn forbid_chain_prunes_products() {
        // Recombination of thiyl radicals would form S4 chains; forbidding
        // chains > 3 blocks it.
        let model = compile_src(
            r#"
            rate K = 1;
            molecule Thiyl = "CSS" init 0.2;
            rule homolysis {
                site atom S & bonded(S) & hydrogens >= 1;
                action remove_h;
                rate K;
            }
            rule recombine {
                site pair S & radical, S & radical;
                action connect single;
                rate K;
            }
            forbid chain S > 3;
            "#,
        );
        for (_, s) in model.network.species_iter() {
            if let Some(m) = &s.structure {
                assert!(max_chain(m, Element::S) <= 3, "species {}", s.name);
            }
        }
    }

    #[test]
    fn unknown_rate_rejected() {
        let program = parse_rdl(
            "molecule A = \"C\"; rule r { site atom C; action remove_h; rate K_missing; }",
        )
        .unwrap();
        assert!(matches!(
            compile(&program),
            Err(RdlError::UnknownRate { .. })
        ));
    }

    #[test]
    fn unknown_scope_molecule_rejected() {
        let program = parse_rdl(
            "rate K = 1; molecule A = \"C\"; rule r { on B; site atom C; action remove_h; rate K; }",
        )
        .unwrap();
        assert!(matches!(
            compile(&program),
            Err(RdlError::UnknownMolecule { .. })
        ));
    }

    #[test]
    fn species_limit_enforced() {
        let program = parse_rdl(
            r#"
            rate K = 1;
            molecule Sx = "CS{n}C" for n in 2..8 init 1.0;
            rule scission { site bond S ~ S; action disconnect; rate K; }
            limit species 5;
            "#,
        )
        .unwrap();
        assert!(matches!(
            compile(&program),
            Err(RdlError::SpeciesLimitExceeded(5))
        ));
    }

    #[test]
    fn generation_limit_bounds_work() {
        let model = compile_src(
            r#"
            rate K = 1;
            molecule Sx = "CS{n}C" for n in 8..8 init 1.0;
            rule scission { site bond S ~ S; action disconnect; rate K; }
            limit generations 1;
            "#,
        );
        // One generation: only the seed's bonds break (9 bonds, but C-S
        // don't match; 7 S-S bonds giving 4 distinct splits).
        let products_of_seed: Vec<_> = model
            .network
            .reactions()
            .iter()
            .filter(|r| model.network.species(r.reactants[0]).name == "Sx_8")
            .collect();
        assert_eq!(model.network.reaction_count(), products_of_seed.len());
    }

    #[test]
    fn max_chain_helper() {
        let m = parse_smiles("CSSSSC").unwrap();
        assert_eq!(max_chain(&m, Element::S), 4);
        assert_eq!(max_chain(&m, Element::C), 1);
        assert_eq!(max_chain(&m, Element::O), 0);
    }

    // ---- frontier / parallel / interning equivalence --------------------

    /// A cascading program exercising every rule kind, scopes, forbids,
    /// and multi-generation closure.
    const CASCADE: &str = r#"
        rate K_sc = 1;
        rate K_h = 2;
        rate K_cl = 3;
        molecule Sx = "CS{n}C" for n in 2..6 init 1.0;
        molecule Rubber = "CC=CC" init 0.5;
        rule scission { site bond S ~ S order single; action disconnect; rate K_sc; }
        rule abstraction { on Rubber; site atom C & allylic & hydrogens >= 1; action remove_h; rate K_h; }
        rule couple { site pair S & radical, C & radical; action connect single; rate K_cl; }
        rule recombine { site pair S & radical, S & radical; action connect single; rate K_cl; }
        forbid chain S > 6;
        limit species 500;
    "#;

    /// Full observable serialization of a network: species (name, initial,
    /// canonical structure) in id order plus the equation table.
    fn serialize(network: &ReactionNetwork) -> String {
        let mut out = String::new();
        for (id, s) in network.species_iter() {
            out.push_str(&format!(
                "{}|{}|{}\n",
                s.name,
                s.initial_concentration,
                network.canonical_smiles(id).unwrap_or_default()
            ));
        }
        out.push_str(&network.display_equations());
        out
    }

    fn compile_opts(src: &str, options: EngineOptions) -> Result<CompiledModel> {
        let program = parse_rdl(src).unwrap();
        let rates = RateTable::parse(&program.rate_source)?;
        let seeds = expand_program(&program)?;
        compile_with_options(&program, rates, &seeds, &options)
    }

    #[test]
    fn frontier_matches_legacy_rescan() {
        let baseline = compile_opts(
            CASCADE,
            EngineOptions {
                threads: 1,
                intern: false,
                legacy_rescan: true,
            },
        )
        .unwrap();
        let frontier = compile_opts(
            CASCADE,
            EngineOptions {
                threads: 1,
                intern: true,
                legacy_rescan: false,
            },
        )
        .unwrap();
        assert_eq!(serialize(&baseline.network), serialize(&frontier.network));
    }

    #[test]
    fn intern_on_off_identical() {
        let on = compile_opts(
            CASCADE,
            EngineOptions {
                threads: 1,
                intern: true,
                legacy_rescan: false,
            },
        )
        .unwrap();
        let off = compile_opts(
            CASCADE,
            EngineOptions {
                threads: 1,
                intern: false,
                legacy_rescan: false,
            },
        )
        .unwrap();
        assert_eq!(serialize(&on.network), serialize(&off.network));
    }

    #[test]
    fn thread_count_does_not_change_network() {
        let reference = compile_opts(
            CASCADE,
            EngineOptions {
                threads: 1,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        for threads in [2, 3, 8] {
            let parallel = compile_opts(
                CASCADE,
                EngineOptions {
                    threads,
                    ..EngineOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                serialize(&reference.network),
                serialize(&parallel.network),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn stats_populated_on_fixpoint() {
        let model = compile_opts(CASCADE, EngineOptions::default()).unwrap();
        let stats = &model.stats;
        assert!(stats.fixpoint);
        assert!(stats.growing_rules.is_empty());
        assert!(stats.generations >= 2);
        assert_eq!(stats.generation_seconds.len(), stats.generations);
        assert!(stats.rule_applications > 0);
        assert!(stats.canonicalizations > 0);
        assert!(stats.prefilter_lookups > 0);
        assert!(stats.prefilter_hits > 0);
        assert!(stats.prefilter_hit_rate() > 0.0);
        assert!(stats.peak_frontier > 0);
        assert!(stats.threads >= 1);
    }

    #[test]
    fn generation_cap_reports_growing_rules() {
        let model = compile_src(
            r#"
            rate K = 1;
            molecule Sx = "CS{n}C" for n in 8..8 init 1.0;
            rule scission { site bond S ~ S; action disconnect; rate K; }
            limit generations 1;
            "#,
        );
        assert!(!model.stats.fixpoint);
        assert_eq!(model.stats.growing_rules, vec!["scission".to_string()]);
        assert_eq!(model.stats.generations, 1);
    }

    #[test]
    fn edit_feasibility_mirrors_graph_preconditions() {
        // For every bond/atom of a few molecules and every unimolecular
        // action, the precheck must agree exactly with attempting the edit.
        let mut mols = vec![
            parse_smiles("CSSC").unwrap(),
            parse_smiles("CC=CC").unwrap(),
            parse_smiles("C#CC").unwrap(),
            parse_smiles("CS").unwrap(),
        ];
        let mut radical = parse_smiles("CSSC").unwrap();
        radical.disconnect(1, 2).unwrap();
        mols.extend(radical.split_components());
        for mol in &mols {
            let bonds: Vec<(usize, usize)> = mol.bonds().map(|b| (b.a, b.b)).collect();
            for &(a, b) in &bonds {
                for action in [
                    Action::Disconnect,
                    Action::IncreaseBond,
                    Action::DecreaseBond,
                ] {
                    let edit = MolEdit::OnBond(a, b);
                    let mut probe = mol.clone();
                    let actual = match action {
                        Action::Disconnect => probe.disconnect(a, b).is_ok(),
                        Action::IncreaseBond => probe.increase_bond_order(a, b).is_ok(),
                        Action::DecreaseBond => probe.decrease_bond_order(a, b).is_ok(),
                        _ => unreachable!(),
                    };
                    assert_eq!(edit_feasible(mol, edit, action), actual);
                }
            }
            for i in 0..mol.atom_count() {
                for action in [Action::RemoveHydrogen, Action::AddHydrogen] {
                    let edit = MolEdit::OnAtom(i);
                    let mut probe = mol.clone();
                    let actual = match action {
                        Action::RemoveHydrogen => probe.remove_hydrogen(i).is_ok(),
                        Action::AddHydrogen => probe.add_hydrogen(i).is_ok(),
                        _ => unreachable!(),
                    };
                    assert_eq!(edit_feasible(mol, edit, action), actual);
                }
            }
        }
    }
}
