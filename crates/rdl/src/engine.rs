//! The rule engine: applies RDL rules to the molecule set until closure,
//! producing the reaction network (paper §2, "the chemical compiler
//! automatically generates the reaction network that describes all
//! possible reactions").

use std::collections::HashMap;

use rms_molecule::{canonical_key, parse_smiles, Element, Formula, Molecule};
use rms_rcip::RateTable;

use crate::ast::{Action, Forbid, Program, RuleDecl, Scope, Site};
use crate::error::{RdlError, Result};
use crate::expand::{expand_program, SeedVariant};
use crate::network::{Reaction, ReactionNetwork, SpeciesId};

/// The chemical compiler's output: the reaction network plus the evaluated
/// rate-constant table.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    /// All species and reactions.
    pub network: ReactionNetwork,
    /// Evaluated, value-deduplicated rate constants.
    pub rates: RateTable,
}

/// Compile an RDL program: expand variants, evaluate rate constants, and
/// apply rules to closure.
///
/// Convenience wrapper over the individually observable phases — rate
/// evaluation ([`RateTable::parse`]), variant expansion
/// ([`expand_program`]), and network closure ([`compile_with`]). Pipeline
/// drivers that want per-phase timing call the phases directly.
pub fn compile(program: &Program) -> Result<CompiledModel> {
    let rates = RateTable::parse(&program.rate_source)?;
    let seeds = expand_program(program)?;
    compile_with(program, rates, &seeds)
}

/// The *Network* phase alone: validate rules against an already-evaluated
/// rate table, seed species from already-expanded variants, and apply
/// rules to closure.
pub fn compile_with(
    program: &Program,
    rates: RateTable,
    seeds: &[SeedVariant],
) -> Result<CompiledModel> {
    // Rule validation up front: rates and scope names must resolve.
    for rule in &program.rules {
        if rates.get(&rule.rate).is_none() {
            return Err(RdlError::UnknownRate {
                rule: rule.name.clone(),
                rate: rule.rate.clone(),
            });
        }
        if let Scope::Named(names) = &rule.scope {
            for name in names {
                if !program.molecules.iter().any(|m| &m.name == name) {
                    return Err(RdlError::UnknownMolecule {
                        rule: rule.name.clone(),
                        molecule: name.clone(),
                    });
                }
            }
        }
    }

    let mut engine = Engine {
        network: ReactionNetwork::new(),
        families: HashMap::new(),
        limits: program.limits,
        forbids: program.forbids.clone(),
    };

    // Seed species from the expanded molecule declarations.
    for variant in seeds {
        let mol = parse_smiles(&variant.smiles).map_err(|cause| RdlError::BadSmiles {
            molecule: variant.name.clone(),
            smiles: variant.smiles.clone(),
            cause,
        })?;
        let key = canonical_key(&mol);
        let id = engine
            .network
            .add_species(mol, key, &variant.name, variant.initial);
        engine.families.insert(id, variant.family.clone());
    }

    // Closure: apply every rule each generation until no new species or
    // reactions appear (or the generation limit is reached).
    for _generation in 0..program.limits.max_generations {
        let mut changed = false;
        for rule in &program.rules {
            changed |= engine.apply_rule(rule)?;
        }
        if !changed {
            break;
        }
    }

    Ok(CompiledModel {
        network: engine.network,
        rates,
    })
}

struct Engine {
    network: ReactionNetwork,
    /// species → declared family name (seeds only; generated species have
    /// no family and match only `Scope::Any`).
    families: HashMap<SpeciesId, String>,
    limits: crate::ast::Limits,
    forbids: Vec<Forbid>,
}

impl Engine {
    /// Apply one rule across the current species set. Returns whether
    /// anything new was added.
    fn apply_rule(&mut self, rule: &RuleDecl) -> Result<bool> {
        match &rule.site {
            Site::Bond { .. } | Site::Atom(_) => self.apply_unimolecular(rule),
            Site::Pair { first, second } => {
                let (first, second) = (first.clone(), second.clone());
                self.apply_bimolecular(rule, &first, &second)
            }
        }
    }

    fn in_scope(&self, id: SpeciesId, scope: &Scope, position: usize) -> bool {
        match scope {
            Scope::Any => true,
            Scope::Named(names) => {
                let Some(family) = self.families.get(&id) else {
                    return false;
                };
                if names.len() >= 2 {
                    // Positional scopes for pair sites.
                    names.get(position).is_some_and(|n| n == family)
                } else {
                    names.iter().any(|n| n == family)
                }
            }
        }
    }

    fn current_ids(&self) -> Vec<SpeciesId> {
        self.network.species_iter().map(|(id, _)| id).collect()
    }

    fn apply_unimolecular(&mut self, rule: &RuleDecl) -> Result<bool> {
        let mut changed = false;
        for id in self.current_ids() {
            if !self.in_scope(id, &rule.scope, 0) {
                continue;
            }
            let Some(mol) = self.network.species(id).structure.clone() else {
                continue;
            };
            let applications: Vec<MolEdit> = match &rule.site {
                Site::Bond { left, right, order } => {
                    let pred = rms_molecule::BondPredicate {
                        left: left.clone(),
                        right: right.clone(),
                        order: *order,
                    };
                    pred.select(&mol)
                        .into_iter()
                        .map(|(a, b)| MolEdit::OnBond(a, b))
                        .collect()
                }
                Site::Atom(pred) => pred.select(&mol).into_iter().map(MolEdit::OnAtom).collect(),
                Site::Pair { .. } => unreachable!("handled in apply_bimolecular"),
            };
            for edit in applications {
                let mut product = mol.clone();
                let outcome = match (edit, rule.action) {
                    (MolEdit::OnBond(a, b), Action::Disconnect) => product.disconnect(a, b),
                    (MolEdit::OnBond(a, b), Action::IncreaseBond) => {
                        product.increase_bond_order(a, b)
                    }
                    (MolEdit::OnBond(a, b), Action::DecreaseBond) => {
                        product.decrease_bond_order(a, b)
                    }
                    (MolEdit::OnAtom(a), Action::RemoveHydrogen) => product.remove_hydrogen(a),
                    (MolEdit::OnAtom(a), Action::AddHydrogen) => product.add_hydrogen(a),
                    _ => unreachable!("validated at parse time"),
                };
                if outcome.is_err() {
                    // Site matched but the edit is chemically impossible
                    // (e.g. increase on a saturated atom): skip silently,
                    // mirroring how rule application "can be forbidden" by
                    // context.
                    continue;
                }
                changed |= self.record_reaction(rule, vec![id], product)?;
            }
        }
        Ok(changed)
    }

    fn apply_bimolecular(
        &mut self,
        rule: &RuleDecl,
        first: &rms_molecule::AtomPredicate,
        second: &rms_molecule::AtomPredicate,
    ) -> Result<bool> {
        let Action::Connect(order) = rule.action else {
            unreachable!("validated at parse time")
        };
        let mut changed = false;
        let ids = self.current_ids();
        for &x in &ids {
            if !self.in_scope(x, &rule.scope, 0) {
                continue;
            }
            let Some(mol_x) = self.network.species(x).structure.clone() else {
                continue;
            };
            let sites_x = first.select(&mol_x);
            if sites_x.is_empty() {
                continue;
            }
            for &y in &ids {
                if !self.in_scope(y, &rule.scope, 1) {
                    continue;
                }
                let Some(mol_y) = self.network.species(y).structure.clone() else {
                    continue;
                };
                let sites_y = second.select(&mol_y);
                for &sx in &sites_x {
                    for &sy in &sites_y {
                        let mut merged = mol_x.clone();
                        let offset = merged.merge(&mol_y);
                        if merged.atom_count() > self.limits.max_atoms {
                            continue;
                        }
                        if merged.connect(sx, sy + offset, order).is_err() {
                            continue;
                        }
                        changed |= self.record_reaction(rule, vec![x, y], merged)?;
                    }
                }
            }
        }
        Ok(changed)
    }

    /// Split a product into fragments, register species, and add the
    /// reaction. Returns whether anything new appeared.
    fn record_reaction(
        &mut self,
        rule: &RuleDecl,
        reactants: Vec<SpeciesId>,
        product: Molecule,
    ) -> Result<bool> {
        let fragments = product.split_components();
        // Forbidden-form and size filtering discards the whole reaction.
        for frag in &fragments {
            if frag.atom_count() > self.limits.max_atoms || self.is_forbidden(frag) {
                return Ok(false);
            }
        }
        let mut product_ids = Vec::with_capacity(fragments.len());
        let mut new_species = false;
        for frag in fragments {
            let key = canonical_key(&frag);
            let before = self.network.species_count();
            let name_hint = format!("{}", Formula::of(&frag));
            let pid = self.network.add_species(frag, key, &name_hint, 0.0);
            new_species |= self.network.species_count() > before;
            product_ids.push(pid);
        }
        if self.network.species_count() > self.limits.max_species {
            return Err(RdlError::SpeciesLimitExceeded(self.limits.max_species));
        }
        let new_reaction = self.network.add_reaction(Reaction {
            reactants,
            products: product_ids,
            rate: rule.rate.clone(),
            rule: rule.name.clone(),
        });
        Ok(new_species || new_reaction)
    }

    fn is_forbidden(&self, mol: &Molecule) -> bool {
        self.forbids.iter().any(|f| match f {
            Forbid::ChainLongerThan(elem, len) => max_chain(mol, *elem) > *len,
            Forbid::AtomMatching(pred) => (0..mol.atom_count()).any(|i| pred.matches(mol, i)),
        })
    }
}

#[derive(Clone, Copy)]
enum MolEdit {
    OnBond(usize, usize),
    OnAtom(usize),
}

/// Size of the largest connected same-element component.
fn max_chain(mol: &Molecule, elem: Element) -> usize {
    let n = mol.atom_count();
    let mut seen = vec![false; n];
    let mut best = 0;
    for start in 0..n {
        if seen[start] || mol.atom(start).map(|a| a.element) != Ok(elem) {
            continue;
        }
        let mut size = 0;
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(at) = stack.pop() {
            size += 1;
            for nb in mol.neighbors(at).collect::<Vec<_>>() {
                if !seen[nb] && mol.atom(nb).map(|a| a.element) == Ok(elem) {
                    seen[nb] = true;
                    stack.push(nb);
                }
            }
        }
        best = best.max(size);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rdl;

    fn compile_src(src: &str) -> CompiledModel {
        compile(&parse_rdl(src).unwrap()).unwrap()
    }

    #[test]
    fn scission_generates_radical_fragments() {
        let model = compile_src(
            r#"
            rate K_sc = 2;
            molecule DiS = "CSSC" init 1.0;
            rule scission {
                site bond S ~ S order single;
                action disconnect;
                rate K_sc;
            }
            "#,
        );
        // CSSC -> 2 CS radicals: one new species, one reaction.
        assert_eq!(model.network.species_count(), 2);
        assert_eq!(model.network.reaction_count(), 1);
        let r = &model.network.reactions()[0];
        assert_eq!(r.reactants.len(), 1);
        assert_eq!(r.products.len(), 2);
        assert_eq!(r.products[0], r.products[1], "symmetric fragments dedup");
    }

    #[test]
    fn variant_expansion_seeds_all_lengths() {
        let model = compile_src(
            r#"
            rate K = 1;
            molecule Sx = "CS{n}C" for n in 2..4 init 0.1;
            rule noop {
                site bond S ~ S order double;
                action disconnect;
                rate K;
            }
            "#,
        );
        assert_eq!(model.network.species_count(), 3);
        assert!(model.network.species_by_name("Sx_2").is_some());
        assert!(model.network.species_by_name("Sx_4").is_some());
        // No S=S double bonds: nothing reacted.
        assert_eq!(model.network.reaction_count(), 0);
    }

    #[test]
    fn closure_cascades_scission() {
        // CSSSSC can break at 3 S-S bonds; fragments keep breaking.
        let model = compile_src(
            r#"
            rate K = 1;
            molecule S4 = "CS{n}C" for n in 4..4 init 1.0;
            rule scission {
                site bond S ~ S order single;
                action disconnect;
                rate K;
            }
            "#,
        );
        // Fragments: CS., CSS., CSSS. from first scissions, then further
        // breaking of those radicals.
        assert!(model.network.species_count() >= 4, "{}", model.network);
        assert!(model.network.reaction_count() >= 3, "{}", model.network);
    }

    #[test]
    fn chain_depth_context_restricts_scission() {
        // Only interior S-S bonds (both ends depth >= 3) may break.
        let model = compile_src(
            r#"
            rate K = 1;
            molecule S8 = "CS{n}C" for n in 8..8 init 1.0;
            rule interior_scission {
                site bond S & chain(S) >= 3 ~ S & chain(S) >= 3;
                action disconnect;
                rate K;
            }
            "#,
        );
        // The seed has 3 qualifying bonds, producing fragment pairs
        // (S3., S5.) and (S4., S4.). Fragments have no interior bonds deep
        // enough... S5 radical chain: depths 1..: for a 5-chain ends depth 1;
        // interior atom depths 2,3,2? chain of 5: [1,2,3,2,1] -> no bond
        // with both >= 3. So closure stops after one generation.
        let seed_reactions = model
            .network
            .reactions()
            .iter()
            .filter(|r| model.network.species(r.reactants[0]).name == "S8_8")
            .count();
        assert_eq!(seed_reactions, 2, "{}", model.network.display_equations());
        // (3,4) and (4,5) splits give {S3,S5} and {S4,S4}; (5,6) duplicates
        // {S5,S3} and dedups away.
        assert_eq!(model.network.reaction_count(), 2);
    }

    #[test]
    fn crosslink_pair_rule() {
        let model = compile_src(
            r#"
            rate K_h = 1;
            rate K_cl = 2;
            molecule Rubber = "CC=CC" init 1.0;
            molecule Thiyl = "C[S]" init 0.2;
            rule abstraction {
                on Rubber;
                site atom C & allylic & hydrogens >= 1;
                action remove_h;
                rate K_h;
            }
            rule crosslink {
                site pair S & radical, C & radical;
                action connect single;
                rate K_cl;
            }
            "#,
        );
        // Abstraction creates the allylic radical (the two allylic carbons
        // of CC=CC are symmetric, so one deduped reaction); crosslink then
        // couples it with the thiyl radical.
        assert_eq!(
            model.network.reaction_count(),
            2,
            "{}",
            model.network.display_equations()
        );
        let has_crosslink = model
            .network
            .reactions()
            .iter()
            .any(|r| r.rule == "crosslink" && r.reactants.len() == 2);
        assert!(has_crosslink);
    }

    #[test]
    fn forbid_chain_prunes_products() {
        // Recombination of thiyl radicals would form S4 chains; forbidding
        // chains > 3 blocks it.
        let model = compile_src(
            r#"
            rate K = 1;
            molecule Thiyl = "CSS" init 0.2;
            rule homolysis {
                site atom S & bonded(S) & hydrogens >= 1;
                action remove_h;
                rate K;
            }
            rule recombine {
                site pair S & radical, S & radical;
                action connect single;
                rate K;
            }
            forbid chain S > 3;
            "#,
        );
        for (_, s) in model.network.species_iter() {
            if let Some(m) = &s.structure {
                assert!(max_chain(m, Element::S) <= 3, "species {}", s.name);
            }
        }
    }

    #[test]
    fn unknown_rate_rejected() {
        let program = parse_rdl(
            "molecule A = \"C\"; rule r { site atom C; action remove_h; rate K_missing; }",
        )
        .unwrap();
        assert!(matches!(
            compile(&program),
            Err(RdlError::UnknownRate { .. })
        ));
    }

    #[test]
    fn unknown_scope_molecule_rejected() {
        let program = parse_rdl(
            "rate K = 1; molecule A = \"C\"; rule r { on B; site atom C; action remove_h; rate K; }",
        )
        .unwrap();
        assert!(matches!(
            compile(&program),
            Err(RdlError::UnknownMolecule { .. })
        ));
    }

    #[test]
    fn species_limit_enforced() {
        let program = parse_rdl(
            r#"
            rate K = 1;
            molecule Sx = "CS{n}C" for n in 2..8 init 1.0;
            rule scission { site bond S ~ S; action disconnect; rate K; }
            limit species 5;
            "#,
        )
        .unwrap();
        assert!(matches!(
            compile(&program),
            Err(RdlError::SpeciesLimitExceeded(5))
        ));
    }

    #[test]
    fn generation_limit_bounds_work() {
        let model = compile_src(
            r#"
            rate K = 1;
            molecule Sx = "CS{n}C" for n in 8..8 init 1.0;
            rule scission { site bond S ~ S; action disconnect; rate K; }
            limit generations 1;
            "#,
        );
        // One generation: only the seed's bonds break (9 bonds, but C-S
        // don't match; 7 S-S bonds giving 4 distinct splits).
        let products_of_seed: Vec<_> = model
            .network
            .reactions()
            .iter()
            .filter(|r| model.network.species(r.reactants[0]).name == "Sx_8")
            .collect();
        assert_eq!(model.network.reaction_count(), products_of_seed.len());
    }

    #[test]
    fn max_chain_helper() {
        let m = parse_smiles("CSSSSC").unwrap();
        assert_eq!(max_chain(&m, Element::S), 4);
        assert_eq!(max_chain(&m, Element::C), 1);
        assert_eq!(max_chain(&m, Element::O), 0);
    }
}
