//! Abstract syntax for RDL programs.
//!
//! The language follows the shape of Prickett's Reaction Description
//! Language as adopted by the paper: compact molecule declarations with
//! chain-length variants, reaction rules built from six primitive actions
//! with context-sensitive site selection, and forbidden forms.

use rms_molecule::{AtomPredicate, BondOrder, Element};

/// A complete parsed RDL program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Declared molecules (with unexpanded variant templates).
    pub molecules: Vec<MoleculeDecl>,
    /// Reaction rules.
    pub rules: Vec<RuleDecl>,
    /// Constraints on network generation.
    pub limits: Limits,
    /// 1-based (line, column) of the `limit generations N;` statement,
    /// when one was written — used for the generation-cap warning span.
    pub generations_span: Option<(usize, usize)>,
    /// Forbidden forms: generated molecules matching any of these are
    /// discarded together with the producing reaction.
    pub forbids: Vec<Forbid>,
    /// Rate-constant definitions and bounds, in RCIP surface syntax
    /// (collected verbatim and handed to `rms-rcip`).
    pub rate_source: String,
}

/// `molecule NAME = "SMILES";` optionally
/// `molecule NAME = "C S{n} C" for n in 2..8;`
#[derive(Debug, Clone, PartialEq)]
pub struct MoleculeDecl {
    /// Species family name.
    pub name: String,
    /// SMILES template; `X{n}` repeats the single-atom symbol `X` n times.
    pub template: String,
    /// Variant range (inclusive), if the template is parameterized.
    pub variants: Option<(u32, u32)>,
    /// Initial concentration for simulation (defaults to 0).
    pub initial_concentration: f64,
}

/// The six primitive actions of the paper (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Disconnect two atoms (bond site).
    Disconnect,
    /// Connect two atoms (two atom sites, possibly across molecules).
    Connect(BondOrder),
    /// Decrease the bond order (bond site).
    DecreaseBond,
    /// Increase the bond order (bond site).
    IncreaseBond,
    /// Remove a hydrogen atom (atom site).
    RemoveHydrogen,
    /// Add a hydrogen atom (atom site).
    AddHydrogen,
}

impl Action {
    /// Human-readable keyword (as written in RDL source).
    pub fn keyword(self) -> &'static str {
        match self {
            Action::Disconnect => "disconnect",
            Action::Connect(_) => "connect",
            Action::DecreaseBond => "decrease",
            Action::IncreaseBond => "increase",
            Action::RemoveHydrogen => "remove_h",
            Action::AddHydrogen => "add_h",
        }
    }
}

/// Where a rule applies.
#[derive(Debug, Clone, PartialEq)]
pub enum Site {
    /// A bond whose endpoints satisfy the two predicates (tried in both
    /// orientations) with an optional required order.
    Bond {
        /// Predicate for one endpoint.
        left: AtomPredicate,
        /// Predicate for the other endpoint.
        right: AtomPredicate,
        /// Required order, or any.
        order: Option<BondOrder>,
    },
    /// A single atom (for hydrogen actions).
    Atom(AtomPredicate),
    /// Two atoms in two (possibly identical) molecules, for `connect`.
    Pair {
        /// Site in the first molecule.
        first: AtomPredicate,
        /// Site in the second molecule.
        second: AtomPredicate,
    },
}

/// Which molecules a rule scans.
#[derive(Debug, Clone, PartialEq)]
pub enum Scope {
    /// Every current species.
    Any,
    /// Only species descended from (or equal to) the named declarations.
    Named(Vec<String>),
}

/// `rule NAME { site …; action …; rate …; }`
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDecl {
    /// Rule name.
    pub name: String,
    /// Molecule scope (first scope entry constrains the first molecule of a
    /// pair site, second entry the second).
    pub scope: Scope,
    /// Site selector.
    pub site: Site,
    /// Primitive action.
    pub action: Action,
    /// Name of the kinetic rate constant.
    pub rate: String,
}

/// Generation limits (`limit atoms 40;` etc.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Limits {
    /// Maximum heavy atoms per generated molecule; larger products are
    /// forbidden forms.
    pub max_atoms: usize,
    /// Maximum number of distinct species; exceeding this is an error.
    pub max_species: usize,
    /// Maximum closure iterations (generations of rule application).
    pub max_generations: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_atoms: 64,
            max_species: 2000,
            max_generations: 8,
        }
    }
}

/// A forbidden form: products matching are discarded.
#[derive(Debug, Clone, PartialEq)]
pub enum Forbid {
    /// Any same-element chain longer than `len` (e.g. sulfur chains).
    ChainLongerThan(Element, usize),
    /// Any molecule containing an atom matching the predicate.
    AtomMatching(AtomPredicate),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_limits_reasonable() {
        let l = Limits::default();
        assert!(l.max_atoms > 0 && l.max_species > 0 && l.max_generations > 0);
    }

    #[test]
    fn action_keywords_unique() {
        let all = [
            Action::Disconnect,
            Action::Connect(BondOrder::Single),
            Action::DecreaseBond,
            Action::IncreaseBond,
            Action::RemoveHydrogen,
            Action::AddHydrogen,
        ];
        let mut kws: Vec<&str> = all.iter().map(|a| a.keyword()).collect();
        kws.sort_unstable();
        kws.dedup();
        assert_eq!(kws.len(), all.len());
    }
}
