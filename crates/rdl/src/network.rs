//! The reaction network: the chemical compiler's output (paper Fig. 3).
//!
//! Each reaction consumes and produces species at a rate governed by a
//! kinetic rate constant; the equation generator (rms-odegen) turns the
//! network into ODEs. The network can be built by the RDL rule engine or
//! programmatically (the benchmark workload generator synthesizes
//! paper-scale networks directly).

use std::collections::HashMap;
use std::fmt;

use rms_molecule::Molecule;

/// Dense species identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpeciesId(pub u32);

/// A chemical species (molecule or radical) in the network.
#[derive(Debug, Clone)]
pub struct Species {
    /// Unique display name (declared name, variant name, or generated).
    pub name: String,
    /// The structure, when the species came from the chemistry frontend.
    /// Programmatically generated networks may omit it.
    pub structure: Option<Molecule>,
    /// Canonical SMILES key (dedup identity) when a structure exists.
    pub canonical: Option<String>,
    /// Initial concentration for simulation.
    pub initial_concentration: f64,
}

/// One reaction: `reactants --k--> products`, mass-action kinetics.
/// Multiplicities are explicit (a species may appear twice as a reactant).
#[derive(Debug, Clone, PartialEq)]
pub struct Reaction {
    /// Consumed species (with multiplicity via repetition).
    pub reactants: Vec<SpeciesId>,
    /// Produced species (with multiplicity via repetition).
    pub products: Vec<SpeciesId>,
    /// Name of the kinetic rate constant.
    pub rate: String,
    /// Name of the rule that generated the reaction (provenance).
    pub rule: String,
}

/// The full reaction network.
#[derive(Debug, Clone, Default)]
pub struct ReactionNetwork {
    species: Vec<Species>,
    reactions: Vec<Reaction>,
    by_canonical: HashMap<String, SpeciesId>,
    by_name: HashMap<String, SpeciesId>,
    /// Reaction dedup index: hash of (sorted reactants, sorted products,
    /// rate) → candidate reaction indices, compared exactly on collision.
    /// Hash buckets instead of formatted string keys — reaction dedup sits
    /// on the closure hot path and must not allocate per lookup.
    reaction_buckets: HashMap<u64, Vec<usize>>,
}

fn reaction_dedup_hash(reaction: &Reaction) -> u64 {
    // FNV-1a over the sorted id lists and the rate name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| h = (h ^ v).wrapping_mul(0x1000_0000_01b3);
    eat(reaction.reactants.len() as u64);
    for id in &reaction.reactants {
        eat(id.0 as u64);
    }
    eat(0xa5a5_a5a5);
    for id in &reaction.products {
        eat(id.0 as u64);
    }
    eat(0x5a5a_5a5a);
    for b in reaction.rate.as_bytes() {
        eat(*b as u64);
    }
    h
}

impl ReactionNetwork {
    /// Empty network.
    pub fn new() -> ReactionNetwork {
        ReactionNetwork::default()
    }

    /// Number of species.
    pub fn species_count(&self) -> usize {
        self.species.len()
    }

    /// Number of reactions.
    pub fn reaction_count(&self) -> usize {
        self.reactions.len()
    }

    /// Species accessor.
    pub fn species(&self, id: SpeciesId) -> &Species {
        &self.species[id.0 as usize]
    }

    /// All species with ids.
    pub fn species_iter(&self) -> impl Iterator<Item = (SpeciesId, &Species)> {
        self.species
            .iter()
            .enumerate()
            .map(|(i, s)| (SpeciesId(i as u32), s))
    }

    /// All reactions.
    pub fn reactions(&self) -> &[Reaction] {
        &self.reactions
    }

    /// Look up a species by display name.
    pub fn species_by_name(&self, name: &str) -> Option<SpeciesId> {
        self.by_name.get(name).copied()
    }

    /// Look up a species by canonical SMILES.
    pub fn species_by_canonical(&self, canonical: &str) -> Option<SpeciesId> {
        self.by_canonical.get(canonical).copied()
    }

    /// Add a named species without structure (programmatic networks).
    /// Returns the existing id when the name is already present.
    pub fn add_abstract_species(&mut self, name: &str, initial: f64) -> SpeciesId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SpeciesId(self.species.len() as u32);
        self.species.push(Species {
            name: name.to_string(),
            structure: None,
            canonical: None,
            initial_concentration: initial,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Add a structured species, deduplicating on canonical SMILES.
    /// `name_hint` is used when the structure is new; a numeric suffix is
    /// appended on display-name collision.
    pub fn add_species(
        &mut self,
        structure: Molecule,
        canonical: String,
        name_hint: &str,
        initial: f64,
    ) -> SpeciesId {
        if let Some(&id) = self.by_canonical.get(&canonical) {
            return id;
        }
        let mut name = name_hint.to_string();
        let mut suffix = 1;
        while self.by_name.contains_key(&name) {
            name = format!("{name_hint}_{suffix}");
            suffix += 1;
        }
        let id = SpeciesId(self.species.len() as u32);
        self.by_canonical.insert(canonical.clone(), id);
        self.by_name.insert(name.clone(), id);
        self.species.push(Species {
            name,
            structure: Some(structure),
            canonical: Some(canonical),
            initial_concentration: initial,
        });
        id
    }

    /// Add a structured species *without* a canonical string. The interned
    /// frontend path dedups through `rms_molecule::KeyTable` certificates
    /// before ever reaching the network, so computing canonical SMILES here
    /// would be pure waste; [`ReactionNetwork::canonical_smiles`] computes
    /// it on demand from the stored structure when a consumer (dump,
    /// diffing tests) asks.
    pub fn add_species_uncanonical(
        &mut self,
        structure: Molecule,
        name_hint: &str,
        initial: f64,
    ) -> SpeciesId {
        let mut name = name_hint.to_string();
        let mut suffix = 1;
        while self.by_name.contains_key(&name) {
            name = format!("{name_hint}_{suffix}");
            suffix += 1;
        }
        let id = SpeciesId(self.species.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.species.push(Species {
            name,
            structure: Some(structure),
            canonical: None,
            initial_concentration: initial,
        });
        id
    }

    /// Canonical SMILES for a species: the stored key when present,
    /// otherwise computed from the structure. `None` for abstract species.
    pub fn canonical_smiles(&self, id: SpeciesId) -> Option<String> {
        let s = self.species(id);
        match (&s.canonical, &s.structure) {
            (Some(c), _) => Some(c.clone()),
            (None, Some(m)) => Some(rms_molecule::canonical_key(m)),
            (None, None) => None,
        }
    }

    /// Set a species' initial concentration.
    pub fn set_initial(&mut self, id: SpeciesId, value: f64) {
        self.species[id.0 as usize].initial_concentration = value;
    }

    /// Initial concentration vector indexed by `SpeciesId`.
    pub fn initial_concentrations(&self) -> Vec<f64> {
        self.species
            .iter()
            .map(|s| s.initial_concentration)
            .collect()
    }

    /// Add a reaction, deduplicating identical (reactants, products, rate)
    /// triples. Returns `true` when the reaction was new.
    pub fn add_reaction(&mut self, mut reaction: Reaction) -> bool {
        reaction.reactants.sort_unstable();
        reaction.products.sort_unstable();
        let hash = reaction_dedup_hash(&reaction);
        let bucket = self.reaction_buckets.entry(hash).or_default();
        for &idx in bucket.iter() {
            let r = &self.reactions[idx];
            if r.reactants == reaction.reactants
                && r.products == reaction.products
                && r.rate == reaction.rate
            {
                return false;
            }
        }
        bucket.push(self.reactions.len());
        self.reactions.push(reaction);
        true
    }

    /// Add a reaction *without* deduplication. Position-resolved rule
    /// events use this: applying scission at each of a chain's symmetric
    /// bond positions yields identical (reactants, products, rate)
    /// triples that are nonetheless distinct reaction events — their
    /// multiplicity is physical (the total rate is proportional to the
    /// number of sites). The paper's chemical compiler emits this
    /// "exhaustive listing of all possible chemical reactions" and relies
    /// on §3.1's equation simplification to merge the duplicate terms
    /// into stoichiometric coefficients (the Fig. 4 → Fig. 5 step).
    pub fn add_reaction_event(&mut self, mut reaction: Reaction) {
        reaction.reactants.sort_unstable();
        reaction.products.sort_unstable();
        self.reactions.push(reaction);
    }

    /// Render the network in the paper's Fig. 3 intermediate-equation
    /// format: `- A + B + B \ [K];`
    pub fn display_equations(&self) -> String {
        let mut out = String::new();
        for (i, r) in self.reactions.iter().enumerate() {
            out.push_str(&format!("{}. ", i + 1));
            let mut first = true;
            for &id in &r.reactants {
                if !first {
                    out.push(' ');
                }
                out.push_str(&format!("- {}", self.species(id).name));
                first = false;
            }
            for &id in &r.products {
                if !first {
                    out.push(' ');
                }
                out.push_str(&format!("+ {}", self.species(id).name));
                first = false;
            }
            out.push_str(&format!(" \\ [{}];\n", r.rate));
        }
        out
    }
}

impl fmt::Display for ReactionNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ReactionNetwork: {} species, {} reactions",
            self.species_count(),
            self.reaction_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_molecule::{canonical_key, parse_smiles};

    #[test]
    fn abstract_species_dedup_by_name() {
        let mut n = ReactionNetwork::new();
        let a = n.add_abstract_species("A", 1.0);
        let a2 = n.add_abstract_species("A", 0.0);
        assert_eq!(a, a2);
        assert_eq!(n.species_count(), 1);
        assert_eq!(n.species(a).initial_concentration, 1.0);
    }

    #[test]
    fn structured_species_dedup_by_canonical() {
        let mut n = ReactionNetwork::new();
        let m1 = parse_smiles("CCO").unwrap();
        let m2 = parse_smiles("OCC").unwrap();
        let id1 = n.add_species(m1.clone(), canonical_key(&m1), "ethanol", 0.0);
        let id2 = n.add_species(m2.clone(), canonical_key(&m2), "other", 0.0);
        assert_eq!(id1, id2);
        assert_eq!(n.species_count(), 1);
    }

    #[test]
    fn name_collisions_get_suffixes() {
        let mut n = ReactionNetwork::new();
        let m1 = parse_smiles("CCO").unwrap();
        let m2 = parse_smiles("CCS").unwrap();
        n.add_species(m1.clone(), canonical_key(&m1), "mol", 0.0);
        let id2 = n.add_species(m2.clone(), canonical_key(&m2), "mol", 0.0);
        assert_eq!(n.species(id2).name, "mol_1");
    }

    #[test]
    fn reaction_dedup() {
        let mut n = ReactionNetwork::new();
        let a = n.add_abstract_species("A", 0.0);
        let b = n.add_abstract_species("B", 0.0);
        let r = Reaction {
            reactants: vec![a],
            products: vec![b, b],
            rate: "K".to_string(),
            rule: "r".to_string(),
        };
        assert!(n.add_reaction(r.clone()));
        assert!(!n.add_reaction(r.clone()));
        // Different rate constant => different reaction.
        let mut r2 = r;
        r2.rate = "K2".to_string();
        assert!(n.add_reaction(r2));
        assert_eq!(n.reaction_count(), 2);
    }

    #[test]
    fn reactant_order_irrelevant_for_dedup() {
        let mut n = ReactionNetwork::new();
        let a = n.add_abstract_species("A", 0.0);
        let b = n.add_abstract_species("B", 0.0);
        let c = n.add_abstract_species("C", 0.0);
        let r1 = Reaction {
            reactants: vec![a, b],
            products: vec![c],
            rate: "K".to_string(),
            rule: "r".to_string(),
        };
        let r2 = Reaction {
            reactants: vec![b, a],
            products: vec![c],
            rate: "K".to_string(),
            rule: "r".to_string(),
        };
        assert!(n.add_reaction(r1));
        assert!(!n.add_reaction(r2));
    }

    #[test]
    fn display_matches_fig3_shape() {
        // Paper Fig. 3:  1. -A +B +B \ [K_A];  2. -C -D +E \ [K_CD];
        let mut n = ReactionNetwork::new();
        let a = n.add_abstract_species("A", 0.0);
        let b = n.add_abstract_species("B", 0.0);
        let c = n.add_abstract_species("C", 0.0);
        let d = n.add_abstract_species("D", 0.0);
        let e = n.add_abstract_species("E", 0.0);
        n.add_reaction(Reaction {
            reactants: vec![a],
            products: vec![b, b],
            rate: "K_A".to_string(),
            rule: "r1".to_string(),
        });
        n.add_reaction(Reaction {
            reactants: vec![c, d],
            products: vec![e],
            rate: "K_CD".to_string(),
            rule: "r2".to_string(),
        });
        let text = n.display_equations();
        assert_eq!(
            text,
            "1. - A + B + B \\ [K_A];\n2. - C - D + E \\ [K_CD];\n"
        );
    }

    #[test]
    fn initial_concentration_vector() {
        let mut n = ReactionNetwork::new();
        n.add_abstract_species("A", 1.5);
        let b = n.add_abstract_species("B", 0.0);
        n.set_initial(b, 2.5);
        assert_eq!(n.initial_concentrations(), vec![1.5, 2.5]);
    }
}
