//! RDL frontend errors.

use std::fmt;

use rms_molecule::MoleculeError;
use rms_rcip::RcipError;

/// Errors from parsing RDL source or generating the reaction network.
#[derive(Debug, Clone, PartialEq)]
pub enum RdlError {
    /// Lexical/syntactic error with position.
    Syntax {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        column: usize,
        /// What was expected or found.
        message: String,
    },
    /// A SMILES template failed to parse after expansion.
    BadSmiles {
        /// The declared molecule.
        molecule: String,
        /// The expanded SMILES text.
        smiles: String,
        /// Underlying parse error.
        cause: MoleculeError,
    },
    /// Molecule name declared twice.
    DuplicateMolecule(String),
    /// Rule name declared twice.
    DuplicateRule(String),
    /// A rule references an undeclared molecule name.
    UnknownMolecule {
        /// Offending rule.
        rule: String,
        /// The unknown molecule name.
        molecule: String,
    },
    /// A rule references a rate constant with no definition.
    UnknownRate {
        /// Offending rule.
        rule: String,
        /// The undefined constant.
        rate: String,
    },
    /// A rule's site/action combination is invalid (e.g. bond site with a
    /// hydrogen action).
    InvalidRule {
        /// Offending rule.
        rule: String,
        /// Why it is invalid.
        message: String,
    },
    /// Variant range is empty or inverted.
    BadVariantRange {
        /// The declared molecule.
        molecule: String,
        /// Range start.
        lo: u32,
        /// Range end.
        hi: u32,
    },
    /// Rate-constant sub-language error.
    Rcip(RcipError),
    /// Network generation hit the species limit.
    SpeciesLimitExceeded(usize),
    /// An action failed chemically during generation (reported with rule
    /// and molecule context; usually indicates an over-broad site pattern).
    ActionFailed {
        /// Offending rule.
        rule: String,
        /// The species it was applied to.
        molecule: String,
        /// Underlying chemistry error.
        cause: MoleculeError,
    },
}

impl fmt::Display for RdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdlError::Syntax {
                line,
                column,
                message,
            } => write!(f, "syntax error at {line}:{column}: {message}"),
            RdlError::BadSmiles {
                molecule,
                smiles,
                cause,
            } => write!(f, "molecule '{molecule}': bad SMILES '{smiles}': {cause}"),
            RdlError::DuplicateMolecule(name) => write!(f, "molecule '{name}' declared twice"),
            RdlError::DuplicateRule(name) => write!(f, "rule '{name}' declared twice"),
            RdlError::UnknownMolecule { rule, molecule } => {
                write!(f, "rule '{rule}' references unknown molecule '{molecule}'")
            }
            RdlError::UnknownRate { rule, rate } => {
                write!(
                    f,
                    "rule '{rule}' references undefined rate constant '{rate}'"
                )
            }
            RdlError::InvalidRule { rule, message } => write!(f, "rule '{rule}': {message}"),
            RdlError::BadVariantRange { molecule, lo, hi } => {
                write!(f, "molecule '{molecule}': bad variant range {lo}..{hi}")
            }
            RdlError::Rcip(e) => write!(f, "rate constants: {e}"),
            RdlError::SpeciesLimitExceeded(n) => {
                write!(f, "species limit ({n}) exceeded during network generation")
            }
            RdlError::ActionFailed {
                rule,
                molecule,
                cause,
            } => write!(f, "rule '{rule}' failed on '{molecule}': {cause}"),
        }
    }
}

impl std::error::Error for RdlError {}

impl From<RcipError> for RdlError {
    fn from(e: RcipError) -> Self {
        RdlError::Rcip(e)
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, RdlError>;
