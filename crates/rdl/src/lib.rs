//! # rms-rdl — the Chemical Compiler frontend
//!
//! First component of the paper's Reaction Modeling Suite (§2): accepts a
//! high-level reaction description language (syntax in the spirit of
//! Prickett's RDL), expands compact chain-length molecule variants, and
//! applies the six primitive reaction rules — disconnect, connect,
//! bond-order −/+, remove hydrogen, add hydrogen — with context-sensitive
//! site selection, generating the *reaction network* of all possible
//! reactions.
//!
//! ```
//! use rms_rdl::{parse_rdl, compile};
//!
//! let model = compile(&parse_rdl(r#"
//!     rate K_sc = 2;
//!     molecule DiS = "CSSC" init 1.0;
//!     rule scission {
//!         site bond S ~ S order single;
//!         action disconnect;
//!         rate K_sc;
//!     }
//! "#).unwrap()).unwrap();
//! assert_eq!(model.network.reaction_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod engine;
pub mod error;
pub mod expand;
pub mod network;
pub mod parser;

pub use ast::{Action, Forbid, Limits, MoleculeDecl, Program, RuleDecl, Scope, Site};
pub use engine::{
    compile, compile_with, compile_with_options, CompiledModel, EngineOptions, NetworkStats,
};
pub use error::{RdlError, Result};
pub use expand::{expand, expand_program, SeedVariant, Variant};
pub use network::{Reaction, ReactionNetwork, Species, SpeciesId};
pub use parser::parse_rdl;
