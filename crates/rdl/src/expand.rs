//! Molecule variant expansion.
//!
//! "Each molecule specified can have variants that arise because many
//! molecules differ from one another only in the lengths of chains of some
//! atom (typically sulfur in rubbers). Our input language allows all these
//! variants to be expressed in a compact form which is then expanded by
//! the chemical compiler." (§2)
//!
//! A template like `CS{n}C for n in 2..4` expands to `CSSC`, `CSSSC`,
//! `CSSSSC`: the single-atom symbol immediately before `{n}` is repeated
//! `n` times.

use crate::ast::MoleculeDecl;
use crate::error::{RdlError, Result};

/// One expanded variant of a molecule declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Display name: the declared name, with `_n` appended for
    /// parameterized templates.
    pub name: String,
    /// Concrete SMILES after substitution.
    pub smiles: String,
    /// The variant parameter value, when parameterized.
    pub n: Option<u32>,
}

/// A fully expanded seed species: one concrete variant of a declared
/// molecule, tagged with the family (declared) name it expanded from.
///
/// This is the artifact the *Expand* pipeline stage produces; the rule
/// engine ([`crate::engine::compile_with`]) consumes it when seeding the
/// reaction network.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedVariant {
    /// The declared molecule name (scope/family name for `on` clauses).
    pub family: String,
    /// Display name of this variant (family plus `_n` when parameterized).
    pub name: String,
    /// Concrete SMILES after `{n}` substitution.
    pub smiles: String,
    /// Declared initial concentration (shared by all variants).
    pub initial: f64,
}

/// Expand every molecule declaration of a program into concrete seed
/// variants, in declaration order.
pub fn expand_program(program: &crate::ast::Program) -> Result<Vec<SeedVariant>> {
    let mut seeds = Vec::new();
    for decl in &program.molecules {
        for variant in expand(decl)? {
            seeds.push(SeedVariant {
                family: decl.name.clone(),
                name: variant.name,
                smiles: variant.smiles,
                initial: decl.initial_concentration,
            });
        }
    }
    Ok(seeds)
}

/// Expand a declaration into its variants. Non-parameterized declarations
/// yield exactly one variant with the declared name.
pub fn expand(decl: &MoleculeDecl) -> Result<Vec<Variant>> {
    match decl.variants {
        None => {
            if decl.template.contains("{n}") {
                return Err(RdlError::Syntax {
                    line: 0,
                    column: 0,
                    message: format!(
                        "molecule '{}' uses {{n}} but has no variant range",
                        decl.name
                    ),
                });
            }
            Ok(vec![Variant {
                name: decl.name.clone(),
                smiles: decl.template.clone(),
                n: None,
            }])
        }
        Some((lo, hi)) => {
            if lo > hi || lo == 0 {
                return Err(RdlError::BadVariantRange {
                    molecule: decl.name.clone(),
                    lo,
                    hi,
                });
            }
            (lo..=hi)
                .map(|n| {
                    Ok(Variant {
                        name: format!("{}_{}", decl.name, n),
                        smiles: substitute(&decl.template, n, &decl.name)?,
                        n: Some(n),
                    })
                })
                .collect()
        }
    }
}

/// Replace every `X{n}` (X a one- or two-letter atom symbol) with X
/// repeated `n` times.
fn substitute(template: &str, n: u32, molecule: &str) -> Result<String> {
    let mut out = String::with_capacity(template.len() + n as usize * 2);
    let bytes = template.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i..].starts_with(b"{n}") {
            // Find the atom symbol just written: a trailing uppercase letter
            // optionally followed by one lowercase letter.
            let sym = trailing_symbol(&out);
            let Some(sym) = sym else {
                return Err(RdlError::Syntax {
                    line: 0,
                    column: i,
                    message: format!(
                        "molecule '{molecule}': {{n}} must follow an atom symbol in '{template}'"
                    ),
                });
            };
            // `out` already contains one copy; append n-1 more.
            for _ in 1..n {
                out.push_str(&sym);
            }
            i += 3;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    Ok(out)
}

/// The atom symbol at the end of the string: an uppercase letter plus an
/// optional lowercase letter (e.g. `S`, `Cl`), or a single lowercase
/// aromatic symbol.
fn trailing_symbol(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let last = *bytes.last()?;
    if last.is_ascii_lowercase() {
        // Could be 2nd char of "Cl"/"Br" or an aromatic atom.
        if bytes.len() >= 2 && bytes[bytes.len() - 2].is_ascii_uppercase() {
            return Some(s[s.len() - 2..].to_string());
        }
        return Some((last as char).to_string());
    }
    if last.is_ascii_uppercase() {
        return Some((last as char).to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decl(name: &str, template: &str, variants: Option<(u32, u32)>) -> MoleculeDecl {
        MoleculeDecl {
            name: name.to_string(),
            template: template.to_string(),
            variants,
            initial_concentration: 0.0,
        }
    }

    #[test]
    fn non_parameterized_single_variant() {
        let vs = expand(&decl("Poly", "CC=CC", None)).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].name, "Poly");
        assert_eq!(vs[0].smiles, "CC=CC");
        assert_eq!(vs[0].n, None);
    }

    #[test]
    fn sulfur_chain_expansion() {
        let vs = expand(&decl("Sx", "CS{n}C", Some((2, 4)))).unwrap();
        assert_eq!(
            vs.iter().map(|v| v.smiles.as_str()).collect::<Vec<_>>(),
            vec!["CSSC", "CSSSC", "CSSSSC"]
        );
        assert_eq!(vs[0].name, "Sx_2");
        assert_eq!(vs[2].n, Some(4));
    }

    #[test]
    fn n_equals_one_keeps_single_atom() {
        let vs = expand(&decl("S1", "CS{n}C", Some((1, 1)))).unwrap();
        assert_eq!(vs[0].smiles, "CSC");
    }

    #[test]
    fn two_letter_symbol_repetition() {
        let vs = expand(&decl("X", "CCl{n}", Some((2, 2)))).unwrap();
        assert_eq!(vs[0].smiles, "CClCl");
    }

    #[test]
    fn multiple_placeholders() {
        let vs = expand(&decl("X", "S{n}CS{n}", Some((2, 2)))).unwrap();
        assert_eq!(vs[0].smiles, "SSCSS");
    }

    #[test]
    fn bad_range_rejected() {
        assert!(matches!(
            expand(&decl("X", "S{n}", Some((3, 2)))),
            Err(RdlError::BadVariantRange { .. })
        ));
        assert!(matches!(
            expand(&decl("X", "S{n}", Some((0, 2)))),
            Err(RdlError::BadVariantRange { .. })
        ));
    }

    #[test]
    fn placeholder_without_range_rejected() {
        assert!(expand(&decl("X", "S{n}", None)).is_err());
    }

    #[test]
    fn placeholder_without_symbol_rejected() {
        assert!(expand(&decl("X", "{n}S", Some((1, 2)))).is_err());
        assert!(expand(&decl("X", "(S){n}", Some((1, 2)))).is_err());
    }
}
