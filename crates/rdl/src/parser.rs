//! Parser for RDL source files.
//!
//! Surface syntax (comments start with `#`):
//!
//! ```text
//! # kinetic constants (RCIP sub-language, passed through verbatim)
//! rate K_sc = 2;
//! rate K_cl = K_sc * 3;
//! bound K_sc in [0.1, 10];
//!
//! # molecules, with compact chain-length variants
//! molecule Rubber  = "CC=C(C)C" init 1.0;
//! molecule Sx      = "CS{n}C" for n in 2..8 init 0.5;
//!
//! # reaction rules: site + one of the six primitive actions + rate
//! rule scission {
//!     on Sx;
//!     site bond S & chain(S) >= 3 ~ S & chain(S) >= 3 order single;
//!     action disconnect;
//!     rate K_sc;
//! }
//! rule crosslink {
//!     site pair S & radical, C & allylic;
//!     action connect single;
//!     rate K_cl;
//! }
//!
//! # generation limits and forbidden forms
//! limit atoms 40;
//! limit species 500;
//! limit generations 6;
//! forbid chain S > 8;
//! ```

use rms_molecule::{AtomPredicate, BondOrder, Element};

use crate::ast::{Action, Forbid, MoleculeDecl, Program, RuleDecl, Scope, Site};
use crate::error::{RdlError, Result};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(u64),
    Float(f64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Equals,
    EqEq,
    Tilde,
    Bang,
    Amp,
    Pipe,
    Gt,
    Ge,
    DotDot,
    Plus,
    Minus,
    Star,
    Slash,
    Eof,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> RdlError {
        RdlError::Syntax {
            line: self.line,
            column: self.col,
            message: message.into(),
        }
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump_char(&mut self) -> Option<char> {
        let c = self.peek_char()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek_char() {
                Some(c) if c.is_whitespace() => {
                    self.bump_char();
                }
                Some('#') => {
                    while let Some(c) = self.bump_char() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    /// Next token plus the byte offset where it starts (post-trivia).
    fn next_token(&mut self) -> Result<(Tok, usize)> {
        self.skip_trivia();
        let start = self.pos;
        let Some(c) = self.peek_char() else {
            return Ok((Tok::Eof, start));
        };
        let tok = match c {
            '{' => {
                self.bump_char();
                Tok::LBrace
            }
            '}' => {
                self.bump_char();
                Tok::RBrace
            }
            '(' => {
                self.bump_char();
                Tok::LParen
            }
            ')' => {
                self.bump_char();
                Tok::RParen
            }
            '[' => {
                self.bump_char();
                Tok::LBracket
            }
            ']' => {
                self.bump_char();
                Tok::RBracket
            }
            ';' => {
                self.bump_char();
                Tok::Semi
            }
            ',' => {
                self.bump_char();
                Tok::Comma
            }
            '~' => {
                self.bump_char();
                Tok::Tilde
            }
            '!' => {
                self.bump_char();
                Tok::Bang
            }
            '&' => {
                self.bump_char();
                Tok::Amp
            }
            '|' => {
                self.bump_char();
                Tok::Pipe
            }
            '+' => {
                self.bump_char();
                Tok::Plus
            }
            '-' => {
                self.bump_char();
                Tok::Minus
            }
            '*' => {
                self.bump_char();
                Tok::Star
            }
            '/' => {
                self.bump_char();
                Tok::Slash
            }
            '=' => {
                self.bump_char();
                if self.peek_char() == Some('=') {
                    self.bump_char();
                    Tok::EqEq
                } else {
                    Tok::Equals
                }
            }
            '>' => {
                self.bump_char();
                if self.peek_char() == Some('=') {
                    self.bump_char();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            '.' => {
                self.bump_char();
                if self.peek_char() == Some('.') {
                    self.bump_char();
                    Tok::DotDot
                } else {
                    return Err(self.error("unexpected '.'"));
                }
            }
            '"' => {
                self.bump_char();
                let s_start = self.pos;
                while let Some(c) = self.peek_char() {
                    if c == '"' {
                        break;
                    }
                    self.bump_char();
                }
                let text = self.src[s_start..self.pos].to_string();
                if self.bump_char() != Some('"') {
                    return Err(self.error("unterminated string"));
                }
                Tok::Str(text)
            }
            c if c.is_ascii_digit() => {
                let n_start = self.pos;
                while self.peek_char().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump_char();
                }
                // Careful: `2..8` must lex as Int(2) DotDot Int(8).
                let is_float =
                    self.peek_char() == Some('.') && !self.src[self.pos + 1..].starts_with('.');
                if is_float {
                    self.bump_char();
                    while self.peek_char().is_some_and(|c| c.is_ascii_digit()) {
                        self.bump_char();
                    }
                }
                if self.peek_char().is_some_and(|c| c == 'e' || c == 'E') {
                    self.bump_char();
                    if self.peek_char().is_some_and(|c| c == '+' || c == '-') {
                        self.bump_char();
                    }
                    while self.peek_char().is_some_and(|c| c.is_ascii_digit()) {
                        self.bump_char();
                    }
                    let text = &self.src[n_start..self.pos];
                    return Ok((
                        Tok::Float(
                            text.parse()
                                .map_err(|_| self.error(format!("bad number '{text}'")))?,
                        ),
                        start,
                    ));
                }
                let text = &self.src[n_start..self.pos];
                if text.contains('.') {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| self.error(format!("bad number '{text}'")))?,
                    )
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| self.error(format!("bad number '{text}'")))?,
                    )
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let i_start = self.pos;
                while self
                    .peek_char()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    self.bump_char();
                }
                Tok::Ident(self.src[i_start..self.pos].to_string())
            }
            other => return Err(self.error(format!("unexpected character '{other}'"))),
        };
        Ok((tok, start))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    current: Tok,
    current_start: usize,
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Parser<'a>> {
        let mut lexer = Lexer::new(src);
        let (current, current_start) = lexer.next_token()?;
        Ok(Parser {
            lexer,
            current,
            current_start,
            src,
        })
    }

    fn bump(&mut self) -> Result<Tok> {
        let (next, start) = self.lexer.next_token()?;
        self.current_start = start;
        Ok(std::mem::replace(&mut self.current, next))
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<()> {
        if self.current == tok {
            self.bump()?;
            Ok(())
        } else {
            Err(self
                .lexer
                .error(format!("expected {what}, found {:?}", self.current)))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.bump()? {
            Tok::Ident(name) => Ok(name),
            other => Err(self
                .lexer
                .error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.bump()? {
            Tok::Ident(name) if name == kw => Ok(()),
            other => Err(self
                .lexer
                .error(format!("expected '{kw}', found {other:?}"))),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<u64> {
        match self.bump()? {
            Tok::Int(v) => Ok(v),
            other => Err(self
                .lexer
                .error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn parse_program(&mut self) -> Result<Program> {
        let mut program = Program::default();
        while self.current != Tok::Eof {
            let Tok::Ident(kw) = self.current.clone() else {
                return Err(self
                    .lexer
                    .error(format!("expected statement, found {:?}", self.current)));
            };
            match kw.as_str() {
                "rate" | "bound" => self.pass_through_rate_statement(&mut program)?,
                "molecule" => {
                    let decl = self.parse_molecule()?;
                    if program.molecules.iter().any(|m| m.name == decl.name) {
                        return Err(RdlError::DuplicateMolecule(decl.name));
                    }
                    program.molecules.push(decl);
                }
                "rule" => {
                    let rule = self.parse_rule()?;
                    if program.rules.iter().any(|r| r.name == rule.name) {
                        return Err(RdlError::DuplicateRule(rule.name));
                    }
                    program.rules.push(rule);
                }
                "limit" => self.parse_limit(&mut program)?,
                "forbid" => {
                    let forbid = self.parse_forbid()?;
                    program.forbids.push(forbid);
                }
                other => {
                    return Err(self
                        .lexer
                        .error(format!("unknown statement keyword '{other}'")))
                }
            }
        }
        Ok(program)
    }

    /// Copy a `rate`/`bound` statement verbatim (through the `;`) into the
    /// program's RCIP source buffer.
    fn pass_through_rate_statement(&mut self, program: &mut Program) -> Result<()> {
        let start = self.current_start;
        loop {
            let tok = self.bump()?;
            if tok == Tok::Semi {
                break;
            }
            if tok == Tok::Eof {
                return Err(self.lexer.error("unterminated rate statement"));
            }
        }
        // current_start now points at the token *after* the semicolon; the
        // statement text ends at the semicolon we just consumed.
        let end = self
            .src(start)
            .find(';')
            .map(|i| start + i + 1)
            .unwrap_or(self.current_start);
        program.rate_source.push_str(&self.src[start..end]);
        program.rate_source.push('\n');
        Ok(())
    }

    fn src(&self, from: usize) -> &str {
        &self.src[from..]
    }

    fn parse_molecule(&mut self) -> Result<MoleculeDecl> {
        self.expect_keyword("molecule")?;
        let name = self.expect_ident("molecule name")?;
        self.expect(Tok::Equals, "'='")?;
        let template = match self.bump()? {
            Tok::Str(s) => s,
            other => {
                return Err(self
                    .lexer
                    .error(format!("expected SMILES string, found {other:?}")))
            }
        };
        let mut variants = None;
        let mut initial = 0.0;
        loop {
            match &self.current {
                Tok::Ident(kw) if kw == "for" => {
                    self.bump()?;
                    let var = self.expect_ident("variant parameter")?;
                    if var != "n" {
                        return Err(self.lexer.error("variant parameter must be 'n'"));
                    }
                    self.expect_keyword("in")?;
                    let lo = self.expect_int("range start")? as u32;
                    self.expect(Tok::DotDot, "'..'")?;
                    let hi = self.expect_int("range end")? as u32;
                    variants = Some((lo, hi));
                }
                Tok::Ident(kw) if kw == "init" => {
                    self.bump()?;
                    initial = match self.bump()? {
                        Tok::Int(v) => v as f64,
                        Tok::Float(v) => v,
                        other => {
                            return Err(self
                                .lexer
                                .error(format!("expected number after 'init', found {other:?}")))
                        }
                    };
                }
                Tok::Semi => {
                    self.bump()?;
                    break;
                }
                other => {
                    return Err(self
                        .lexer
                        .error(format!("expected 'for', 'init' or ';', found {other:?}")))
                }
            }
        }
        Ok(MoleculeDecl {
            name,
            template,
            variants,
            initial_concentration: initial,
        })
    }

    fn parse_rule(&mut self) -> Result<RuleDecl> {
        self.expect_keyword("rule")?;
        let name = self.expect_ident("rule name")?;
        self.expect(Tok::LBrace, "'{'")?;
        let mut scope = Scope::Any;
        let mut site = None;
        let mut action = None;
        let mut rate = None;
        while self.current != Tok::RBrace {
            let kw = self.expect_ident("rule item")?;
            match kw.as_str() {
                "on" => {
                    let mut names = vec![self.expect_ident("molecule name")?];
                    while self.current == Tok::Comma {
                        self.bump()?;
                        names.push(self.expect_ident("molecule name")?);
                    }
                    scope = if names.len() == 1 && names[0] == "any" {
                        Scope::Any
                    } else {
                        Scope::Named(names)
                    };
                    self.expect(Tok::Semi, "';'")?;
                }
                "site" => {
                    site = Some(self.parse_site()?);
                    self.expect(Tok::Semi, "';'")?;
                }
                "action" => {
                    action = Some(self.parse_action()?);
                    self.expect(Tok::Semi, "';'")?;
                }
                "rate" => {
                    rate = Some(self.expect_ident("rate constant name")?);
                    self.expect(Tok::Semi, "';'")?;
                }
                other => return Err(self.lexer.error(format!("unknown rule item '{other}'"))),
            }
        }
        self.bump()?; // consume '}'
        let site = site.ok_or_else(|| RdlError::InvalidRule {
            rule: name.clone(),
            message: "missing 'site'".to_string(),
        })?;
        let action = action.ok_or_else(|| RdlError::InvalidRule {
            rule: name.clone(),
            message: "missing 'action'".to_string(),
        })?;
        let rate = rate.ok_or_else(|| RdlError::InvalidRule {
            rule: name.clone(),
            message: "missing 'rate'".to_string(),
        })?;
        validate_site_action(&name, &site, action)?;
        Ok(RuleDecl {
            name,
            scope,
            site,
            action,
            rate,
        })
    }

    fn parse_site(&mut self) -> Result<Site> {
        let kind = self.expect_ident("site kind ('bond', 'atom' or 'pair')")?;
        match kind.as_str() {
            "bond" => {
                let left = self.parse_predicate()?;
                self.expect(Tok::Tilde, "'~'")?;
                let right = self.parse_predicate()?;
                let order = if matches!(&self.current, Tok::Ident(kw) if kw == "order") {
                    self.bump()?;
                    Some(self.parse_order()?)
                } else {
                    None
                };
                Ok(Site::Bond { left, right, order })
            }
            "atom" => Ok(Site::Atom(self.parse_predicate()?)),
            "pair" => {
                let first = self.parse_predicate()?;
                self.expect(Tok::Comma, "','")?;
                let second = self.parse_predicate()?;
                Ok(Site::Pair { first, second })
            }
            other => Err(self.lexer.error(format!("unknown site kind '{other}'"))),
        }
    }

    fn parse_order(&mut self) -> Result<BondOrder> {
        let word = self.expect_ident("bond order")?;
        match word.as_str() {
            "single" => Ok(BondOrder::Single),
            "double" => Ok(BondOrder::Double),
            "triple" => Ok(BondOrder::Triple),
            other => Err(self.lexer.error(format!("unknown bond order '{other}'"))),
        }
    }

    fn parse_action(&mut self) -> Result<Action> {
        let word = self.expect_ident("action")?;
        match word.as_str() {
            "disconnect" => Ok(Action::Disconnect),
            "connect" => {
                let order = if matches!(self.current, Tok::Ident(_)) {
                    self.parse_order()?
                } else {
                    BondOrder::Single
                };
                Ok(Action::Connect(order))
            }
            "increase" => Ok(Action::IncreaseBond),
            "decrease" => Ok(Action::DecreaseBond),
            "remove_h" => Ok(Action::RemoveHydrogen),
            "add_h" => Ok(Action::AddHydrogen),
            other => Err(self.lexer.error(format!("unknown action '{other}'"))),
        }
    }

    /// Predicate grammar: `|` over `&` over unary.
    fn parse_predicate(&mut self) -> Result<AtomPredicate> {
        let mut terms = vec![self.parse_pred_conj()?];
        while self.current == Tok::Pipe {
            self.bump()?;
            terms.push(self.parse_pred_conj()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            AtomPredicate::Any(terms)
        })
    }

    fn parse_pred_conj(&mut self) -> Result<AtomPredicate> {
        let mut terms = vec![self.parse_pred_atom()?];
        while self.current == Tok::Amp {
            self.bump()?;
            terms.push(self.parse_pred_atom()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            AtomPredicate::All(terms)
        })
    }

    fn parse_pred_atom(&mut self) -> Result<AtomPredicate> {
        match self.bump()? {
            Tok::LParen => {
                let inner = self.parse_predicate()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(inner)
            }
            Tok::Bang => {
                // Only negations we support directly: !radical, !bonded(E).
                match self.parse_pred_atom()? {
                    AtomPredicate::Radical => Ok(AtomPredicate::NotRadical),
                    AtomPredicate::BondedTo(e) => Ok(AtomPredicate::NotBondedTo(e)),
                    other => Err(self.lexer.error(format!(
                        "'!' only supported on 'radical' and 'bonded(..)', found {other:?}"
                    ))),
                }
            }
            Tok::Ident(word) => match word.as_str() {
                "radical" => Ok(AtomPredicate::Radical),
                "allylic" => Ok(AtomPredicate::Allylic),
                "hydrogens" => {
                    self.expect(Tok::Ge, "'>='")?;
                    let n = self.expect_int("hydrogen count")?;
                    Ok(AtomPredicate::MinHydrogens(n as u8))
                }
                "degree" => match self.bump()? {
                    Tok::Ge => {
                        let n = self.expect_int("degree")?;
                        Ok(AtomPredicate::MinDegree(n as usize))
                    }
                    Tok::EqEq => {
                        let n = self.expect_int("degree")?;
                        Ok(AtomPredicate::Degree(n as usize))
                    }
                    other => Err(self
                        .lexer
                        .error(format!("expected '>=' or '==', found {other:?}"))),
                },
                "chain" => {
                    self.expect(Tok::LParen, "'('")?;
                    let elem = self.parse_element()?;
                    self.expect(Tok::RParen, "')'")?;
                    self.expect(Tok::Ge, "'>='")?;
                    let n = self.expect_int("chain depth")?;
                    Ok(AtomPredicate::MinChainDepth(elem, n as usize))
                }
                "bonded" => {
                    self.expect(Tok::LParen, "'('")?;
                    let elem = self.parse_element()?;
                    self.expect(Tok::RParen, "')'")?;
                    Ok(AtomPredicate::BondedTo(elem))
                }
                sym => match Element::from_symbol(sym) {
                    Some(e) => Ok(AtomPredicate::Is(e)),
                    None => Err(self
                        .lexer
                        .error(format!("unknown predicate or element '{sym}'"))),
                },
            },
            other => Err(self
                .lexer
                .error(format!("expected predicate, found {other:?}"))),
        }
    }

    fn parse_element(&mut self) -> Result<Element> {
        let sym = self.expect_ident("element symbol")?;
        Element::from_symbol(&sym)
            .ok_or_else(|| self.lexer.error(format!("unknown element '{sym}'")))
    }

    fn parse_limit(&mut self, program: &mut Program) -> Result<()> {
        let start = self.current_start;
        self.expect_keyword("limit")?;
        let what = self.expect_ident("limit kind")?;
        let value = self.expect_int("limit value")? as usize;
        self.expect(Tok::Semi, "';'")?;
        match what.as_str() {
            "atoms" => program.limits.max_atoms = value,
            "species" => program.limits.max_species = value,
            "generations" => {
                program.limits.max_generations = value;
                program.generations_span = Some(line_col_at(self.src, start));
            }
            other => return Err(self.lexer.error(format!("unknown limit '{other}'"))),
        }
        Ok(())
    }

    fn parse_forbid(&mut self) -> Result<Forbid> {
        self.expect_keyword("forbid")?;
        let what = self.expect_ident("forbid kind")?;
        let forbid = match what.as_str() {
            "chain" => {
                let elem = self.parse_element()?;
                self.expect(Tok::Gt, "'>'")?;
                let len = self.expect_int("chain length")? as usize;
                Forbid::ChainLongerThan(elem, len)
            }
            "atom" => Forbid::AtomMatching(self.parse_predicate()?),
            other => return Err(self.lexer.error(format!("unknown forbid kind '{other}'"))),
        };
        self.expect(Tok::Semi, "';'")?;
        Ok(forbid)
    }
}

/// Reject site/action combinations that make no chemical sense.
fn validate_site_action(rule: &str, site: &Site, action: Action) -> Result<()> {
    let ok = matches!(
        (site, action),
        (
            Site::Bond { .. },
            Action::Disconnect | Action::IncreaseBond | Action::DecreaseBond
        ) | (Site::Atom(_), Action::RemoveHydrogen | Action::AddHydrogen)
            | (Site::Pair { .. }, Action::Connect(_))
    );
    if ok {
        Ok(())
    } else {
        Err(RdlError::InvalidRule {
            rule: rule.to_string(),
            message: format!(
                "action '{}' incompatible with site kind {:?}",
                action.keyword(),
                std::mem::discriminant(site)
            ),
        })
    }
}

/// 1-based (line, column) of a byte offset within `src`.
fn line_col_at(src: &str, offset: usize) -> (usize, usize) {
    let prefix = &src[..offset.min(src.len())];
    let line = prefix.bytes().filter(|&b| b == b'\n').count() + 1;
    let column = offset - prefix.rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
    (line, column)
}

/// Parse an RDL program.
pub fn parse_rdl(src: &str) -> Result<Program> {
    Parser::new(src)?.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
        # kinetics
        rate K_sc = 2;
        rate K_cl = K_sc * 3;
        bound K_sc in [0.1, 10];

        molecule Rubber = "CC=C(C)C" init 1.0;
        molecule Sx = "CS{n}C" for n in 2..8 init 0.5;

        rule scission {
            on Sx;
            site bond S & chain(S) >= 3 ~ S & chain(S) >= 3 order single;
            action disconnect;
            rate K_sc;
        }
        rule crosslink {
            site pair S & radical, C & allylic;
            action connect single;
            rate K_cl;
        }

        limit atoms 40;
        limit species 500;
        limit generations 6;
        forbid chain S > 8;
    "#;

    #[test]
    fn full_example_parses() {
        let p = parse_rdl(EXAMPLE).unwrap();
        assert_eq!(p.molecules.len(), 2);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.limits.max_atoms, 40);
        assert_eq!(p.limits.max_species, 500);
        assert_eq!(p.limits.max_generations, 6);
        assert_eq!(p.forbids.len(), 1);
        assert!(p.rate_source.contains("rate K_sc = 2;"));
        assert!(p.rate_source.contains("bound K_sc in [0.1, 10];"));
    }

    #[test]
    fn generations_limit_records_span() {
        let p = parse_rdl(EXAMPLE).unwrap();
        // `limit generations 6;` sits on line 24, column 9 of EXAMPLE.
        assert_eq!(p.generations_span, Some((24, 9)));
        // A program without an explicit generations limit has no span.
        let q = parse_rdl("molecule A = \"C\" init 1.0;").unwrap();
        assert_eq!(q.generations_span, None);
    }

    #[test]
    fn molecule_variants_and_init() {
        let p = parse_rdl(EXAMPLE).unwrap();
        let sx = &p.molecules[1];
        assert_eq!(sx.name, "Sx");
        assert_eq!(sx.variants, Some((2, 8)));
        assert_eq!(sx.initial_concentration, 0.5);
        let rubber = &p.molecules[0];
        assert_eq!(rubber.variants, None);
        assert_eq!(rubber.initial_concentration, 1.0);
    }

    #[test]
    fn rule_structure() {
        let p = parse_rdl(EXAMPLE).unwrap();
        let sc = &p.rules[0];
        assert_eq!(sc.name, "scission");
        assert_eq!(sc.scope, Scope::Named(vec!["Sx".to_string()]));
        assert_eq!(sc.action, Action::Disconnect);
        assert_eq!(sc.rate, "K_sc");
        let Site::Bond { order, .. } = &sc.site else {
            panic!("expected bond site")
        };
        assert_eq!(*order, Some(BondOrder::Single));
        let cl = &p.rules[1];
        assert_eq!(cl.scope, Scope::Any);
        assert_eq!(cl.action, Action::Connect(BondOrder::Single));
    }

    #[test]
    fn predicate_grammar() {
        let p = parse_rdl(
            "rule r { site atom (S | O) & !radical & hydrogens >= 1 & degree == 2; action remove_h; rate K; }",
        )
        .unwrap();
        let Site::Atom(pred) = &p.rules[0].site else {
            panic!()
        };
        let AtomPredicate::All(terms) = pred else {
            panic!("expected conjunction, got {pred:?}")
        };
        assert_eq!(terms.len(), 4);
        assert!(matches!(terms[0], AtomPredicate::Any(_)));
        assert!(matches!(terms[1], AtomPredicate::NotRadical));
    }

    #[test]
    fn invalid_site_action_combo_rejected() {
        let err = parse_rdl("rule r { site atom S; action disconnect; rate K; }").unwrap_err();
        assert!(matches!(err, RdlError::InvalidRule { .. }));
        let err = parse_rdl("rule r { site bond S ~ S; action connect; rate K; }").unwrap_err();
        assert!(matches!(err, RdlError::InvalidRule { .. }));
    }

    #[test]
    fn missing_rule_parts_rejected() {
        let err = parse_rdl("rule r { site atom S; rate K; }").unwrap_err();
        assert!(
            matches!(err, RdlError::InvalidRule { ref message, .. } if message.contains("action"))
        );
        let err = parse_rdl("rule r { site atom S; action add_h; }").unwrap_err();
        assert!(
            matches!(err, RdlError::InvalidRule { ref message, .. } if message.contains("rate"))
        );
    }

    #[test]
    fn duplicate_declarations_rejected() {
        let err = parse_rdl("molecule A = \"C\"; molecule A = \"CC\";").unwrap_err();
        assert_eq!(err, RdlError::DuplicateMolecule("A".to_string()));
        let err = parse_rdl(
            "rule r { site atom S; action add_h; rate K; } rule r { site atom S; action add_h; rate K; }",
        )
        .unwrap_err();
        assert_eq!(err, RdlError::DuplicateRule("r".to_string()));
    }

    #[test]
    fn syntax_error_positions() {
        let err = parse_rdl("molecule = \"C\";").unwrap_err();
        assert!(matches!(err, RdlError::Syntax { line: 1, .. }));
        let err = parse_rdl("\n\nmolecule A \"C\";").unwrap_err();
        assert!(matches!(err, RdlError::Syntax { line: 3, .. }));
    }

    #[test]
    fn forbid_atom_predicate() {
        let p = parse_rdl("forbid atom Zn;").unwrap();
        assert!(matches!(
            p.forbids[0],
            Forbid::AtomMatching(AtomPredicate::Is(Element::Zn))
        ));
    }

    #[test]
    fn range_lexing_not_float() {
        let p = parse_rdl("molecule S8 = \"S{n}\" for n in 2..8;").unwrap();
        assert_eq!(p.molecules[0].variants, Some((2, 8)));
    }
}
