//! Robustness: arbitrary input must never panic the RDL or RCIP parsers —
//! only return structured errors.

use proptest::prelude::*;

use rms_rcip::RateTable;
use rms_rdl::parse_rdl;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary UTF-8 never panics the RDL parser.
    #[test]
    fn rdl_parser_total_on_garbage(input in ".{0,200}") {
        let _ = parse_rdl(&input);
    }

    /// Keyword-soup inputs (more likely to reach deep parser states)
    /// never panic either.
    #[test]
    fn rdl_parser_total_on_keyword_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "rate", "bound", "molecule", "rule", "site", "action",
                "limit", "forbid", "on", "bond", "atom", "pair", "order",
                "single", "disconnect", "connect", "K", "=", ";", "{", "}",
                "~", "&", "|", "!", "(", ")", "[", "]", "..", "2", "8",
                "\"CS{n}C\"", "for", "n", "in", "init", "1.0", "chain", "S",
            ]),
            0..60,
        )
    ) {
        let input = words.join(" ");
        let _ = parse_rdl(&input);
    }

    /// The RCIP parser/evaluator is total too.
    #[test]
    fn rcip_total_on_garbage(input in ".{0,200}") {
        let _ = RateTable::parse(&input);
    }

    /// RCIP expression soup.
    #[test]
    fn rcip_total_on_expr_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "rate", "bound", "K", "K2", "=", ";", "+", "-", "*", "/",
                "(", ")", "[", "]", ",", "in", "1", "2.5", "1e300", "0",
            ]),
            0..40,
        )
    ) {
        let input = words.join(" ");
        let _ = RateTable::parse(&input);
    }

    /// SMILES parser is total on arbitrary ASCII.
    #[test]
    fn smiles_total_on_garbage(input in "[ -~]{0,60}") {
        let _ = rms_molecule::parse_smiles(&input);
    }
}
