//! Rule-engine coverage for the remaining primitive actions and scope
//! forms (disconnect/connect/remove_h are covered by unit tests).

use rms_rdl::{compile, parse_rdl, RdlError};

fn network(src: &str) -> rms_rdl::ReactionNetwork {
    compile(&parse_rdl(src).unwrap()).unwrap().network
}

#[test]
fn increase_bond_order_dehydrogenation() {
    // Ethane's C-C can be raised to C=C (consuming one H per carbon).
    let n = network(
        r#"
        rate K = 1;
        molecule Ethane = "CC" init 1.0;
        rule dehydrogenate {
            site bond C ~ C order single;
            action increase;
            rate K;
        }
        "#,
    );
    // Ethane -> ethene; ethene's C=C does not match `order single`,
    // so closure stops after one new species... but ethene C=C with
    // H2C=CH2 can still be raised to a triple bond by a second rule
    // application? No: the rule requires a *single* bond site.
    assert_eq!(n.species_count(), 2);
    assert_eq!(n.reaction_count(), 1);
    let r = &n.reactions()[0];
    assert_eq!(r.products.len(), 1);
    let product = n.species(r.products[0]);
    let mol = product.structure.as_ref().unwrap();
    assert!(mol
        .bonds()
        .any(|b| b.order == rms_molecule::BondOrder::Double));
}

#[test]
fn decrease_bond_order_creates_diradical() {
    let n = network(
        r#"
        rate K = 1;
        molecule Ethene = "C=C" init 1.0;
        rule open_pi {
            site bond C ~ C order double;
            action decrease;
            rate K;
        }
        "#,
    );
    assert_eq!(n.reaction_count(), 1);
    let r = &n.reactions()[0];
    let product = n.species(r.products[0]);
    let mol = product.structure.as_ref().unwrap();
    assert_eq!(mol.radical_sites().len(), 2, "diradical expected");
}

#[test]
fn add_hydrogen_quenches_radicals() {
    let n = network(
        r#"
        rate K = 1;
        molecule Methyl = "[CH3]" init 0.5;
        rule quench {
            site atom C & radical;
            action add_h;
            rate K;
        }
        "#,
    );
    assert_eq!(n.reaction_count(), 1);
    let r = &n.reactions()[0];
    let product = n.species(r.products[0]);
    let mol = product.structure.as_ref().unwrap();
    assert!(mol.radical_sites().is_empty());
    assert_eq!(mol.total_hydrogens(), 4); // methane
}

#[test]
fn positional_pair_scope() {
    // `on Thiyl, Alkene;`: the first predicate only matches Thiyl-family
    // molecules, the second only Alkene-family — so no Thiyl+Thiyl or
    // Alkene+Alkene couplings appear.
    let n = network(
        r#"
        rate K = 1;
        molecule Thiyl  = "C[S]" init 0.5;
        molecule Alkene = "[CH2]C" init 0.5;
        rule couple {
            on Thiyl, Alkene;
            site pair S & radical, C & radical;
            action connect single;
            rate K;
        }
        "#,
    );
    assert_eq!(n.reaction_count(), 1, "{}", n.display_equations());
    let r = &n.reactions()[0];
    assert_eq!(r.reactants.len(), 2);
    assert_ne!(r.reactants[0], r.reactants[1]);
}

#[test]
fn unscoped_pair_allows_self_coupling() {
    let n = network(
        r#"
        rate K = 1;
        molecule Thiyl = "C[S]" init 0.5;
        rule dimerize {
            site pair S & radical, S & radical;
            action connect single;
            rate K;
        }
        "#,
    );
    // Thiyl + Thiyl -> CSSC.
    assert_eq!(n.reaction_count(), 1);
    let r = &n.reactions()[0];
    assert_eq!(r.reactants[0], r.reactants[1], "self-coupling expected");
}

#[test]
fn saturated_sites_skip_silently() {
    // `increase` on an already-triple bond must not error or loop.
    let n = network(
        r#"
        rate K = 1;
        molecule Yne = "C#C" init 1.0;
        rule raise {
            site bond C ~ C;
            action increase;
            rate K;
        }
        "#,
    );
    assert_eq!(n.reaction_count(), 0);
    assert_eq!(n.species_count(), 1);
}

#[test]
fn forbid_atom_predicate_blocks_products() {
    // Forbid any 3-coordinate sulfur: recombination to branched sulfide
    // patterns is pruned while plain dimerization survives.
    let with_forbid = network(
        r#"
        rate K = 1;
        molecule Thiyl = "C[S]" init 0.5;
        rule dimerize {
            site pair S & radical, S & radical;
            action connect single;
            rate K;
        }
        forbid atom S & degree >= 2;
        "#,
    );
    assert_eq!(
        with_forbid.reaction_count(),
        0,
        "{}",
        with_forbid.display_equations()
    );
}

#[test]
fn generated_species_participate_in_later_generations() {
    // Chain: CSSC scission -> thiyl radicals -> quench to thiol; the
    // quench rule only fires on a *generated* species.
    let n = network(
        r#"
        rate K1 = 1;
        rate K2 = 2;
        molecule DiS = "CSSC" init 1.0;
        rule scission {
            site bond S ~ S;
            action disconnect;
            rate K1;
        }
        rule quench {
            site atom S & radical;
            action add_h;
            rate K2;
        }
        "#,
    );
    // Reactions: scission (1) + quench of the thiyl radical (1).
    assert_eq!(n.reaction_count(), 2, "{}", n.display_equations());
    let quench = n.reactions().iter().find(|r| r.rule == "quench").unwrap();
    let product = n.species(quench.products[0]);
    let mol = product.structure.as_ref().unwrap();
    assert!(mol.radical_sites().is_empty());
}

#[test]
fn species_limit_is_a_hard_error() {
    let program = parse_rdl(
        r#"
        rate K = 1;
        molecule Sx = "CS{n}C" for n in 2..8 init 1.0;
        rule scission { site bond S ~ S; action disconnect; rate K; }
        limit species 4;
        "#,
    )
    .unwrap();
    assert!(matches!(
        compile(&program),
        Err(RdlError::SpeciesLimitExceeded(4))
    ));
}
