//! Harder solver validation: Van der Pol relaxation oscillation, linear
//! systems with known matrix exponentials, fixed-step convergence order,
//! and work-statistics sanity.

use rms_solver::{solve_adams, solve_bdf, solve_rk45, Bdf, FnRhs, SolverOptions};

#[test]
fn van_der_pol_relaxation_oscillation() {
    // mu = 200: strongly stiff. BDF must cross the fast transition layers
    // with bounded work, and the limit-cycle amplitude is ~2.0.
    let mu = 200.0;
    let rhs = FnRhs::new(2, move |_t, y: &[f64], ydot: &mut [f64]| {
        ydot[0] = y[1];
        ydot[1] = mu * ((1.0 - y[0] * y[0]) * y[1]) - y[0];
    });
    let options = SolverOptions {
        rtol: 1e-6,
        atol: 1e-9,
        max_steps: 400_000,
        ..SolverOptions::default()
    };
    let (sol, stats) = solve_bdf(&rhs, 0.0, &[2.0, 0.0], &[mu * 0.8], options).unwrap();
    // The solution stays on the limit cycle: |x| <= ~2.02 at all sampled
    // points and the state is finite.
    assert!(sol[0][0].abs() < 2.3, "{:?}", sol[0]);
    assert!(sol[0].iter().all(|v| v.is_finite()));
    // Modified Newton amortizes Jacobians: far fewer jevals than steps.
    assert!(
        stats.jevals < stats.steps / 2,
        "jevals {} vs steps {}",
        stats.jevals,
        stats.steps
    );
}

#[test]
fn linear_system_matches_matrix_exponential() {
    // y' = A y with A = [[-1, 1], [0, -2]]; closed form:
    // y0(t) = (c0 + c1 t ... ) — use the diagonalizable solution:
    // eigenvalues -1, -2; y(t) = V diag(e^{λt}) V^{-1} y0.
    // With y0 = [1, 1]: y0(t) = 2e^{-t} - e^{-2t}, y1(t) = e^{-2t}.
    let rhs = FnRhs::new(2, |_t, y: &[f64], ydot: &mut [f64]| {
        ydot[0] = -y[0] + y[1];
        ydot[1] = -2.0 * y[1];
    });
    let t: f64 = 1.3;
    let exact0 = 2.0 * (-t).exp() - (-2.0 * t).exp();
    let exact1 = (-2.0 * t).exp();
    let tight = SolverOptions {
        rtol: 1e-10,
        atol: 1e-13,
        ..SolverOptions::default()
    };
    for (name, result) in [
        ("rk45", solve_rk45(&rhs, 0.0, &[1.0, 1.0], &[t], tight)),
        ("adams", solve_adams(&rhs, 0.0, &[1.0, 1.0], &[t], tight)),
        ("bdf", solve_bdf(&rhs, 0.0, &[1.0, 1.0], &[t], tight)),
    ] {
        let (sol, _) = result.unwrap_or_else(|e| panic!("{name}: {e}"));
        let tol = if name == "bdf" { 1e-6 } else { 1e-8 };
        assert!(
            (sol[0][0] - exact0).abs() < tol,
            "{name}: {} vs {exact0}",
            sol[0][0]
        );
        assert!(
            (sol[0][1] - exact1).abs() < tol,
            "{name}: {} vs {exact1}",
            sol[0][1]
        );
    }
}

#[test]
fn rk45_error_scales_with_tolerance() {
    // Halving the tolerance by 10^2 should cut the achieved error by
    // roughly 10^2 (asymptotically, for a smooth problem).
    let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -y[0]);
    let exact = (-3.0f64).exp();
    let mut errors = Vec::new();
    for rtol in [1e-4, 1e-6, 1e-8] {
        let options = SolverOptions {
            rtol,
            atol: rtol * 1e-3,
            ..SolverOptions::default()
        };
        let (sol, _) = solve_rk45(&rhs, 0.0, &[1.0], &[3.0], options).unwrap();
        errors.push((sol[0][0] - exact).abs().max(1e-16));
    }
    assert!(errors[0] > errors[1] && errors[1] > errors[2], "{errors:?}");
    // At least ~10x improvement per 100x tolerance tightening.
    assert!(errors[0] / errors[2] > 1e2, "{errors:?}");
}

#[test]
fn bdf_restart_after_integrate_to_boundary() {
    // integrate_to must land exactly and continue cleanly from sample
    // boundaries (history rescaling path).
    let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -y[0]);
    let mut solver = Bdf::new(&rhs, 0.0, &[1.0], SolverOptions::default());
    let mut t_accumulated = 0.0;
    for step in 1..=30 {
        let t = step as f64 * 0.17;
        solver.integrate_to(t).unwrap();
        assert!((solver.t - t).abs() < 1e-12);
        t_accumulated = t;
    }
    let exact = (-t_accumulated).exp();
    assert!(
        (solver.y()[0] - exact).abs() < 1e-4,
        "{} vs {exact}",
        solver.y()[0]
    );
}

#[test]
fn zero_length_integration_is_noop() {
    let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -y[0]);
    let mut solver = Bdf::new(&rhs, 1.0, &[0.7], SolverOptions::default());
    solver.integrate_to(1.0).unwrap();
    assert_eq!(solver.y()[0], 0.7);
    assert_eq!(solver.stats().steps, 0);
}

#[test]
fn mass_action_nonnegativity_with_tolerances() {
    // A -> B with large rate: concentrations must not go significantly
    // negative at solver tolerances.
    let rhs = FnRhs::new(2, |_t, y: &[f64], ydot: &mut [f64]| {
        ydot[0] = -50.0 * y[0];
        ydot[1] = 50.0 * y[0];
    });
    let times: Vec<f64> = (1..=40).map(|i| i as f64 * 0.05).collect();
    let (sol, _) = solve_bdf(&rhs, 0.0, &[1.0, 0.0], &times, SolverOptions::default()).unwrap();
    for y in &sol {
        assert!(y[0] > -1e-7, "{y:?}");
        assert!((y[0] + y[1] - 1.0).abs() < 1e-6, "{y:?}");
    }
}

#[test]
fn adams_and_rk_agree_on_nonlinear_system() {
    // Lotka-Volterra-ish: compare two independent integrators.
    let rhs = FnRhs::new(2, |_t, y: &[f64], ydot: &mut [f64]| {
        ydot[0] = y[0] * (1.0 - y[1]);
        ydot[1] = y[1] * (y[0] - 1.0);
    });
    let tight = SolverOptions {
        rtol: 1e-9,
        atol: 1e-12,
        ..SolverOptions::default()
    };
    let (a, _) = solve_rk45(&rhs, 0.0, &[1.2, 0.8], &[5.0], tight).unwrap();
    let (b, _) = solve_adams(&rhs, 0.0, &[1.2, 0.8], &[5.0], tight).unwrap();
    for (x, y) in a[0].iter().zip(&b[0]) {
        assert!((x - y).abs() < 1e-6, "{x} vs {y}");
    }
}
