//! Property tests: the fill-reducing sparse LU agrees with the dense
//! LU baseline on random sparse systems across the density range the
//! auto heuristic spans (1–50% occupancy), and the two paths agree on
//! singularity.

use proptest::prelude::*;
use std::sync::Arc;

use rms_solver::{CscMatrix, LinalgError, Lu, Matrix, SparseLu, SymbolicLu};

/// A random sparse matrix as dense rows: full structural diagonal (the
/// kernel pivots on the diagonal, like the iteration matrix I − hβJ it
/// exists for), off-diagonals kept with probability `density`, and the
/// diagonal boosted so the system is comfortably non-singular.
fn random_system(n: usize, density: f64, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = proptest::TestRng::new(seed);
    let mut rows = vec![vec![0.0; n]; n];
    for (i, row) in rows.iter_mut().enumerate() {
        let mut off_sum = 0.0;
        for (j, v) in row.iter_mut().enumerate() {
            if i != j && (rng.next_u64() as f64 / u64::MAX as f64) < density {
                *v = (rng.next_u64() as f64 / u64::MAX as f64) * 4.0 - 2.0;
                off_sum += v.abs();
            }
        }
        // Diagonally dominant: conditioning stays benign at every
        // density, so 1e-12 agreement tests the algebra, not luck.
        row[i] = off_sum + 1.0 + (rng.next_u64() as f64 / u64::MAX as f64);
    }
    rows
}

/// Factor `rows` with the sparse kernel and solve for `b`.
fn sparse_solve(rows: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let dense = Matrix::from_rows(&refs);
    let csc = CscMatrix::from_dense(&dense);
    let symbolic = Arc::new(SymbolicLu::analyze(&csc.pattern())?);
    let mut lu = SparseLu::new(symbolic);
    lu.refactor(&csc)?;
    let mut x = b.to_vec();
    lu.solve_in_place(&mut x)?;
    Ok(x)
}

/// Factor `rows` with the dense baseline and solve for `b`.
fn dense_solve(rows: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let lu = Lu::factor(&Matrix::from_rows(&refs))?;
    let mut x = b.to_vec();
    lu.solve_in_place(&mut x)?;
    Ok(x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sparse and dense solutions agree to 1e-12 relative across the
    /// 1–50% density range.
    #[test]
    fn sparse_lu_matches_dense_lu(
        (n, density, seed) in (4usize..40, 0.01f64..0.50, 0u64..u64::MAX),
    ) {
        let rows = random_system(n, density, seed);
        let b: Vec<f64> = (0..n).map(|i| 0.3 + (i % 5) as f64 * 0.2).collect();

        let xs = sparse_solve(&rows, &b).expect("well-conditioned system");
        let xd = dense_solve(&rows, &b).expect("well-conditioned system");

        let norm = xd.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
        for (i, (a, d)) in xs.iter().zip(&xd).enumerate() {
            let rel = (a - d).abs() / norm;
            prop_assert!(
                rel <= 1e-12,
                "component {i} disagrees: sparse {a}, dense {d}, rel {rel:.3e} \
                 (n={n}, density={density:.2})"
            );
        }
    }

    /// A structurally present but numerically zero row is singular to
    /// both kernels — the sparse path must report the same error the
    /// dense path does, not produce garbage.
    #[test]
    fn sparse_and_dense_agree_on_singularity(
        (n, density, seed, dead) in (4usize..24, 0.05f64..0.40, 0u64..u64::MAX, 0usize..24),
    ) {
        let mut rows = random_system(n, density, seed);
        let dead = dead % n;
        for v in &mut rows[dead] {
            *v = 0.0;
        }
        let b = vec![1.0; n];

        let sparse = sparse_solve(&rows, &b);
        let dense = dense_solve(&rows, &b);
        prop_assert!(
            matches!(sparse, Err(LinalgError::Singular(_))),
            "sparse kernel accepted a singular matrix: {sparse:?}"
        );
        prop_assert!(
            matches!(dense, Err(LinalgError::Singular(_))),
            "dense kernel accepted a singular matrix: {dense:?}"
        );
    }
}
