//! The ODE problem interface and solver configuration.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cooperative cancellation flag shared between an integrator and an
/// external supervisor (e.g. a deadline watcher). Cloning shares the
/// flag; once [`cancel`](CancelToken::cancel) fires, every solver the
/// token is attached to returns [`SolverError::Cancelled`] at its next
/// step boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A first-order ODE right-hand side `y' = f(t, y)`.
///
/// Chemistry systems are autonomous (no explicit `t`), but the interface
/// carries `t` for generality and for test problems with closed forms.
pub trait OdeRhs {
    /// System dimension.
    fn dim(&self) -> usize;

    /// Evaluate `f(t, y)` into `ydot`.
    fn eval(&self, t: f64, y: &[f64], ydot: &mut [f64]);

    /// Evaluate `f(t, ·)` for several states at once: `ys` stacks the
    /// states row-major (`k * dim()` long) and `ydots` receives the
    /// derivatives in the same layout. The colored finite-difference
    /// Jacobian calls this with all perturbed states of a sweep so
    /// batched evaluators (e.g. an `ExecTape` in structure-of-arrays
    /// mode) can amortize instruction dispatch across states. The
    /// default loops the scalar [`eval`](OdeRhs::eval).
    fn eval_batch(&self, t: f64, ys: &[f64], ydots: &mut [f64]) {
        let n = self.dim().max(1);
        for (y, ydot) in ys.chunks(n).zip(ydots.chunks_mut(n)) {
            self.eval(t, y, ydot);
        }
    }
}

/// The parameter coupling of a forward sensitivity problem: for
/// parameters `p_1..p_m`, the sensitivity vectors `s_k = ∂y/∂p_k` obey
/// `ṡ_k = J(t, y)·s_k + ∂f/∂p_k(t, y)`. The Jacobian part comes from the
/// solver's existing [`crate::jacobian::AnalyticJacobian`] machinery;
/// this trait supplies the inhomogeneous term `∂f/∂p_k`.
pub trait SensitivityRhs {
    /// Number of parameters `m`.
    fn n_params(&self) -> usize;

    /// Evaluate `∂f/∂p` at `(t, y)` into `out`, laid out parameter-major:
    /// `out[k*dim + i] = ∂f_i/∂p_k` with `dim = y.len()`. `out` has
    /// length `n_params() * y.len()`; its previous contents are
    /// unspecified, so implementations must write every slot (zeroing
    /// first when scattering a sparse pattern).
    fn eval_dfdp(&self, t: f64, y: &[f64], out: &mut [f64]);
}

impl<T: SensitivityRhs + ?Sized> SensitivityRhs for &T {
    fn n_params(&self) -> usize {
        (**self).n_params()
    }

    fn eval_dfdp(&self, t: f64, y: &[f64], out: &mut [f64]) {
        (**self).eval_dfdp(t, y, out)
    }
}

/// Wrap a closure as an [`OdeRhs`].
pub struct FnRhs<F: Fn(f64, &[f64], &mut [f64])> {
    dim: usize,
    f: F,
}

impl<F: Fn(f64, &[f64], &mut [f64])> FnRhs<F> {
    /// Create from a dimension and closure.
    pub fn new(dim: usize, f: F) -> FnRhs<F> {
        FnRhs { dim, f }
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeRhs for FnRhs<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn eval(&self, t: f64, y: &[f64], ydot: &mut [f64]) {
        (self.f)(t, y, ydot)
    }
}

impl<T: OdeRhs + ?Sized> OdeRhs for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn eval(&self, t: f64, y: &[f64], ydot: &mut [f64]) {
        (**self).eval(t, y, ydot)
    }

    fn eval_batch(&self, t: f64, ys: &[f64], ydots: &mut [f64]) {
        (**self).eval_batch(t, ys, ydots)
    }
}

/// Which direct method factors the implicit-solver iteration matrix
/// `I − hβJ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinearSolver {
    /// Dense LU with partial pivoting — O(n³) per refactorization,
    /// O(n²) memory, robust for any matrix.
    Dense,
    /// Fill-reducing sparse LU (see `sparse`): symbolic analysis once on
    /// the static sparsity, numeric refactorizations touch only
    /// nnz(L+U) entries.
    Sparse,
    /// Pick sparse when a sparsity pattern is available and the
    /// iteration matrix is large and sparse enough to win
    /// (`n ≥ 64` and density ≤ 10%); dense otherwise.
    #[default]
    Auto,
}

impl std::str::FromStr for LinearSolver {
    type Err = String;

    fn from_str(s: &str) -> Result<LinearSolver, String> {
        match s {
            "dense" => Ok(LinearSolver::Dense),
            "sparse" => Ok(LinearSolver::Sparse),
            "auto" => Ok(LinearSolver::Auto),
            other => Err(format!(
                "unknown linear solver '{other}' (expected dense, sparse, or auto)"
            )),
        }
    }
}

impl std::fmt::Display for LinearSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LinearSolver::Dense => "dense",
            LinearSolver::Sparse => "sparse",
            LinearSolver::Auto => "auto",
        })
    }
}

/// Solver tolerances and limits (IMSL-style defaults).
#[derive(Debug, Clone, Copy)]
pub struct SolverOptions {
    /// Relative tolerance.
    pub rtol: f64,
    /// Absolute tolerance.
    pub atol: f64,
    /// Initial step size (`None` = choose automatically).
    pub h_init: Option<f64>,
    /// Smallest permitted step.
    pub h_min: f64,
    /// Largest permitted step (`INFINITY` = unbounded).
    pub h_max: f64,
    /// Step budget per `solve` call.
    pub max_steps: usize,
    /// Direct method for the Newton iteration matrix (implicit solvers).
    pub linear_solver: LinearSolver,
    /// Include the forward-sensitivity blocks in the BDF step-error
    /// estimate. Off by default (the CVODES convention): the state alone
    /// drives step selection, so a sensitivity-augmented solve costs the
    /// same step sequence as a plain one. Switch on when the
    /// sensitivities themselves must be integrated to the requested
    /// tolerance rather than riding the state's step sizes.
    pub sens_error_control: bool,
}

impl Default for SolverOptions {
    fn default() -> SolverOptions {
        SolverOptions {
            rtol: 1e-6,
            atol: 1e-9,
            h_init: None,
            h_min: 1e-14,
            h_max: f64::INFINITY,
            max_steps: 1_000_000,
            linear_solver: LinearSolver::default(),
            sens_error_control: false,
        }
    }
}

/// Counters describing the work a solve performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Accepted steps.
    pub steps: usize,
    /// Rejected (error-test-failed) steps.
    pub rejected: usize,
    /// Right-hand-side evaluations.
    pub fevals: usize,
    /// Jacobian evaluations (implicit solvers).
    pub jevals: usize,
    /// LU factorizations (implicit solvers).
    pub factorizations: usize,
    /// Newton iterations (implicit solvers).
    pub newton_iters: usize,
    /// nnz(L+U) of the current iteration-matrix factorization: the
    /// sparse factor size on the sparse path, `n²` on the dense path,
    /// zero before the first factorization. A gauge, not a counter.
    pub fill_nnz: usize,
}

/// Solver failures.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // `t` is always "the time the failure occurred"
pub enum SolverError {
    /// Step size underflowed `h_min` at time `t`.
    StepSizeUnderflow { t: f64 },
    /// `max_steps` exhausted before reaching the end time.
    TooManySteps { t: f64, max_steps: usize },
    /// Newton iteration failed to converge and the step could not be
    /// reduced further.
    NewtonDivergence { t: f64 },
    /// The iteration matrix became singular.
    SingularIterationMatrix { t: f64 },
    /// The right-hand side produced a non-finite value.
    NonFiniteDerivative { t: f64 },
    /// Inconsistent arguments (e.g. `tend <= t0` or wrong y0 length).
    BadInput(String),
    /// An attached [`CancelToken`] fired; integration stopped at `t`.
    Cancelled { t: f64 },
}

impl SolverError {
    /// Was this failure an external cancellation (deadline/shutdown)
    /// rather than a numerical breakdown? Fallback chains must not retry
    /// a cancelled solve with a different method.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, SolverError::Cancelled { .. })
    }
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::StepSizeUnderflow { t } => write!(f, "step size underflow at t={t}"),
            SolverError::TooManySteps { t, max_steps } => {
                write!(f, "exceeded {max_steps} steps at t={t}")
            }
            SolverError::NewtonDivergence { t } => write!(f, "Newton divergence at t={t}"),
            SolverError::SingularIterationMatrix { t } => {
                write!(f, "singular iteration matrix at t={t}")
            }
            SolverError::NonFiniteDerivative { t } => {
                write!(f, "non-finite derivative at t={t}")
            }
            SolverError::BadInput(msg) => write!(f, "bad input: {msg}"),
            SolverError::Cancelled { t } => write!(f, "cancelled at t={t}"),
        }
    }
}

impl std::error::Error for SolverError {}

/// Weighted RMS error norm used by every error test:
/// `sqrt(mean((e_i / (atol + rtol*|y_i|))^2))`.
pub fn error_norm(err: &[f64], y: &[f64], rtol: f64, atol: f64) -> f64 {
    let n = err.len().max(1);
    let sum: f64 = err
        .iter()
        .zip(y)
        .map(|(e, yv)| {
            let w = atol + rtol * yv.abs();
            (e / w) * (e / w)
        })
        .sum();
    (sum / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_rhs_wraps_closure() {
        let rhs = FnRhs::new(2, |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -y[0];
            ydot[1] = y[0];
        });
        assert_eq!(rhs.dim(), 2);
        let mut out = vec![0.0; 2];
        rhs.eval(0.0, &[2.0, 0.0], &mut out);
        assert_eq!(out, vec![-2.0, 2.0]);
    }

    #[test]
    fn error_norm_scales() {
        // err equal to tolerance weights -> norm 1.
        let y = [1.0, 10.0];
        let rtol = 1e-3;
        let atol = 1e-6;
        let err = [atol + rtol * 1.0, atol + rtol * 10.0];
        let norm = error_norm(&err, &y, rtol, atol);
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_options_sane() {
        let o = SolverOptions::default();
        assert!(o.rtol > 0.0 && o.atol > 0.0 && o.max_steps > 0);
    }
}
