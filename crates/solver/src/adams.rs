//! Adams–Bashforth–Moulton predictor–corrector (PECE) integrator.
//!
//! IMSL's `imsl_f_ode_adams_gear` switches between Adams methods
//! (non-stiff regime) and Gear BDF (stiff regime); we expose the Adams
//! side as its own integrator. Fixed 4th order with adaptive step by
//! predictor–corrector difference, RK4 self-starting.

use crate::problem::{error_norm, CancelToken, OdeRhs, SolveStats, SolverError, SolverOptions};

/// Adams–Bashforth 4 coefficients (predictor).
const AB4: [f64; 4] = [55.0 / 24.0, -59.0 / 24.0, 37.0 / 24.0, -9.0 / 24.0];
/// Adams–Moulton 4 coefficients (corrector; f(t+1) first).
const AM4: [f64; 4] = [9.0 / 24.0, 19.0 / 24.0, -5.0 / 24.0, 1.0 / 24.0];

/// Adams PECE integrator.
pub struct Adams<'a, R: OdeRhs> {
    rhs: &'a R,
    options: SolverOptions,
    /// Current time.
    pub t: f64,
    /// Current state.
    pub y: Vec<f64>,
    /// Derivative history: `f[0]` = f at current point, `f[i]` = i steps
    /// back, uniformly spaced by `h`.
    f_history: Vec<Vec<f64>>,
    h: f64,
    stats: SolveStats,
    /// Cooperative cancellation flag, checked once per step.
    cancel: Option<CancelToken>,
}

impl<'a, R: OdeRhs> Adams<'a, R> {
    /// Initialize at `(t0, y0)`.
    pub fn new(rhs: &'a R, t0: f64, y0: &[f64], options: SolverOptions) -> Adams<'a, R> {
        assert_eq!(y0.len(), rhs.dim(), "y0 length must equal system dimension");
        Adams {
            rhs,
            options,
            t: t0,
            y: y0.to_vec(),
            f_history: Vec::new(),
            h: options.h_init.unwrap_or(1e-4),
            stats: SolveStats::default(),
            cancel: None,
        }
    }

    /// Attach a [`CancelToken`]; once it fires, `integrate_to` returns
    /// [`SolverError::Cancelled`] at the next step boundary.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Work counters.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Integrate to `tend`.
    pub fn integrate_to(&mut self, tend: f64) -> Result<(), SolverError> {
        if tend < self.t {
            return Err(SolverError::BadInput(format!(
                "tend {tend} before current t {}",
                self.t
            )));
        }
        let n = self.y.len();
        let mut y_pred = vec![0.0; n];
        let mut f_pred = vec![0.0; n];
        let mut y_corr = vec![0.0; n];
        while self.t < tend {
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return Err(SolverError::Cancelled { t: self.t });
                }
            }
            if self.stats.steps + self.stats.rejected >= self.options.max_steps {
                return Err(SolverError::TooManySteps {
                    t: self.t,
                    max_steps: self.options.max_steps,
                });
            }
            let h = self.h.min(tend - self.t).min(self.options.h_max);
            if h < self.options.h_min {
                return Err(SolverError::StepSizeUnderflow { t: self.t });
            }
            if h != self.h {
                // Non-uniform step: drop history and restart (RK4 priming).
                self.f_history.clear();
                self.h = h;
            }

            if self.f_history.len() < 4 {
                self.rk4_step()?;
                continue;
            }

            // Predictor (AB4).
            for i in 0..n {
                let mut acc = 0.0;
                for (j, c) in AB4.iter().enumerate() {
                    acc += c * self.f_history[j][i];
                }
                y_pred[i] = self.y[i] + self.h * acc;
            }
            // Evaluate.
            let t_next = self.t + self.h;
            self.rhs.eval(t_next, &y_pred, &mut f_pred);
            self.stats.fevals += 1;
            // Corrector (AM4).
            for i in 0..n {
                let mut acc = AM4[0] * f_pred[i];
                for (j, c) in AM4.iter().enumerate().skip(1) {
                    acc += c * self.f_history[j - 1][i];
                }
                y_corr[i] = self.y[i] + self.h * acc;
            }
            if y_corr.iter().any(|v| !v.is_finite()) {
                return Err(SolverError::NonFiniteDerivative { t: self.t });
            }
            // Milne-style error estimate from PC difference.
            let err_vec: Vec<f64> = y_corr
                .iter()
                .zip(&y_pred)
                .map(|(c, p)| (c - p) * (19.0 / 270.0))
                .collect();
            let err = error_norm(&err_vec, &y_corr, self.options.rtol, self.options.atol);
            if err <= 1.0 {
                self.t = t_next;
                self.y.copy_from_slice(&y_corr);
                // Final E of PECE: evaluate f at the corrected point.
                let mut f_new = vec![0.0; n];
                self.rhs.eval(self.t, &self.y, &mut f_new);
                self.stats.fevals += 1;
                self.f_history.insert(0, f_new);
                self.f_history.truncate(4);
                self.stats.steps += 1;
                if err < 0.1 {
                    // Grow (and re-prime, since the spacing changes).
                    let grown = (self.h * 2.0).min(self.options.h_max);
                    if grown != self.h {
                        self.h = grown;
                        self.f_history.clear();
                    }
                }
            } else {
                self.stats.rejected += 1;
                self.h *= 0.5;
                self.f_history.clear();
            }
        }
        Ok(())
    }

    /// One RK4 priming step at the current `h` (classic Gear/Adams
    /// startup), recording the derivative history.
    fn rk4_step(&mut self) -> Result<(), SolverError> {
        let n = self.y.len();
        let h = self.h;
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut tmp = vec![0.0; n];
        self.rhs.eval(self.t, &self.y, &mut k1);
        for i in 0..n {
            tmp[i] = self.y[i] + 0.5 * h * k1[i];
        }
        self.rhs.eval(self.t + 0.5 * h, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = self.y[i] + 0.5 * h * k2[i];
        }
        self.rhs.eval(self.t + 0.5 * h, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = self.y[i] + h * k3[i];
        }
        self.rhs.eval(self.t + h, &tmp, &mut k4);
        self.stats.fevals += 4;
        if self.f_history.is_empty() {
            self.f_history.insert(0, k1.clone());
        }
        for i in 0..n {
            self.y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        if self.y.iter().any(|v| !v.is_finite()) {
            return Err(SolverError::NonFiniteDerivative { t: self.t });
        }
        self.t += h;
        let mut f_new = vec![0.0; n];
        self.rhs.eval(self.t, &self.y, &mut f_new);
        self.stats.fevals += 1;
        self.f_history.insert(0, f_new);
        self.f_history.truncate(4);
        self.stats.steps += 1;
        Ok(())
    }
}

/// Driver mirroring [`crate::bdf::solve_bdf`].
pub fn solve_adams<R: OdeRhs>(
    rhs: &R,
    t0: f64,
    y0: &[f64],
    times: &[f64],
    options: SolverOptions,
) -> Result<(Vec<Vec<f64>>, SolveStats), SolverError> {
    let mut solver = Adams::new(rhs, t0, y0, options);
    let mut out = Vec::with_capacity(times.len());
    for &t in times {
        solver.integrate_to(t)?;
        out.push(solver.y.clone());
    }
    Ok((out, solver.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnRhs;

    #[test]
    fn decay_accuracy() {
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -y[0]);
        let (sol, stats) =
            solve_adams(&rhs, 0.0, &[1.0], &[1.0, 2.0], SolverOptions::default()).unwrap();
        assert!((sol[0][0] - (-1.0f64).exp()).abs() < 1e-5, "{}", sol[0][0]);
        assert!((sol[1][0] - (-2.0f64).exp()).abs() < 1e-5);
        assert!(stats.steps > 4);
    }

    #[test]
    fn oscillator_phase() {
        let rhs = FnRhs::new(2, |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = y[1];
            ydot[1] = -y[0];
        });
        let options = SolverOptions {
            rtol: 1e-8,
            atol: 1e-10,
            ..SolverOptions::default()
        };
        let (sol, _) =
            solve_adams(&rhs, 0.0, &[1.0, 0.0], &[std::f64::consts::PI], options).unwrap();
        // Half period: y -> (-1, 0).
        assert!((sol[0][0] + 1.0).abs() < 1e-5, "{}", sol[0][0]);
        assert!(sol[0][1].abs() < 1e-5);
    }

    #[test]
    fn multistep_cheaper_than_rk_per_step() {
        // At steady spacing, Adams PECE costs 2 fevals/step; RK45 costs 6.
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -0.5 * y[0]);
        let options = SolverOptions {
            h_init: Some(0.01),
            h_max: 0.01, // pin the spacing so no re-priming happens
            ..SolverOptions::default()
        };
        let (_, stats) = solve_adams(&rhs, 0.0, &[1.0], &[10.0], options).unwrap();
        let per_step = stats.fevals as f64 / stats.steps as f64;
        assert!(per_step < 2.5, "fevals/step {per_step}");
        assert!(stats.steps >= 990, "steps {}", stats.steps);
    }

    #[test]
    fn rejects_backwards() {
        let rhs = FnRhs::new(1, |_t, _y: &[f64], ydot: &mut [f64]| ydot[0] = 0.0);
        let mut solver = Adams::new(&rhs, 5.0, &[0.0], SolverOptions::default());
        assert!(solver.integrate_to(1.0).is_err());
    }
}
