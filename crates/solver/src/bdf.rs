//! Gear-type BDF stiff solver — our stand-in for IMSL's
//! `imsl_f_ode_adams_gear`.
//!
//! "Because chemical reactions proceed to equilibrium, where molecules and
//! their variants effectively complete their reactions in different
//! epochs, the differential equations modeling the behavior of such
//! systems are stiff. Therefore we use the Adams-Gear solver." (§4.1)
//!
//! Implementation: variable-order (1–5), quasi-uniform-step backward
//! differentiation formulas with a modified-Newton corrector. The
//! iteration matrix `I − hβJ` is LU-factored and reused until the step,
//! order, or convergence behaviour forces a refresh; step-size changes
//! rescale the solution history by polynomial interpolation.

use crate::coloring::{fd_jacobian_colored_into, SparsityPattern};
use crate::jacobian::{fd_jacobian_into, AnalyticJacobian, FdWorkspace};
use crate::linalg::{CsrMatrix, Lu, Matrix};
use crate::problem::{
    error_norm, CancelToken, LinearSolver, OdeRhs, SensitivityRhs, SolveStats, SolverError,
    SolverOptions,
};
use crate::sparse::SparseNewton;

/// BDF α coefficients (history weights) and β (f weight) per order.
/// `y_{n+1} = Σ_i ALPHA[k][i] · y_{n−i} + BETA[k] · h · f(t_{n+1}, y_{n+1})`
const ALPHA: [&[f64]; 6] = [
    &[],
    &[1.0],
    &[4.0 / 3.0, -1.0 / 3.0],
    &[18.0 / 11.0, -9.0 / 11.0, 2.0 / 11.0],
    &[48.0 / 25.0, -36.0 / 25.0, 16.0 / 25.0, -3.0 / 25.0],
    &[
        300.0 / 137.0,
        -300.0 / 137.0,
        200.0 / 137.0,
        -75.0 / 137.0,
        12.0 / 137.0,
    ],
];
const BETA: [f64; 6] = [0.0, 1.0, 2.0 / 3.0, 6.0 / 11.0, 12.0 / 25.0, 60.0 / 137.0];

/// Maximum BDF order (order 6 is not zero-stable enough in practice;
/// IMSL's Gear implementation also tops out at 5).
pub const MAX_ORDER: usize = 5;

const NEWTON_MAX_ITERS: usize = 8;
const NEWTON_TOL: f64 = 0.1; // in units of the weighted error norm

/// Refinement iterations for each sensitivity solve. The system is
/// linear, so with an up-to-date factorization one pass suffices; the cap
/// only matters when the factorization has gone stale against the fresh
/// Jacobian the residual is formed with.
const SENS_MAX_ITERS: usize = 10;

/// Where the solver obtains its Jacobian.
pub enum JacobianSource<'a> {
    /// Compiler-emitted analytic Jacobian: exact values on an exact
    /// sparsity, one provider evaluation per refresh, stored sparse.
    AnalyticTape(&'a dyn AnalyticJacobian),
    /// Colored finite differences over a known sparsity pattern
    /// (one RHS evaluation per color).
    FdColored(SparsityPattern),
    /// Dense finite differences: n RHS evaluations per refresh
    /// (the default).
    FdDense,
}

/// [`JacobianSource`] after setup (coloring precomputed once).
enum JacSource<'a> {
    Analytic(&'a dyn AnalyticJacobian),
    Colored {
        pattern: SparsityPattern,
        colors: Vec<u32>,
        n_colors: usize,
    },
    Dense,
}

/// The cached Jacobian, in whichever storage its source produces.
enum JacStore {
    Dense(Matrix),
    Sparse(CsrMatrix),
}

/// The iteration-matrix factorization. The sparse kernel is persistent:
/// its symbolic analysis (ordering + fill pattern) is computed once from
/// the static sparsity and every later step-size or order change only
/// repeats the numeric refactorization. Validity is tracked separately in
/// `Bdf::factor_for`, so invalidation never discards the kernel.
enum Factor {
    None,
    Dense(Lu),
    Sparse(SparseNewton),
}

/// `Auto` picks the sparse path only for systems at least this large …
const AUTO_MIN_DIM: usize = 64;
/// … whose iteration matrix is at most this dense (nnz/n²).
const AUTO_MAX_DENSITY: f64 = 0.10;

/// Reusable buffers for the step loop. Everything the corrector touches
/// per iteration lives here, so Newton iterations (and whole solves, once
/// warm) allocate nothing.
#[derive(Default)]
struct Scratch {
    /// Predictor output.
    y_pred: Vec<f64>,
    /// Constant part of the corrector equation.
    rhs_const: Vec<f64>,
    /// Newton iterate.
    y: Vec<f64>,
    /// RHS value at the iterate.
    f: Vec<f64>,
    /// Corrector residual.
    residual: Vec<f64>,
    /// Newton update (LU solve in place).
    delta: Vec<f64>,
    /// Error-estimate vector.
    err: Vec<f64>,
    /// Finite-difference Jacobian scratch.
    fd: FdWorkspace,
    /// Retired history vectors, recycled instead of reallocated.
    spare: Vec<Vec<f64>>,
    /// Double buffer for history rescaling.
    history_alt: Vec<Vec<f64>>,
    /// `∂f/∂p` at the accepted point, parameter-major.
    dfdp: Vec<f64>,
    /// Right-hand sides of the sensitivity systems, row-major `n × p`.
    sens_b: Vec<f64>,
    /// Iterates of the blocked sensitivity solve, row-major `n × p`.
    sens_x: Vec<f64>,
    /// `J·X` product scratch for sensitivity refinement.
    jv: Vec<f64>,
    /// Parameter indices still unconverged after the first refinement pass.
    active: Vec<usize>,
    /// Compacted iterate / right-hand-side blocks (`n × active.len()`)
    /// for the continued refinement of the unconverged columns.
    sens_xq: Vec<f64>,
    sens_bq: Vec<f64>,
}

/// Gear BDF integrator state.
pub struct Bdf<'a, R: OdeRhs> {
    rhs: &'a R,
    options: SolverOptions,
    /// Current time.
    pub t: f64,
    /// History: `history[0]` is the current state, `history[i]` the state
    /// `i` steps back, uniformly spaced by `h`.
    history: Vec<Vec<f64>>,
    h: f64,
    order: usize,
    /// Factorization of `I − hβJ` (dense LU or persistent sparse kernel).
    factor: Factor,
    /// The (h, order) the factorization was built for; `None` = stale.
    factor_for: Option<(f64, usize)>,
    /// All-columns pattern synthesized when the sparse path is forced on
    /// a dense-FD Jacobian source (built once).
    full_pattern: Option<SparsityPattern>,
    jac: Option<JacStore>,
    /// How Jacobians are produced: analytic tape, colored FD, or dense FD.
    source: JacSource<'a>,
    /// Parameter coupling for forward sensitivity analysis; when set, the
    /// history vectors carry `n_params` extra sensitivity blocks.
    sens: Option<&'a dyn SensitivityRhs>,
    stats: SolveStats,
    /// Reusable step-loop buffers (taken with `mem::take` around the hot
    /// path to sidestep aliasing with `&mut self` helpers).
    scratch: Scratch,
    /// Cooperative cancellation flag, checked once per step.
    cancel: Option<CancelToken>,
}

impl<'a, R: OdeRhs> Bdf<'a, R> {
    /// Initialize at `(t0, y0)`.
    pub fn new(rhs: &'a R, t0: f64, y0: &[f64], options: SolverOptions) -> Bdf<'a, R> {
        assert_eq!(y0.len(), rhs.dim(), "y0 length must equal system dimension");
        Bdf {
            rhs,
            options,
            t: t0,
            history: vec![y0.to_vec()],
            h: options.h_init.unwrap_or(1e-6),
            order: 1,
            factor: Factor::None,
            factor_for: None,
            full_pattern: None,
            jac: None,
            source: JacSource::Dense,
            sens: None,
            stats: SolveStats::default(),
            scratch: Scratch::default(),
            cancel: None,
        }
    }

    /// Attach a [`CancelToken`]; once it fires, `integrate_to` returns
    /// [`SolverError::Cancelled`] at the next step boundary.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Provide the Jacobian sparsity pattern; the solver colors its
    /// columns once and uses compressed finite differences thereafter.
    /// Shorthand for [`JacobianSource::FdColored`].
    ///
    /// [`JacobianSource::FdColored`]: JacobianSource::FdColored
    pub fn set_sparsity(&mut self, pattern: SparsityPattern) {
        self.set_jacobian_source(JacobianSource::FdColored(pattern));
    }

    /// Choose how Jacobians are obtained (default: dense finite
    /// differences). Invalidates any cached Jacobian and iteration
    /// matrix.
    pub fn set_jacobian_source(&mut self, source: JacobianSource<'a>) {
        self.source = match source {
            JacobianSource::AnalyticTape(provider) => JacSource::Analytic(provider),
            JacobianSource::FdColored(pattern) => {
                let (colors, n_colors) = pattern.color_columns();
                JacSource::Colored {
                    pattern,
                    colors,
                    n_colors,
                }
            }
            JacobianSource::FdDense => JacSource::Dense,
        };
        self.jac = None;
        // The sparsity may have changed with the source: drop the sparse
        // kernel (and its symbolic analysis) along with the numeric factor.
        self.factor = Factor::None;
        self.factor_for = None;
        self.full_pattern = None;
    }

    /// Attach a parameter-sensitivity source: the state is augmented with
    /// `n_params` zero-initialized sensitivity blocks (`∂y0/∂p = 0` — the
    /// initial condition does not depend on the rate constants) and every
    /// accepted step advances `ṡ_k = J·s_k + ∂f/∂p_k` alongside `y`,
    /// reusing the step's iteration-matrix factorization for all `k`.
    ///
    /// Must be called before the first step.
    pub fn set_sensitivities(&mut self, sens: &'a dyn SensitivityRhs) {
        assert!(
            self.history.len() == 1 && self.stats.steps == 0,
            "sensitivities must be attached before the first step"
        );
        let n = self.rhs.dim();
        self.history[0].truncate(n);
        self.history[0].resize(n * (1 + sens.n_params()), 0.0);
        self.sens = Some(sens);
    }

    /// Current state. With sensitivities attached this is the *augmented*
    /// state: the first `dim` entries are `y`, followed by the blocks of
    /// [`sensitivities`](Bdf::sensitivities).
    pub fn y(&self) -> &[f64] {
        &self.history[0]
    }

    /// Current sensitivity blocks, parameter-major: entry `k*dim + i` is
    /// `∂y_i/∂p_k`. Empty when no sensitivity source is attached.
    pub fn sensitivities(&self) -> &[f64] {
        &self.history[0][self.rhs.dim()..]
    }

    /// Work counters.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Current order (for tests/diagnostics).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Integrate to `tend`, landing exactly on it.
    pub fn integrate_to(&mut self, tend: f64) -> Result<(), SolverError> {
        // Detach the scratch so helper methods can borrow `self` freely;
        // reattached before returning (buffers survive across calls).
        let mut s = std::mem::take(&mut self.scratch);
        let result = self.integrate_to_inner(tend, &mut s);
        self.scratch = s;
        result
    }

    fn integrate_to_inner(&mut self, tend: f64, s: &mut Scratch) -> Result<(), SolverError> {
        if tend < self.t {
            return Err(SolverError::BadInput(format!(
                "tend {tend} before current t {}",
                self.t
            )));
        }
        while self.t < tend {
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return Err(SolverError::Cancelled { t: self.t });
                }
            }
            if self.stats.steps + self.stats.rejected >= self.options.max_steps {
                return Err(SolverError::TooManySteps {
                    t: self.t,
                    max_steps: self.options.max_steps,
                });
            }
            // Clamp the step to land on tend (rescaling history to match).
            let remaining = tend - self.t;
            if self.h > remaining {
                self.change_step(remaining, s);
            }
            self.step(s)?;
        }
        Ok(())
    }

    /// Take one step of size `self.h` at the current order.
    fn step(&mut self, s: &mut Scratch) -> Result<(), SolverError> {
        // State dimension: the Newton corrector runs on the first `n`
        // entries only; `ntot` includes the sensitivity blocks, which the
        // predictor, error test, and history machinery treat uniformly.
        let n = self.rhs.dim();
        let ntot = self.history[0].len();
        loop {
            let k = self.order.min(self.history.len()).min(MAX_ORDER);
            let alpha = ALPHA[k];
            let beta = BETA[k];
            let t_next = self.t + self.h;

            // Predictor: polynomial extrapolation of the history.
            self.extrapolate_into(&mut s.y_pred);

            // Ensure a current iteration matrix. (Temporarily moves the
            // predictor out of the scratch so `s` stays lendable.)
            let y_pred = std::mem::take(&mut s.y_pred);
            let ensured = self.ensure_iteration_matrix(beta, &y_pred[..n], t_next, s);
            s.y_pred = y_pred;
            ensured?;

            // Constant part of the corrector equation:
            // y − hβ f(t,y) − Σ αᵢ y_{n−i} = 0. Accumulated over the full
            // augmented history: block `k` is the constant part of the
            // k-th sensitivity system.
            s.rhs_const.clear();
            s.rhs_const.resize(ntot, 0.0);
            for (i, &a) in alpha.iter().enumerate() {
                for (dst, &h) in s.rhs_const.iter_mut().zip(&self.history[i]) {
                    *dst += a * h;
                }
            }

            // Modified Newton iteration from the predictor.
            s.y.clear();
            s.y.extend_from_slice(&s.y_pred);
            s.f.clear();
            s.f.resize(n, 0.0);
            s.residual.clear();
            s.residual.resize(n, 0.0);
            let mut converged = false;
            for _ in 0..NEWTON_MAX_ITERS {
                self.rhs.eval(t_next, &s.y[..n], &mut s.f);
                self.stats.fevals += 1;
                for j in 0..n {
                    s.residual[j] = s.y[j] - beta * self.h * s.f[j] - s.rhs_const[j];
                }
                if s.residual.iter().any(|v| !v.is_finite()) {
                    return Err(SolverError::NonFiniteDerivative { t: self.t });
                }
                s.delta.clear();
                s.delta.extend_from_slice(&s.residual);
                self.solve_factor_in_place(&mut s.delta)?;
                self.stats.newton_iters += 1;
                for j in 0..n {
                    s.y[j] -= s.delta[j];
                }
                let norm = error_norm(&s.delta, &s.y[..n], self.options.rtol, self.options.atol);
                if norm < NEWTON_TOL {
                    converged = true;
                    break;
                }
            }

            if !converged {
                // Refresh Jacobian once; then cut the step.
                let y_pred = std::mem::take(&mut s.y_pred);
                let recovered = self.try_recover(t_next, &y_pred[..n], beta, s);
                s.y_pred = y_pred;
                if recovered? {
                    continue;
                }
                return Err(SolverError::NewtonDivergence { t: self.t });
            }

            // Advance the sensitivity blocks: each system shares the
            // iteration matrix `I − hβJ`, so all of them reuse this
            // step's factorization.
            if self.sens.is_some() {
                self.propagate_sensitivities(t_next, beta, s)?;
            }

            // Error estimate: corrector minus predictor, scaled for order.
            // By default only the state block participates (the CVODES
            // convention), so sensitivity-augmented solves keep the plain
            // solve's step sequence; `sens_error_control` widens the norm
            // to the whole augmented vector.
            let err_len = if self.options.sens_error_control {
                s.y.len()
            } else {
                n
            };
            s.err.clear();
            s.err.extend(
                s.y[..err_len]
                    .iter()
                    .zip(&s.y_pred[..err_len])
                    .map(|(a, b)| (a - b) / (k as f64 + 1.0)),
            );
            let err = error_norm(
                &s.err,
                &s.y[..err_len],
                self.options.rtol,
                self.options.atol,
            );

            if err <= 1.0 {
                // Accept: push the new state into the history, recycling a
                // retired vector instead of allocating.
                self.t += self.h;
                let mut slot = s.spare.pop().unwrap_or_default();
                slot.clear();
                slot.extend_from_slice(&s.y);
                self.history.insert(0, slot);
                let keep = MAX_ORDER + 1;
                while self.history.len() > keep {
                    s.spare.push(self.history.pop().expect("len checked"));
                }
                self.stats.steps += 1;
                // Raise order while history allows (classic Gear startup).
                if self.order < MAX_ORDER && self.history.len() > self.order {
                    self.order += 1;
                }
                // Step growth, conservative.
                let factor = if err == 0.0 {
                    2.0
                } else {
                    (0.9 * err.powf(-1.0 / (k as f64 + 1.0))).clamp(0.5, 2.0)
                };
                if !(0.9..=1.1).contains(&factor) {
                    let new_h = (self.h * factor).min(self.options.h_max);
                    self.change_step(new_h, s);
                }
                return Ok(());
            }

            // Reject: shrink the step.
            self.stats.rejected += 1;
            let factor = (0.9 * err.powf(-1.0 / (k as f64 + 1.0))).clamp(0.1, 0.5);
            let new_h = self.h * factor;
            if new_h < self.options.h_min {
                return Err(SolverError::StepSizeUnderflow { t: self.t });
            }
            // Lower the order as well when failing at high order.
            if self.order > 1 {
                self.order -= 1;
            }
            self.change_step(new_h, s);
        }
    }

    /// Polynomial extrapolation of the (uniform) history to `t + h`,
    /// written into `out`.
    fn extrapolate_into(&self, out: &mut Vec<f64>) {
        let m = self.order.min(self.history.len());
        let n = self.history[0].len();
        // Lagrange weights for nodes x_i = −i evaluated at x = 1.
        let mut weights = [0.0; MAX_ORDER + 1];
        for (i, w) in weights.iter_mut().enumerate().take(m) {
            let mut num = 1.0;
            let mut den = 1.0;
            for j in 0..m {
                if i == j {
                    continue;
                }
                num *= 1.0 + j as f64; // (x − x_j) at x=1 with x_j = −j
                den *= j as f64 - i as f64; // (x_i − x_j) = −i + j
            }
            *w = num / den;
        }
        out.clear();
        out.resize(n, 0.0);
        for (i, w) in weights.iter().enumerate().take(m) {
            for (dst, &h) in out.iter_mut().zip(&self.history[i]) {
                *dst += w * h;
            }
        }
    }

    /// Rescale history from spacing `self.h` to `new_h` via polynomial
    /// interpolation through the existing history points.
    fn change_step(&mut self, new_h: f64, s: &mut Scratch) {
        if new_h == self.h || self.history.len() == 1 {
            self.h = new_h;
            self.factor_for = None;
            return;
        }
        let m = self.history.len();
        let n = self.history[0].len();
        let ratio = new_h / self.h;
        // Build the rescaled history in the double buffer, then swap.
        while s.history_alt.len() < m {
            s.history_alt.push(s.spare.pop().unwrap_or_default());
        }
        while s.history_alt.len() > m {
            s.spare.push(s.history_alt.pop().expect("len checked"));
        }
        for (target, point) in s.history_alt.iter_mut().enumerate() {
            point.clear();
            if target == 0 {
                point.extend_from_slice(&self.history[0]);
                continue;
            }
            point.resize(n, 0.0);
            // Evaluate the interpolating polynomial through nodes x_i = −i
            // (old spacing) at x = −target·ratio.
            let x = -(target as f64) * ratio;
            for i in 0..m {
                let mut w = 1.0;
                for j in 0..m {
                    if i == j {
                        continue;
                    }
                    w *= (x + j as f64) / (j as f64 - i as f64);
                }
                for (dst, &h) in point.iter_mut().zip(&self.history[i]) {
                    *dst += w * h;
                }
            }
        }
        std::mem::swap(&mut self.history, &mut s.history_alt);
        self.h = new_h;
        self.factor_for = None;
    }

    /// Make sure the factorization matches the current `(h, order)`.
    fn ensure_iteration_matrix(
        &mut self,
        beta: f64,
        y: &[f64],
        t: f64,
        s: &mut Scratch,
    ) -> Result<(), SolverError> {
        let k = self.order;
        if let Some((h_built, k_built)) = self.factor_for {
            if h_built == self.h && k_built == k {
                return Ok(());
            }
        }
        if self.jac.is_none() {
            self.refresh_jacobian(t, y, s);
        }
        self.build_lu(beta)?;
        Ok(())
    }

    fn refresh_jacobian(&mut self, t: f64, y: &[f64], s: &mut Scratch) {
        let n = y.len();
        match &self.source {
            JacSource::Analytic(provider) => {
                let pattern = provider.pattern();
                // Reuse the sparse store (the pattern never changes for a
                // given source); build it on first refresh only.
                if !matches!(self.jac, Some(JacStore::Sparse(_))) {
                    let csr = CsrMatrix::from_rows(
                        (0..pattern.n_rows()).map(|i| pattern.row(i)),
                        pattern.n_cols(),
                    )
                    .expect("SparsityPattern rows are ascending and in range");
                    self.jac = Some(JacStore::Sparse(csr));
                }
                let csr = match &mut self.jac {
                    Some(JacStore::Sparse(csr)) => csr,
                    _ => unreachable!("just stored"),
                };
                provider.eval_values(t, y, csr.vals_mut());
                // One tape-pair evaluation; counted as a single feval for
                // comparability with the FD paths.
                self.stats.fevals += 1;
            }
            JacSource::Colored {
                pattern,
                colors,
                n_colors,
            } => {
                s.f.clear();
                s.f.resize(n, 0.0);
                self.rhs.eval(t, y, &mut s.f);
                let jac = dense_store(&mut self.jac, pattern.n_rows(), n);
                let jac_fevals = fd_jacobian_colored_into(
                    self.rhs, t, y, &s.f, pattern, colors, *n_colors, jac, &mut s.fd,
                );
                self.stats.fevals += 1 + jac_fevals;
            }
            JacSource::Dense => {
                s.f.clear();
                s.f.resize(n, 0.0);
                self.rhs.eval(t, y, &mut s.f);
                let jac = dense_store(&mut self.jac, n, n);
                let jac_fevals = fd_jacobian_into(self.rhs, t, y, &s.f, jac, &mut s.fd);
                self.stats.fevals += 1 + jac_fevals;
            }
        }
        self.stats.jevals += 1;
    }

    /// Does the configured [`LinearSolver`] resolve to the sparse path for
    /// the current Jacobian source? `Auto` requires a known sparsity (the
    /// dense-FD source has none worth exploiting) that is big and sparse
    /// enough to beat dense LU.
    fn want_sparse(&self) -> bool {
        match self.options.linear_solver {
            LinearSolver::Dense => false,
            LinearSolver::Sparse => true,
            LinearSolver::Auto => {
                let n = self.rhs.dim();
                let jac_nnz = match &self.source {
                    JacSource::Analytic(provider) => provider.pattern().nnz(),
                    JacSource::Colored { pattern, .. } => pattern.nnz(),
                    JacSource::Dense => return false,
                };
                // The iteration matrix adds at most the n diagonal slots.
                n >= AUTO_MIN_DIM
                    && (jac_nnz + n) as f64 <= AUTO_MAX_DENSITY * (n as f64) * (n as f64)
            }
        }
    }

    fn build_lu(&mut self, beta: f64) -> Result<(), SolverError> {
        let scale = self.h * beta;
        if self.want_sparse() {
            self.build_sparse(scale)?;
        } else {
            self.build_dense(scale)?;
        }
        self.stats.factorizations += 1;
        self.factor_for = Some((self.h, self.order));
        Ok(())
    }

    fn build_dense(&mut self, scale: f64) -> Result<(), SolverError> {
        let m = match self.jac.as_ref().expect("jacobian refreshed") {
            JacStore::Dense(jac) => {
                let n = jac.rows();
                let mut m = Matrix::identity(n);
                for i in 0..n {
                    for j in 0..n {
                        m[(i, j)] -= scale * jac[(i, j)];
                    }
                }
                m
            }
            // Sparsity-aware assembly: only the structural nonzeros are
            // touched.
            JacStore::Sparse(csr) => csr.assemble_iteration_matrix(scale),
        };
        let n = m.rows();
        let lu = Lu::factor(&m).map_err(|_| SolverError::SingularIterationMatrix { t: self.t })?;
        self.factor = Factor::Dense(lu);
        self.stats.fill_nnz = n * n;
        Ok(())
    }

    /// Refactor `I − scale·J` on the sparse path, creating the persistent
    /// kernel (minimum-degree ordering + symbolic analysis) on first use.
    fn build_sparse(&mut self, scale: f64) -> Result<(), SolverError> {
        let t = self.t;
        let singular = |_| SolverError::SingularIterationMatrix { t };
        // The pattern the Jacobian store is gathered through.
        let pattern: &SparsityPattern = match &self.source {
            JacSource::Analytic(provider) => provider.pattern(),
            JacSource::Colored { pattern, .. } => pattern,
            JacSource::Dense => {
                // Forced sparse on a dense-FD source: treat every entry as
                // structural. No fill advantage, but uniform semantics.
                let n = self.rhs.dim();
                let fits = matches!(&self.full_pattern, Some(p) if p.n_rows() == n);
                if !fits {
                    let rows = vec![(0..n as u32).collect::<Vec<u32>>(); n];
                    self.full_pattern = Some(SparsityPattern::new(rows, n));
                }
                self.full_pattern.as_ref().expect("just stored")
            }
        };
        if !matches!(self.factor, Factor::Sparse(_)) {
            self.factor = Factor::Sparse(SparseNewton::new(pattern).map_err(singular)?);
        }
        let kernel = match &mut self.factor {
            Factor::Sparse(kernel) => kernel,
            _ => unreachable!("just stored"),
        };
        match self.jac.as_ref().expect("jacobian refreshed") {
            JacStore::Sparse(csr) => kernel.factor_from_csr(csr, scale).map_err(singular)?,
            JacStore::Dense(jac) => kernel
                .factor_from_dense(jac, pattern, scale)
                .map_err(singular)?,
        }
        self.stats.fill_nnz = kernel.fill_nnz();
        Ok(())
    }

    /// Solve `(I − hβJ)v = v` in place with the current factorization.
    fn solve_factor_in_place(&self, v: &mut [f64]) -> Result<(), SolverError> {
        match &self.factor {
            Factor::Dense(lu) => lu.solve_in_place(v),
            Factor::Sparse(kernel) => kernel.solve_in_place(v),
            Factor::None => unreachable!("factorization ensured before solves"),
        }
        .map_err(|_| SolverError::SingularIterationMatrix { t: self.t })
    }

    /// Solve `(I − hβJ)X = B` in place with the current factorization for
    /// `ncols` right-hand sides at once; `xs` is row-major `n × ncols`.
    fn solve_factor_multi_in_place(&self, xs: &mut [f64], ncols: usize) -> Result<(), SolverError> {
        match &self.factor {
            Factor::Dense(lu) => lu.solve_multi_in_place(xs, ncols),
            Factor::Sparse(kernel) => kernel.solve_multi_in_place(xs, ncols),
            Factor::None => unreachable!("factorization ensured before solves"),
        }
        .map_err(|_| SolverError::SingularIterationMatrix { t: self.t })
    }

    /// `out = J·X` with the cached Jacobian for a row-major `n × ncols`
    /// block `x`: each Jacobian entry is loaded once and streamed across
    /// every column, allocation-free after warmup.
    fn jac_matvec_multi(&self, x: &[f64], ncols: usize, out: &mut Vec<f64>) {
        let n = x.len() / ncols.max(1);
        out.clear();
        out.resize(n * ncols, 0.0);
        match self.jac.as_ref().expect("jacobian refreshed") {
            JacStore::Dense(m) => {
                for i in 0..n {
                    let row_out = &mut out[i * ncols..(i + 1) * ncols];
                    for j in 0..n {
                        let v = m[(i, j)];
                        if v != 0.0 {
                            let row_x = &x[j * ncols..(j + 1) * ncols];
                            for c in 0..ncols {
                                row_out[c] += v * row_x[c];
                            }
                        }
                    }
                }
            }
            JacStore::Sparse(csr) => {
                for i in 0..n {
                    let (cols, vals) = csr.row(i);
                    let row_out = &mut out[i * ncols..(i + 1) * ncols];
                    for (&j, &v) in cols.iter().zip(vals) {
                        let row_x = &x[j as usize * ncols..(j as usize + 1) * ncols];
                        for c in 0..ncols {
                            row_out[c] += v * row_x[c];
                        }
                    }
                }
            }
        }
    }

    /// Solve the discrete sensitivity systems at the accepted corrector
    /// point, writing the results into the sensitivity blocks of `s.y`.
    ///
    /// Differentiating the corrector equation
    /// `y_{n+1} − hβ f(t,y_{n+1}) = Σᵢ αᵢ y_{n−i}` with respect to `p_k`
    /// gives a *linear* system per parameter,
    /// `(I − hβJ)s_k = Σᵢ αᵢ s_{k,n−i} + hβ ∂f/∂p_k`, whose matrix is
    /// exactly the Newton iteration matrix — so one factorization serves
    /// the state and every sensitivity. The factorization may be lagged
    /// (built at an earlier point); it is used as a preconditioner in a
    /// residual-refinement loop against the *fresh* Jacobian, falling
    /// back to an exact refactorization only if refinement stalls.
    fn propagate_sensitivities(
        &mut self,
        t_next: f64,
        beta: f64,
        s: &mut Scratch,
    ) -> Result<(), SolverError> {
        let n = self.rhs.dim();
        let sens = self.sens.expect("caller checked");
        let p = sens.n_params();
        if p == 0 {
            return Ok(());
        }
        // Fresh Jacobian at the accepted point: the sensitivity equation
        // is exact only with J evaluated where the corrector converged.
        // (The refresh also benefits the next step's iteration matrix.)
        let y_new = std::mem::take(&mut s.y);
        self.refresh_jacobian(t_next, &y_new[..n], s);
        s.dfdp.clear();
        s.dfdp.resize(n * p, 0.0);
        sens.eval_dfdp(t_next, &y_new[..n], &mut s.dfdp);
        self.stats.fevals += 1;
        s.y = y_new;
        let hb = self.h * beta;
        // Gather all p systems into row-major n×p blocks: the matvec and
        // triangular solves then stream each matrix entry across every
        // parameter at once instead of re-walking the factors p times.
        s.sens_b.clear();
        s.sens_b.resize(n * p, 0.0);
        s.sens_x.clear();
        s.sens_x.resize(n * p, 0.0);
        for k in 0..p {
            let off = n * (k + 1);
            for i in 0..n {
                s.sens_b[i * p + k] = s.rhs_const[off + i] + hb * s.dfdp[k * n + i];
                s.sens_x[i * p + k] = s.y_pred[off + i];
            }
        }
        // Start from the predictor blocks and refine: with the current
        // factorization M ≈ (I − hβJ), one pass of
        // X ← X − M⁻¹((I − hβJ)X − B) over all p columns. The predictor
        // is close and M is at most one step stale, so most columns
        // finish here.
        let (rtol, atol) = (self.options.rtol, self.options.atol);
        self.jac_matvec_multi(&s.sens_x, p, &mut s.jv);
        s.delta.clear();
        s.delta
            .extend((0..n * p).map(|i| s.sens_x[i] - hb * s.jv[i] - s.sens_b[i]));
        self.solve_factor_multi_in_place(&mut s.delta, p)?;
        for i in 0..n * p {
            s.sens_x[i] -= s.delta[i];
        }
        // Columns whose correction was already negligible are done; the
        // rest are compacted into an `n × q` block and refined further,
        // so the continued iteration pays only for the stragglers.
        s.active.clear();
        for k in 0..p {
            let norm = column_norm(&s.delta, &s.sens_x, n, p, k, rtol, atol);
            // A NaN norm keeps the column active: the continued
            // iteration (or its refactor-and-solve fallback) deals
            // with it.
            if norm.is_nan() || norm >= NEWTON_TOL {
                s.active.push(k);
            }
        }
        if !s.active.is_empty() {
            let q = s.active.len();
            s.sens_xq.clear();
            s.sens_xq.resize(n * q, 0.0);
            s.sens_bq.clear();
            s.sens_bq.resize(n * q, 0.0);
            for (c, &k) in s.active.iter().enumerate() {
                for i in 0..n {
                    s.sens_xq[i * q + c] = s.sens_x[i * p + k];
                    s.sens_bq[i * q + c] = s.sens_b[i * p + k];
                }
            }
            let mut converged = false;
            for _ in 1..SENS_MAX_ITERS {
                self.jac_matvec_multi(&s.sens_xq, q, &mut s.jv);
                s.delta.clear();
                s.delta
                    .extend((0..n * q).map(|i| s.sens_xq[i] - hb * s.jv[i] - s.sens_bq[i]));
                self.solve_factor_multi_in_place(&mut s.delta, q)?;
                for i in 0..n * q {
                    s.sens_xq[i] -= s.delta[i];
                }
                let norm = max_column_norm(&s.delta, &s.sens_xq, n, q, rtol, atol);
                if norm < NEWTON_TOL {
                    converged = true;
                    break;
                }
                if !norm.is_finite() {
                    break;
                }
            }
            if !converged {
                // Refinement stalled on a stale factorization: rebuild it
                // from the fresh Jacobian (making M exact) and solve the
                // remaining systems directly.
                self.build_lu(beta)?;
                s.sens_xq.copy_from_slice(&s.sens_bq);
                self.solve_factor_multi_in_place(&mut s.sens_xq, q)?;
            }
            for (c, &k) in s.active.iter().enumerate() {
                for i in 0..n {
                    s.sens_x[i * p + k] = s.sens_xq[i * q + c];
                }
            }
        }
        if s.sens_x.iter().any(|v| !v.is_finite()) {
            return Err(SolverError::NonFiniteDerivative { t: self.t });
        }
        for k in 0..p {
            let off = n * (k + 1);
            for i in 0..n {
                s.y[off + i] = s.sens_x[i * p + k];
            }
        }
        Ok(())
    }

    /// Newton failed: refresh the Jacobian (once per step attempt) or cut
    /// the step. Returns `Ok(true)` to retry the step.
    fn try_recover(
        &mut self,
        t_next: f64,
        y_pred: &[f64],
        beta: f64,
        s: &mut Scratch,
    ) -> Result<bool, SolverError> {
        self.stats.rejected += 1;
        // First remedy: fresh Jacobian at the predicted point.
        let stale_jacobian = self.jac.is_some();
        if stale_jacobian {
            self.refresh_jacobian(t_next, y_pred, s);
            self.build_lu(beta)?;
            // Also cut the step: a stale Jacobian plus a large step is the
            // common cause.
        }
        let new_h = self.h * 0.25;
        if new_h < self.options.h_min {
            return Ok(false);
        }
        self.order = 1;
        self.change_step(new_h, s);
        Ok(true)
    }
}

/// The worst per-column weighted RMS norm over the `p` interleaved
/// columns of row-major `n × p` blocks `err`/`y` — the blocked-solve
/// analogue of [`error_norm`]. Returns a non-finite value as soon as one
/// column produces one, so callers can bail out of refinement.
fn max_column_norm(err: &[f64], y: &[f64], n: usize, p: usize, rtol: f64, atol: f64) -> f64 {
    let mut worst = 0.0f64;
    for k in 0..p {
        let norm = column_norm(err, y, n, p, k, rtol, atol);
        if !norm.is_finite() {
            return norm;
        }
        worst = worst.max(norm);
    }
    worst
}

/// The weighted RMS norm of column `k` of row-major `n × p` blocks
/// `err`/`y` — [`error_norm`] over one interleaved column.
fn column_norm(err: &[f64], y: &[f64], n: usize, p: usize, k: usize, rtol: f64, atol: f64) -> f64 {
    let mut sum = 0.0;
    for i in 0..n {
        let e = err[i * p + k];
        let w = atol + rtol * y[i * p + k].abs();
        sum += (e / w) * (e / w);
    }
    (sum / n.max(1) as f64).sqrt()
}

/// The dense Jacobian store, reused across refreshes (reallocated only if
/// the shape changed, which it never does for a fixed problem).
fn dense_store(jac: &mut Option<JacStore>, rows: usize, cols: usize) -> &mut Matrix {
    let fits = matches!(jac, Some(JacStore::Dense(m)) if m.rows() == rows && m.cols() == cols);
    if !fits {
        *jac = Some(JacStore::Dense(Matrix::zeros(rows, cols)));
    }
    match jac {
        Some(JacStore::Dense(m)) => m,
        _ => unreachable!("just stored"),
    }
}

/// Driver: integrate from `t0`, sampling the state at the requested times.
pub fn solve_bdf<R: OdeRhs>(
    rhs: &R,
    t0: f64,
    y0: &[f64],
    times: &[f64],
    options: SolverOptions,
) -> Result<(Vec<Vec<f64>>, SolveStats), SolverError> {
    solve_bdf_with_jacobian(rhs, t0, y0, times, options, JacobianSource::FdDense)
}

/// [`solve_bdf`] with an explicit Jacobian source.
pub fn solve_bdf_with_jacobian<'a, R: OdeRhs>(
    rhs: &'a R,
    t0: f64,
    y0: &[f64],
    times: &[f64],
    options: SolverOptions,
    source: JacobianSource<'a>,
) -> Result<(Vec<Vec<f64>>, SolveStats), SolverError> {
    let mut solver = Bdf::new(rhs, t0, y0, options);
    solver.set_jacobian_source(source);
    let mut out = Vec::with_capacity(times.len());
    for &t in times {
        solver.integrate_to(t)?;
        out.push(solver.y().to_vec());
    }
    Ok((out, solver.stats()))
}

/// [`solve_bdf_with_jacobian`] with forward sensitivities: integrates the
/// state and `∂y/∂p` together, sampling both at the requested times.
///
/// Returns `(states, sensitivities, stats)`: `states[r]` is `y(times[r])`
/// and `sensitivities[r]` the corresponding `∂y/∂p`, parameter-major
/// (`k*dim + i` = `∂y_i/∂p_k`), starting from `∂y/∂p = 0` at `t0`.
#[allow(clippy::type_complexity)]
pub fn solve_bdf_sensitivities<'a, R: OdeRhs>(
    rhs: &'a R,
    sens: &'a dyn SensitivityRhs,
    t0: f64,
    y0: &[f64],
    times: &[f64],
    options: SolverOptions,
    source: JacobianSource<'a>,
) -> Result<(Vec<Vec<f64>>, Vec<Vec<f64>>, SolveStats), SolverError> {
    let mut solver = Bdf::new(rhs, t0, y0, options);
    solver.set_jacobian_source(source);
    solver.set_sensitivities(sens);
    let n = rhs.dim();
    let mut states = Vec::with_capacity(times.len());
    let mut sensitivities = Vec::with_capacity(times.len());
    for &t in times {
        solver.integrate_to(t)?;
        states.push(solver.y()[..n].to_vec());
        sensitivities.push(solver.sensitivities().to_vec());
    }
    Ok((states, sensitivities, solver.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnRhs;
    use crate::rk45::solve_rk45;

    #[test]
    fn exponential_decay() {
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -2.0 * y[0]);
        let (sol, stats) =
            solve_bdf(&rhs, 0.0, &[1.0], &[1.0, 2.0], SolverOptions::default()).unwrap();
        assert!((sol[0][0] - (-2.0f64).exp()).abs() < 1e-4, "{}", sol[0][0]);
        assert!((sol[1][0] - (-4.0f64).exp()).abs() < 1e-4, "{}", sol[1][0]);
        assert!(stats.jevals >= 1);
        assert!(stats.factorizations >= 1);
    }

    #[test]
    fn order_ramps_up() {
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -y[0]);
        let mut solver = Bdf::new(&rhs, 0.0, &[1.0], SolverOptions::default());
        solver.integrate_to(1.0).unwrap();
        assert!(solver.order() >= 3, "order stuck at {}", solver.order());
    }

    #[test]
    fn stiff_decay_cheap_for_bdf_expensive_for_rk() {
        // lambda = -1e6 over t in [0, 1]: textbook stiffness.
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -1e6 * y[0]);
        let options = SolverOptions {
            max_steps: 100_000,
            ..SolverOptions::default()
        };
        let (sol, bdf_stats) = solve_bdf(&rhs, 0.0, &[1.0], &[1.0], options).unwrap();
        assert!(sol[0][0].abs() < 1e-6);
        // RK45 with the same budget fails outright (see rk45 tests) or
        // needs ~1e6 steps; BDF should be orders of magnitude cheaper.
        assert!(
            bdf_stats.steps < 10_000,
            "BDF took {} steps",
            bdf_stats.steps
        );
        let rk = solve_rk45(
            &rhs,
            0.0,
            &[1.0],
            &[1.0],
            SolverOptions {
                max_steps: bdf_stats.steps * 10,
                ..SolverOptions::default()
            },
        );
        assert!(rk.is_err(), "RK45 should not manage with 10x BDF's steps");
    }

    #[test]
    fn robertson_problem() {
        // The classic stiff chemistry benchmark.
        let rhs = FnRhs::new(3, |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -0.04 * y[0] + 1e4 * y[1] * y[2];
            ydot[1] = 0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] * y[1];
            ydot[2] = 3e7 * y[1] * y[1];
        });
        let options = SolverOptions {
            rtol: 1e-8,
            atol: 1e-12,
            max_steps: 200_000,
            ..SolverOptions::default()
        };
        let (sol, _) = solve_bdf(&rhs, 0.0, &[1.0, 0.0, 0.0], &[0.4], options).unwrap();
        // Reference values (Hairer & Wanner).
        assert!((sol[0][0] - 0.9851721).abs() < 1e-4, "{}", sol[0][0]);
        assert!((sol[0][1] - 3.386396e-5).abs() < 1e-6, "{}", sol[0][1]);
        assert!((sol[0][2] - 0.0147940).abs() < 1e-4, "{}", sol[0][2]);
        // Mass conservation.
        let total: f64 = sol[0].iter().sum();
        assert!((total - 1.0).abs() < 1e-7);
    }

    #[test]
    fn equilibrium_epochs() {
        // Two species completing reactions in different epochs (the
        // stiffness pattern §4.1 describes): fast A->B, slow B->C.
        let rhs = FnRhs::new(3, |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -1e5 * y[0];
            ydot[1] = 1e5 * y[0] - 0.1 * y[1];
            ydot[2] = 0.1 * y[1];
        });
        let (sol, _) = solve_bdf(
            &rhs,
            0.0,
            &[1.0, 0.0, 0.0],
            &[50.0],
            SolverOptions {
                max_steps: 100_000,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        // At t=50: A gone, B ~ exp(-5), C = rest.
        assert!(sol[0][0].abs() < 1e-8);
        assert!((sol[0][1] - (-5.0f64).exp()).abs() < 1e-3);
        let total: f64 = sol[0].iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exact_landing_on_sample_times() {
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -y[0]);
        let times: Vec<f64> = (1..=20).map(|i| i as f64 * 0.25).collect();
        let (sol, _) = solve_bdf(&rhs, 0.0, &[1.0], &times, SolverOptions::default()).unwrap();
        for (t, s) in times.iter().zip(&sol) {
            assert!(
                (s[0] - (-t).exp()).abs() < 1e-5,
                "t={t}: {} vs {}",
                s[0],
                (-t).exp()
            );
        }
    }

    #[test]
    fn sparse_jacobian_matches_dense_solution_with_fewer_fevals() {
        use crate::coloring::SparsityPattern;
        // Stiff tridiagonal chain.
        let n = 40;
        let rhs = FnRhs::new(n, move |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -1e3 * y[0];
            for i in 1..y.len() {
                ydot[i] = 1e3 * y[i - 1] - (1.0 + i as f64) * y[i];
            }
        });
        let y0: Vec<f64> = std::iter::once(1.0)
            .chain(std::iter::repeat(0.0))
            .take(n)
            .collect();
        let options = SolverOptions {
            max_steps: 100_000,
            ..SolverOptions::default()
        };
        let mut dense = Bdf::new(&rhs, 0.0, &y0, options);
        dense.integrate_to(1.0).unwrap();
        let mut sparse = Bdf::new(&rhs, 0.0, &y0, options);
        let rows = (0..n)
            .map(|i| {
                if i == 0 {
                    vec![0u32]
                } else {
                    vec![i as u32 - 1, i as u32]
                }
            })
            .collect();
        sparse.set_sparsity(SparsityPattern::new(rows, n));
        sparse.integrate_to(1.0).unwrap();
        for (a, b) in dense.y().iter().zip(sparse.y()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        // Newton iterations dominate total fevals; the colored Jacobian
        // saves (n - n_colors) evaluations per refresh.
        let saved = dense.stats().fevals - sparse.stats().fevals;
        assert!(
            saved >= sparse.stats().jevals * (n / 2),
            "saved {saved} over {} jacobian refreshes (n = {n})",
            sparse.stats().jevals
        );
    }

    #[test]
    fn analytic_jacobian_matches_fd_with_fewer_fevals() {
        // Same stiff tridiagonal chain, but with the exact Jacobian
        // supplied through the AnalyticTape source.
        struct ChainJac {
            pattern: SparsityPattern,
        }
        impl crate::jacobian::AnalyticJacobian for ChainJac {
            fn pattern(&self) -> &SparsityPattern {
                &self.pattern
            }
            fn eval_values(&self, _t: f64, _y: &[f64], vals: &mut [f64]) {
                // Row 0: ∂f0/∂y0 = -1e3; row i: [1e3, -(1+i)].
                vals[0] = -1e3;
                let mut k = 1;
                let n = self.pattern.n_rows();
                for i in 1..n {
                    vals[k] = 1e3;
                    vals[k + 1] = -(1.0 + i as f64);
                    k += 2;
                }
            }
        }
        let n = 40;
        let rhs = FnRhs::new(n, move |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -1e3 * y[0];
            for i in 1..y.len() {
                ydot[i] = 1e3 * y[i - 1] - (1.0 + i as f64) * y[i];
            }
        });
        let y0: Vec<f64> = std::iter::once(1.0)
            .chain(std::iter::repeat(0.0))
            .take(n)
            .collect();
        let options = SolverOptions {
            max_steps: 100_000,
            ..SolverOptions::default()
        };
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                if i == 0 {
                    vec![0u32]
                } else {
                    vec![i as u32 - 1, i as u32]
                }
            })
            .collect();
        let provider = ChainJac {
            pattern: SparsityPattern::new(rows, n),
        };
        let times = [1.0];
        let (fd, fd_stats) = solve_bdf(&rhs, 0.0, &y0, &times, options).unwrap();
        let (analytic, an_stats) = solve_bdf_with_jacobian(
            &rhs,
            0.0,
            &y0,
            &times,
            options,
            JacobianSource::AnalyticTape(&provider),
        )
        .unwrap();
        for (a, b) in fd[0].iter().zip(&analytic[0]) {
            assert!((a - b).abs() < 1e-5 * a.abs().max(1.0), "{a} vs {b}");
        }
        assert!(an_stats.jevals >= 1);
        // Each dense-FD refresh costs n+1 fevals, each analytic refresh 1;
        // allow slack for small step-count differences between the runs.
        assert!(
            an_stats.fevals + (n / 2) * an_stats.jevals <= fd_stats.fevals,
            "analytic {an_stats:?} vs fd {fd_stats:?}"
        );
    }

    /// Dense `∂f/∂p` from a closure, for tests.
    struct FnSens<F: Fn(f64, &[f64], &mut [f64])> {
        n_params: usize,
        f: F,
    }
    impl<F: Fn(f64, &[f64], &mut [f64])> crate::problem::SensitivityRhs for FnSens<F> {
        fn n_params(&self) -> usize {
            self.n_params
        }
        fn eval_dfdp(&self, t: f64, y: &[f64], out: &mut [f64]) {
            (self.f)(t, y, out)
        }
    }

    #[test]
    fn decay_sensitivity_matches_closed_form() {
        // y' = -k y, y(0) = 1: y = e^{-kt}, ∂y/∂k = -t e^{-kt}.
        let k = 1.7;
        let rhs = FnRhs::new(1, move |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -k * y[0]
        });
        let sens = FnSens {
            n_params: 1,
            f: |_t, y: &[f64], out: &mut [f64]| out[0] = -y[0],
        };
        let options = SolverOptions {
            rtol: 1e-9,
            atol: 1e-12,
            // Closed-form comparison: integrate the sensitivity itself to
            // tolerance instead of riding the state's step sizes.
            sens_error_control: true,
            ..SolverOptions::default()
        };
        let times = [0.5, 1.0, 2.0];
        let (states, sensitivities, stats) = solve_bdf_sensitivities(
            &rhs,
            &sens,
            0.0,
            &[1.0],
            &times,
            options,
            JacobianSource::FdDense,
        )
        .unwrap();
        for (r, &t) in times.iter().enumerate() {
            let y_exact = (-k * t).exp();
            let s_exact = -t * y_exact;
            assert!(
                (states[r][0] - y_exact).abs() < 1e-6,
                "t={t}: y {} vs {y_exact}",
                states[r][0]
            );
            assert!(
                (sensitivities[r][0] - s_exact).abs() < 1e-5 * s_exact.abs().max(1e-3),
                "t={t}: s {} vs {s_exact}",
                sensitivities[r][0]
            );
        }
        assert!(stats.steps > 0);
    }

    #[test]
    fn two_parameter_sensitivities_match_fd() {
        // Robertson-like two-parameter system; cross-check ∂y/∂p against
        // central differences of full solves at tight tolerance.
        let solve = |p: &[f64], with_sens: bool| {
            let (k1, k2) = (p[0], p[1]);
            let rhs = FnRhs::new(2, move |_t, y: &[f64], ydot: &mut [f64]| {
                ydot[0] = -k1 * y[0] * y[0] + k2 * y[1];
                ydot[1] = k1 * y[0] * y[0] - k2 * y[1];
            });
            let options = SolverOptions {
                rtol: 1e-10,
                atol: 1e-13,
                ..SolverOptions::default()
            };
            let times = [2.0];
            if with_sens {
                let sens = FnSens {
                    n_params: 2,
                    f: |_t, y: &[f64], out: &mut [f64]| {
                        // Parameter-major: block 0 = ∂f/∂k1, block 1 = ∂f/∂k2.
                        out[0] = -y[0] * y[0];
                        out[1] = y[0] * y[0];
                        out[2] = y[1];
                        out[3] = -y[1];
                    },
                };
                let (st, se, _) = solve_bdf_sensitivities(
                    &rhs,
                    &sens,
                    0.0,
                    &[1.0, 0.0],
                    &times,
                    options,
                    JacobianSource::FdDense,
                )
                .unwrap();
                (st[0].clone(), se[0].clone())
            } else {
                let (st, _) = solve_bdf(&rhs, 0.0, &[1.0, 0.0], &times, options).unwrap();
                (st[0].clone(), Vec::new())
            }
        };
        let p0 = [0.9, 0.4];
        let (_, analytic) = solve(&p0, true);
        for k in 0..2 {
            // Step well above the solver noise floor (rtol/h amplifies
            // the solve-to-solve error of the FD reference).
            let h = 1e-4 * p0[k];
            let mut pp = p0;
            let mut pm = p0;
            pp[k] += h;
            pm[k] -= h;
            let (yp, _) = solve(&pp, false);
            let (ym, _) = solve(&pm, false);
            for i in 0..2 {
                let fd = (yp[i] - ym[i]) / (2.0 * h);
                let got = analytic[k * 2 + i];
                // The FD reference carries solve-to-solve noise (the step
                // sequence itself depends on p), so its accuracy is a few
                // orders above the solver tolerance.
                assert!(
                    (got - fd).abs() < 5e-5 * fd.abs().max(1e-2),
                    "∂y{i}/∂p{k}: analytic {got} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn sensitivities_empty_without_source() {
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -y[0]);
        let mut solver = Bdf::new(&rhs, 0.0, &[1.0], SolverOptions::default());
        solver.integrate_to(1.0).unwrap();
        assert!(solver.sensitivities().is_empty());
    }

    #[test]
    fn sensitivity_with_sparse_factorization() {
        // Force the sparse Newton kernel and make sure the shared
        // factorization also serves the sensitivity solves.
        let k = 2.5;
        let rhs = FnRhs::new(1, move |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -k * y[0]
        });
        let sens = FnSens {
            n_params: 1,
            f: |_t, y: &[f64], out: &mut [f64]| out[0] = -y[0],
        };
        let options = SolverOptions {
            rtol: 1e-9,
            atol: 1e-12,
            linear_solver: LinearSolver::Sparse,
            ..SolverOptions::default()
        };
        let (_, sensitivities, _) = solve_bdf_sensitivities(
            &rhs,
            &sens,
            0.0,
            &[1.0],
            &[1.0],
            options,
            JacobianSource::FdDense,
        )
        .unwrap();
        // ∂/∂k of y(t) = e^{−kt} at t = 1 is −t·e^{−kt} = −e^{−k}.
        let s_exact = -((-k * 1.0f64).exp());
        assert!(
            (sensitivities[0][0] - s_exact).abs() < 1e-5,
            "{} vs {s_exact}",
            sensitivities[0][0]
        );
    }

    #[test]
    fn backwards_time_rejected() {
        let rhs = FnRhs::new(1, |_t, _y: &[f64], ydot: &mut [f64]| ydot[0] = 0.0);
        let mut solver = Bdf::new(&rhs, 1.0, &[0.0], SolverOptions::default());
        assert!(matches!(
            solver.integrate_to(0.0),
            Err(SolverError::BadInput(_))
        ));
    }
}
