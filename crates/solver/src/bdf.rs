//! Gear-type BDF stiff solver — our stand-in for IMSL's
//! `imsl_f_ode_adams_gear`.
//!
//! "Because chemical reactions proceed to equilibrium, where molecules and
//! their variants effectively complete their reactions in different
//! epochs, the differential equations modeling the behavior of such
//! systems are stiff. Therefore we use the Adams-Gear solver." (§4.1)
//!
//! Implementation: variable-order (1–5), quasi-uniform-step backward
//! differentiation formulas with a modified-Newton corrector. The
//! iteration matrix `I − hβJ` is LU-factored and reused until the step,
//! order, or convergence behaviour forces a refresh; step-size changes
//! rescale the solution history by polynomial interpolation.

use crate::coloring::{fd_jacobian_colored, SparsityPattern};
use crate::jacobian::{fd_jacobian, AnalyticJacobian};
use crate::linalg::{CsrMatrix, Lu, Matrix};
use crate::problem::{error_norm, OdeRhs, SolveStats, SolverError, SolverOptions};

/// BDF α coefficients (history weights) and β (f weight) per order.
/// `y_{n+1} = Σ_i ALPHA[k][i] · y_{n−i} + BETA[k] · h · f(t_{n+1}, y_{n+1})`
const ALPHA: [&[f64]; 6] = [
    &[],
    &[1.0],
    &[4.0 / 3.0, -1.0 / 3.0],
    &[18.0 / 11.0, -9.0 / 11.0, 2.0 / 11.0],
    &[48.0 / 25.0, -36.0 / 25.0, 16.0 / 25.0, -3.0 / 25.0],
    &[
        300.0 / 137.0,
        -300.0 / 137.0,
        200.0 / 137.0,
        -75.0 / 137.0,
        12.0 / 137.0,
    ],
];
const BETA: [f64; 6] = [0.0, 1.0, 2.0 / 3.0, 6.0 / 11.0, 12.0 / 25.0, 60.0 / 137.0];

/// Maximum BDF order (order 6 is not zero-stable enough in practice;
/// IMSL's Gear implementation also tops out at 5).
pub const MAX_ORDER: usize = 5;

const NEWTON_MAX_ITERS: usize = 8;
const NEWTON_TOL: f64 = 0.1; // in units of the weighted error norm

/// Where the solver obtains its Jacobian.
pub enum JacobianSource<'a> {
    /// Compiler-emitted analytic Jacobian: exact values on an exact
    /// sparsity, one provider evaluation per refresh, stored sparse.
    AnalyticTape(&'a dyn AnalyticJacobian),
    /// Colored finite differences over a known sparsity pattern
    /// (one RHS evaluation per color).
    FdColored(SparsityPattern),
    /// Dense finite differences: n RHS evaluations per refresh
    /// (the default).
    FdDense,
}

/// [`JacobianSource`] after setup (coloring precomputed once).
enum JacSource<'a> {
    Analytic(&'a dyn AnalyticJacobian),
    Colored {
        pattern: SparsityPattern,
        colors: Vec<u32>,
        n_colors: usize,
    },
    Dense,
}

/// The cached Jacobian, in whichever storage its source produces.
enum JacStore {
    Dense(Matrix),
    Sparse(CsrMatrix),
}

/// Gear BDF integrator state.
pub struct Bdf<'a, R: OdeRhs> {
    rhs: &'a R,
    options: SolverOptions,
    /// Current time.
    pub t: f64,
    /// History: `history[0]` is the current state, `history[i]` the state
    /// `i` steps back, uniformly spaced by `h`.
    history: Vec<Vec<f64>>,
    h: f64,
    order: usize,
    /// Cached LU of `I − hβJ` plus the (h, order) it was built for.
    iter_matrix: Option<(Lu, f64, usize)>,
    jac: Option<JacStore>,
    /// How Jacobians are produced: analytic tape, colored FD, or dense FD.
    source: JacSource<'a>,
    stats: SolveStats,
}

impl<'a, R: OdeRhs> Bdf<'a, R> {
    /// Initialize at `(t0, y0)`.
    pub fn new(rhs: &'a R, t0: f64, y0: &[f64], options: SolverOptions) -> Bdf<'a, R> {
        assert_eq!(y0.len(), rhs.dim(), "y0 length must equal system dimension");
        Bdf {
            rhs,
            options,
            t: t0,
            history: vec![y0.to_vec()],
            h: options.h_init.unwrap_or(1e-6),
            order: 1,
            iter_matrix: None,
            jac: None,
            source: JacSource::Dense,
            stats: SolveStats::default(),
        }
    }

    /// Provide the Jacobian sparsity pattern; the solver colors its
    /// columns once and uses compressed finite differences thereafter.
    /// Shorthand for [`JacobianSource::FdColored`].
    ///
    /// [`JacobianSource::FdColored`]: JacobianSource::FdColored
    pub fn set_sparsity(&mut self, pattern: SparsityPattern) {
        self.set_jacobian_source(JacobianSource::FdColored(pattern));
    }

    /// Choose how Jacobians are obtained (default: dense finite
    /// differences). Invalidates any cached Jacobian and iteration
    /// matrix.
    pub fn set_jacobian_source(&mut self, source: JacobianSource<'a>) {
        self.source = match source {
            JacobianSource::AnalyticTape(provider) => JacSource::Analytic(provider),
            JacobianSource::FdColored(pattern) => {
                let (colors, n_colors) = pattern.color_columns();
                JacSource::Colored {
                    pattern,
                    colors,
                    n_colors,
                }
            }
            JacobianSource::FdDense => JacSource::Dense,
        };
        self.jac = None;
        self.iter_matrix = None;
    }

    /// Current state.
    pub fn y(&self) -> &[f64] {
        &self.history[0]
    }

    /// Work counters.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Current order (for tests/diagnostics).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Integrate to `tend`, landing exactly on it.
    pub fn integrate_to(&mut self, tend: f64) -> Result<(), SolverError> {
        if tend < self.t {
            return Err(SolverError::BadInput(format!(
                "tend {tend} before current t {}",
                self.t
            )));
        }
        while self.t < tend {
            if self.stats.steps + self.stats.rejected >= self.options.max_steps {
                return Err(SolverError::TooManySteps {
                    t: self.t,
                    max_steps: self.options.max_steps,
                });
            }
            // Clamp the step to land on tend (rescaling history to match).
            let remaining = tend - self.t;
            if self.h > remaining {
                self.change_step(remaining);
            }
            self.step()?;
        }
        Ok(())
    }

    /// Take one step of size `self.h` at the current order.
    fn step(&mut self) -> Result<(), SolverError> {
        let n = self.history[0].len();
        loop {
            let k = self.order.min(self.history.len()).min(MAX_ORDER);
            let alpha = ALPHA[k];
            let beta = BETA[k];
            let t_next = self.t + self.h;

            // Predictor: polynomial extrapolation of the history.
            let y_pred = self.extrapolate();

            // Ensure a current iteration matrix.
            self.ensure_iteration_matrix(beta, &y_pred, t_next)?;

            // Constant part of the corrector equation:
            // y − hβ f(t,y) − Σ αᵢ y_{n−i} = 0.
            let mut rhs_const = vec![0.0; n];
            for (i, &a) in alpha.iter().enumerate() {
                for j in 0..n {
                    rhs_const[j] += a * self.history[i][j];
                }
            }

            // Modified Newton iteration from the predictor.
            let mut y = y_pred.clone();
            let mut f = vec![0.0; n];
            let mut converged = false;
            let mut residual = vec![0.0; n];
            for _ in 0..NEWTON_MAX_ITERS {
                self.rhs.eval(t_next, &y, &mut f);
                self.stats.fevals += 1;
                for j in 0..n {
                    residual[j] = y[j] - beta * self.h * f[j] - rhs_const[j];
                }
                if residual.iter().any(|v| !v.is_finite()) {
                    return Err(SolverError::NonFiniteDerivative { t: self.t });
                }
                let (lu, _, _) = self.iter_matrix.as_ref().expect("ensured above");
                let mut delta = residual.clone();
                lu.solve_in_place(&mut delta)
                    .map_err(|_| SolverError::SingularIterationMatrix { t: self.t })?;
                self.stats.newton_iters += 1;
                for j in 0..n {
                    y[j] -= delta[j];
                }
                let norm = error_norm(&delta, &y, self.options.rtol, self.options.atol);
                if norm < NEWTON_TOL {
                    converged = true;
                    break;
                }
            }

            if !converged {
                // Refresh Jacobian once; then cut the step.
                if self.try_recover(t_next, &y_pred, beta)? {
                    continue;
                }
                return Err(SolverError::NewtonDivergence { t: self.t });
            }

            // Error estimate: corrector minus predictor, scaled for order.
            let err_vec: Vec<f64> = y
                .iter()
                .zip(&y_pred)
                .map(|(a, b)| (a - b) / (k as f64 + 1.0))
                .collect();
            let err = error_norm(&err_vec, &y, self.options.rtol, self.options.atol);

            if err <= 1.0 {
                // Accept.
                self.t += self.h;
                self.history.insert(0, y);
                let keep = MAX_ORDER + 1;
                self.history.truncate(keep);
                self.stats.steps += 1;
                // Raise order while history allows (classic Gear startup).
                if self.order < MAX_ORDER && self.history.len() > self.order {
                    self.order += 1;
                }
                // Step growth, conservative.
                let factor = if err == 0.0 {
                    2.0
                } else {
                    (0.9 * err.powf(-1.0 / (k as f64 + 1.0))).clamp(0.5, 2.0)
                };
                if !(0.9..=1.1).contains(&factor) {
                    let new_h = (self.h * factor).min(self.options.h_max);
                    self.change_step(new_h);
                }
                return Ok(());
            }

            // Reject: shrink the step.
            self.stats.rejected += 1;
            let factor = (0.9 * err.powf(-1.0 / (k as f64 + 1.0))).clamp(0.1, 0.5);
            let new_h = self.h * factor;
            if new_h < self.options.h_min {
                return Err(SolverError::StepSizeUnderflow { t: self.t });
            }
            // Lower the order as well when failing at high order.
            if self.order > 1 {
                self.order -= 1;
            }
            self.change_step(new_h);
        }
    }

    /// Polynomial extrapolation of the (uniform) history to `t + h`.
    fn extrapolate(&self) -> Vec<f64> {
        let m = self.order.min(self.history.len());
        let n = self.history[0].len();
        // Lagrange weights for nodes x_i = −i evaluated at x = 1.
        let mut weights = vec![0.0; m];
        for (i, w) in weights.iter_mut().enumerate() {
            let mut num = 1.0;
            let mut den = 1.0;
            for j in 0..m {
                if i == j {
                    continue;
                }
                num *= 1.0 + j as f64; // (x − x_j) at x=1 with x_j = −j
                den *= j as f64 - i as f64; // (x_i − x_j) = −i + j
            }
            *w = num / den;
        }
        let mut out = vec![0.0; n];
        for (i, w) in weights.iter().enumerate() {
            for j in 0..n {
                out[j] += w * self.history[i][j];
            }
        }
        out
    }

    /// Rescale history from spacing `self.h` to `new_h` via polynomial
    /// interpolation through the existing history points.
    fn change_step(&mut self, new_h: f64) {
        if new_h == self.h || self.history.len() == 1 {
            self.h = new_h;
            self.iter_matrix = None;
            return;
        }
        let m = self.history.len();
        let n = self.history[0].len();
        let ratio = new_h / self.h;
        let mut new_history = Vec::with_capacity(m);
        new_history.push(self.history[0].clone());
        for target in 1..m {
            // Evaluate the interpolating polynomial through nodes x_i = −i
            // (old spacing) at x = −target·ratio.
            let x = -(target as f64) * ratio;
            let mut point = vec![0.0; n];
            for i in 0..m {
                let mut w = 1.0;
                for j in 0..m {
                    if i == j {
                        continue;
                    }
                    w *= (x + j as f64) / (j as f64 - i as f64);
                }
                for c in 0..n {
                    point[c] += w * self.history[i][c];
                }
            }
            new_history.push(point);
        }
        self.history = new_history;
        self.h = new_h;
        self.iter_matrix = None;
    }

    /// Make sure `iter_matrix` matches the current `(h, order)`.
    fn ensure_iteration_matrix(&mut self, beta: f64, y: &[f64], t: f64) -> Result<(), SolverError> {
        let k = self.order;
        if let Some((_, h_built, k_built)) = &self.iter_matrix {
            if *h_built == self.h && *k_built == k {
                return Ok(());
            }
        }
        if self.jac.is_none() {
            self.refresh_jacobian(t, y);
        }
        self.build_lu(beta)?;
        Ok(())
    }

    fn refresh_jacobian(&mut self, t: f64, y: &[f64]) {
        let mut fevals = 0usize;
        let store = match &self.source {
            JacSource::Analytic(provider) => {
                let pattern = provider.pattern();
                let mut csr = CsrMatrix::from_rows(
                    (0..pattern.n_rows()).map(|i| pattern.row(i)),
                    pattern.n_cols(),
                );
                provider.eval_values(t, y, csr.vals_mut());
                // One tape-pair evaluation; counted as a single feval for
                // comparability with the FD paths.
                fevals += 1;
                JacStore::Sparse(csr)
            }
            JacSource::Colored {
                pattern,
                colors,
                n_colors,
            } => {
                let mut f = vec![0.0; y.len()];
                self.rhs.eval(t, y, &mut f);
                let (jac, jac_fevals) =
                    fd_jacobian_colored(self.rhs, t, y, &f, pattern, colors, *n_colors);
                fevals += 1 + jac_fevals;
                JacStore::Dense(jac)
            }
            JacSource::Dense => {
                let mut f = vec![0.0; y.len()];
                self.rhs.eval(t, y, &mut f);
                let (jac, jac_fevals) = fd_jacobian(self.rhs, t, y, &f);
                fevals += 1 + jac_fevals;
                JacStore::Dense(jac)
            }
        };
        self.stats.fevals += fevals;
        self.stats.jevals += 1;
        self.jac = Some(store);
    }

    fn build_lu(&mut self, beta: f64) -> Result<(), SolverError> {
        let scale = self.h * beta;
        let m = match self.jac.as_ref().expect("jacobian refreshed") {
            JacStore::Dense(jac) => {
                let n = jac.rows();
                let mut m = Matrix::identity(n);
                for i in 0..n {
                    for j in 0..n {
                        m[(i, j)] -= scale * jac[(i, j)];
                    }
                }
                m
            }
            // Sparsity-aware assembly: only the structural nonzeros are
            // touched.
            JacStore::Sparse(csr) => csr.assemble_iteration_matrix(scale),
        };
        let lu = Lu::factor(&m).map_err(|_| SolverError::SingularIterationMatrix { t: self.t })?;
        self.stats.factorizations += 1;
        self.iter_matrix = Some((lu, self.h, self.order));
        Ok(())
    }

    /// Newton failed: refresh the Jacobian (once per step attempt) or cut
    /// the step. Returns `Ok(true)` to retry the step.
    fn try_recover(&mut self, t_next: f64, y_pred: &[f64], beta: f64) -> Result<bool, SolverError> {
        self.stats.rejected += 1;
        // First remedy: fresh Jacobian at the predicted point.
        let stale_jacobian = self.jac.is_some();
        if stale_jacobian {
            self.refresh_jacobian(t_next, y_pred);
            self.build_lu(beta)?;
            // Also cut the step: a stale Jacobian plus a large step is the
            // common cause.
        }
        let new_h = self.h * 0.25;
        if new_h < self.options.h_min {
            return Ok(false);
        }
        self.order = 1;
        self.change_step(new_h);
        Ok(true)
    }
}

/// Driver: integrate from `t0`, sampling the state at the requested times.
pub fn solve_bdf<R: OdeRhs>(
    rhs: &R,
    t0: f64,
    y0: &[f64],
    times: &[f64],
    options: SolverOptions,
) -> Result<(Vec<Vec<f64>>, SolveStats), SolverError> {
    solve_bdf_with_jacobian(rhs, t0, y0, times, options, JacobianSource::FdDense)
}

/// [`solve_bdf`] with an explicit Jacobian source.
pub fn solve_bdf_with_jacobian<'a, R: OdeRhs>(
    rhs: &'a R,
    t0: f64,
    y0: &[f64],
    times: &[f64],
    options: SolverOptions,
    source: JacobianSource<'a>,
) -> Result<(Vec<Vec<f64>>, SolveStats), SolverError> {
    let mut solver = Bdf::new(rhs, t0, y0, options);
    solver.set_jacobian_source(source);
    let mut out = Vec::with_capacity(times.len());
    for &t in times {
        solver.integrate_to(t)?;
        out.push(solver.y().to_vec());
    }
    Ok((out, solver.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnRhs;
    use crate::rk45::solve_rk45;

    #[test]
    fn exponential_decay() {
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -2.0 * y[0]);
        let (sol, stats) =
            solve_bdf(&rhs, 0.0, &[1.0], &[1.0, 2.0], SolverOptions::default()).unwrap();
        assert!((sol[0][0] - (-2.0f64).exp()).abs() < 1e-4, "{}", sol[0][0]);
        assert!((sol[1][0] - (-4.0f64).exp()).abs() < 1e-4, "{}", sol[1][0]);
        assert!(stats.jevals >= 1);
        assert!(stats.factorizations >= 1);
    }

    #[test]
    fn order_ramps_up() {
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -y[0]);
        let mut solver = Bdf::new(&rhs, 0.0, &[1.0], SolverOptions::default());
        solver.integrate_to(1.0).unwrap();
        assert!(solver.order() >= 3, "order stuck at {}", solver.order());
    }

    #[test]
    fn stiff_decay_cheap_for_bdf_expensive_for_rk() {
        // lambda = -1e6 over t in [0, 1]: textbook stiffness.
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -1e6 * y[0]);
        let options = SolverOptions {
            max_steps: 100_000,
            ..SolverOptions::default()
        };
        let (sol, bdf_stats) = solve_bdf(&rhs, 0.0, &[1.0], &[1.0], options).unwrap();
        assert!(sol[0][0].abs() < 1e-6);
        // RK45 with the same budget fails outright (see rk45 tests) or
        // needs ~1e6 steps; BDF should be orders of magnitude cheaper.
        assert!(
            bdf_stats.steps < 10_000,
            "BDF took {} steps",
            bdf_stats.steps
        );
        let rk = solve_rk45(
            &rhs,
            0.0,
            &[1.0],
            &[1.0],
            SolverOptions {
                max_steps: bdf_stats.steps * 10,
                ..SolverOptions::default()
            },
        );
        assert!(rk.is_err(), "RK45 should not manage with 10x BDF's steps");
    }

    #[test]
    fn robertson_problem() {
        // The classic stiff chemistry benchmark.
        let rhs = FnRhs::new(3, |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -0.04 * y[0] + 1e4 * y[1] * y[2];
            ydot[1] = 0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] * y[1];
            ydot[2] = 3e7 * y[1] * y[1];
        });
        let options = SolverOptions {
            rtol: 1e-8,
            atol: 1e-12,
            max_steps: 200_000,
            ..SolverOptions::default()
        };
        let (sol, _) = solve_bdf(&rhs, 0.0, &[1.0, 0.0, 0.0], &[0.4], options).unwrap();
        // Reference values (Hairer & Wanner).
        assert!((sol[0][0] - 0.9851721).abs() < 1e-4, "{}", sol[0][0]);
        assert!((sol[0][1] - 3.386396e-5).abs() < 1e-6, "{}", sol[0][1]);
        assert!((sol[0][2] - 0.0147940).abs() < 1e-4, "{}", sol[0][2]);
        // Mass conservation.
        let total: f64 = sol[0].iter().sum();
        assert!((total - 1.0).abs() < 1e-7);
    }

    #[test]
    fn equilibrium_epochs() {
        // Two species completing reactions in different epochs (the
        // stiffness pattern §4.1 describes): fast A->B, slow B->C.
        let rhs = FnRhs::new(3, |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -1e5 * y[0];
            ydot[1] = 1e5 * y[0] - 0.1 * y[1];
            ydot[2] = 0.1 * y[1];
        });
        let (sol, _) = solve_bdf(
            &rhs,
            0.0,
            &[1.0, 0.0, 0.0],
            &[50.0],
            SolverOptions {
                max_steps: 100_000,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        // At t=50: A gone, B ~ exp(-5), C = rest.
        assert!(sol[0][0].abs() < 1e-8);
        assert!((sol[0][1] - (-5.0f64).exp()).abs() < 1e-3);
        let total: f64 = sol[0].iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exact_landing_on_sample_times() {
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -y[0]);
        let times: Vec<f64> = (1..=20).map(|i| i as f64 * 0.25).collect();
        let (sol, _) = solve_bdf(&rhs, 0.0, &[1.0], &times, SolverOptions::default()).unwrap();
        for (t, s) in times.iter().zip(&sol) {
            assert!(
                (s[0] - (-t).exp()).abs() < 1e-5,
                "t={t}: {} vs {}",
                s[0],
                (-t).exp()
            );
        }
    }

    #[test]
    fn sparse_jacobian_matches_dense_solution_with_fewer_fevals() {
        use crate::coloring::SparsityPattern;
        // Stiff tridiagonal chain.
        let n = 40;
        let rhs = FnRhs::new(n, move |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -1e3 * y[0];
            for i in 1..y.len() {
                ydot[i] = 1e3 * y[i - 1] - (1.0 + i as f64) * y[i];
            }
        });
        let y0: Vec<f64> = std::iter::once(1.0)
            .chain(std::iter::repeat(0.0))
            .take(n)
            .collect();
        let options = SolverOptions {
            max_steps: 100_000,
            ..SolverOptions::default()
        };
        let mut dense = Bdf::new(&rhs, 0.0, &y0, options);
        dense.integrate_to(1.0).unwrap();
        let mut sparse = Bdf::new(&rhs, 0.0, &y0, options);
        let rows = (0..n)
            .map(|i| {
                if i == 0 {
                    vec![0u32]
                } else {
                    vec![i as u32 - 1, i as u32]
                }
            })
            .collect();
        sparse.set_sparsity(SparsityPattern::new(rows, n));
        sparse.integrate_to(1.0).unwrap();
        for (a, b) in dense.y().iter().zip(sparse.y()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        // Newton iterations dominate total fevals; the colored Jacobian
        // saves (n - n_colors) evaluations per refresh.
        let saved = dense.stats().fevals - sparse.stats().fevals;
        assert!(
            saved >= sparse.stats().jevals * (n / 2),
            "saved {saved} over {} jacobian refreshes (n = {n})",
            sparse.stats().jevals
        );
    }

    #[test]
    fn analytic_jacobian_matches_fd_with_fewer_fevals() {
        // Same stiff tridiagonal chain, but with the exact Jacobian
        // supplied through the AnalyticTape source.
        struct ChainJac {
            pattern: SparsityPattern,
        }
        impl crate::jacobian::AnalyticJacobian for ChainJac {
            fn pattern(&self) -> &SparsityPattern {
                &self.pattern
            }
            fn eval_values(&self, _t: f64, _y: &[f64], vals: &mut [f64]) {
                // Row 0: ∂f0/∂y0 = -1e3; row i: [1e3, -(1+i)].
                vals[0] = -1e3;
                let mut k = 1;
                let n = self.pattern.n_rows();
                for i in 1..n {
                    vals[k] = 1e3;
                    vals[k + 1] = -(1.0 + i as f64);
                    k += 2;
                }
            }
        }
        let n = 40;
        let rhs = FnRhs::new(n, move |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -1e3 * y[0];
            for i in 1..y.len() {
                ydot[i] = 1e3 * y[i - 1] - (1.0 + i as f64) * y[i];
            }
        });
        let y0: Vec<f64> = std::iter::once(1.0)
            .chain(std::iter::repeat(0.0))
            .take(n)
            .collect();
        let options = SolverOptions {
            max_steps: 100_000,
            ..SolverOptions::default()
        };
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                if i == 0 {
                    vec![0u32]
                } else {
                    vec![i as u32 - 1, i as u32]
                }
            })
            .collect();
        let provider = ChainJac {
            pattern: SparsityPattern::new(rows, n),
        };
        let times = [1.0];
        let (fd, fd_stats) = solve_bdf(&rhs, 0.0, &y0, &times, options).unwrap();
        let (analytic, an_stats) = solve_bdf_with_jacobian(
            &rhs,
            0.0,
            &y0,
            &times,
            options,
            JacobianSource::AnalyticTape(&provider),
        )
        .unwrap();
        for (a, b) in fd[0].iter().zip(&analytic[0]) {
            assert!((a - b).abs() < 1e-5 * a.abs().max(1.0), "{a} vs {b}");
        }
        assert!(an_stats.jevals >= 1);
        // Each dense-FD refresh costs n+1 fevals, each analytic refresh 1;
        // allow slack for small step-count differences between the runs.
        assert!(
            an_stats.fevals + (n / 2) * an_stats.jevals <= fd_stats.fevals,
            "analytic {an_stats:?} vs fd {fd_stats:?}"
        );
    }

    #[test]
    fn backwards_time_rejected() {
        let rhs = FnRhs::new(1, |_t, _y: &[f64], ydot: &mut [f64]| ydot[0] = 0.0);
        let mut solver = Bdf::new(&rhs, 1.0, &[0.0], SolverOptions::default());
        assert!(matches!(
            solver.integrate_to(0.0),
            Err(SolverError::BadInput(_))
        ));
    }
}
