//! Adaptive explicit Runge–Kutta for non-stiff systems.
//!
//! The paper uses IMSL's `imsl_f_ode_runge_kutta` (Runge–Kutta–Verner
//! 5(6)) for non-stiff problems. We substitute the Dormand–Prince 5(4)
//! embedded pair — the same family and adaptive-order-5 role; the
//! substitution is recorded in DESIGN.md.

use crate::problem::{error_norm, CancelToken, OdeRhs, SolveStats, SolverError, SolverOptions};

/// Dormand–Prince coefficients.
const A: [[f64; 6]; 6] = [
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [
        19372.0 / 6561.0,
        -25360.0 / 2187.0,
        64448.0 / 6561.0,
        -212.0 / 729.0,
        0.0,
        0.0,
    ],
    [
        9017.0 / 3168.0,
        -355.0 / 33.0,
        46732.0 / 5247.0,
        49.0 / 176.0,
        -5103.0 / 18656.0,
        0.0,
    ],
    [
        35.0 / 384.0,
        0.0,
        500.0 / 1113.0,
        125.0 / 192.0,
        -2187.0 / 6784.0,
        11.0 / 84.0,
    ],
];
const C: [f64; 6] = [1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
/// 5th-order solution weights (same as the last A row: FSAL).
const B5: [f64; 7] = [
    35.0 / 384.0,
    0.0,
    500.0 / 1113.0,
    125.0 / 192.0,
    -2187.0 / 6784.0,
    11.0 / 84.0,
    0.0,
];
/// 4th-order embedded weights.
const B4: [f64; 7] = [
    5179.0 / 57600.0,
    0.0,
    7571.0 / 16695.0,
    393.0 / 640.0,
    -92097.0 / 339200.0,
    187.0 / 2100.0,
    1.0 / 40.0,
];

/// Adaptive RK45 integrator state.
pub struct Rk45<'a, R: OdeRhs> {
    rhs: &'a R,
    options: SolverOptions,
    /// Current time.
    pub t: f64,
    /// Current state.
    pub y: Vec<f64>,
    h: f64,
    k: [Vec<f64>; 7],
    stats: SolveStats,
    /// FSAL: k[0] holds f(t, y) when true.
    fsal_valid: bool,
    /// Step buffers, allocated once so `integrate_to` (called once per
    /// sample time by the drivers) never allocates.
    y_next: Vec<f64>,
    y_err: Vec<f64>,
    stage: Vec<f64>,
    /// Cooperative cancellation flag, checked once per step.
    cancel: Option<CancelToken>,
}

impl<'a, R: OdeRhs> Rk45<'a, R> {
    /// Initialize at `(t0, y0)`.
    pub fn new(rhs: &'a R, t0: f64, y0: &[f64], options: SolverOptions) -> Rk45<'a, R> {
        let n = rhs.dim();
        assert_eq!(y0.len(), n, "y0 length must equal system dimension");
        Rk45 {
            rhs,
            options,
            t: t0,
            y: y0.to_vec(),
            h: options.h_init.unwrap_or(0.0),
            k: std::array::from_fn(|_| vec![0.0; n]),
            stats: SolveStats::default(),
            fsal_valid: false,
            y_next: vec![0.0; n],
            y_err: vec![0.0; n],
            stage: vec![0.0; n],
            cancel: None,
        }
    }

    /// Attach a [`CancelToken`]; once it fires, `integrate_to` returns
    /// [`SolverError::Cancelled`] at the next step boundary.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Work counters.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Integrate to `tend`, stopping exactly there.
    pub fn integrate_to(&mut self, tend: f64) -> Result<(), SolverError> {
        if tend < self.t {
            return Err(SolverError::BadInput(format!(
                "tend {tend} before current t {}",
                self.t
            )));
        }
        let n = self.y.len();
        if self.h == 0.0 {
            self.h = self.initial_step(tend);
        }
        while self.t < tend {
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return Err(SolverError::Cancelled { t: self.t });
                }
            }
            if self.stats.steps + self.stats.rejected >= self.options.max_steps {
                return Err(SolverError::TooManySteps {
                    t: self.t,
                    max_steps: self.options.max_steps,
                });
            }
            let h = self.h.min(tend - self.t).min(self.options.h_max);
            if h < self.options.h_min {
                return Err(SolverError::StepSizeUnderflow { t: self.t });
            }
            // Stage 0 (FSAL reuse).
            if !self.fsal_valid {
                let (k0, y) = (&mut self.k[0], &self.y);
                self.rhs.eval(self.t, y, k0);
                self.stats.fevals += 1;
            }
            // Stages 1..6.
            for s in 0..6 {
                for i in 0..n {
                    let mut acc = 0.0;
                    for (j, a) in A[s].iter().enumerate().take(s + 1) {
                        acc += a * self.k[j][i];
                    }
                    self.stage[i] = self.y[i] + h * acc;
                }
                let t_stage = self.t + C[s] * h;
                let (ks, stage) = (&mut self.k[s + 1], &self.stage);
                self.rhs.eval(t_stage, stage, ks);
                self.stats.fevals += 1;
            }
            // Solution and error estimate.
            for i in 0..n {
                let mut acc5 = 0.0;
                let mut acc4 = 0.0;
                for j in 0..7 {
                    acc5 += B5[j] * self.k[j][i];
                    acc4 += B4[j] * self.k[j][i];
                }
                self.y_next[i] = self.y[i] + h * acc5;
                self.y_err[i] = h * (acc5 - acc4);
            }
            if self.y_next.iter().any(|v| !v.is_finite()) {
                return Err(SolverError::NonFiniteDerivative { t: self.t });
            }
            let err = error_norm(
                &self.y_err,
                &self.y_next,
                self.options.rtol,
                self.options.atol,
            );
            if err <= 1.0 {
                // Accept.
                self.t += h;
                self.y.copy_from_slice(&self.y_next);
                // FSAL: stage 7 (k[6]) was evaluated at (t+h, y_next).
                self.k.swap(0, 6);
                self.fsal_valid = true;
                self.stats.steps += 1;
                let factor = if err == 0.0 {
                    5.0
                } else {
                    (0.9 * err.powf(-0.2)).clamp(0.2, 5.0)
                };
                self.h = (h * factor).min(self.options.h_max);
            } else {
                self.stats.rejected += 1;
                self.fsal_valid = false;
                self.h = h * (0.9 * err.powf(-0.2)).clamp(0.1, 0.9);
            }
        }
        Ok(())
    }

    /// Simple initial-step heuristic based on the scale of f(t0, y0).
    fn initial_step(&mut self, tend: f64) -> f64 {
        // `stage` doubles as the f(t0, y0) buffer; the step loop
        // overwrites it before reading.
        let (f0, y) = (&mut self.stage, &self.y);
        self.rhs.eval(self.t, y, f0);
        self.stats.fevals += 1;
        let d0 = error_norm(&self.y, &self.y, self.options.rtol, self.options.atol).max(1e-10);
        let d1 = error_norm(&self.stage, &self.y, self.options.rtol, self.options.atol).max(1e-10);
        let h0 = 0.01 * (d0 / d1);
        h0.min((tend - self.t) / 10.0)
            .max(self.options.h_min * 10.0)
    }
}

/// Convenience driver: integrate from `t0`, returning the state at each
/// requested time (times must be non-decreasing and ≥ t0).
pub fn solve_rk45<R: OdeRhs>(
    rhs: &R,
    t0: f64,
    y0: &[f64],
    times: &[f64],
    options: SolverOptions,
) -> Result<(Vec<Vec<f64>>, SolveStats), SolverError> {
    let mut solver = Rk45::new(rhs, t0, y0, options);
    let mut out = Vec::with_capacity(times.len());
    for &t in times {
        solver.integrate_to(t)?;
        out.push(solver.y.clone());
    }
    Ok((out, solver.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnRhs;

    #[test]
    fn exponential_decay_matches_closed_form() {
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -2.0 * y[0]);
        let (sol, stats) = solve_rk45(
            &rhs,
            0.0,
            &[1.0],
            &[0.5, 1.0, 2.0],
            SolverOptions::default(),
        )
        .unwrap();
        for (t, s) in [0.5f64, 1.0, 2.0].iter().zip(&sol) {
            let exact = (-2.0 * *t).exp();
            assert!((s[0] - exact).abs() < 1e-6, "t={t}: {} vs {exact}", s[0]);
        }
        assert!(stats.steps > 0);
        assert!(stats.fevals > stats.steps);
    }

    #[test]
    fn harmonic_oscillator_energy() {
        // y'' = -y as a system; after one full period the state returns.
        let rhs = FnRhs::new(2, |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = y[1];
            ydot[1] = -y[0];
        });
        let two_pi = std::f64::consts::TAU;
        let options = SolverOptions {
            rtol: 1e-9,
            atol: 1e-12,
            ..SolverOptions::default()
        };
        let (sol, _) = solve_rk45(&rhs, 0.0, &[1.0, 0.0], &[two_pi], options).unwrap();
        assert!((sol[0][0] - 1.0).abs() < 1e-7, "{}", sol[0][0]);
        assert!(sol[0][1].abs() < 1e-7, "{}", sol[0][1]);
    }

    #[test]
    fn tolerance_controls_accuracy() {
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -y[0]);
        let loose = SolverOptions {
            rtol: 1e-3,
            atol: 1e-6,
            ..SolverOptions::default()
        };
        let tight = SolverOptions {
            rtol: 1e-10,
            atol: 1e-13,
            ..SolverOptions::default()
        };
        let (_, s_loose) = solve_rk45(&rhs, 0.0, &[1.0], &[5.0], loose).unwrap();
        let (_, s_tight) = solve_rk45(&rhs, 0.0, &[1.0], &[5.0], tight).unwrap();
        assert!(s_tight.steps > s_loose.steps);
    }

    #[test]
    fn mass_action_two_species() {
        // A + B -> C with k=1, equal initial: closed form y_A = 1/(1+t).
        let rhs = FnRhs::new(3, |_t, y: &[f64], ydot: &mut [f64]| {
            let r = y[0] * y[1];
            ydot[0] = -r;
            ydot[1] = -r;
            ydot[2] = r;
        });
        let (sol, _) = solve_rk45(
            &rhs,
            0.0,
            &[1.0, 1.0, 0.0],
            &[1.0, 3.0],
            SolverOptions::default(),
        )
        .unwrap();
        assert!((sol[0][0] - 0.5).abs() < 1e-6);
        assert!((sol[1][0] - 0.25).abs() < 1e-6);
        // conservation: A + C constant
        assert!((sol[1][0] + sol[1][2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn backwards_time_rejected() {
        let rhs = FnRhs::new(1, |_t, _y: &[f64], ydot: &mut [f64]| ydot[0] = 0.0);
        let mut solver = Rk45::new(&rhs, 1.0, &[0.0], SolverOptions::default());
        assert!(matches!(
            solver.integrate_to(0.5),
            Err(SolverError::BadInput(_))
        ));
    }

    #[test]
    fn stiff_problem_forces_tiny_steps() {
        // Stiff decay: lambda = -1e6. RK45 stability forces h ~ 1e-6-ish,
        // so crossing t=1 costs enormous step counts — this is the
        // motivation for the Adams-Gear solver (§4.1).
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -1e6 * y[0]);
        let options = SolverOptions {
            max_steps: 2_000,
            ..SolverOptions::default()
        };
        let result = solve_rk45(&rhs, 0.0, &[1.0], &[1.0], options);
        assert!(matches!(result, Err(SolverError::TooManySteps { .. })));
    }

    #[test]
    fn sampling_at_many_times_consistent_with_single_run() {
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| ydot[0] = -y[0]);
        let times: Vec<f64> = (1..=50).map(|i| i as f64 * 0.1).collect();
        let (sol, _) = solve_rk45(&rhs, 0.0, &[1.0], &times, SolverOptions::default()).unwrap();
        for (t, s) in times.iter().zip(&sol) {
            assert!((s[0] - (-t).exp()).abs() < 1e-6);
        }
    }
}
