//! Dense linear algebra: the minimum needed by an implicit stiff solver —
//! a column-major-agnostic dense matrix, LU factorization with partial
//! pivoting, and triangular solves.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Linear-algebra errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular to working precision (pivot column index).
    Singular(usize),
    /// Dimension mismatch in an operation.
    DimensionMismatch,
    /// A sparsity description is malformed (indices out of bounds or not
    /// strictly ascending within a row/column).
    MalformedPattern,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular(col) => write!(f, "matrix singular at column {col}"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
            LinalgError::MalformedPattern => {
                write!(
                    f,
                    "malformed sparsity pattern (indices must ascend in bounds)"
                )
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major slice of rows.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            out[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Raw data access (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data access (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Compressed-sparse-row matrix with a fixed structure and mutable
/// values — the storage for compiler-emitted analytic Jacobians, whose
/// sparsity is known once and whose values are refreshed every few
/// solver steps into the same buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row i's entries.
    row_ptr: Vec<usize>,
    /// Column of each entry, ascending within a row.
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Build the structure from per-row column lists; all values start at
    /// zero. Columns must ascend strictly within each row and stay below
    /// `n_cols` — a malformed pattern is a hard
    /// [`LinalgError::MalformedPattern`] (not a debug-only assert: a bad
    /// pattern silently corrupts every later binary search over the row).
    pub fn from_rows<'a, I>(rows: I, n_cols: usize) -> Result<CsrMatrix, LinalgError>
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        for row in rows {
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(LinalgError::MalformedPattern);
            }
            col_idx.extend_from_slice(row);
            row_ptr.push(col_idx.len());
        }
        if col_idx.iter().any(|&c| (c as usize) >= n_cols) {
            return Err(LinalgError::MalformedPattern);
        }
        let nnz = col_idx.len();
        Ok(CsrMatrix {
            n_rows: row_ptr.len() - 1,
            n_cols,
            row_ptr,
            col_idx,
            vals: vec![0.0; nnz],
        })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Values in row-major entry order (the order analytic Jacobian tapes
    /// emit).
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable values, for in-place refresh.
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Columns and values of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.vals[span])
    }

    /// Entry `(i, j)`, zero if structurally absent.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Densify (tests and fallbacks).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n_rows, self.n_cols);
        for i in 0..self.n_rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                m[(i, j as usize)] = v;
            }
        }
        m
    }

    /// Sparse matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.n_cols {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut out = vec![0.0; self.n_rows];
        for i in 0..self.n_rows {
            let (cols, vals) = self.row(i);
            out[i] = cols
                .iter()
                .zip(vals)
                .map(|(&j, &v)| v * x[j as usize])
                .sum();
        }
        Ok(out)
    }

    /// Assemble the implicit-solver iteration matrix `I − scale·J`
    /// (dense, ready for [`Lu::factor`]) touching only the structural
    /// nonzeros: an O(n² ) clear plus an O(nnz) scatter, instead of the
    /// dense path's n² multiply-subtract sweep over a matrix that is
    /// almost entirely zeros at chemistry sparsity.
    pub fn assemble_iteration_matrix(&self, scale: f64) -> Matrix {
        debug_assert_eq!(self.n_rows, self.n_cols);
        let n = self.n_rows;
        let mut m = Matrix::zeros(n, n);
        let data = m.data_mut();
        for i in 0..n {
            data[i * n + i] = 1.0;
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                data[i * n + j as usize] -= scale * v;
            }
        }
        m
    }
}

/// LU factorization with partial pivoting: `P A = L U`, stored packed.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    /// Row permutation: `pivots[k]` is the row swapped into position k at
    /// step k.
    pivots: Vec<usize>,
}

impl Lu {
    /// Factorize a square matrix.
    pub fn factor(a: &Matrix) -> Result<Lu, LinalgError> {
        if a.rows != a.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = a.rows;
        let mut lu = a.clone();
        let mut pivots = vec![0usize; n];
        for k in 0..n {
            // Pivot selection.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max == 0.0 || !max.is_finite() {
                return Err(LinalgError::Singular(k));
            }
            pivots[k] = p;
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            // Elimination.
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let upper = lu[(k, j)];
                    lu[(i, j)] -= factor * upper;
                }
            }
        }
        Ok(Lu { lu, pivots })
    }

    /// Solve `A x = b`, overwriting `b` with the solution.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), LinalgError> {
        let n = self.lu.rows;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        // Apply permutation.
        for k in 0..n {
            let p = self.pivots[k];
            if p != k {
                b.swap(k, p);
            }
        }
        // Forward substitution (unit lower).
        for i in 1..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * b[j];
            }
            b[i] = sum;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut sum = b[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * b[j];
            }
            b[i] = sum / self.lu[(i, i)];
        }
        Ok(())
    }

    /// Solve `A X = B` for `ncols` right-hand sides at once, overwriting
    /// `bs` with the solutions. `bs` is row-major `n × ncols` (row `i`
    /// occupies `bs[i*ncols..(i+1)*ncols]`), so the substitution inner
    /// loops run over contiguous memory — one pass over the factors
    /// serves every column, which is substantially faster than `ncols`
    /// separate [`solve_in_place`](Lu::solve_in_place) calls.
    pub fn solve_multi_in_place(&self, bs: &mut [f64], ncols: usize) -> Result<(), LinalgError> {
        let n = self.lu.rows;
        if ncols == 0 || bs.len() != n * ncols {
            return Err(LinalgError::DimensionMismatch);
        }
        // Apply permutation (swap whole rows).
        for k in 0..n {
            let p = self.pivots[k];
            if p != k {
                for c in 0..ncols {
                    bs.swap(k * ncols + c, p * ncols + c);
                }
            }
        }
        // Forward substitution (unit lower).
        for i in 1..n {
            for j in 0..i {
                let l = self.lu[(i, j)];
                if l != 0.0 {
                    let (head, tail) = bs.split_at_mut(i * ncols);
                    let row_j = &head[j * ncols..(j + 1) * ncols];
                    let row_i = &mut tail[..ncols];
                    for c in 0..ncols {
                        row_i[c] -= l * row_j[c];
                    }
                }
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let u = self.lu[(i, j)];
                if u != 0.0 {
                    let (head, tail) = bs.split_at_mut(j * ncols);
                    let row_i = &mut head[i * ncols..(i + 1) * ncols];
                    let row_j = &tail[..ncols];
                    for c in 0..ncols {
                        row_i[c] -= u * row_j[c];
                    }
                }
            }
            let d = self.lu[(i, i)];
            for c in 0..ncols {
                bs[i * ncols + c] /= d;
            }
        }
        Ok(())
    }

    /// Solve returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Inverse of the factored matrix (column-by-column solve).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.lu.rows;
        let mut inv = Matrix::zeros(n, n);
        let mut col = vec![0.0; n];
        for j in 0..n {
            col.iter_mut().for_each(|v| *v = 0.0);
            col[j] = 1.0;
            self.solve_in_place(&mut col)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let lu = Lu::factor(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(lu.solve(&b).unwrap(), b);
    }

    #[test]
    fn known_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_required() {
        // Zero on the diagonal: fails without pivoting.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular(_))));
    }

    #[test]
    fn residual_small_random() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        for n in [1usize, 2, 5, 20] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.gen_range(-1.0..1.0);
                }
                a[(i, i)] += 3.0; // diagonally dominant => well-conditioned
            }
            let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b = a.matvec(&xs).unwrap();
            let lu = Lu::factor(&a).unwrap();
            let solved = lu.solve(&b).unwrap();
            for (expect, got) in xs.iter().zip(&solved) {
                assert!((expect - got).abs() < 1e-9, "{expect} vs {got}");
            }
        }
    }

    #[test]
    fn matvec_and_norms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![-1.0, 7.0]);
        assert_eq!(a.norm_inf(), 7.0);
        assert_eq!(a.matvec(&[1.0]), Err(LinalgError::DimensionMismatch));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.5], &[1.0, 3.0, -1.0], &[0.0, 0.5, 4.0]]);
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        for i in 0..3 {
            let e_i: Vec<f64> = (0..3).map(|j| if i == j { 1.0 } else { 0.0 }).collect();
            let ax = a.matvec(
                &inv.data()[i..]
                    .iter()
                    .step_by(3)
                    .copied()
                    .collect::<Vec<_>>(),
            );
            // Column i of inv: inv[(_, i)]
            let col: Vec<f64> = (0..3).map(|r| inv[(r, i)]).collect();
            let prod = a.matvec(&col).unwrap();
            drop(ax);
            for (p, e) in prod.iter().zip(&e_i) {
                assert!((p - e).abs() < 1e-12, "{p} vs {e}");
            }
        }
    }

    #[test]
    fn non_square_factor_rejected() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(Lu::factor(&a).unwrap_err(), LinalgError::DimensionMismatch);
    }

    fn sample_csr() -> CsrMatrix {
        // [[2, 0, 1], [0, 3, 0], [0, 0, 4]]
        let rows: Vec<Vec<u32>> = vec![vec![0, 2], vec![1], vec![2]];
        let mut m = CsrMatrix::from_rows(rows.iter().map(Vec::as_slice), 3).unwrap();
        m.vals_mut().copy_from_slice(&[2.0, 1.0, 3.0, 4.0]);
        m
    }

    #[test]
    fn csr_accessors_and_dense_round_trip() {
        let m = sample_csr();
        assert_eq!((m.n_rows(), m.n_cols(), m.nnz()), (3, 3, 4));
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.row(0), (&[0u32, 2][..], &[2.0, 1.0][..]));
        let dense = m.to_dense();
        assert_eq!(dense[(0, 0)], 2.0);
        assert_eq!(dense[(1, 1)], 3.0);
        assert_eq!(dense[(1, 0)], 0.0);
        assert_eq!(
            m.matvec(&[1.0, 1.0, 1.0]).unwrap(),
            dense.matvec(&[1.0, 1.0, 1.0]).unwrap()
        );
        assert_eq!(m.matvec(&[1.0]), Err(LinalgError::DimensionMismatch));
    }

    #[test]
    fn csr_iteration_matrix_matches_dense_assembly() {
        let m = sample_csr();
        let scale = 0.3;
        let fast = m.assemble_iteration_matrix(scale);
        let dense = m.to_dense();
        let mut slow = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                slow[(i, j)] -= scale * dense[(i, j)];
            }
        }
        assert_eq!(fast, slow);
        // And it is factorable like any iteration matrix.
        let lu = Lu::factor(&fast).unwrap();
        let x = lu.solve(&[1.0, 1.0, 1.0]).unwrap();
        let back = fast.matvec(&x).unwrap();
        for v in back {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }
}
