//! Dense linear algebra: the minimum needed by an implicit stiff solver —
//! a column-major-agnostic dense matrix, LU factorization with partial
//! pivoting, and triangular solves.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Linear-algebra errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular to working precision (pivot column index).
    Singular(usize),
    /// Dimension mismatch in an operation.
    DimensionMismatch,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular(col) => write!(f, "matrix singular at column {col}"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major slice of rows.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            out[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Raw data access (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data access (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// LU factorization with partial pivoting: `P A = L U`, stored packed.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    /// Row permutation: `pivots[k]` is the row swapped into position k at
    /// step k.
    pivots: Vec<usize>,
}

impl Lu {
    /// Factorize a square matrix.
    pub fn factor(a: &Matrix) -> Result<Lu, LinalgError> {
        if a.rows != a.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = a.rows;
        let mut lu = a.clone();
        let mut pivots = vec![0usize; n];
        for k in 0..n {
            // Pivot selection.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max == 0.0 || !max.is_finite() {
                return Err(LinalgError::Singular(k));
            }
            pivots[k] = p;
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            // Elimination.
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let upper = lu[(k, j)];
                    lu[(i, j)] -= factor * upper;
                }
            }
        }
        Ok(Lu { lu, pivots })
    }

    /// Solve `A x = b`, overwriting `b` with the solution.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), LinalgError> {
        let n = self.lu.rows;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        // Apply permutation.
        for k in 0..n {
            let p = self.pivots[k];
            if p != k {
                b.swap(k, p);
            }
        }
        // Forward substitution (unit lower).
        for i in 1..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * b[j];
            }
            b[i] = sum;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut sum = b[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * b[j];
            }
            b[i] = sum / self.lu[(i, i)];
        }
        Ok(())
    }

    /// Solve returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Inverse of the factored matrix (column-by-column solve).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.lu.rows;
        let mut inv = Matrix::zeros(n, n);
        let mut col = vec![0.0; n];
        for j in 0..n {
            col.iter_mut().for_each(|v| *v = 0.0);
            col[j] = 1.0;
            self.solve_in_place(&mut col)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let lu = Lu::factor(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(lu.solve(&b).unwrap(), b);
    }

    #[test]
    fn known_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_required() {
        // Zero on the diagonal: fails without pivoting.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular(_))));
    }

    #[test]
    fn residual_small_random() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        for n in [1usize, 2, 5, 20] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.gen_range(-1.0..1.0);
                }
                a[(i, i)] += 3.0; // diagonally dominant => well-conditioned
            }
            let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b = a.matvec(&xs).unwrap();
            let lu = Lu::factor(&a).unwrap();
            let solved = lu.solve(&b).unwrap();
            for (expect, got) in xs.iter().zip(&solved) {
                assert!((expect - got).abs() < 1e-9, "{expect} vs {got}");
            }
        }
    }

    #[test]
    fn matvec_and_norms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![-1.0, 7.0]);
        assert_eq!(a.norm_inf(), 7.0);
        assert_eq!(a.matvec(&[1.0]), Err(LinalgError::DimensionMismatch));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.5], &[1.0, 3.0, -1.0], &[0.0, 0.5, 4.0]]);
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        for i in 0..3 {
            let e_i: Vec<f64> = (0..3).map(|j| if i == j { 1.0 } else { 0.0 }).collect();
            let ax = a.matvec(
                &inv.data()[i..]
                    .iter()
                    .step_by(3)
                    .copied()
                    .collect::<Vec<_>>(),
            );
            // Column i of inv: inv[(_, i)]
            let col: Vec<f64> = (0..3).map(|r| inv[(r, i)]).collect();
            let prod = a.matvec(&col).unwrap();
            drop(ax);
            for (p, e) in prod.iter().zip(&e_i) {
                assert!((p - e).abs() < 1e-12, "{p} vs {e}");
            }
        }
    }

    #[test]
    fn non_square_factor_rejected() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(Lu::factor(&a).unwrap_err(), LinalgError::DimensionMismatch);
    }
}
