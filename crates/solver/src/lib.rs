//! # rms-solver — ODE solvers and dense linear algebra
//!
//! The runtime substrate replacing the IMSL libraries of the paper's §4:
//!
//! * [`bdf`]: Gear-type BDF(1–5) stiff solver with modified Newton — the
//!   `imsl_f_ode_adams_gear` replacement used for chemistry (reactions
//!   reach equilibria in different epochs, so the ODEs are stiff);
//! * [`adams`]: Adams–Bashforth–Moulton PECE (the Adams side of
//!   Adams-Gear) for non-stiff problems;
//! * [`rk45`]: Dormand–Prince 5(4), standing in for IMSL's
//!   Runge–Kutta–Verner 5(6) (`imsl_f_ode_runge_kutta`);
//! * [`linalg`]: dense LU with partial pivoting for the Newton iteration
//!   matrices;
//! * [`jacobian`]: forward-difference dense Jacobians.

#![warn(missing_docs)]
// The numerical kernels index several parallel arrays per loop (stencil
// coefficients against state vectors); explicit indices keep them in the
// shape of the literature they implement.
#![allow(clippy::needless_range_loop)]

pub mod adams;
pub mod bdf;
pub mod coloring;
pub mod jacobian;
pub mod linalg;
pub mod problem;
pub mod rk45;
pub mod sparse;

pub use adams::{solve_adams, Adams};
pub use bdf::{
    solve_bdf, solve_bdf_sensitivities, solve_bdf_with_jacobian, Bdf, JacobianSource, MAX_ORDER,
};
pub use coloring::{fd_jacobian_colored, fd_jacobian_colored_into, SparsityPattern};
pub use jacobian::{fd_jacobian, fd_jacobian_into, fd_step, AnalyticJacobian, FdWorkspace};
pub use linalg::{CsrMatrix, LinalgError, Lu, Matrix};
pub use problem::{
    error_norm, CancelToken, FnRhs, LinearSolver, OdeRhs, SensitivityRhs, SolveStats, SolverError,
    SolverOptions,
};
pub use rk45::{solve_rk45, Rk45};
pub use sparse::{iteration_matrix_pattern, CscMatrix, SparseLu, SparseNewton, SymbolicLu};
