//! Jacobians for the implicit solvers: finite differences, and the
//! interface through which compiler-emitted analytic Jacobians plug in.

use crate::coloring::SparsityPattern;
use crate::linalg::Matrix;
use crate::problem::OdeRhs;

/// Forward-difference perturbation step for state value `y_j`.
///
/// The floor applies to the *step*, not the magnitude: `(√ε·|y|).max(√ε)`.
/// The old form `√ε · |y|.max(1e-8)` collapses to ~1.5e-16 when `y_j = 0`
/// — below one ulp of the other state values, so the perturbed RHS is
/// bitwise unchanged (or pure rounding noise) and the Jacobian column
/// comes out O(1) wrong. Zero concentrations are ubiquitous at t = 0 in
/// chemistry runs, which made every initial Jacobian noise-dominated.
pub fn fd_step(y_j: f64) -> f64 {
    let sqrt_eps = f64::EPSILON.sqrt();
    (sqrt_eps * y_j.abs()).max(sqrt_eps)
}

/// An exact Jacobian provider — typically a compiler-emitted analytic
/// tape pair (`rms-core`'s `JacobianTapes`), kept abstract here so the
/// solver crate stays independent of the compiler IR.
pub trait AnalyticJacobian {
    /// The exact structural sparsity of the Jacobian.
    fn pattern(&self) -> &SparsityPattern;

    /// Evaluate the structural nonzeros at `(t, y)` into `vals`, in
    /// row-major order matching [`pattern`](AnalyticJacobian::pattern)
    /// (`vals.len()` equals the pattern's nnz).
    fn eval_values(&self, t: f64, y: &[f64], vals: &mut [f64]);
}

/// Reusable scratch for the finite-difference Jacobians: stacked
/// perturbed states, their stacked RHS values, and the per-column steps.
/// Holding one of these across Newton iterations makes repeated Jacobian
/// refreshes allocation-free.
#[derive(Debug, Clone, Default)]
pub struct FdWorkspace {
    /// Perturbed states, row-major (one state per column sweep).
    pub(crate) ys: Vec<f64>,
    /// RHS values for `ys`, same layout.
    pub(crate) fs: Vec<f64>,
    /// Actual (exactly representable) perturbation step per column.
    pub(crate) steps: Vec<f64>,
}

impl FdWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> FdWorkspace {
        FdWorkspace::default()
    }
}

/// Dense forward-difference Jacobian `J[i][j] = df_i/dy_j` at `(t, y)`.
/// `f_at_y` is the already-computed `f(t, y)` (saves one evaluation);
/// returns the Jacobian and the number of RHS evaluations used.
pub fn fd_jacobian<R: OdeRhs>(rhs: &R, t: f64, y: &[f64], f_at_y: &[f64]) -> (Matrix, usize) {
    let n = y.len();
    let mut jac = Matrix::zeros(n, n);
    let mut ws = FdWorkspace::new();
    let evals = fd_jacobian_into(rhs, t, y, f_at_y, &mut jac, &mut ws);
    (jac, evals)
}

/// [`fd_jacobian`] into caller-owned storage: `jac` (an `n × n` matrix)
/// is overwritten, `ws` provides the scratch. All `n` perturbed states
/// are evaluated in one [`OdeRhs::eval_batch`] call so batched evaluators
/// amortize instruction dispatch across columns. Returns the number of
/// RHS evaluations.
pub fn fd_jacobian_into<R: OdeRhs>(
    rhs: &R,
    t: f64,
    y: &[f64],
    f_at_y: &[f64],
    jac: &mut Matrix,
    ws: &mut FdWorkspace,
) -> usize {
    let n = y.len();
    assert_eq!(jac.rows(), n, "jacobian row count mismatch");
    assert_eq!(jac.cols(), n, "jacobian column count mismatch");
    ws.ys.clear();
    ws.ys.reserve(n * n);
    ws.steps.clear();
    ws.steps.resize(n, 0.0);
    for j in 0..n {
        let start = ws.ys.len();
        ws.ys.extend_from_slice(y);
        let h = fd_step(y[j]);
        ws.ys[start + j] = y[j] + h;
        ws.steps[j] = ws.ys[start + j] - y[j]; // exact representable step
    }
    ws.fs.clear();
    ws.fs.resize(n * n, 0.0);
    rhs.eval_batch(t, &ws.ys, &mut ws.fs);
    for j in 0..n {
        let f_pert = &ws.fs[j * n..(j + 1) * n];
        for i in 0..n {
            jac[(i, j)] = (f_pert[i] - f_at_y[i]) / ws.steps[j];
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnRhs;

    #[test]
    fn linear_system_exact() {
        // f = A y with A = [[-2, 1], [0.5, -3]]: J == A everywhere.
        let rhs = FnRhs::new(2, |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -2.0 * y[0] + y[1];
            ydot[1] = 0.5 * y[0] - 3.0 * y[1];
        });
        let y = [1.3, -0.7];
        let mut f = vec![0.0; 2];
        rhs.eval(0.0, &y, &mut f);
        let (jac, fevals) = fd_jacobian(&rhs, 0.0, &y, &f);
        assert_eq!(fevals, 2);
        assert!((jac[(0, 0)] + 2.0).abs() < 1e-6);
        assert!((jac[(0, 1)] - 1.0).abs() < 1e-6);
        assert!((jac[(1, 0)] - 0.5).abs() < 1e-6);
        assert!((jac[(1, 1)] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn quadratic_mass_action() {
        // f0 = -k*y0*y1 : df0/dy0 = -k*y1, df0/dy1 = -k*y0
        let k = 2.5;
        let rhs = FnRhs::new(2, move |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -k * y[0] * y[1];
            ydot[1] = k * y[0] * y[1];
        });
        let y = [0.8, 0.4];
        let mut f = vec![0.0; 2];
        rhs.eval(0.0, &y, &mut f);
        let (jac, _) = fd_jacobian(&rhs, 0.0, &y, &f);
        assert!((jac[(0, 0)] + k * y[1]).abs() < 1e-5);
        assert!((jac[(0, 1)] + k * y[0]).abs() < 1e-5);
        assert!((jac[(1, 0)] - k * y[1]).abs() < 1e-5);
    }

    #[test]
    fn handles_zero_state() {
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -y[0];
        });
        let y = [0.0];
        let mut f = vec![0.0; 1];
        rhs.eval(0.0, &y, &mut f);
        let (jac, _) = fd_jacobian(&rhs, 0.0, &y, &f);
        assert!((jac[(0, 0)] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn step_floor_applies_to_step_not_magnitude() {
        let sqrt_eps = f64::EPSILON.sqrt();
        assert_eq!(fd_step(0.0), sqrt_eps);
        assert_eq!(fd_step(1e-12), sqrt_eps); // tiny values still get a usable step
        assert_eq!(fd_step(2.0), 2.0 * sqrt_eps);
        assert_eq!(fd_step(-2.0), 2.0 * sqrt_eps);
    }

    /// Regression for the underflow bug: with `h = √ε·|y|.max(1e-8)`, a
    /// zero-concentration column gets h ≈ 1.5e-16 — below one ulp of the
    /// O(1) state entries, so `y + h == y` there and the difference
    /// quotient is O(1) wrong. The fixed step recovers O(√ε) accuracy.
    #[test]
    fn zero_concentration_column_regression() {
        // f0 = y0 + y1 at y = [0.77, 0.0]: ∂f0/∂y1 = 1 exactly.
        let rhs = FnRhs::new(2, |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = y[0] + y[1];
            ydot[1] = -y[1];
        });
        let y = [0.77, 0.0];
        let mut f = vec![0.0; 2];
        rhs.eval(0.0, &y, &mut f);

        // The buggy step, reproduced inline: h ≈ 1.49e-16 is near one ulp
        // of y0 = 0.77, so y0 + y1 moves by whatever rounding decides —
        // the difference quotient is dominated by that noise.
        let sqrt_eps = f64::EPSILON.sqrt();
        let h_old = sqrt_eps * y[1].abs().max(1e-8);
        let mut y_pert = y.to_vec();
        y_pert[1] += h_old;
        let mut f_pert = vec![0.0; 2];
        rhs.eval(0.0, &y_pert, &mut f_pert);
        let entry_old = (f_pert[0] - f[0]) / h_old;
        let err_old = (entry_old - 1.0).abs();
        assert!(err_old > 0.1, "old step: error {err_old} should be O(1)");

        // The fixed path.
        let (jac, _) = fd_jacobian(&rhs, 0.0, &y, &f);
        let err_new = (jac[(0, 1)] - 1.0).abs();
        assert!(
            err_new <= 10.0 * sqrt_eps,
            "new step: error {err_new} should be O(√ε)"
        );
    }

    /// Same state through the colored path: both FD variants share
    /// `fd_step`, so the colored Jacobian is fixed too.
    #[test]
    fn colored_fd_zero_concentration_regression() {
        use crate::coloring::fd_jacobian_colored;
        let rhs = FnRhs::new(2, |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = y[0] + y[1];
            ydot[1] = -y[1];
        });
        let y = [0.77, 0.0];
        let mut f = vec![0.0; 2];
        rhs.eval(0.0, &y, &mut f);
        let pattern = SparsityPattern::new(vec![vec![0, 1], vec![1]], 2);
        let (colors, n_colors) = pattern.color_columns();
        let (jac, _) = fd_jacobian_colored(&rhs, 0.0, &y, &f, &pattern, &colors, n_colors);
        let err = (jac[(0, 1)] - 1.0).abs();
        assert!(
            err <= 10.0 * f64::EPSILON.sqrt(),
            "colored entry error {err} should be O(√ε)"
        );
    }
}
