//! Finite-difference Jacobians for the implicit solvers.

use crate::linalg::Matrix;
use crate::problem::OdeRhs;

/// Dense forward-difference Jacobian `J[i][j] = df_i/dy_j` at `(t, y)`.
/// `f_at_y` is the already-computed `f(t, y)` (saves one evaluation);
/// returns the Jacobian and the number of RHS evaluations used.
pub fn fd_jacobian<R: OdeRhs>(rhs: &R, t: f64, y: &[f64], f_at_y: &[f64]) -> (Matrix, usize) {
    let n = y.len();
    let mut jac = Matrix::zeros(n, n);
    let mut y_pert = y.to_vec();
    let mut f_pert = vec![0.0; n];
    let sqrt_eps = f64::EPSILON.sqrt();
    for j in 0..n {
        let h = sqrt_eps * y[j].abs().max(1e-8);
        y_pert[j] = y[j] + h;
        let h_actual = y_pert[j] - y[j]; // exact representable step
        rhs.eval(t, &y_pert, &mut f_pert);
        for i in 0..n {
            jac[(i, j)] = (f_pert[i] - f_at_y[i]) / h_actual;
        }
        y_pert[j] = y[j];
    }
    (jac, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnRhs;

    #[test]
    fn linear_system_exact() {
        // f = A y with A = [[-2, 1], [0.5, -3]]: J == A everywhere.
        let rhs = FnRhs::new(2, |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -2.0 * y[0] + y[1];
            ydot[1] = 0.5 * y[0] - 3.0 * y[1];
        });
        let y = [1.3, -0.7];
        let mut f = vec![0.0; 2];
        rhs.eval(0.0, &y, &mut f);
        let (jac, fevals) = fd_jacobian(&rhs, 0.0, &y, &f);
        assert_eq!(fevals, 2);
        assert!((jac[(0, 0)] + 2.0).abs() < 1e-6);
        assert!((jac[(0, 1)] - 1.0).abs() < 1e-6);
        assert!((jac[(1, 0)] - 0.5).abs() < 1e-6);
        assert!((jac[(1, 1)] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn quadratic_mass_action() {
        // f0 = -k*y0*y1 : df0/dy0 = -k*y1, df0/dy1 = -k*y0
        let k = 2.5;
        let rhs = FnRhs::new(2, move |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -k * y[0] * y[1];
            ydot[1] = k * y[0] * y[1];
        });
        let y = [0.8, 0.4];
        let mut f = vec![0.0; 2];
        rhs.eval(0.0, &y, &mut f);
        let (jac, _) = fd_jacobian(&rhs, 0.0, &y, &f);
        assert!((jac[(0, 0)] + k * y[1]).abs() < 1e-5);
        assert!((jac[(0, 1)] + k * y[0]).abs() < 1e-5);
        assert!((jac[(1, 0)] - k * y[1]).abs() < 1e-5);
    }

    #[test]
    fn handles_zero_state() {
        let rhs = FnRhs::new(1, |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -y[0];
        });
        let y = [0.0];
        let mut f = vec![0.0; 1];
        rhs.eval(0.0, &y, &mut f);
        let (jac, _) = fd_jacobian(&rhs, 0.0, &y, &f);
        assert!((jac[(0, 0)] + 1.0).abs() < 1e-4);
    }
}
