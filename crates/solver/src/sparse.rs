//! Sparse direct LU for the Newton iteration matrix.
//!
//! The compiler knows the exact sparsity of the analytic Jacobian, and
//! the BDF iteration matrix `I − hβJ` inherits it (plus a guaranteed
//! diagonal). At the paper's scale — networks of ~10 000 ODEs with a few
//! entries per row — dense LU is O(n³) time and O(n²) memory per Newton
//! refactorization, while the factors of a fill-reduced sparse LU stay
//! within a small multiple of nnz(J). This module supplies that path:
//!
//! * [`CscMatrix`]: compressed-sparse-column storage with a fixed
//!   structure and mutable values (column access is what left-looking LU
//!   and triangular solves consume);
//! * a Markowitz/Tinney-style minimum-degree ordering on the symmetrized
//!   pattern, chosen once from the static sparsity;
//! * [`SymbolicLu`]: the symbolic half of the factorization — permutation
//!   plus the fill patterns of L and U — computed **once** per sparsity
//!   and reused across every numeric refactorization as `h` and `β`
//!   change during integration;
//! * [`SparseLu`]: the numeric half — a left-looking refactorization over
//!   the fixed pattern and column-oriented triangular solves, both
//!   allocation-free after construction;
//! * [`SparseNewton`]: the solver-facing bundle that assembles
//!   `I − scale·J` directly into CSC slots from either a CSR Jacobian
//!   (analytic tapes) or a dense store (colored finite differences).
//!
//! Pivoting is *structural*: elimination proceeds along the diagonal of
//! the symmetrically permuted matrix `PAPᵀ`. The iteration matrix always
//! has a full structural diagonal and equals `I` in the small-`hβ` limit,
//! so diagonal pivots are the stable choice in the regime the solver
//! operates in; an exactly zero (or non-finite) pivot is reported as
//! [`LinalgError::Singular`] just like the dense path.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::coloring::SparsityPattern;
use crate::linalg::{CsrMatrix, LinalgError, Matrix};

/// Compressed-sparse-column matrix with a fixed structure and mutable
/// values — the assembly target for the sparse iteration matrix and the
/// input format of [`SparseLu::refactor`].
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    n_rows: usize,
    n_cols: usize,
    /// `col_ptr[j]..col_ptr[j+1]` indexes column j's entries.
    col_ptr: Vec<usize>,
    /// Row of each entry, ascending within a column.
    row_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CscMatrix {
    /// Build the structure from per-column row lists (rows ascending);
    /// all values start at zero.
    pub fn from_columns<'a, I>(cols: I, n_rows: usize) -> Result<CscMatrix, LinalgError>
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        let mut col_ptr = vec![0usize];
        let mut row_idx = Vec::new();
        for col in cols {
            if !col.windows(2).all(|w| w[0] < w[1]) {
                return Err(LinalgError::MalformedPattern);
            }
            row_idx.extend_from_slice(col);
            col_ptr.push(row_idx.len());
        }
        if row_idx.iter().any(|&r| (r as usize) >= n_rows) {
            return Err(LinalgError::MalformedPattern);
        }
        let nnz = row_idx.len();
        Ok(CscMatrix {
            n_rows,
            n_cols: col_ptr.len() - 1,
            col_ptr,
            row_idx,
            vals: vec![0.0; nnz],
        })
    }

    /// Build from a row-oriented [`SparsityPattern`] (values zero).
    pub fn from_pattern(pattern: &SparsityPattern) -> CscMatrix {
        let n_rows = pattern.n_rows();
        let n_cols = pattern.n_cols();
        let mut counts = vec![0usize; n_cols];
        for i in 0..n_rows {
            for &j in pattern.row(i) {
                counts[j as usize] += 1;
            }
        }
        let mut col_ptr = vec![0usize; n_cols + 1];
        for j in 0..n_cols {
            col_ptr[j + 1] = col_ptr[j] + counts[j];
        }
        let nnz = col_ptr[n_cols];
        let mut row_idx = vec![0u32; nnz];
        let mut next = col_ptr.clone();
        // Row-major traversal writes each column's rows in ascending order.
        for i in 0..n_rows {
            for &j in pattern.row(i) {
                row_idx[next[j as usize]] = i as u32;
                next[j as usize] += 1;
            }
        }
        CscMatrix {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
            vals: vec![0.0; nnz],
        }
    }

    /// Capture the nonzeros of a dense matrix (tests and adapters).
    pub fn from_dense(m: &Matrix) -> CscMatrix {
        let (r, c) = (m.rows(), m.cols());
        let mut col_ptr = vec![0usize; c + 1];
        let mut row_idx = Vec::new();
        let mut vals = Vec::new();
        for j in 0..c {
            for i in 0..r {
                let v = m[(i, j)];
                if v != 0.0 {
                    row_idx.push(i as u32);
                    vals.push(v);
                }
            }
            col_ptr[j + 1] = row_idx.len();
        }
        CscMatrix {
            n_rows: r,
            n_cols: c,
            col_ptr,
            row_idx,
            vals,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Values in column-major entry order.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable values, for in-place refresh.
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Rows and values of column `j`.
    pub fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let span = self.col_ptr[j]..self.col_ptr[j + 1];
        (&self.row_idx[span.clone()], &self.vals[span])
    }

    /// Value-slot index of entry `(i, j)`, if structurally present.
    pub fn slot(&self, i: usize, j: usize) -> Option<usize> {
        let span = self.col_ptr[j]..self.col_ptr[j + 1];
        self.row_idx[span.clone()]
            .binary_search(&(i as u32))
            .ok()
            .map(|k| span.start + k)
    }

    /// The row-oriented sparsity of this matrix's structure.
    pub fn pattern(&self) -> SparsityPattern {
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); self.n_rows];
        for j in 0..self.n_cols {
            for &i in self.col(j).0 {
                rows[i as usize].push(j as u32);
            }
        }
        // Column-major traversal appends each row's columns in ascending
        // order already.
        SparsityPattern::new(rows, self.n_cols)
    }

    /// Densify (tests and fallbacks).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n_rows, self.n_cols);
        for j in 0..self.n_cols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                m[(i as usize, j)] = v;
            }
        }
        m
    }
}

/// Pattern of the iteration matrix `I − scale·J`: the Jacobian pattern
/// with a guaranteed diagonal.
pub fn iteration_matrix_pattern(jac: &SparsityPattern) -> SparsityPattern {
    let n = jac.n_rows();
    let rows = (0..n)
        .map(|i| {
            let mut r = jac.row(i).to_vec();
            if let Err(pos) = r.binary_search(&(i as u32)) {
                r.insert(pos, i as u32);
            }
            r
        })
        .collect();
    SparsityPattern::new(rows, jac.n_cols())
}

/// Order-independent fingerprint of a square pattern, used to detect a
/// cached [`SymbolicLu`] being offered for the wrong sparsity.
fn pattern_fingerprint(pattern: &SparsityPattern) -> u64 {
    // FNV-1a over (row, col) pairs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(pattern.n_rows() as u64);
    mix(pattern.n_cols() as u64);
    for i in 0..pattern.n_rows() {
        for &j in pattern.row(i) {
            mix(((i as u64) << 32) | j as u64);
        }
    }
    h
}

/// Minimum-degree ordering (Markowitz criterion specialized to the
/// symmetrized pattern, Tinney scheme 2): repeatedly eliminate the
/// vertex of least degree in the elimination graph of `A + Aᵀ`, turning
/// its neighborhood into a clique. Ties break on the lower index, so the
/// ordering is deterministic.
fn minimum_degree(pattern: &SparsityPattern) -> Vec<u32> {
    let n = pattern.n_rows();
    debug_assert_eq!(n, pattern.n_cols());
    // Symmetrized adjacency, no self-loops.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n {
        for &j in pattern.row(i) {
            let j = j as usize;
            if i != j {
                adj[i].push(j as u32);
                adj[j].push(i as u32);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    // Lazy heap: stale (degree, vertex) entries are skipped when popped.
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = adj
        .iter()
        .enumerate()
        .map(|(v, list)| Reverse((list.len() as u32, v as u32)))
        .collect();
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    let mut mark = vec![0u64; n];
    let mut stamp = 0u64;
    let mut nbrs: Vec<u32> = Vec::new();
    while let Some(Reverse((deg, v))) = heap.pop() {
        let v = v as usize;
        if !alive[v] || adj[v].len() as u32 != deg {
            continue;
        }
        alive[v] = false;
        order.push(v as u32);
        nbrs.clear();
        nbrs.extend(adj[v].iter().copied().filter(|&u| alive[u as usize]));
        // Eliminating v joins its surviving neighbors into a clique.
        let old = std::mem::take(&mut adj[v]);
        for &u in &nbrs {
            let u = u as usize;
            stamp += 1;
            mark[u] = stamp; // excludes u itself from its own list
            let mut merged = Vec::with_capacity(adj[u].len() + nbrs.len());
            for &w in adj[u].iter().chain(nbrs.iter()) {
                let wi = w as usize;
                if alive[wi] && mark[wi] != stamp {
                    mark[wi] = stamp;
                    merged.push(w);
                }
            }
            adj[u] = merged;
            heap.push(Reverse((adj[u].len() as u32, u as u32)));
        }
        drop(old);
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// The symbolic half of a sparse LU: the fill-reducing permutation and
/// the complete fill patterns of `L` (strictly lower, unit diagonal
/// implied) and `U` (upper, diagonal stored last per column), both in
/// CSC over the *permuted* index space. Computed once per sparsity and
/// shared (via `Arc`) by every numeric factorization of matrices with
/// that sparsity.
#[derive(Debug)]
pub struct SymbolicLu {
    n: usize,
    /// `perm[k]` = original index eliminated at step k.
    perm: Vec<u32>,
    /// Inverse: `perm_inv[original] = k`.
    perm_inv: Vec<u32>,
    l_ptr: Vec<usize>,
    l_idx: Vec<u32>,
    u_ptr: Vec<usize>,
    u_idx: Vec<u32>,
    /// Fingerprint of the analyzed pattern, to validate cached reuse.
    fingerprint: u64,
}

impl SymbolicLu {
    /// Analyze a square sparsity pattern: choose the minimum-degree
    /// ordering and compute the fill patterns of L and U by left-looking
    /// reachability. A structural diagonal is assumed present (it always
    /// is for iteration matrices; [`iteration_matrix_pattern`] adds it);
    /// missing diagonals are filled in structurally and simply factor to
    /// zero pivots at numeric time.
    pub fn analyze(pattern: &SparsityPattern) -> Result<SymbolicLu, LinalgError> {
        let n = pattern.n_rows();
        if n != pattern.n_cols() {
            return Err(LinalgError::DimensionMismatch);
        }
        let perm = minimum_degree(pattern);
        let mut perm_inv = vec![0u32; n];
        for (k, &p) in perm.iter().enumerate() {
            perm_inv[p as usize] = k as u32;
        }
        // Columns of B = PAPᵀ, each with a structural diagonal.
        let mut bcols: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            let ip = perm_inv[i];
            for &j in pattern.row(i) {
                bcols[perm_inv[j as usize] as usize].push(ip);
            }
        }
        for (jp, col) in bcols.iter_mut().enumerate() {
            col.push(jp as u32);
            col.sort_unstable();
            col.dedup();
        }
        // Left-looking symbolic: the pattern of column j of the factors is
        // the pattern of B(:,j) plus, for every upper entry k reached, the
        // strictly-lower pattern of L(:,k). Rows reached above the
        // diagonal feed back into the worklist; rows below join L.
        let mut l_ptr = vec![0usize];
        let mut l_idx: Vec<u32> = Vec::new();
        let mut u_ptr = vec![0usize];
        let mut u_idx: Vec<u32> = Vec::new();
        let mut in_col = vec![false; n];
        let mut uppers: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
        let mut lowers: Vec<u32> = Vec::new();
        for jp in 0..n {
            for &ip in &bcols[jp] {
                in_col[ip as usize] = true;
                if (ip as usize) < jp {
                    uppers.push(Reverse(ip));
                } else {
                    lowers.push(ip);
                }
            }
            // Popped ascending: any row unioned in from L(:,k) is > k, so
            // the heap yields U's rows in order.
            while let Some(Reverse(k)) = uppers.pop() {
                u_idx.push(k);
                let span = l_ptr[k as usize]..l_ptr[k as usize + 1];
                for idx in span {
                    let r = l_idx[idx];
                    if !in_col[r as usize] {
                        in_col[r as usize] = true;
                        if (r as usize) < jp {
                            uppers.push(Reverse(r));
                        } else {
                            lowers.push(r);
                        }
                    }
                }
            }
            u_idx.push(jp as u32); // diagonal, stored last
            u_ptr.push(u_idx.len());
            lowers.sort_unstable();
            for &r in &lowers {
                in_col[r as usize] = false;
                if r as usize > jp {
                    l_idx.push(r);
                }
            }
            l_ptr.push(l_idx.len());
            // `uppers` left `in_col` marks on U rows; clear them.
            let uspan = u_ptr[jp]..u_ptr[jp + 1];
            for idx in uspan {
                in_col[u_idx[idx] as usize] = false;
            }
            lowers.clear();
        }
        Ok(SymbolicLu {
            n,
            perm,
            perm_inv,
            l_ptr,
            l_idx,
            u_ptr,
            u_idx,
            fingerprint: pattern_fingerprint(pattern),
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Structural nonzeros of `L + U` (fill-in included; the unit
    /// diagonal of L is not stored and not counted).
    pub fn fill_nnz(&self) -> usize {
        self.l_idx.len() + self.u_idx.len()
    }

    /// Bytes held by a numeric factorization over this structure
    /// (indices + pointers + values + work vector) — the sparse
    /// counterpart of the dense path's `n² × 8` iteration-matrix bytes.
    pub fn factor_bytes(&self) -> usize {
        use std::mem::size_of;
        let idx = (self.l_idx.len() + self.u_idx.len()) * size_of::<u32>();
        let ptr = (self.l_ptr.len() + self.u_ptr.len()) * size_of::<usize>();
        let perm = 2 * self.n * size_of::<u32>();
        let vals = (self.l_idx.len() + self.u_idx.len()) * size_of::<f64>();
        let work = 2 * self.n * size_of::<f64>();
        idx + ptr + perm + vals + work
    }

    /// Whether this analysis was computed for `pattern`.
    pub fn matches(&self, pattern: &SparsityPattern) -> bool {
        self.n == pattern.n_rows()
            && pattern.n_rows() == pattern.n_cols()
            && self.fingerprint == pattern_fingerprint(pattern)
    }
}

/// The numeric half of a sparse LU: values of L and U over a shared
/// [`SymbolicLu`] structure, refreshed in place by
/// [`refactor`](SparseLu::refactor) and consumed by column-oriented
/// triangular [`solve_in_place`](SparseLu::solve_in_place). Both are
/// allocation-free after construction.
#[derive(Debug)]
pub struct SparseLu {
    symbolic: Arc<SymbolicLu>,
    l_vals: Vec<f64>,
    u_vals: Vec<f64>,
    /// Dense scatter column; zero outside `refactor`.
    work: Vec<f64>,
    /// Permuted right-hand side for `solve_in_place(&self, ..)`.
    solve_scratch: RefCell<Vec<f64>>,
}

impl SparseLu {
    /// Allocate numeric storage over a symbolic structure.
    pub fn new(symbolic: Arc<SymbolicLu>) -> SparseLu {
        let (lnz, unz, n) = (symbolic.l_idx.len(), symbolic.u_idx.len(), symbolic.n);
        SparseLu {
            symbolic,
            l_vals: vec![0.0; lnz],
            u_vals: vec![0.0; unz],
            work: vec![0.0; n],
            solve_scratch: RefCell::new(vec![0.0; n]),
        }
    }

    /// The shared symbolic structure.
    pub fn symbolic(&self) -> &Arc<SymbolicLu> {
        &self.symbolic
    }

    /// Numerically refactor `a`, whose sparsity must be contained in the
    /// analyzed pattern (entries outside it would corrupt the scatter
    /// column; debug builds assert containment). Left-looking: for each
    /// column of `PAPᵀ`, scatter it dense, subtract the contributions of
    /// the already-computed L columns its upper entries reach, then
    /// divide out the diagonal pivot.
    pub fn refactor(&mut self, a: &CscMatrix) -> Result<(), LinalgError> {
        let s = &self.symbolic;
        let n = s.n;
        if a.n_rows() != n || a.n_cols() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        let work = &mut self.work;
        for jp in 0..n {
            let (rows, vals) = a.col(s.perm[jp] as usize);
            for (&i, &v) in rows.iter().zip(vals) {
                let ip = s.perm_inv[i as usize] as usize;
                debug_assert!(
                    in_factor_column(s, jp, ip),
                    "entry ({ip}, {jp}) outside the analyzed pattern"
                );
                work[ip] = v;
            }
            let uspan = s.u_ptr[jp]..s.u_ptr[jp + 1];
            for idx in uspan.start..uspan.end - 1 {
                let k = s.u_idx[idx] as usize;
                let ukj = work[k];
                self.u_vals[idx] = ukj;
                if ukj != 0.0 {
                    for li in s.l_ptr[k]..s.l_ptr[k + 1] {
                        work[s.l_idx[li] as usize] -= ukj * self.l_vals[li];
                    }
                }
            }
            let diag = work[jp];
            self.u_vals[uspan.end - 1] = diag;
            for idx in uspan {
                work[s.u_idx[idx] as usize] = 0.0;
            }
            let lspan = s.l_ptr[jp]..s.l_ptr[jp + 1];
            if diag == 0.0 || !diag.is_finite() {
                // Leave `work` clean before reporting the singular pivot.
                for li in lspan {
                    work[s.l_idx[li] as usize] = 0.0;
                }
                return Err(LinalgError::Singular(s.perm[jp] as usize));
            }
            for li in lspan {
                let r = s.l_idx[li] as usize;
                self.l_vals[li] = work[r] / diag;
                work[r] = 0.0;
            }
        }
        Ok(())
    }

    /// Solve `A x = b` using the last successful [`refactor`], overwriting
    /// `b` with the solution.
    ///
    /// [`refactor`]: SparseLu::refactor
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), LinalgError> {
        let s = &self.symbolic;
        let n = s.n;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut x = self.solve_scratch.borrow_mut();
        debug_assert_eq!(x.len(), n);
        for k in 0..n {
            x[k] = b[s.perm[k] as usize];
        }
        // Forward: L z = Pb, columns of unit-lower L.
        for j in 0..n {
            let xj = x[j];
            if xj != 0.0 {
                for li in s.l_ptr[j]..s.l_ptr[j + 1] {
                    x[s.l_idx[li] as usize] -= xj * self.l_vals[li];
                }
            }
        }
        // Backward: U w = z, columns of U with the diagonal stored last.
        for j in (0..n).rev() {
            let uspan = s.u_ptr[j]..s.u_ptr[j + 1];
            let xj = x[j] / self.u_vals[uspan.end - 1];
            x[j] = xj;
            if xj != 0.0 {
                for idx in uspan.start..uspan.end - 1 {
                    x[s.u_idx[idx] as usize] -= xj * self.u_vals[idx];
                }
            }
        }
        // Un-permute: x_original[perm[k]] = w[k].
        for k in 0..n {
            b[s.perm[k] as usize] = x[k];
        }
        Ok(())
    }

    /// Solve `A X = B` for `ncols` right-hand sides at once, overwriting
    /// `bs` with the solutions. `bs` is row-major `n × ncols` (row `i`
    /// occupies `bs[i*ncols..(i+1)*ncols]`), so each factor entry is
    /// loaded once and applied to every column over contiguous memory —
    /// much cheaper than `ncols` separate single-vector solves.
    pub fn solve_multi_in_place(&self, bs: &mut [f64], ncols: usize) -> Result<(), LinalgError> {
        let s = &self.symbolic;
        let n = s.n;
        if ncols == 0 || bs.len() != n * ncols {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut scratch = self.solve_scratch.borrow_mut();
        scratch.resize(n * ncols, 0.0);
        let x = &mut scratch[..n * ncols];
        for k in 0..n {
            let src = s.perm[k] as usize;
            x[k * ncols..(k + 1) * ncols].copy_from_slice(&bs[src * ncols..(src + 1) * ncols]);
        }
        // Forward: L Z = PB, columns of unit-lower L.
        for j in 0..n {
            for li in s.l_ptr[j]..s.l_ptr[j + 1] {
                let l = self.l_vals[li];
                let r = s.l_idx[li] as usize;
                let (head, tail) = x.split_at_mut(r * ncols);
                let row_j = &head[j * ncols..(j + 1) * ncols];
                let row_r = &mut tail[..ncols];
                for c in 0..ncols {
                    row_r[c] -= l * row_j[c];
                }
            }
        }
        // Backward: U W = Z, columns of U with the diagonal stored last.
        for j in (0..n).rev() {
            let uspan = s.u_ptr[j]..s.u_ptr[j + 1];
            let d = self.u_vals[uspan.end - 1];
            for c in 0..ncols {
                x[j * ncols + c] /= d;
            }
            for idx in uspan.start..uspan.end - 1 {
                let u = self.u_vals[idx];
                let r = s.u_idx[idx] as usize;
                let (head, tail) = x.split_at_mut(j * ncols);
                let row_r = &mut head[r * ncols..(r + 1) * ncols];
                let row_j = &tail[..ncols];
                for c in 0..ncols {
                    row_r[c] -= u * row_j[c];
                }
            }
        }
        // Un-permute and restore the scratch invariant (zero, length n)
        // for the single-vector path.
        for k in 0..n {
            bs[s.perm[k] as usize * ncols..][..ncols]
                .copy_from_slice(&x[k * ncols..(k + 1) * ncols]);
        }
        scratch.clear();
        scratch.resize(n, 0.0);
        Ok(())
    }
}

/// Debug-only membership test: is permuted row `ip` structurally present
/// in factor column `jp`?
#[cfg(debug_assertions)]
fn in_factor_column(s: &SymbolicLu, jp: usize, ip: usize) -> bool {
    if ip >= jp {
        ip == jp
            || s.l_idx[s.l_ptr[jp]..s.l_ptr[jp + 1]]
                .binary_search(&(ip as u32))
                .is_ok()
    } else {
        s.u_idx[s.u_ptr[jp]..s.u_ptr[jp + 1] - 1]
            .binary_search(&(ip as u32))
            .is_ok()
    }
}

#[cfg(not(debug_assertions))]
#[inline(always)]
fn in_factor_column(_s: &SymbolicLu, _jp: usize, _ip: usize) -> bool {
    true
}

/// Solver-facing sparse Newton kernel: owns the CSC iteration-matrix
/// buffer `I − scale·J` over a fixed structure, precomputed scatter slot
/// maps from the Jacobian's row-major entry order, and the numeric
/// factorization. Created once per (pattern, solver) and reused for
/// every refactorization.
#[derive(Debug)]
pub struct SparseNewton {
    /// `I − scale·J` assembly buffer (structure = J-pattern ∪ diagonal).
    iter: CscMatrix,
    /// CSC value slot of each Jacobian entry, in row-major entry order
    /// (the order CSR values and pattern traversal produce).
    jac_slots: Vec<u32>,
    /// CSC value slot of each diagonal entry.
    diag_slots: Vec<u32>,
    lu: SparseLu,
}

impl SparseNewton {
    /// Build for a Jacobian sparsity, running symbolic analysis.
    pub fn new(jac_pattern: &SparsityPattern) -> Result<SparseNewton, LinalgError> {
        Self::with_symbolic(jac_pattern, None)
    }

    /// Build for a Jacobian sparsity, reusing a previously computed
    /// symbolic analysis when it matches (e.g. one shared by every solve
    /// of the same compiled model); a mismatched or absent one is
    /// recomputed here.
    pub fn with_symbolic(
        jac_pattern: &SparsityPattern,
        symbolic: Option<Arc<SymbolicLu>>,
    ) -> Result<SparseNewton, LinalgError> {
        let n = jac_pattern.n_rows();
        if n != jac_pattern.n_cols() {
            return Err(LinalgError::DimensionMismatch);
        }
        let iter_pattern = iteration_matrix_pattern(jac_pattern);
        let symbolic = match symbolic {
            Some(s) if s.matches(&iter_pattern) => s,
            _ => Arc::new(SymbolicLu::analyze(&iter_pattern)?),
        };
        let iter = CscMatrix::from_pattern(&iter_pattern);
        let mut jac_slots = Vec::with_capacity(jac_pattern.nnz());
        for i in 0..n {
            for &j in jac_pattern.row(i) {
                let slot = iter
                    .slot(i, j as usize)
                    .expect("iteration pattern contains the Jacobian pattern");
                jac_slots.push(slot as u32);
            }
        }
        let diag_slots = (0..n)
            .map(|i| iter.slot(i, i).expect("diagonal ensured") as u32)
            .collect();
        Ok(SparseNewton {
            iter,
            jac_slots,
            diag_slots,
            lu: SparseLu::new(symbolic),
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.iter.n_rows()
    }

    /// The shared symbolic structure (for reuse by sibling solvers).
    pub fn symbolic(&self) -> &Arc<SymbolicLu> {
        self.lu.symbolic()
    }

    /// nnz(L+U) of the factorization this kernel maintains.
    pub fn fill_nnz(&self) -> usize {
        self.lu.symbolic().fill_nnz()
    }

    /// Peak bytes held for the iteration matrix + factors (the sparse
    /// counterpart of the dense path's `n²` matrix plus its LU clone).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let iter = self.iter.nnz() * (size_of::<f64>() + size_of::<u32>())
            + self.iter.col_ptr.len() * size_of::<usize>();
        let slots = (self.jac_slots.len() + self.diag_slots.len()) * size_of::<u32>();
        iter + slots + self.lu.symbolic().factor_bytes()
    }

    /// Assemble `I − scale·J` from a CSR Jacobian (values in row-major
    /// entry order, as analytic tapes emit) and refactor.
    pub fn factor_from_csr(&mut self, jac: &CsrMatrix, scale: f64) -> Result<(), LinalgError> {
        if jac.nnz() != self.jac_slots.len() || jac.n_rows() != self.n() {
            return Err(LinalgError::DimensionMismatch);
        }
        let vals = self.iter.vals_mut();
        vals.fill(0.0);
        for (&slot, &v) in self.jac_slots.iter().zip(jac.vals()) {
            vals[slot as usize] = -scale * v;
        }
        for &slot in &self.diag_slots {
            vals[slot as usize] += 1.0;
        }
        self.lu.refactor(&self.iter)
    }

    /// Assemble `I − scale·J` by gathering the pattern's entries from a
    /// dense Jacobian store (the colored finite-difference path writes
    /// dense) and refactor.
    pub fn factor_from_dense(
        &mut self,
        jac: &Matrix,
        pattern: &SparsityPattern,
        scale: f64,
    ) -> Result<(), LinalgError> {
        if pattern.nnz() != self.jac_slots.len() || jac.rows() != self.n() {
            return Err(LinalgError::DimensionMismatch);
        }
        let vals = self.iter.vals_mut();
        vals.fill(0.0);
        let mut k = 0;
        for i in 0..pattern.n_rows() {
            for &j in pattern.row(i) {
                vals[self.jac_slots[k] as usize] = -scale * jac[(i, j as usize)];
                k += 1;
            }
        }
        for &slot in &self.diag_slots {
            vals[slot as usize] += 1.0;
        }
        self.lu.refactor(&self.iter)
    }

    /// Solve with the last successful factorization.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), LinalgError> {
        self.lu.solve_in_place(b)
    }

    /// Blocked multi-right-hand-side solve with the last successful
    /// factorization; `bs` is row-major `n × ncols`.
    pub fn solve_multi_in_place(&self, bs: &mut [f64], ncols: usize) -> Result<(), LinalgError> {
        self.lu.solve_multi_in_place(bs, ncols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Lu;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn pattern_of_dense(m: &Matrix) -> SparsityPattern {
        let rows = (0..m.rows())
            .map(|i| {
                (0..m.cols())
                    .filter(|&j| m[(i, j)] != 0.0)
                    .map(|j| j as u32)
                    .collect()
            })
            .collect();
        SparsityPattern::new(rows, m.cols())
    }

    fn factor_and_solve(m: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let pattern = pattern_of_dense(m);
        let symbolic = Arc::new(SymbolicLu::analyze(&pattern)?);
        let mut lu = SparseLu::new(symbolic);
        lu.refactor(&CscMatrix::from_dense(m))?;
        let mut x = b.to_vec();
        lu.solve_in_place(&mut x)?;
        Ok(x)
    }

    #[test]
    fn csc_round_trip_and_slots() {
        let m = Matrix::from_rows(&[&[2.0, 0.0, 1.0], &[0.0, 3.0, 0.0], &[0.0, 5.0, 4.0]]);
        let c = CscMatrix::from_dense(&m);
        assert_eq!((c.n_rows(), c.n_cols(), c.nnz()), (3, 3, 5));
        assert_eq!(c.to_dense(), m);
        assert!(c.slot(0, 2).is_some());
        assert_eq!(c.slot(1, 0), None);
        let p = c.pattern();
        assert_eq!(p.row(2), &[1, 2]);
        // from_columns rejects malformed input.
        assert_eq!(
            CscMatrix::from_columns([&[1u32, 1][..]], 3).unwrap_err(),
            LinalgError::MalformedPattern
        );
        assert_eq!(
            CscMatrix::from_columns([&[5u32][..]], 3).unwrap_err(),
            LinalgError::MalformedPattern
        );
    }

    #[test]
    fn minimum_degree_is_a_permutation() {
        // Arrow matrix: dense first row/column + diagonal. Natural order
        // fills completely; minimum degree eliminates the hub last.
        let n = 8;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                if i == 0 {
                    (0..n as u32).collect()
                } else {
                    vec![0, i as u32]
                }
            })
            .collect();
        let pattern = SparsityPattern::new(rows, n);
        let order = minimum_degree(&pattern);
        let mut seen = vec![false; n];
        for &v in &order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        // The hub must survive until the tail of the elimination: it may
        // be picked once its degree drops to a tie with the last spoke
        // (ties break on index, and the hub is vertex 0), but no earlier.
        let hub_at = order.iter().position(|&v| v == 0).unwrap();
        assert!(hub_at >= n - 2, "hub eliminated at position {hub_at}");
        // And the factorization over that ordering has no fill at all:
        // nnz(L+U) equals the arrow's own nonzero count.
        let sym = SymbolicLu::analyze(&pattern).unwrap();
        assert_eq!(sym.fill_nnz(), pattern.nnz());
    }

    #[test]
    fn natural_order_arrow_fills_dense() {
        // Sanity check of the symbolic phase itself: force the bad
        // ordering by spelling the arrow with the hub first under an
        // identity-like pattern where every vertex has the same degree
        // is not possible, so instead verify fill is counted: a dense
        // pattern's fill equals n².
        let n = 5;
        let rows: Vec<Vec<u32>> = (0..n).map(|_| (0..n as u32).collect()).collect();
        let sym = SymbolicLu::analyze(&SparsityPattern::new(rows, n)).unwrap();
        assert_eq!(sym.fill_nnz(), n * n);
    }

    #[test]
    fn sparse_solve_matches_dense_lu() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 17, 40] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    if i == j || rng.gen_range(0.0..1.0) < 0.2 {
                        a[(i, j)] = rng.gen_range(-1.0..1.0);
                    }
                }
                a[(i, i)] += 4.0; // diagonally dominant
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let dense = Lu::factor(&a).unwrap().solve(&b).unwrap();
            let sparse = factor_and_solve(&a, &b).unwrap();
            for (d, s) in dense.iter().zip(&sparse) {
                assert!((d - s).abs() < 1e-12, "n={n}: {d} vs {s}");
            }
        }
    }

    #[test]
    fn refactor_reuses_structure_with_new_values() {
        // Same pattern, different values (the h·β sweep the solver does).
        let p = SparsityPattern::new(vec![vec![0, 1], vec![0, 1, 2], vec![1, 2]], 3);
        let symbolic = Arc::new(SymbolicLu::analyze(&p).unwrap());
        let mut lu = SparseLu::new(Arc::clone(&symbolic));
        let mut csc = CscMatrix::from_pattern(&p);
        for (scale, b) in [(1.0, [1.0, 2.0, 3.0]), (0.125, [3.0, -1.0, 0.5])] {
            // A = I + scale * M for a fixed M.
            let m = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[-1.0, 3.0, 1.0], &[0.0, 0.5, 2.0]]);
            let mut a = Matrix::identity(3);
            for i in 0..3 {
                for j in 0..3 {
                    a[(i, j)] += scale * m[(i, j)];
                }
            }
            for i in 0..3 {
                for &j in p.row(i) {
                    let slot = csc.slot(i, j as usize).unwrap();
                    csc.vals_mut()[slot] = a[(i, j as usize)];
                }
            }
            lu.refactor(&csc).unwrap();
            let mut x = b.to_vec();
            lu.solve_in_place(&mut x).unwrap();
            let expect = Lu::factor(&a).unwrap().solve(&b).unwrap();
            for (e, g) in expect.iter().zip(&x) {
                assert!((e - g).abs() < 1e-13, "{e} vs {g}");
            }
        }
        assert!(Arc::ptr_eq(lu.symbolic(), &symbolic));
    }

    #[test]
    fn singular_matrix_reported() {
        // Structurally singular: an empty row.
        let mut a = Matrix::identity(3);
        a[(1, 1)] = 0.0;
        let pattern = SparsityPattern::new(vec![vec![0], vec![1], vec![2]], 3);
        let symbolic = Arc::new(SymbolicLu::analyze(&pattern).unwrap());
        let mut lu = SparseLu::new(symbolic);
        let mut csc = CscMatrix::from_pattern(&pattern);
        csc.vals_mut().copy_from_slice(&[1.0, 0.0, 1.0]);
        assert!(matches!(lu.refactor(&csc), Err(LinalgError::Singular(_))));
        // A later refactor with good values still succeeds (work vector
        // stayed clean through the error path).
        csc.vals_mut().copy_from_slice(&[1.0, 2.0, 1.0]);
        lu.refactor(&csc).unwrap();
        let mut x = vec![2.0, 4.0, 6.0];
        lu.solve_in_place(&mut x).unwrap();
        assert_eq!(x, vec![2.0, 2.0, 6.0]);
    }

    #[test]
    fn sparse_newton_assembles_from_csr_and_dense() {
        let n = 4;
        let rows: Vec<Vec<u32>> = vec![vec![0, 1], vec![0, 1, 2], vec![1, 2], vec![3]];
        let pattern = SparsityPattern::new(rows.clone(), n);
        let mut csr = CsrMatrix::from_rows(rows.iter().map(Vec::as_slice), n).unwrap();
        let jac_vals = [2.0, -1.0, 0.5, 3.0, 1.0, -2.0, 0.25, 4.0];
        csr.vals_mut().copy_from_slice(&jac_vals);
        let scale = 0.3;
        let mut newton = SparseNewton::new(&pattern).unwrap();
        newton.factor_from_csr(&csr, scale).unwrap();
        let b = [1.0, -2.0, 0.5, 3.0];
        let mut x_sparse = b.to_vec();
        newton.solve_in_place(&mut x_sparse).unwrap();
        let dense_iter = csr.assemble_iteration_matrix(scale);
        let x_dense = Lu::factor(&dense_iter).unwrap().solve(&b).unwrap();
        for (d, s) in x_dense.iter().zip(&x_sparse) {
            assert!((d - s).abs() < 1e-13, "{d} vs {s}");
        }
        // The dense-store path produces the same factorization.
        let mut newton2 = SparseNewton::new(&pattern).unwrap();
        newton2
            .factor_from_dense(&csr.to_dense(), &pattern, scale)
            .unwrap();
        let mut x2 = b.to_vec();
        newton2.solve_in_place(&mut x2).unwrap();
        for (a, b) in x_sparse.iter().zip(&x2) {
            assert_eq!(a, b, "CSR and dense assembly must agree bitwise");
        }
        assert!(newton.fill_nnz() <= n * n);
        assert!(newton.memory_bytes() > 0);
    }

    #[test]
    fn symbolic_cache_validation() {
        let p1 = SparsityPattern::new(vec![vec![0], vec![1]], 2);
        let p2 = SparsityPattern::new(vec![vec![0, 1], vec![0, 1]], 2);
        let s1 = Arc::new(SymbolicLu::analyze(&iteration_matrix_pattern(&p1)).unwrap());
        assert!(s1.matches(&iteration_matrix_pattern(&p1)));
        assert!(!s1.matches(&iteration_matrix_pattern(&p2)));
        // A mismatched cache is silently replaced, not misused.
        let newton = SparseNewton::with_symbolic(&p2, Some(Arc::clone(&s1))).unwrap();
        assert!(!Arc::ptr_eq(newton.symbolic(), &s1));
        let newton = SparseNewton::with_symbolic(&p1, Some(Arc::clone(&s1))).unwrap();
        assert!(Arc::ptr_eq(newton.symbolic(), &s1));
    }

    #[test]
    fn fill_in_small_on_banded_system() {
        // Tridiagonal: minimum degree keeps nnz(L+U) = nnz(A) (no fill).
        let n = 50;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let i = i as u32;
                let mut r = vec![i];
                if i > 0 {
                    r.insert(0, i - 1);
                }
                if (i as usize) < n - 1 {
                    r.push(i + 1);
                }
                r
            })
            .collect();
        let pattern = SparsityPattern::new(rows, n);
        let sym = SymbolicLu::analyze(&pattern).unwrap();
        assert_eq!(sym.fill_nnz(), pattern.nnz());
        assert!(sym.fill_nnz() < n * n / 8);
    }
}
