//! Colored finite-difference Jacobians (Curtis–Powell–Reid).
//!
//! A dense FD Jacobian costs one RHS evaluation per state variable —
//! prohibitive at the paper's 250 000-equation scale. Chemistry Jacobians
//! are sparse: `∂f_i/∂y_j ≠ 0` only when species `j` appears in
//! equation `i`. Columns that share no row are *structurally orthogonal*
//! and can be perturbed together, so the evaluation count drops from `n`
//! to the number of colors — typically a small constant for reaction
//! networks.

use crate::jacobian::{fd_step, FdWorkspace};
use crate::linalg::Matrix;
use crate::problem::OdeRhs;

/// The Jacobian sparsity pattern: `rows[i]` lists the columns (species)
/// with possibly-nonzero entries in row `i`, sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    rows: Vec<Vec<u32>>,
    n_cols: usize,
}

impl SparsityPattern {
    /// Build from per-row column lists (each sorted ascending).
    pub fn new(rows: Vec<Vec<u32>>, n_cols: usize) -> SparsityPattern {
        debug_assert!(
            rows.iter()
                .all(|r| r.windows(2).all(|w| w[0] < w[1])
                    && r.iter().all(|&c| (c as usize) < n_cols))
        );
        SparsityPattern { rows, n_cols }
    }

    /// Number of rows (equations).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns (state variables).
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Columns of row `i`.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.rows[i]
    }

    /// Total number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Greedy distance-2 coloring of the columns: two columns sharing any
    /// row get different colors. Returns `(color_of_column, n_colors)`.
    pub fn color_columns(&self) -> (Vec<u32>, usize) {
        let n = self.n_cols;
        // Column -> rows index for conflict lookup.
        let mut cols: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, row) in self.rows.iter().enumerate() {
            for &c in row {
                cols[c as usize].push(i as u32);
            }
        }
        let mut color = vec![u32::MAX; n];
        let mut n_colors = 0usize;
        // Forbidden scratch, reset per column via stamping.
        let mut forbidden: Vec<u64> = vec![u64::MAX; 0];
        let mut stamp: u64 = 0;
        forbidden.resize(n + 1, 0);
        // Order columns by degree (most constrained first) for fewer colors.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(cols[c].len()));
        for &c in &order {
            stamp += 1;
            for &r in &cols[c] {
                for &other in &self.rows[r as usize] {
                    let oc = color[other as usize];
                    if oc != u32::MAX {
                        forbidden[oc as usize] = stamp;
                    }
                }
            }
            let mut pick = 0u32;
            while forbidden[pick as usize] == stamp {
                pick += 1;
            }
            color[c] = pick;
            n_colors = n_colors.max(pick as usize + 1);
        }
        (color, n_colors)
    }
}

/// Colored forward-difference Jacobian: perturb all same-colored columns
/// at once and attribute each row's difference to that row's unique
/// column of the color. Returns the (dense-storage) Jacobian and the
/// number of RHS evaluations used (= number of colors).
pub fn fd_jacobian_colored<R: OdeRhs>(
    rhs: &R,
    t: f64,
    y: &[f64],
    f_at_y: &[f64],
    pattern: &SparsityPattern,
    colors: &[u32],
    n_colors: usize,
) -> (Matrix, usize) {
    let mut jac = Matrix::zeros(pattern.n_rows(), y.len());
    let mut ws = FdWorkspace::new();
    let evals = fd_jacobian_colored_into(
        rhs, t, y, f_at_y, pattern, colors, n_colors, &mut jac, &mut ws,
    );
    (jac, evals)
}

/// [`fd_jacobian_colored`] into caller-owned storage: `jac` is
/// overwritten, `ws` provides the scratch. All `n_colors` perturbed
/// states are built up front and evaluated in a **single**
/// [`OdeRhs::eval_batch`] call, so a batched evaluator (an `ExecTape` in
/// structure-of-arrays mode) runs every color sweep of the Jacobian in
/// one SIMD pass instead of `n_colors` scalar interpreter walks. Returns
/// the number of RHS evaluations (= `n_colors`).
#[allow(clippy::too_many_arguments)] // mirrors fd_jacobian_colored + outputs
pub fn fd_jacobian_colored_into<R: OdeRhs>(
    rhs: &R,
    t: f64,
    y: &[f64],
    f_at_y: &[f64],
    pattern: &SparsityPattern,
    colors: &[u32],
    n_colors: usize,
    jac: &mut Matrix,
    ws: &mut FdWorkspace,
) -> usize {
    let n = y.len();
    let n_rows = pattern.n_rows();
    debug_assert_eq!(pattern.n_cols(), n);
    assert_eq!(jac.rows(), n_rows, "jacobian row count mismatch");
    assert_eq!(jac.cols(), n, "jacobian column count mismatch");
    debug_assert_eq!(
        n_rows,
        rhs.dim(),
        "batched layout needs one RHS output per pattern row"
    );
    // Stack one perturbed copy of `y` per color.
    ws.ys.clear();
    ws.ys.reserve(n_colors * n);
    for _ in 0..n_colors {
        ws.ys.extend_from_slice(y);
    }
    ws.steps.clear();
    ws.steps.resize(n, 0.0);
    for j in 0..n {
        let c = colors[j] as usize;
        let slot = c * n + j;
        let h = fd_step(y[j]);
        ws.ys[slot] = y[j] + h;
        ws.steps[j] = ws.ys[slot] - y[j]; // exact representable step
    }
    ws.fs.clear();
    ws.fs.resize(n_colors * n_rows, 0.0);
    rhs.eval_batch(t, &ws.ys, &mut ws.fs);
    // Each row has at most one perturbed column per color.
    jac.data_mut().fill(0.0);
    for i in 0..n_rows {
        for &jc in pattern.row(i) {
            let j = jc as usize;
            let f_pert = ws.fs[colors[j] as usize * n_rows + i];
            jac[(i, j)] = (f_pert - f_at_y[i]) / ws.steps[j];
        }
    }
    n_colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobian::fd_jacobian;
    use crate::problem::FnRhs;

    /// Tridiagonal decay chain: y_i' = y_{i-1} - y_i.
    fn chain_pattern(n: usize) -> SparsityPattern {
        let rows = (0..n)
            .map(|i| {
                if i == 0 {
                    vec![0u32]
                } else {
                    vec![i as u32 - 1, i as u32]
                }
            })
            .collect();
        SparsityPattern::new(rows, n)
    }

    #[test]
    fn chain_colors_constant() {
        for n in [2usize, 10, 100, 1000] {
            let p = chain_pattern(n);
            let (colors, n_colors) = p.color_columns();
            assert!(n_colors <= 3, "chain needed {n_colors} colors at n={n}");
            // Validity: no two columns in one row share a color.
            for i in 0..p.n_rows() {
                let row = p.row(i);
                for a in 0..row.len() {
                    for b in (a + 1)..row.len() {
                        assert_ne!(colors[row[a] as usize], colors[row[b] as usize]);
                    }
                }
            }
        }
    }

    #[test]
    fn dense_row_forces_n_colors() {
        // One row touching every column: all columns conflict.
        let n = 8;
        let mut rows = vec![(0..n as u32).collect::<Vec<_>>()];
        rows.extend((1..n).map(|i| vec![i as u32]));
        let p = SparsityPattern::new(rows, n);
        let (_, n_colors) = p.color_columns();
        assert_eq!(n_colors, n);
    }

    #[test]
    fn colored_matches_dense_fd() {
        let n = 30;
        let rhs = FnRhs::new(n, move |_t, y: &[f64], ydot: &mut [f64]| {
            ydot[0] = -y[0];
            for i in 1..y.len() {
                ydot[i] = y[i - 1] * y[i - 1] - 0.5 * y[i];
            }
        });
        let y: Vec<f64> = (0..n).map(|i| 0.3 + 0.05 * i as f64).collect();
        let mut f = vec![0.0; n];
        rhs.eval(0.0, &y, &mut f);
        let (dense, dense_evals) = fd_jacobian(&rhs, 0.0, &y, &f);
        let pattern = chain_pattern(n);
        let (colors, n_colors) = pattern.color_columns();
        let (colored, evals) = fd_jacobian_colored(&rhs, 0.0, &y, &f, &pattern, &colors, n_colors);
        assert!(evals < dense_evals, "{evals} vs {dense_evals}");
        for i in 0..n {
            for &j in pattern.row(i) {
                let (a, b) = (dense[(i, j as usize)], colored[(i, j as usize)]);
                assert!(
                    (a - b).abs() < 1e-6 * a.abs().max(1.0),
                    "({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn nnz_and_accessors() {
        let p = chain_pattern(4);
        assert_eq!(p.n_rows(), 4);
        assert_eq!(p.n_cols(), 4);
        assert_eq!(p.nnz(), 1 + 2 + 2 + 2);
        assert_eq!(p.row(2), &[1, 2]);
    }
}
