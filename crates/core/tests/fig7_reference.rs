//! Differential test: a literal, unoptimized transcription of the paper's
//! Figure 7 CSE algorithm serves as the oracle for the production
//! (DAG-based) implementation on flat sum-of-products systems.
//!
//! The reference works exactly as printed: expressions (product factor
//! lists here, the dominant redundancy pre-distribution) are stored in an
//! `exprList` indexed by length with terms in canonical order; equal
//! expressions share a temporary; longest-first prefix matching rewrites
//! long expressions in terms of shorter ones' temporaries, setting the
//! `genTemp` bit; assignments are emitted shortest-first so every
//! temporary is written before it is read.

use std::collections::HashMap;

use rms_core::{cse_forest, CseOptions, Expr, ExprForest};

/// Atom = (is_rate, index); products are sorted atom lists.
type Term = (bool, u32);

#[derive(Debug, Clone)]
struct RefExpression {
    /// Canonical term list (the paper's `expr`).
    terms: Vec<Term>,
    /// The paper's `genTemp` bit.
    gen_temp: bool,
    /// Rewritten form: prefix replaced by another expression's temp.
    prefix_of: Option<(usize, usize)>, // (expression index, prefix length)
    /// Total number of occurrences across all equations.
    occurrences: usize,
}

/// Cost of the reference output in (mults, adds), given the original
/// per-equation structure.
struct RefCost {
    mults: usize,
    adds: usize,
}

/// Run the literal Fig. 7 algorithm over the products of a flat system;
/// returns the achieved cost.
fn reference_fig7(rhs: &[Vec<(f64, Vec<Term>)>]) -> RefCost {
    // Collect distinct products with occurrence counts.
    let mut index: HashMap<Vec<Term>, usize> = HashMap::new();
    let mut exprs: Vec<RefExpression> = Vec::new();
    let mut max_len = 0usize;
    for eq in rhs {
        for (_, terms) in eq {
            max_len = max_len.max(terms.len());
            match index.get(terms) {
                Some(&i) => exprs[i].occurrences += 1,
                None => {
                    index.insert(terms.clone(), exprs.len());
                    exprs.push(RefExpression {
                        terms: terms.clone(),
                        gen_temp: false,
                        prefix_of: None,
                        occurrences: 1,
                    });
                }
            }
        }
    }
    // Multi-occurrence expressions get temps (the equal-length exact match
    // of lines 4-6, applied across the whole program).
    for e in &mut exprs {
        if e.occurrences > 1 && e.terms.len() >= 2 {
            e.gen_temp = true;
        }
    }
    // exprList[len] (lines 1-2), longest-first prefix matching (lines 7-11).
    let mut by_len: Vec<Vec<usize>> = vec![Vec::new(); max_len + 1];
    for (i, e) in exprs.iter().enumerate() {
        by_len[e.terms.len()].push(i);
    }
    let lookup: HashMap<Vec<Term>, usize> = index.clone();
    for len in (2..=max_len).rev() {
        for &long in &by_len[len] {
            // search shorter lengths from longest to shortest (line 7).
            for i in (2..len).rev() {
                let prefix = exprs[long].terms[..i].to_vec();
                if let Some(&short) = lookup.get(&prefix) {
                    if short != long {
                        exprs[long].prefix_of = Some((short, i));
                        exprs[short].gen_temp = true; // replacePrefix marks genTemp
                        break;
                    }
                }
            }
        }
    }
    // Cost model: a temp's definition is computed once; uses are free
    // factors. An expression of n terms costs n-1 mults (prefix rewrite:
    // (n - i) remaining terms multiplied onto the short temp).
    let mut mults = 0usize;
    for e in &exprs {
        let def_cost = match e.prefix_of {
            Some((_, i)) => e.terms.len() - i, // temp * rest…
            None => e.terms.len() - 1,
        };
        if e.gen_temp {
            mults += def_cost;
        } else {
            // inline at each occurrence
            mults += def_cost * e.occurrences;
        }
    }
    // Coefficient multiplies and per-equation adds unchanged by CSE.
    let mut adds = 0usize;
    for eq in rhs {
        adds += eq.len().saturating_sub(1);
        for (c, _) in eq {
            if c.abs() != 1.0 {
                mults += 1;
            }
        }
    }
    RefCost { mults, adds }
}

/// Build the same system as an ExprForest for the production pipeline.
fn to_forest(rhs: &[Vec<(f64, Vec<Term>)>]) -> ExprForest {
    let exprs: Vec<Expr> = rhs
        .iter()
        .map(|eq| {
            Expr::sum(
                eq.iter()
                    .map(|(c, terms)| {
                        Expr::prod(
                            *c,
                            terms
                                .iter()
                                .map(|&(is_rate, i)| {
                                    if is_rate {
                                        Expr::Rate(i)
                                    } else {
                                        Expr::Species(i)
                                    }
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    let n = exprs.len();
    ExprForest {
        temps: vec![],
        rhs: exprs,
        n_species: n,
        n_rates: 4,
    }
}

/// Random flat mass-action-shaped system.
fn random_system(seed: u64, n_eq: usize) -> Vec<Vec<(f64, Vec<Term>)>> {
    // xorshift for determinism without rand in this test.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // A pool of shared products (reactions) used by several equations.
    let n_products = 1 + n_eq / 2;
    let pool: Vec<Vec<Term>> = (0..n_products)
        .map(|_| {
            let len = 2 + (next() % 3) as usize;
            let mut terms: Vec<Term> = vec![(true, (next() % 4) as u32)];
            for _ in 1..len {
                terms.push((false, (next() % 8) as u32));
            }
            terms.sort_unstable();
            terms
        })
        .collect();
    (0..n_eq)
        .map(|_| {
            let n_terms = 1 + (next() % 5) as usize;
            (0..n_terms)
                .map(|_| {
                    let coeff = match next() % 4 {
                        0 => -1.0,
                        1 => 2.0,
                        _ => 1.0,
                    };
                    (coeff, pool[(next() % n_products as u64) as usize].clone())
                })
                .collect()
        })
        .collect()
}

#[test]
fn production_cse_never_worse_than_fig7_reference() {
    for seed in 1..40u64 {
        let system = random_system(seed * 7919, 4 + (seed % 8) as usize);
        let reference = reference_fig7(&system);
        let forest = to_forest(&system);
        let optimized = cse_forest(&forest, CseOptions::default());
        let counts = optimized.op_counts();
        assert!(
            counts.mults <= reference.mults,
            "seed {seed}: production {counts:?} vs reference ({}, {})",
            reference.mults,
            reference.adds
        );
        // Adds can only shrink via sum sharing (the reference does not
        // model sums), never grow.
        assert!(counts.adds <= reference.adds, "seed {seed}");
    }
}

#[test]
fn production_matches_reference_on_paper_patterns() {
    // The dRS-family pattern: one product family shared + a prefix chain.
    // k0*A*B twice, k0*A*B*C once — reference: temp for k0*A*B (2 mults),
    // long one = temp * C (1 mult) => 3 mults total.
    let terms_short = vec![(true, 0), (false, 0), (false, 1)];
    let terms_long = vec![(true, 0), (false, 0), (false, 1), (false, 2)];
    let system = vec![
        vec![(1.0, terms_short.clone())],
        vec![(1.0, terms_short.clone())],
        vec![(1.0, terms_long.clone())],
    ];
    let reference = reference_fig7(&system);
    assert_eq!(reference.mults, 3);
    let optimized = cse_forest(&to_forest(&system), CseOptions::default());
    assert_eq!(optimized.op_counts().mults, 3, "{optimized:?}");
}

#[test]
fn semantic_equivalence_of_production_on_reference_inputs() {
    for seed in 1..20u64 {
        let system = random_system(seed * 104729, 5);
        let forest = to_forest(&system);
        let optimized = cse_forest(&forest, CseOptions::default());
        let rates = [1.3, 0.7, 2.1, 0.4];
        let y: Vec<f64> = (0..8).map(|i| 0.3 + i as f64 * 0.11).collect();
        let mut a = vec![0.0; forest.rhs.len()];
        let mut b = vec![0.0; forest.rhs.len()];
        forest.eval_into(&rates, &y, &mut a);
        optimized.eval_into(&rates, &y, &mut b);
        for (x, z) in a.iter().zip(&b) {
            assert!(
                (x - z).abs() <= 1e-9 * x.abs().max(1.0),
                "seed {seed}: {x} vs {z}"
            );
        }
    }
}
