//! Property test: the execution engine is a drop-in replacement for the
//! legacy tape interpreter on *arbitrary* optimizer output.
//!
//! Random expression forests are pushed through every optimization level
//! (none / simplify / +distribute / +CSE), lowered, and evaluated three
//! ways: the legacy interpreter, the decoded `ExecTape` scalar path, and
//! the SIMD-batched path (every lane checked).
//!
//! ## Tolerance
//!
//! The default build does not enable the `fma` target feature, so the
//! fused `MulAdd`/`MulSub` superinstructions execute as a multiply
//! followed by an add — the *same two roundings in the same order* as the
//! unfused interpreter — and all three evaluators must agree **bitwise**.
//! When the build does contract (`FMA_CONTRACTS == true`, e.g.
//! `-C target-feature=+fma`), each fused site drops one intermediate
//! rounding; the results then differ by at most ~1 ulp per fused site,
//! which the relative bound of 1e-12 absorbs with a wide margin for the
//! expression depths generated here.

use proptest::prelude::*;
use proptest::TestRng;
use rms_core::{
    compact_registers, cse_forest, distribute_forest, lower, simplify_forest, ExecFrame, ExecTape,
    Expr, ExprForest, OptLevel, FMA_CONTRACTS, LANES,
};

/// A uniform draw from `[lo, hi)`.
fn f64_in(rng: &mut TestRng, lo: f64, hi: f64) -> f64 {
    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    lo + unit * (hi - lo)
}

/// A random expression over `n_species` species and `n_rates` rates.
/// Leans on the smart constructors, so the shapes mirror what the
/// frontend and optimizer passes actually build (sorted factors,
/// flattened sums, folded constants).
fn random_expr(rng: &mut TestRng, depth: usize, n_species: usize, n_rates: usize) -> Expr {
    let choice = if depth == 0 {
        rng.next_u64() % 3
    } else {
        rng.next_u64() % 5
    };
    match choice {
        0 => Expr::Species(rng.usize_in(0..n_species) as u32),
        1 => Expr::Rate(rng.usize_in(0..n_rates) as u32),
        2 => Expr::constant(f64_in(rng, -2.0, 2.0)),
        3 => {
            let n = rng.usize_in(1..4);
            let factors = (0..n)
                .map(|_| random_expr(rng, depth - 1, n_species, n_rates))
                .collect();
            Expr::prod(f64_in(rng, -2.0, 2.0), factors)
        }
        _ => {
            let n = rng.usize_in(2..5);
            let children = (0..n)
                .map(|_| random_expr(rng, depth - 1, n_species, n_rates))
                .collect();
            Expr::sum(children)
        }
    }
}

fn random_forest(rng: &mut TestRng, n_species: usize, n_rates: usize) -> ExprForest {
    let rhs = (0..n_species)
        .map(|_| random_expr(rng, 3, n_species, n_rates))
        .collect();
    ExprForest {
        temps: Vec::new(),
        rhs,
        n_species,
        n_rates,
    }
}

/// Apply the passes of one [`OptLevel`] to a temporary-free forest.
fn apply_level(forest: &ExprForest, level: OptLevel) -> ExprForest {
    let passes = level.passes();
    let mut out = forest.clone();
    if passes.simplify {
        out = simplify_forest(&out);
    }
    if passes.distribute {
        out = distribute_forest(&out);
    }
    if let Some(options) = passes.cse {
        out = cse_forest(&out, options);
    }
    out
}

/// Bitwise comparison when the build does not contract FMA, tight
/// relative bound when it does (see the module docs).
fn check_agree(a: f64, b: f64, what: &str) -> Result<(), TestCaseError> {
    if FMA_CONTRACTS {
        let tol = 1e-12 * a.abs().max(1.0);
        prop_assert!((a - b).abs() <= tol, "{}: {} vs {}", what, a, b);
    } else {
        prop_assert!(
            a.to_bits() == b.to_bits(),
            "{}: {} vs {} (bitwise)",
            what,
            a,
            b
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Interpreter, ExecTape scalar, and every batched lane agree on
    /// random forests at all four optimization levels.
    #[test]
    fn engines_agree_on_random_forests(
        seed in any::<u64>(),
        n_species in 2usize..7,
        n_rates in 1usize..4,
    ) {
        let mut rng = TestRng::new(seed);
        let forest = random_forest(&mut rng, n_species, n_rates);
        let rates: Vec<f64> = (0..n_rates).map(|_| f64_in(&mut rng, 0.1, 3.0)).collect();
        // A full batch plus a ragged tail, so both the SIMD chunks and
        // the padded trailing chunk are exercised.
        let n_states = LANES + 3;
        let ys: Vec<f64> = (0..n_states * n_species)
            .map(|_| f64_in(&mut rng, 0.05, 1.5))
            .collect();

        for level in OptLevel::ALL {
            let optimized = apply_level(&forest, level);
            let tape = compact_registers(&lower(&optimized));
            let exec = ExecTape::compile(&tape);
            prop_assert_eq!(exec.op_counts(), tape.op_counts());

            let mut frame = ExecFrame::new();
            let mut scratch = Vec::new();
            let mut interp = vec![0.0; n_species];
            let mut scalar = vec![0.0; n_species];
            let mut batched = vec![0.0; n_states * n_species];
            exec.eval_batch(&rates, &ys, &mut batched, &mut frame);
            for s in 0..n_states {
                let y = &ys[s * n_species..(s + 1) * n_species];
                tape.eval_with_scratch(&rates, y, &mut interp, &mut scratch);
                exec.eval(&rates, y, &mut scalar, &mut frame);
                for i in 0..n_species {
                    check_agree(
                        interp[i],
                        scalar[i],
                        &format!("{level}: state {s} ydot[{i}] interp vs exec-scalar"),
                    )?;
                    check_agree(
                        interp[i],
                        batched[s * n_species + i],
                        &format!("{level}: state {s} ydot[{i}] interp vs exec-batched"),
                    )?;
                }
            }
        }
    }
}
