//! The iterated distribute⇄CSE interplay on a mean-field structure:
//! `dA/dt = Σ_i Σ_f k·As_i·R_f` must collapse toward
//! `k·(Σ As_i)·(Σ R_f)` — (N·F) products becoming ~N+F operations.

use rms_core::{optimize, optimize_with_passes, CseOptions, OptLevel, Passes};
use rms_odegen::{generate, GenerateOptions};
use rms_rcip::RateTable;
use rms_rdl::{Reaction, ReactionNetwork};

/// N agent species, F rubber species, one product P; reactions
/// `As_i + R_f -> P` all with the same rate constant.
fn mean_field_system(n: usize, f: usize) -> rms_odegen::OdeSystem {
    let mut network = ReactionNetwork::new();
    let agents: Vec<_> = (0..n)
        .map(|i| network.add_abstract_species(&format!("As{i}"), 0.1))
        .collect();
    let rubbers: Vec<_> = (0..f)
        .map(|i| network.add_abstract_species(&format!("R{i}"), 1.0))
        .collect();
    let product = network.add_abstract_species("P", 0.0);
    for &a in &agents {
        for &r in &rubbers {
            network.add_reaction(Reaction {
                reactants: vec![a, r],
                products: vec![product],
                rate: "K".to_string(),
                rule: "mf".to_string(),
            });
        }
    }
    let rates = RateTable::parse("rate K = 2;").unwrap();
    generate(&network, &rates, GenerateOptions { simplify: true }).unwrap()
}

#[test]
fn product_equation_collapses_to_product_of_sums() {
    let (n, f) = (6usize, 8usize);
    let system = mean_field_system(n, f);
    let unopt = optimize(&system, OptLevel::None);
    let full = optimize(&system, OptLevel::Full);

    // Unoptimized: every equation containing the flux pays ~2 mults per
    // (i, f) pair; dP/dt alone holds N·F products.
    assert!(unopt.stages.after_cse.mults >= 2 * n * f);

    // d[P]/dt = k·(ΣAs)·(ΣR) costs 2 mults; the individual As_i·R_f
    // products are still needed by the As_i and R_f equations, but each
    // of those factors through the shared sums too: As_i·(ΣR) and
    // R_f·(ΣAs) — so total mults is O(N + F), not O(N·F).
    let full_mults = full.stages.after_cse.mults;
    assert!(
        full_mults <= 3 * (n + f) + 6,
        "expected O(N+F) mults, got {full_mults} (stages: {:?})",
        full.stages
    );

    // Semantics preserved.
    let y: Vec<f64> = (0..system.len())
        .map(|i| 0.2 + (i % 5) as f64 * 0.17)
        .collect();
    let expect = system.eval_nominal(&y);
    let mut got = vec![0.0; system.len()];
    full.tape.eval(&system.rate_values, &y, &mut got);
    for (a, b) in expect.iter().zip(&got) {
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }
}

#[test]
fn single_round_is_weaker_than_iterated() {
    let system = mean_field_system(6, 8);
    // One round: distribute then CSE once, no iteration.
    let single = {
        let forest = rms_core::ExprForest::from_system(&system);
        let forest = rms_core::simplify_forest(&forest);
        let forest = rms_core::distribute_forest(&forest);
        let forest = rms_core::cse_forest(&forest, CseOptions::default());
        forest.op_counts()
    };
    let iterated = optimize(&system, OptLevel::Full).stages.after_cse;
    assert!(
        iterated.total() <= single.total(),
        "iteration regressed: {iterated:?} vs {single:?}"
    );
}

#[test]
fn prefix_matching_contributes_on_nested_variant_sums() {
    // Equations with shared sum prefixes: f(1)=A+B, f(2)=A+B+C,
    // f(3)=A+B+C+D … one temp chain instead of quadratic adds.
    let mut network = ReactionNetwork::new();
    let species: Vec<_> = (0..10)
        .map(|i| network.add_abstract_species(&format!("S{i}"), 0.5))
        .collect();
    let sinks: Vec<_> = (0..6)
        .map(|i| network.add_abstract_species(&format!("Sink{i}"), 0.0))
        .collect();
    // Sink_j is produced by unimolecular decay of S_0..S_{j+2}: its
    // equation is k·(S_0 + … + S_{j+2}) after factoring.
    for (j, &sink) in sinks.iter().enumerate() {
        for &s in &species[..(j + 3)] {
            network.add_reaction(Reaction {
                reactants: vec![s],
                products: vec![sink],
                rate: "K".to_string(),
                rule: "decay".to_string(),
            });
        }
    }
    let rates = RateTable::parse("rate K = 1;").unwrap();
    let system = generate(&network, &rates, GenerateOptions { simplify: true }).unwrap();

    let with_prefix = optimize(&system, OptLevel::Full).stages.after_cse;
    let without_prefix = optimize_with_passes(
        &system,
        Passes {
            simplify: true,
            distribute: true,
            cse: Some(CseOptions {
                min_uses: 2,
                prefix_matching: false,
            }),
        },
    )
    .stages
    .after_cse;
    assert!(
        with_prefix.adds < without_prefix.adds,
        "prefix matching should reduce adds: {with_prefix:?} vs {without_prefix:?}"
    );
}
