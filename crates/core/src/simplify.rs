//! Equation simplification (paper §3.1) as a standalone expression pass.
//!
//! The equation generator normally performs this on the fly; this pass
//! exists so the optimizer can also accept *raw* (unsimplified) systems
//! and so the benchmark harness can ablate the pass independently. It
//! rewrites `2*k1*B*C + … + 3*k1*B*C + …` into `5*k1*B*C + …`: products in
//! a sum that differ only in their constant coefficient are merged.

use std::collections::HashMap;

use crate::expr::{Expr, ExprForest};

/// Merge like terms in every sum of the forest.
pub fn simplify_forest(forest: &ExprForest) -> ExprForest {
    ExprForest {
        temps: forest.temps.iter().map(simplify_expr).collect(),
        rhs: forest.rhs.iter().map(simplify_expr).collect(),
        n_species: forest.n_species,
        n_rates: forest.n_rates,
    }
}

/// Recursively merge like terms in sums.
pub fn simplify_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Sum(children) => {
            // Recurse first so nested sums are already simplified.
            let children: Vec<Expr> = children.iter().map(simplify_expr).collect();
            // Group by the non-constant shape: for products that is the
            // factor list; atoms group with themselves (coefficient 1).
            let mut order: Vec<Vec<Expr>> = Vec::new();
            let mut coeffs: HashMap<Vec<Expr>, f64> = HashMap::new();
            let mut constant = 0.0;
            for ch in children {
                let (coeff, shape) = match ch {
                    Expr::Prod(c, factors) => (c.0, factors),
                    Expr::Const(c) => {
                        constant += c.0;
                        continue;
                    }
                    atom => (1.0, vec![atom]),
                };
                match coeffs.get_mut(&shape) {
                    Some(acc) => *acc += coeff,
                    None => {
                        coeffs.insert(shape.clone(), coeff);
                        order.push(shape);
                    }
                }
            }
            let mut out: Vec<Expr> = Vec::with_capacity(order.len() + 1);
            for shape in order {
                let coeff = coeffs[&shape];
                if coeff != 0.0 {
                    out.push(Expr::prod(coeff, shape));
                }
            }
            if constant != 0.0 {
                out.push(Expr::constant(constant));
            }
            Expr::sum(out)
        }
        Expr::Prod(c, factors) => Expr::prod(c.0, factors.iter().map(simplify_expr).collect()),
        atom => atom.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(c: f64, rate: u32, species: &[u32]) -> Expr {
        let mut f = vec![Expr::Rate(rate)];
        f.extend(species.iter().map(|&s| Expr::Species(s)));
        Expr::prod(c, f)
    }

    #[test]
    fn paper_example_merges() {
        // 2*k1*B*C + 3*k1*B*C -> 5*k1*B*C  (§3.1)
        let e = Expr::sum(vec![term(2.0, 1, &[1, 2]), term(3.0, 1, &[1, 2])]);
        let s = simplify_expr(&e);
        assert_eq!(s, term(5.0, 1, &[1, 2]));
    }

    #[test]
    fn different_shapes_untouched() {
        let e = Expr::sum(vec![term(2.0, 1, &[1]), term(3.0, 2, &[1])]);
        let s = simplify_expr(&e);
        let Expr::Sum(children) = &s else { panic!() };
        assert_eq!(children.len(), 2);
    }

    #[test]
    fn cancellation_removes_term() {
        let e = Expr::sum(vec![
            term(2.0, 1, &[1]),
            term(-2.0, 1, &[1]),
            term(1.0, 2, &[3]),
        ]);
        assert_eq!(simplify_expr(&e), term(1.0, 2, &[3]));
    }

    #[test]
    fn atoms_merge_with_unit_products() {
        // y1 + 2*y1 -> 3*y1
        let e = Expr::sum(vec![
            Expr::Species(1),
            Expr::prod(2.0, vec![Expr::Species(1)]),
        ]);
        assert_eq!(simplify_expr(&e), Expr::prod(3.0, vec![Expr::Species(1)]));
    }

    #[test]
    fn constants_accumulate() {
        let e = Expr::sum(vec![
            Expr::constant(2.0),
            Expr::Species(0),
            Expr::constant(3.0),
        ]);
        let s = simplify_expr(&e);
        let Expr::Sum(children) = &s else {
            panic!("{s:?}")
        };
        assert!(children.contains(&Expr::constant(5.0)));
    }

    #[test]
    fn nested_sums_simplified() {
        // k0 * (y1 + y1)  ->  k0 * (2*y1) == 2*k0*y1 after prod folding
        let inner = Expr::sum(vec![Expr::Species(1), Expr::Species(1)]);
        let e = Expr::prod(1.0, vec![Expr::Rate(0), inner]);
        let s = simplify_expr(&e);
        assert_eq!(s, term(2.0, 0, &[1]));
    }

    #[test]
    fn evaluation_preserved() {
        let e = Expr::sum(vec![
            term(2.0, 0, &[0, 1]),
            term(3.0, 0, &[1, 0]),
            term(-1.0, 1, &[0]),
            Expr::Species(1),
        ]);
        let s = simplify_expr(&e);
        let rates = [1.5, 2.5];
        let y = [1.1, 0.7];
        assert!((e.eval(&rates, &y, &[]) - s.eval(&rates, &y, &[])).abs() < 1e-12);
    }
}
