//! The optimizer's expression IR.
//!
//! The equation generator hands the optimizer flat sums of products; the
//! distributive optimization introduces nesting (`k*(B*(C+D) + E*F)`), and
//! CSE introduces temporaries. [`Expr`] represents all of these with a
//! canonical ordering (the paper keeps "the terms of each sub-expression
//! … in a canonical lexicographical order — this allows an easy matching
//! of expressions").

use std::cmp::Ordering;
use std::fmt;

use rms_odegen::{OdeEquation, OdeSystem, OpCounts, ProductTerm};

/// Total-ordered, hashable wrapper for coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coeff(pub f64);

impl Eq for Coeff {}

impl PartialOrd for Coeff {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Coeff {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for Coeff {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

/// Identifier of a CSE-generated temporary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TempId(pub u32);

/// An expression over rate constants, species concentrations and
/// temporaries.
///
/// Invariants maintained by the smart constructors [`Expr::sum`] and
/// [`Expr::prod`]:
/// * `Sum`/`Prod` children are flattened (no Sum directly under Sum);
/// * `Prod` holds its constant coefficient separately; factors are sorted;
/// * neither node has fewer than two "payload" entries (single-entry sums
///   collapse; single-factor unit-coefficient products collapse).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Literal constant.
    Const(Coeff),
    /// Kinetic rate constant (canonical id from the RCIP).
    Rate(u32),
    /// Species concentration.
    Species(u32),
    /// CSE temporary.
    Temp(TempId),
    /// Product: `coeff * factors[0] * factors[1] * …`, factors sorted.
    Prod(Coeff, Vec<Expr>),
    /// Sum of children, sorted canonically.
    Sum(Vec<Expr>),
}

impl PartialOrd for Expr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Canonical lexicographical order (paper §3.3): atoms by kind then index;
/// products by their *factor sequence* first and coefficient second, so
/// `-k1*A*B` and `+k1*A*B` are adjacent and sums order by structure, not
/// by sign.
impl Ord for Expr {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(e: &Expr) -> u8 {
            match e {
                Expr::Const(_) => 0,
                Expr::Rate(_) => 1,
                Expr::Species(_) => 2,
                Expr::Temp(_) => 3,
                Expr::Prod(..) => 4,
                Expr::Sum(_) => 5,
            }
        }
        rank(self)
            .cmp(&rank(other))
            .then_with(|| match (self, other) {
                (Expr::Const(a), Expr::Const(b)) => a.cmp(b),
                (Expr::Rate(a), Expr::Rate(b)) => a.cmp(b),
                (Expr::Species(a), Expr::Species(b)) => a.cmp(b),
                (Expr::Temp(a), Expr::Temp(b)) => a.cmp(b),
                (Expr::Prod(ca, fa), Expr::Prod(cb, fb)) => fa.cmp(fb).then_with(|| ca.cmp(cb)),
                (Expr::Sum(a), Expr::Sum(b)) => a.cmp(b),
                _ => unreachable!("ranks matched"),
            })
    }
}

impl Expr {
    /// Constant expression.
    pub fn constant(v: f64) -> Expr {
        Expr::Const(Coeff(v))
    }

    /// Smart product constructor: flattens nested products, folds constants
    /// into the coefficient, sorts factors, and collapses trivial shapes.
    pub fn prod(coeff: f64, factors: Vec<Expr>) -> Expr {
        let mut c = coeff;
        let mut flat: Vec<Expr> = Vec::with_capacity(factors.len());
        for f in factors {
            match f {
                Expr::Const(Coeff(v)) => c *= v,
                Expr::Prod(Coeff(v), inner) => {
                    c *= v;
                    flat.extend(inner);
                }
                other => flat.push(other),
            }
        }
        if c == 0.0 {
            return Expr::constant(0.0);
        }
        flat.sort();
        match (c, flat.len()) {
            (_, 0) => Expr::constant(c),
            (1.0, 1) => flat.pop().unwrap(),
            _ => Expr::Prod(Coeff(c), flat),
        }
    }

    /// Smart sum constructor: flattens nested sums, folds constants, drops
    /// zero terms, and collapses trivial shapes. Does **not** merge
    /// like terms — that is the §3.1 simplification pass's job.
    pub fn sum(children: Vec<Expr>) -> Expr {
        let mut flat: Vec<Expr> = Vec::with_capacity(children.len());
        let mut const_acc = 0.0;
        let mut saw_const = false;
        for ch in children {
            match ch {
                Expr::Sum(inner) => flat.extend(inner),
                Expr::Const(Coeff(v)) => {
                    const_acc += v;
                    saw_const = true;
                }
                other => flat.push(other),
            }
        }
        if saw_const && const_acc != 0.0 {
            flat.push(Expr::constant(const_acc));
        }
        flat.sort();
        match flat.len() {
            0 => Expr::constant(0.0),
            1 => flat.pop().unwrap(),
            _ => Expr::Sum(flat),
        }
    }

    /// Whether this is an atomic expression (leaf).
    pub fn is_atom(&self) -> bool {
        matches!(
            self,
            Expr::Const(_) | Expr::Rate(_) | Expr::Species(_) | Expr::Temp(_)
        )
    }

    /// Evaluate against rate values, concentrations and temporary values.
    pub fn eval(&self, rates: &[f64], y: &[f64], temps: &[f64]) -> f64 {
        match self {
            Expr::Const(Coeff(v)) => *v,
            Expr::Rate(i) => rates[*i as usize],
            Expr::Species(i) => y[*i as usize],
            Expr::Temp(t) => temps[t.0 as usize],
            Expr::Prod(Coeff(c), factors) => factors
                .iter()
                .fold(*c, |acc, f| acc * f.eval(rates, y, temps)),
            Expr::Sum(children) => children.iter().map(|c| c.eval(rates, y, temps)).sum(),
        }
    }

    /// Arithmetic operation counts of the tree, mirroring the evaluation
    /// cost model of `rms-odegen` (±1 coefficients cost nothing, other
    /// coefficients one multiply; each sum of n terms costs n−1 add/subs).
    pub fn op_counts(&self) -> OpCounts {
        let mut counts = OpCounts::default();
        self.count_ops(&mut counts);
        counts
    }

    fn count_ops(&self, counts: &mut OpCounts) {
        match self {
            Expr::Const(_) | Expr::Rate(_) | Expr::Species(_) | Expr::Temp(_) => {}
            Expr::Prod(Coeff(c), factors) => {
                let coeff_factor = usize::from(c.abs() != 1.0);
                counts.mults += factors.len() + coeff_factor - 1;
                for f in factors {
                    f.count_ops(counts);
                }
            }
            Expr::Sum(children) => {
                counts.adds += children.len() - 1;
                for c in children {
                    c.count_ops(counts);
                }
            }
        }
    }

    /// Number of nodes in the tree (IR size metric for the generic
    /// compiler's memory model).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Prod(_, factors) => 1 + factors.iter().map(Expr::node_count).sum::<usize>(),
            Expr::Sum(children) => 1 + children.iter().map(Expr::node_count).sum::<usize>(),
            _ => 1,
        }
    }

    /// Convert a flat product term from the equation generator.
    pub fn from_term(term: &ProductTerm) -> Expr {
        let mut factors: Vec<Expr> = Vec::with_capacity(term.species.len() + 1);
        factors.push(Expr::Rate(term.rate.0));
        factors.extend(term.species.iter().map(|s| Expr::Species(s.0)));
        Expr::prod(term.coeff, factors)
    }

    /// Convert a whole equation's right-hand side.
    pub fn from_equation(eq: &OdeEquation) -> Expr {
        Expr::sum(eq.terms.iter().map(Expr::from_term).collect())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(Coeff(v)) => write!(f, "{v}"),
            Expr::Rate(i) => write!(f, "k{i}"),
            Expr::Species(i) => write!(f, "y{i}"),
            Expr::Temp(t) => write!(f, "t{}", t.0),
            Expr::Prod(Coeff(c), factors) => {
                let mut first = true;
                if *c != 1.0 {
                    write!(f, "{c}")?;
                    first = false;
                }
                for factor in factors {
                    if !first {
                        write!(f, "*")?;
                    }
                    first = false;
                    if matches!(factor, Expr::Sum(_)) {
                        write!(f, "({factor})")?;
                    } else {
                        write!(f, "{factor}")?;
                    }
                }
                Ok(())
            }
            Expr::Sum(children) => {
                for (i, ch) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{ch}")?;
                }
                Ok(())
            }
        }
    }
}

/// An expression forest: the whole ODE system in optimizer IR, with
/// temporary definitions in emission order (shorter/earlier temps never
/// reference later ones).
#[derive(Debug, Clone)]
pub struct ExprForest {
    /// `temps[i]` defines `Temp(i)`.
    pub temps: Vec<Expr>,
    /// One right-hand side per species.
    pub rhs: Vec<Expr>,
    /// Number of species (== rhs.len(), kept for clarity).
    pub n_species: usize,
    /// Number of distinct rate constants.
    pub n_rates: usize,
}

impl ExprForest {
    /// Convert an ODE system (no temporaries, flat sums of products).
    pub fn from_system(system: &OdeSystem) -> ExprForest {
        ExprForest {
            temps: Vec::new(),
            rhs: system.equations.iter().map(Expr::from_equation).collect(),
            n_species: system.len(),
            n_rates: system.n_rates,
        }
    }

    /// Evaluate all right-hand sides into `ydot` (reference interpreter;
    /// the tape is the fast path).
    pub fn eval_into(&self, rates: &[f64], y: &[f64], ydot: &mut [f64]) {
        let mut temps = Vec::with_capacity(self.temps.len());
        for t in &self.temps {
            let v = t.eval(rates, y, &temps);
            temps.push(v);
        }
        for (rhs, out) in self.rhs.iter().zip(ydot.iter_mut()) {
            *out = rhs.eval(rates, y, &temps);
        }
    }

    /// Total operation counts, temporaries included.
    pub fn op_counts(&self) -> OpCounts {
        let mut counts = OpCounts::default();
        for e in self.temps.iter().chain(self.rhs.iter()) {
            let c = e.op_counts();
            counts.mults += c.mults;
            counts.adds += c.adds;
        }
        counts
    }

    /// Total IR node count (memory metric).
    pub fn node_count(&self) -> usize {
        self.temps
            .iter()
            .chain(self.rhs.iter())
            .map(Expr::node_count)
            .sum()
    }

    /// Substitute every temporary by its definition, producing a
    /// temporary-free forest (the inverse of CSE; used when re-optimizing).
    pub fn inline_temps(&self) -> ExprForest {
        let mut bodies: Vec<Expr> = Vec::with_capacity(self.temps.len());
        for t in &self.temps {
            let inlined = substitute_temps(t, &bodies);
            bodies.push(inlined);
        }
        ExprForest {
            temps: Vec::new(),
            rhs: self
                .rhs
                .iter()
                .map(|e| substitute_temps(e, &bodies))
                .collect(),
            n_species: self.n_species,
            n_rates: self.n_rates,
        }
    }
}

/// Human-readable IR listing: one `tN = …` line per temporary followed by
/// one `dyN/dt = …` line per species (the `--dump-ir` format).
impl fmt::Display for ExprForest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.temps.iter().enumerate() {
            writeln!(f, "t{i} = {t}")?;
        }
        for (i, rhs) in self.rhs.iter().enumerate() {
            writeln!(f, "dy{i}/dt = {rhs}")?;
        }
        Ok(())
    }
}

/// Replace `Temp(i)` references by `bodies[i]` (which must already be
/// temp-free).
fn substitute_temps(expr: &Expr, bodies: &[Expr]) -> Expr {
    match expr {
        Expr::Temp(t) => bodies[t.0 as usize].clone(),
        Expr::Prod(c, factors) => Expr::prod(
            c.0,
            factors
                .iter()
                .map(|f| substitute_temps(f, bodies))
                .collect(),
        ),
        Expr::Sum(children) => Expr::sum(
            children
                .iter()
                .map(|c| substitute_temps(c, bodies))
                .collect(),
        ),
        atom => atom.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_rcip::RateId;
    use rms_rdl::SpeciesId;

    #[test]
    fn prod_folds_constants_and_sorts() {
        let e = Expr::prod(
            2.0,
            vec![Expr::Species(3), Expr::constant(3.0), Expr::Species(1)],
        );
        let Expr::Prod(Coeff(c), factors) = &e else {
            panic!("{e:?}")
        };
        assert_eq!(*c, 6.0);
        assert_eq!(factors, &vec![Expr::Species(1), Expr::Species(3)]);
    }

    #[test]
    fn prod_flattens_nested() {
        let inner = Expr::prod(2.0, vec![Expr::Species(0)]);
        let outer = Expr::prod(3.0, vec![inner, Expr::Rate(0)]);
        let Expr::Prod(Coeff(c), factors) = &outer else {
            panic!()
        };
        assert_eq!(*c, 6.0);
        assert_eq!(factors.len(), 2);
    }

    #[test]
    fn unit_single_factor_collapses() {
        assert_eq!(Expr::prod(1.0, vec![Expr::Species(5)]), Expr::Species(5));
        assert_eq!(Expr::prod(2.0, vec![]), Expr::constant(2.0));
        assert_eq!(Expr::prod(0.0, vec![Expr::Species(1)]), Expr::constant(0.0));
    }

    #[test]
    fn sum_flattens_and_collapses() {
        let s = Expr::sum(vec![
            Expr::sum(vec![Expr::Species(0), Expr::Species(1)]),
            Expr::Species(2),
        ]);
        let Expr::Sum(children) = &s else { panic!() };
        assert_eq!(children.len(), 3);
        assert_eq!(Expr::sum(vec![Expr::Species(7)]), Expr::Species(7));
        assert_eq!(Expr::sum(vec![]), Expr::constant(0.0));
    }

    #[test]
    fn sum_folds_constants_and_drops_zero() {
        let s = Expr::sum(vec![
            Expr::constant(1.0),
            Expr::Species(0),
            Expr::constant(-1.0),
        ]);
        assert_eq!(s, Expr::Species(0));
    }

    #[test]
    fn eval_nested() {
        // 2 * k0 * (y0 + y1)
        let e = Expr::prod(
            2.0,
            vec![
                Expr::Rate(0),
                Expr::sum(vec![Expr::Species(0), Expr::Species(1)]),
            ],
        );
        assert_eq!(e.eval(&[3.0], &[4.0, 5.0], &[]), 54.0);
    }

    #[test]
    fn op_counts_match_paper_example() {
        // k1*B*C + k1*B*D + k1*E*F : 6 mults, 2 adds (paper §3.2)
        let term = |a: u32, b: u32| {
            Expr::prod(1.0, vec![Expr::Rate(1), Expr::Species(a), Expr::Species(b)])
        };
        let flat = Expr::sum(vec![term(1, 2), term(1, 3), term(4, 5)]);
        assert_eq!(flat.op_counts(), OpCounts { mults: 6, adds: 2 });

        // k1*(B*(C+D) + E*F) : 3 mults, 2 adds
        let factored = Expr::prod(
            1.0,
            vec![
                Expr::Rate(1),
                Expr::sum(vec![
                    Expr::prod(
                        1.0,
                        vec![
                            Expr::Species(1),
                            Expr::sum(vec![Expr::Species(2), Expr::Species(3)]),
                        ],
                    ),
                    Expr::prod(1.0, vec![Expr::Species(4), Expr::Species(5)]),
                ]),
            ],
        );
        assert_eq!(factored.op_counts(), OpCounts { mults: 3, adds: 2 });
    }

    #[test]
    fn from_term_matches_odegen_count() {
        let t = ProductTerm::new(-2.0, RateId(0), vec![SpeciesId(1), SpeciesId(2)]);
        let e = Expr::from_term(&t);
        assert_eq!(e.op_counts().mults, t.multiplication_count());
        assert_eq!(e.eval(&[3.0], &[0.0, 2.0, 5.0], &[]), -60.0);
    }

    #[test]
    fn display_readable() {
        let e = Expr::prod(
            -2.0,
            vec![
                Expr::Rate(0),
                Expr::sum(vec![Expr::Species(1), Expr::Species(2)]),
            ],
        );
        assert_eq!(e.to_string(), "-2*k0*(y1 + y2)");
    }

    #[test]
    fn canonical_order_is_deterministic() {
        let mut v = vec![
            Expr::Species(2),
            Expr::Rate(1),
            Expr::constant(2.0),
            Expr::Species(0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Expr::constant(2.0),
                Expr::Rate(1),
                Expr::Species(0),
                Expr::Species(2),
            ]
        );
    }
}
