//! Symbolic differentiation: the compiler emits the Jacobian, too.
//!
//! The paper's backend generates the one function an explicit solver
//! needs — the right-hand side. An *implicit* solver needs a second
//! function, `J = ∂f/∂y`, and computing it numerically at runtime is
//! both the dominant per-step cost and an accuracy trap. Since the
//! optimizer already holds every right-hand side symbolically (§3), it
//! can differentiate the forest exactly and reuse the whole pass
//! pipeline: the derivative expressions run through the same
//! canonical-order CSE as the RHS, so products shared between `f` and
//! `J` (mass-action terms and their cofactors) are computed once, and
//! the Jacobian's structural sparsity falls directly out of the
//! expression structure — no runtime dependency scan, no heuristics.
//!
//! Differentiation is forward-mode over the forest *without* inlining
//! temporaries: each CSE temporary `t_k` gets derivative temporaries
//! `∂t_k/∂y_j` for the species in its support, and the chain rule
//! threads through `Temp` references. This keeps the derivative IR
//! proportional to the optimized — not the flattened — RHS size.

use std::collections::{BTreeSet, HashMap};

use crate::cse::{cse_forest, CseOptions};
use crate::expr::{Coeff, Expr, ExprForest, TempId};
use crate::tape::{
    compact_registers_multi, compact_registers_pair, lower_split, lower_split_multi, reroll,
    RerollOptions, RolledTape, Tape,
};

/// The compiler's full output for an implicit solver: the RHS tape plus
/// a CSE-shared analytic Jacobian tape over one register file.
#[derive(Debug, Clone)]
pub struct JacobianTapes {
    /// RHS program: `ydot[i] = f_i(y)`.
    pub rhs: Tape,
    /// Jacobian program: output `e` is `∂f_i/∂y_j` for
    /// `entries[e] = (i, j)`. Reads registers computed by [`rhs`], so it
    /// must run immediately after it on the same scratch file.
    ///
    /// [`rhs`]: JacobianTapes::rhs
    pub jac: Tape,
    /// `(row, column)` of each Jacobian output, row-major with columns
    /// ascending within a row — the exact structural sparsity.
    pub entries: Vec<(u32, u32)>,
    /// State dimension (rows = columns of the Jacobian).
    pub n_species: usize,
}

impl JacobianTapes {
    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Per-row column lists (the shape `SparsityPattern::new` takes).
    pub fn pattern_rows(&self) -> Vec<Vec<u32>> {
        let mut rows = vec![Vec::new(); self.n_species];
        for &(i, j) in &self.entries {
            rows[i as usize].push(j);
        }
        rows
    }

    /// Evaluate both tapes: `ydot` receives the RHS, `vals` the Jacobian
    /// nonzeros (length [`nnz`](JacobianTapes::nnz), in `entries` order).
    /// The shared `regs` scratch is what lets the Jacobian tape read
    /// every subexpression the RHS tape already computed.
    pub fn eval_with_scratch(
        &self,
        rates: &[f64],
        y: &[f64],
        ydot: &mut [f64],
        vals: &mut [f64],
        regs: &mut Vec<f64>,
    ) {
        self.rhs.eval_with_scratch(rates, y, ydot, regs);
        self.jac.eval_with_scratch(rates, y, vals, regs);
    }

    /// Reroll both tapes of the group into loop-structured views. The
    /// register file stays shared: each view replays its flat tape
    /// trip-by-trip, so the Jacobian view still reads every register the
    /// RHS view wrote.
    pub fn reroll(&self, opts: &RerollOptions) -> JacobianRolled {
        JacobianRolled {
            rhs: reroll(&self.rhs, opts),
            jac: reroll(&self.jac, opts),
        }
    }
}

/// Loop-structured views over a [`JacobianTapes`] pair, produced by
/// [`JacobianTapes::reroll`].
#[derive(Debug, Clone)]
pub struct JacobianRolled {
    /// Rolled view of the RHS tape.
    pub rhs: RolledTape,
    /// Rolled view of the Jacobian tape.
    pub jac: RolledTape,
}

impl JacobianRolled {
    /// Total loop regions across the group.
    pub fn loop_count(&self) -> usize {
        self.rhs.loop_count() + self.jac.loop_count()
    }

    /// Total flat instructions absorbed into loop regions.
    pub fn rerolled_instrs(&self) -> usize {
        self.rhs.rerolled_instrs() + self.jac.rerolled_instrs()
    }

    /// Check both views against their tapes.
    pub fn validate(&self, tapes: &JacobianTapes) -> Result<(), String> {
        self.rhs.validate(&tapes.rhs)?;
        self.jac.validate(&tapes.jac)
    }

    /// Evaluate the group through the rolled views — the loop-walking
    /// analog of [`JacobianTapes::eval_with_scratch`], bit-identical to
    /// it by construction.
    pub fn eval_with_scratch(
        &self,
        tapes: &JacobianTapes,
        rates: &[f64],
        y: &[f64],
        ydot: &mut [f64],
        vals: &mut [f64],
        regs: &mut Vec<f64>,
    ) {
        tapes
            .rhs
            .eval_rolled_with_scratch(&self.rhs, rates, y, ydot, regs);
        tapes
            .jac
            .eval_rolled_with_scratch(&self.jac, rates, y, vals, regs);
    }
}

/// Differentiate a forest: returns a combined forest whose first
/// `n_species` outputs are the (temp-renumbered) right-hand sides and
/// whose remaining outputs are the structurally nonzero Jacobian
/// entries, plus the `(row, col)` index of each entry.
///
/// Entries are emitted row-major, columns ascending. An entry appears
/// iff the derivative is not *identically* zero after constant folding —
/// exact structural sparsity, conservative against value cancellation.
pub fn differentiate_forest(forest: &ExprForest) -> (ExprForest, Vec<(u32, u32)>) {
    let m = forest.temps.len();
    // Species support of every temp, transitively through temp refs
    // (temps are in emission order: bodies only reference earlier temps).
    let mut temp_support: Vec<BTreeSet<u32>> = Vec::with_capacity(m);
    for body in &forest.temps {
        let s = support(body, &temp_support);
        temp_support.push(s);
    }
    // Output-space temps: each input temp, immediately followed by its
    // derivative temps, so write-before-read order is preserved.
    let mut new_temps: Vec<Expr> = Vec::new();
    let mut temp_map: Vec<TempId> = Vec::with_capacity(m);
    let mut dmap: HashMap<(u32, u32), TempId> = HashMap::new();
    for (k, body) in forest.temps.iter().enumerate() {
        let id = TempId(new_temps.len() as u32);
        new_temps.push(remap_temp_ids(body, &temp_map));
        temp_map.push(id);
        for &j in &temp_support[k] {
            let d = diff(body, j, &temp_map, &dmap);
            if !is_zero(&d) {
                let did = TempId(new_temps.len() as u32);
                new_temps.push(d);
                dmap.insert((k as u32, j), did);
            }
        }
    }
    let mut rhs: Vec<Expr> = forest
        .rhs
        .iter()
        .map(|e| remap_temp_ids(e, &temp_map))
        .collect();
    let mut entries: Vec<(u32, u32)> = Vec::new();
    for (i, e) in forest.rhs.iter().enumerate() {
        for j in support(e, &temp_support) {
            let d = diff(e, j, &temp_map, &dmap);
            if !is_zero(&d) {
                entries.push((i as u32, j));
                rhs.push(d);
            }
        }
    }
    (
        ExprForest {
            temps: new_temps,
            rhs,
            n_species: forest.n_species,
            n_rates: forest.n_rates,
        },
        entries,
    )
}

/// Compile a forest into RHS + analytic-Jacobian tapes.
///
/// With `cse` set, the combined forest is re-CSE'd so subexpressions are
/// shared *across* the RHS/Jacobian boundary; the split lowering then
/// places each temporary on the first tape that needs it and compacts
/// one register file across both.
pub fn compile_jacobian(forest: &ExprForest, cse: Option<CseOptions>) -> JacobianTapes {
    let (combined, entries) = differentiate_forest(forest);
    let combined = match cse {
        Some(options) => cse_forest(&combined, options),
        None => combined,
    };
    let (rhs, jac) = lower_split(&combined, forest.n_species);
    let (rhs, jac) = compact_registers_pair(&rhs, &jac);
    JacobianTapes {
        rhs,
        jac,
        entries,
        n_species: forest.n_species,
    }
}

/// The compiler's full output for a forward-sensitivity solver: the RHS,
/// the state Jacobian `∂f/∂y`, and the parameter gradient `∂f/∂p` (with
/// the kinetic rate constants as the parameters), three tapes over one
/// register file. The parameter tape runs *last*, so an implicit solver
/// that only wants a Jacobian refresh can stop after the first two.
#[derive(Debug, Clone)]
pub struct SensitivityTapes {
    /// RHS program: `ydot[i] = f_i(y)`.
    pub rhs: Tape,
    /// State-Jacobian program; output `e` is `∂f_i/∂y_j` for
    /// `jac_entries[e] = (i, j)`. Runs right after [`rhs`] on the same
    /// scratch file.
    ///
    /// [`rhs`]: SensitivityTapes::rhs
    pub jac: Tape,
    /// Parameter-gradient program; output `e` is `∂f_i/∂p_k` for
    /// `dfdp_entries[e] = (i, k)` with `p_k` the `k`-th rate constant.
    /// Runs right after [`jac`] on the same scratch file.
    ///
    /// [`jac`]: SensitivityTapes::jac
    pub dfdp: Tape,
    /// `(row, column)` of each state-Jacobian output, row-major with
    /// columns ascending — the exact structural sparsity.
    pub jac_entries: Vec<(u32, u32)>,
    /// `(species row, rate index)` of each parameter-gradient output,
    /// row-major with rate indices ascending within a row.
    pub dfdp_entries: Vec<(u32, u32)>,
    /// State dimension.
    pub n_species: usize,
    /// Parameter count (rate constants).
    pub n_rates: usize,
}

impl SensitivityTapes {
    /// Structural nonzeros of the state Jacobian.
    pub fn jac_nnz(&self) -> usize {
        self.jac_entries.len()
    }

    /// Structural nonzeros of `∂f/∂p`.
    pub fn dfdp_nnz(&self) -> usize {
        self.dfdp_entries.len()
    }

    /// Per-row column lists of the state Jacobian (the shape
    /// `SparsityPattern::new` takes).
    pub fn pattern_rows(&self) -> Vec<Vec<u32>> {
        let mut rows = vec![Vec::new(); self.n_species];
        for &(i, j) in &self.jac_entries {
            rows[i as usize].push(j);
        }
        rows
    }

    /// Evaluate the RHS and state-Jacobian tapes only (what an implicit
    /// solver's Jacobian refresh needs): `ydot` receives the RHS,
    /// `jac_vals` the Jacobian nonzeros in `jac_entries` order.
    pub fn eval_rhs_jac(
        &self,
        rates: &[f64],
        y: &[f64],
        ydot: &mut [f64],
        jac_vals: &mut [f64],
        regs: &mut Vec<f64>,
    ) {
        self.rhs.eval_with_scratch(rates, y, ydot, regs);
        self.jac.eval_with_scratch(rates, y, jac_vals, regs);
    }

    /// Evaluate all three tapes: additionally fills `dfdp_vals` with the
    /// `∂f/∂p` nonzeros (length [`dfdp_nnz`](SensitivityTapes::dfdp_nnz),
    /// in `dfdp_entries` order). The shared `regs` scratch is what lets
    /// each later tape read every subexpression already computed.
    pub fn eval_all(
        &self,
        rates: &[f64],
        y: &[f64],
        ydot: &mut [f64],
        jac_vals: &mut [f64],
        dfdp_vals: &mut [f64],
        regs: &mut Vec<f64>,
    ) {
        self.rhs.eval_with_scratch(rates, y, ydot, regs);
        self.jac.eval_with_scratch(rates, y, jac_vals, regs);
        self.dfdp.eval_with_scratch(rates, y, dfdp_vals, regs);
    }

    /// Resume an [`eval_rhs_jac`](SensitivityTapes::eval_rhs_jac) pass:
    /// evaluate only the `dfdp` tape over the register file that pass
    /// filled. The caller must guarantee `regs` comes from an
    /// `eval_rhs_jac`/`eval_all` call at the same `(rates, y)` — the
    /// dfdp group reads subexpressions those groups computed.
    pub fn eval_dfdp_resumed(
        &self,
        rates: &[f64],
        y: &[f64],
        dfdp_vals: &mut [f64],
        regs: &mut Vec<f64>,
    ) {
        self.dfdp.eval_with_scratch(rates, y, dfdp_vals, regs);
    }

    /// Reroll all three tapes of the group into loop-structured views
    /// over the shared register file.
    pub fn reroll(&self, opts: &RerollOptions) -> SensitivityRolled {
        SensitivityRolled {
            rhs: reroll(&self.rhs, opts),
            jac: reroll(&self.jac, opts),
            dfdp: reroll(&self.dfdp, opts),
        }
    }
}

/// Loop-structured views over a [`SensitivityTapes`] triple, produced by
/// [`SensitivityTapes::reroll`].
#[derive(Debug, Clone)]
pub struct SensitivityRolled {
    /// Rolled view of the RHS tape.
    pub rhs: RolledTape,
    /// Rolled view of the state-Jacobian tape.
    pub jac: RolledTape,
    /// Rolled view of the parameter-gradient tape.
    pub dfdp: RolledTape,
}

impl SensitivityRolled {
    /// Total loop regions across the group.
    pub fn loop_count(&self) -> usize {
        self.rhs.loop_count() + self.jac.loop_count() + self.dfdp.loop_count()
    }

    /// Total flat instructions absorbed into loop regions.
    pub fn rerolled_instrs(&self) -> usize {
        self.rhs.rerolled_instrs() + self.jac.rerolled_instrs() + self.dfdp.rerolled_instrs()
    }

    /// Check all three views against their tapes.
    pub fn validate(&self, tapes: &SensitivityTapes) -> Result<(), String> {
        self.rhs.validate(&tapes.rhs)?;
        self.jac.validate(&tapes.jac)?;
        self.dfdp.validate(&tapes.dfdp)
    }

    /// Evaluate all three tapes through the rolled views — the
    /// loop-walking analog of [`SensitivityTapes::eval_all`],
    /// bit-identical to it by construction.
    #[allow(clippy::too_many_arguments)]
    pub fn eval_all(
        &self,
        tapes: &SensitivityTapes,
        rates: &[f64],
        y: &[f64],
        ydot: &mut [f64],
        jac_vals: &mut [f64],
        dfdp_vals: &mut [f64],
        regs: &mut Vec<f64>,
    ) {
        tapes
            .rhs
            .eval_rolled_with_scratch(&self.rhs, rates, y, ydot, regs);
        tapes
            .jac
            .eval_rolled_with_scratch(&self.jac, rates, y, jac_vals, regs);
        tapes
            .dfdp
            .eval_rolled_with_scratch(&self.dfdp, rates, y, dfdp_vals, regs);
    }
}

/// Differentiate a forest with respect to both the state *and* the rate
/// constants: returns a combined forest whose outputs are, in order, the
/// (temp-renumbered) right-hand sides, the structurally nonzero state-
/// Jacobian entries, and the structurally nonzero `∂f/∂p` entries, plus
/// the index lists of both entry groups.
#[allow(clippy::type_complexity)]
pub fn differentiate_forest_sensitivity(
    forest: &ExprForest,
) -> (ExprForest, Vec<(u32, u32)>, Vec<(u32, u32)>) {
    let m = forest.temps.len();
    // Species and rate support of every temp, transitively.
    let mut temp_support: Vec<BTreeSet<u32>> = Vec::with_capacity(m);
    let mut temp_rates: Vec<BTreeSet<u32>> = Vec::with_capacity(m);
    for body in &forest.temps {
        temp_support.push(support(body, &temp_support));
        temp_rates.push(rate_support(body, &temp_rates));
    }
    // Output-space temps: each input temp, immediately followed by its
    // state-derivative temps, then its rate-derivative temps, so
    // write-before-read order is preserved.
    let mut new_temps: Vec<Expr> = Vec::new();
    let mut temp_map: Vec<TempId> = Vec::with_capacity(m);
    let mut dmap: HashMap<(u32, u32), TempId> = HashMap::new();
    let mut pmap: HashMap<(u32, u32), TempId> = HashMap::new();
    for (k, body) in forest.temps.iter().enumerate() {
        let id = TempId(new_temps.len() as u32);
        new_temps.push(remap_temp_ids(body, &temp_map));
        temp_map.push(id);
        for &j in &temp_support[k] {
            let d = diff(body, j, &temp_map, &dmap);
            if !is_zero(&d) {
                let did = TempId(new_temps.len() as u32);
                new_temps.push(d);
                dmap.insert((k as u32, j), did);
            }
        }
        for &r in &temp_rates[k] {
            let d = diff_rate(body, r, &temp_map, &pmap);
            if !is_zero(&d) {
                let did = TempId(new_temps.len() as u32);
                new_temps.push(d);
                pmap.insert((k as u32, r), did);
            }
        }
    }
    let mut rhs: Vec<Expr> = forest
        .rhs
        .iter()
        .map(|e| remap_temp_ids(e, &temp_map))
        .collect();
    let mut jac_entries: Vec<(u32, u32)> = Vec::new();
    for (i, e) in forest.rhs.iter().enumerate() {
        for j in support(e, &temp_support) {
            let d = diff(e, j, &temp_map, &dmap);
            if !is_zero(&d) {
                jac_entries.push((i as u32, j));
                rhs.push(d);
            }
        }
    }
    let mut dfdp_entries: Vec<(u32, u32)> = Vec::new();
    for (i, e) in forest.rhs.iter().enumerate() {
        for r in rate_support(e, &temp_rates) {
            let d = diff_rate(e, r, &temp_map, &pmap);
            if !is_zero(&d) {
                dfdp_entries.push((i as u32, r));
                rhs.push(d);
            }
        }
    }
    (
        ExprForest {
            temps: new_temps,
            rhs,
            n_species: forest.n_species,
            n_rates: forest.n_rates,
        },
        jac_entries,
        dfdp_entries,
    )
}

/// Compile a forest into RHS + state-Jacobian + `∂f/∂p` tapes for
/// forward sensitivity analysis.
///
/// With `cse` set, the combined forest is re-CSE'd so subexpressions are
/// shared across all three output groups; the split lowering then places
/// each temporary on the first tape that needs it and compacts one
/// register file across the triple.
pub fn compile_sensitivity(forest: &ExprForest, cse: Option<CseOptions>) -> SensitivityTapes {
    let (combined, jac_entries, dfdp_entries) = differentiate_forest_sensitivity(forest);
    let combined = match cse {
        Some(options) => cse_forest(&combined, options),
        None => combined,
    };
    let counts = [forest.n_species, jac_entries.len(), dfdp_entries.len()];
    let tapes = lower_split_multi(&combined, &counts);
    let mut tapes = compact_registers_multi(&[&tapes[0], &tapes[1], &tapes[2]]);
    let dfdp = tapes.pop().expect("three tapes");
    let jac = tapes.pop().expect("three tapes");
    let rhs = tapes.pop().expect("three tapes");
    SensitivityTapes {
        rhs,
        jac,
        dfdp,
        jac_entries,
        dfdp_entries,
        n_species: forest.n_species,
        n_rates: forest.n_rates,
    }
}

fn is_zero(e: &Expr) -> bool {
    matches!(e, Expr::Const(Coeff(v)) if *v == 0.0)
}

/// Species a value depends on (through temp references).
fn support(expr: &Expr, temp_support: &[BTreeSet<u32>]) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    collect_support(expr, temp_support, &mut out);
    out
}

fn collect_support(expr: &Expr, temp_support: &[BTreeSet<u32>], out: &mut BTreeSet<u32>) {
    match expr {
        Expr::Species(i) => {
            out.insert(*i);
        }
        Expr::Temp(t) => out.extend(temp_support[t.0 as usize].iter().copied()),
        Expr::Prod(_, factors) => {
            for f in factors {
                collect_support(f, temp_support, out);
            }
        }
        Expr::Sum(children) => {
            for c in children {
                collect_support(c, temp_support, out);
            }
        }
        Expr::Const(_) | Expr::Rate(_) => {}
    }
}

/// Rate constants a value depends on (through temp references).
fn rate_support(expr: &Expr, temp_rates: &[BTreeSet<u32>]) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    collect_rate_support(expr, temp_rates, &mut out);
    out
}

fn collect_rate_support(expr: &Expr, temp_rates: &[BTreeSet<u32>], out: &mut BTreeSet<u32>) {
    match expr {
        Expr::Rate(r) => {
            out.insert(*r);
        }
        Expr::Temp(t) => out.extend(temp_rates[t.0 as usize].iter().copied()),
        Expr::Prod(_, factors) => {
            for f in factors {
                collect_rate_support(f, temp_rates, out);
            }
        }
        Expr::Sum(children) => {
            for c in children {
                collect_rate_support(c, temp_rates, out);
            }
        }
        Expr::Const(_) | Expr::Species(_) => {}
    }
}

/// Renumber `Temp` references from the input forest's id space to the
/// output's. The map is monotone, so canonical child ordering survives a
/// structural rebuild.
fn remap_temp_ids(expr: &Expr, temp_map: &[TempId]) -> Expr {
    match expr {
        Expr::Temp(t) => Expr::Temp(temp_map[t.0 as usize]),
        Expr::Prod(c, factors) => Expr::Prod(
            *c,
            factors
                .iter()
                .map(|f| remap_temp_ids(f, temp_map))
                .collect(),
        ),
        Expr::Sum(children) => Expr::Sum(
            children
                .iter()
                .map(|c| remap_temp_ids(c, temp_map))
                .collect(),
        ),
        atom => atom.clone(),
    }
}

/// `∂expr/∂y_j` with `expr` in the input temp-id space and the result in
/// the output space: value temps go through `temp_map`, derivatives of
/// temps resolve to the already-emitted temporaries in `dmap` (absent =
/// identically zero).
fn diff(expr: &Expr, j: u32, temp_map: &[TempId], dmap: &HashMap<(u32, u32), TempId>) -> Expr {
    match expr {
        Expr::Const(_) | Expr::Rate(_) => Expr::constant(0.0),
        Expr::Species(i) => Expr::constant(if *i == j { 1.0 } else { 0.0 }),
        Expr::Temp(t) => match dmap.get(&(t.0, j)) {
            Some(&d) => Expr::Temp(d),
            None => Expr::constant(0.0),
        },
        Expr::Prod(Coeff(c), factors) => {
            // Product rule: Σ_k c · f_k' · Π_{l≠k} f_l.
            let mut terms = Vec::new();
            for (k, fk) in factors.iter().enumerate() {
                let dk = diff(fk, j, temp_map, dmap);
                if is_zero(&dk) {
                    continue;
                }
                let mut fs = Vec::with_capacity(factors.len());
                fs.push(dk);
                for (l, fl) in factors.iter().enumerate() {
                    if l != k {
                        fs.push(remap_temp_ids(fl, temp_map));
                    }
                }
                terms.push(Expr::prod(*c, fs));
            }
            Expr::sum(terms)
        }
        Expr::Sum(children) => Expr::sum(
            children
                .iter()
                .map(|c| diff(c, j, temp_map, dmap))
                .collect(),
        ),
    }
}

/// `∂expr/∂p_r` (rate constant `r`) with `expr` in the input temp-id
/// space and the result in the output space: value temps go through
/// `temp_map`, derivatives of temps resolve through `pmap` (absent =
/// identically zero). Mirrors [`diff`] with the roles of `Species` and
/// `Rate` atoms exchanged: states do not depend on the parameters here
/// (that coupling is the `J·s` term the sensitivity ODE adds back).
fn diff_rate(expr: &Expr, r: u32, temp_map: &[TempId], pmap: &HashMap<(u32, u32), TempId>) -> Expr {
    match expr {
        Expr::Const(_) | Expr::Species(_) => Expr::constant(0.0),
        Expr::Rate(i) => Expr::constant(if *i == r { 1.0 } else { 0.0 }),
        Expr::Temp(t) => match pmap.get(&(t.0, r)) {
            Some(&d) => Expr::Temp(d),
            None => Expr::constant(0.0),
        },
        Expr::Prod(Coeff(c), factors) => {
            let mut terms = Vec::new();
            for (k, fk) in factors.iter().enumerate() {
                let dk = diff_rate(fk, r, temp_map, pmap);
                if is_zero(&dk) {
                    continue;
                }
                let mut fs = Vec::with_capacity(factors.len());
                fs.push(dk);
                for (l, fl) in factors.iter().enumerate() {
                    if l != k {
                        fs.push(remap_temp_ids(fl, temp_map));
                    }
                }
                terms.push(Expr::prod(*c, fs));
            }
            Expr::sum(terms)
        }
        Expr::Sum(children) => Expr::sum(
            children
                .iter()
                .map(|c| diff_rate(c, r, temp_map, pmap))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::lower;

    fn term(c: f64, rate: u32, species: &[u32]) -> Expr {
        let mut f = vec![Expr::Rate(rate)];
        f.extend(species.iter().map(|&s| Expr::Species(s)));
        Expr::prod(c, f)
    }

    fn forest(rhs: Vec<Expr>, n_species: usize) -> ExprForest {
        ExprForest {
            temps: vec![],
            rhs,
            n_species,
            n_rates: 8,
        }
    }

    /// Dense Jacobian by naive interpretation of the combined forest.
    fn dense_jacobian(tapes: &JacobianTapes, rates: &[f64], y: &[f64]) -> Vec<Vec<f64>> {
        let n = tapes.n_species;
        let mut ydot = vec![0.0; n];
        let mut vals = vec![0.0; tapes.nnz()];
        let mut regs = Vec::new();
        tapes.eval_with_scratch(rates, y, &mut ydot, &mut vals, &mut regs);
        let mut jac = vec![vec![0.0; n]; n];
        for (e, &(i, j)) in tapes.entries.iter().enumerate() {
            jac[i as usize][j as usize] = vals[e];
        }
        jac
    }

    /// Central finite difference of the forest itself.
    fn fd_entry(f: &ExprForest, rates: &[f64], y: &[f64], i: usize, j: usize) -> f64 {
        let h = 1e-6 * y[j].abs().max(1.0);
        let mut yp = y.to_vec();
        let mut ym = y.to_vec();
        yp[j] += h;
        ym[j] -= h;
        let mut fp = vec![0.0; f.rhs.len()];
        let mut fm = vec![0.0; f.rhs.len()];
        f.eval_into(rates, &yp, &mut fp);
        f.eval_into(rates, &ym, &mut fm);
        (fp[i] - fm[i]) / (2.0 * h)
    }

    #[test]
    fn mass_action_derivatives_exact() {
        // f0 = -k0*y0*y1, f1 = k0*y0*y1 - k1*y1
        let f = forest(
            vec![
                term(-1.0, 0, &[0, 1]),
                Expr::sum(vec![term(1.0, 0, &[0, 1]), term(-1.0, 1, &[1])]),
            ],
            2,
        );
        let tapes = compile_jacobian(&f, None);
        assert_eq!(tapes.entries, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        let rates = [2.0, 3.0];
        let y = [5.0, 7.0];
        let jac = dense_jacobian(&tapes, &rates, &y);
        // ∂f0/∂y0 = -k0*y1, ∂f0/∂y1 = -k0*y0
        assert_eq!(jac[0][0], -2.0 * 7.0);
        assert_eq!(jac[0][1], -2.0 * 5.0);
        // ∂f1/∂y0 = k0*y1, ∂f1/∂y1 = k0*y0 - k1
        assert_eq!(jac[1][0], 2.0 * 7.0);
        assert_eq!(jac[1][1], 2.0 * 5.0 - 3.0);
    }

    #[test]
    fn squared_species_uses_power_rule() {
        // f0 = k0*y0^2 → ∂/∂y0 = 2*k0*y0
        let f = forest(vec![term(1.0, 0, &[0, 0])], 1);
        let tapes = compile_jacobian(&f, None);
        assert_eq!(tapes.entries, vec![(0, 0)]);
        let jac = dense_jacobian(&tapes, &[3.0], &[4.0]);
        assert_eq!(jac[0][0], 2.0 * 3.0 * 4.0);
    }

    #[test]
    fn sparsity_is_exact_not_dense() {
        // f0 depends only on y0, f1 only on y2: 2 entries, not 6.
        let f = forest(
            vec![term(-1.0, 0, &[0]), term(1.0, 1, &[2]), Expr::constant(0.0)],
            3,
        );
        let (_, entries) = differentiate_forest(&f);
        assert_eq!(entries, vec![(0, 0), (1, 2)]);
    }

    #[test]
    fn chain_rule_through_temps() {
        // t0 = k0*y0*y1; f0 = t0, f1 = -2*t0 + k1*y1
        let f = ExprForest {
            temps: vec![term(1.0, 0, &[0, 1])],
            rhs: vec![
                Expr::Temp(TempId(0)),
                Expr::sum(vec![
                    Expr::prod(-2.0, vec![Expr::Temp(TempId(0))]),
                    term(1.0, 1, &[1]),
                ]),
            ],
            n_species: 2,
            n_rates: 2,
        };
        let tapes = compile_jacobian(&f, None);
        let rates = [2.0, 3.0];
        let y = [5.0, 7.0];
        let jac = dense_jacobian(&tapes, &rates, &y);
        assert_eq!(jac[0][0], 2.0 * 7.0);
        assert_eq!(jac[0][1], 2.0 * 5.0);
        assert_eq!(jac[1][0], -2.0 * 2.0 * 7.0);
        assert_eq!(jac[1][1], -2.0 * 2.0 * 5.0 + 3.0);
    }

    #[test]
    fn combined_forest_matches_naive_eval_and_fd() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        for round in 0..25 {
            let n = rng.gen_range(2..6);
            let f = forest(
                (0..n)
                    .map(|_| {
                        Expr::sum(
                            (0..rng.gen_range(1..6))
                                .map(|_| {
                                    let sp: Vec<u32> = (0..rng.gen_range(1..4))
                                        .map(|_| rng.gen_range(0..n as u32))
                                        .collect();
                                    let sign = if rng.gen_range(0..2) == 0 { 1.0 } else { -1.0 };
                                    term(
                                        sign * rng.gen_range(1..3) as f64,
                                        rng.gen_range(0..4),
                                        &sp,
                                    )
                                })
                                .collect(),
                        )
                    })
                    .collect(),
                n,
            );
            // Optimize first so the input forest has temps to chain through.
            let optimized = cse_forest(
                &crate::distopt::distribute_forest(&f),
                CseOptions::default(),
            );
            let (combined, entries) = differentiate_forest(&optimized);
            let rates: Vec<f64> = (0..8).map(|_| rng.gen_range(0.1..2.0)).collect();
            let y: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..2.0)).collect();
            // Naive interpretation of the combined forest...
            let mut naive = vec![0.0; combined.rhs.len()];
            combined.eval_into(&rates, &y, &mut naive);
            // ...must match the monolithic lowering...
            let tape = lower(&combined);
            let mut via_tape = vec![0.0; combined.rhs.len()];
            tape.eval(&rates, &y, &mut via_tape);
            // ...and the split/compacted pair.
            let tapes = compile_jacobian(&optimized, Some(CseOptions::default()));
            assert_eq!(tapes.entries, entries, "round {round}: entry mismatch");
            let mut ydot = vec![0.0; n];
            let mut vals = vec![0.0; tapes.nnz()];
            let mut regs = Vec::new();
            tapes.eval_with_scratch(&rates, &y, &mut ydot, &mut vals, &mut regs);
            for i in 0..combined.rhs.len() {
                let got = if i < n { ydot[i] } else { vals[i - n] };
                assert!(
                    (naive[i] - via_tape[i]).abs() <= 1e-9 * naive[i].abs().max(1.0)
                        && (naive[i] - got).abs() <= 1e-9 * naive[i].abs().max(1.0),
                    "round {round} output {i}: naive {} tape {} split {}",
                    naive[i],
                    via_tape[i],
                    got
                );
            }
            // And the entries must be true derivatives (FD cross-check).
            for &(i, j) in entries.iter().take(12) {
                let analytic = naive[n + entries.iter().position(|e| *e == (i, j)).unwrap()];
                let fd = fd_entry(&f, &rates, &y, i as usize, j as usize);
                assert!(
                    (analytic - fd).abs() <= 1e-5 * fd.abs().max(1.0),
                    "round {round} ∂f{i}/∂y{j}: analytic {analytic} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn cse_shares_work_between_rhs_and_jacobian() {
        // A chain of bimolecular reactions: the Jacobian entries are the
        // cofactors of the RHS products, so sharing must make the joint
        // tape much cheaper than RHS + independent Jacobian lowering.
        let n = 8usize;
        let mut rhs: Vec<Expr> = (0..n).map(|_| Expr::constant(0.0)).collect();
        for i in 0..n - 1 {
            let t = term(1.0, i as u32 % 4, &[i as u32, i as u32 + 1]);
            rhs[i] = Expr::sum(vec![rhs[i].clone(), Expr::prod(-1.0, vec![t.clone()])]);
            rhs[i + 1] = Expr::sum(vec![rhs[i + 1].clone(), t]);
        }
        let f = forest(rhs, n);
        let shared = compile_jacobian(&f, Some(CseOptions::default()));
        let unshared = compile_jacobian(&f, None);
        let shared_total = shared.rhs.op_counts().total() + shared.jac.op_counts().total();
        let unshared_total = unshared.rhs.op_counts().total() + unshared.jac.op_counts().total();
        assert!(
            shared_total < unshared_total,
            "sharing did not pay: {shared_total} vs {unshared_total}"
        );
        // Both register files are shared between the tape pair.
        assert_eq!(shared.rhs.n_regs, shared.jac.n_regs);
    }

    /// Central finite difference of the forest w.r.t. a rate constant.
    fn fd_rate_entry(f: &ExprForest, rates: &[f64], y: &[f64], i: usize, r: usize) -> f64 {
        let h = 1e-6 * rates[r].abs().max(1.0);
        let mut rp = rates.to_vec();
        let mut rm = rates.to_vec();
        rp[r] += h;
        rm[r] -= h;
        let mut fp = vec![0.0; f.rhs.len()];
        let mut fm = vec![0.0; f.rhs.len()];
        f.eval_into(&rp, y, &mut fp);
        f.eval_into(&rm, y, &mut fm);
        (fp[i] - fm[i]) / (2.0 * h)
    }

    #[test]
    fn rate_derivatives_exact() {
        // f0 = -k0*y0*y1, f1 = k0*y0*y1 - k1*y1
        let f = forest(
            vec![
                term(-1.0, 0, &[0, 1]),
                Expr::sum(vec![term(1.0, 0, &[0, 1]), term(-1.0, 1, &[1])]),
            ],
            2,
        );
        let tapes = compile_sensitivity(&f, None);
        assert_eq!(tapes.jac_entries, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert_eq!(tapes.dfdp_entries, vec![(0, 0), (1, 0), (1, 1)]);
        let rates = [2.0, 3.0];
        let y = [5.0, 7.0];
        let mut ydot = vec![0.0; 2];
        let mut jac_vals = vec![0.0; tapes.jac_nnz()];
        let mut dfdp_vals = vec![0.0; tapes.dfdp_nnz()];
        let mut regs = Vec::new();
        tapes.eval_all(
            &rates,
            &y,
            &mut ydot,
            &mut jac_vals,
            &mut dfdp_vals,
            &mut regs,
        );
        // ∂f0/∂k0 = -y0*y1; ∂f1/∂k0 = y0*y1; ∂f1/∂k1 = -y1.
        assert_eq!(dfdp_vals[0], -5.0 * 7.0);
        assert_eq!(dfdp_vals[1], 5.0 * 7.0);
        assert_eq!(dfdp_vals[2], -7.0);
        // The RHS and Jacobian outputs agree with the jacobian-only compile.
        let jt = compile_jacobian(&f, None);
        let mut ydot2 = vec![0.0; 2];
        let mut vals2 = vec![0.0; jt.nnz()];
        let mut regs2 = Vec::new();
        jt.eval_with_scratch(&rates, &y, &mut ydot2, &mut vals2, &mut regs2);
        assert_eq!(ydot, ydot2);
        assert_eq!(jac_vals, vals2);
    }

    #[test]
    fn sensitivity_tapes_match_fd_on_random_forests() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for round in 0..20 {
            let n = rng.gen_range(2..6);
            let f = forest(
                (0..n)
                    .map(|_| {
                        Expr::sum(
                            (0..rng.gen_range(1..5))
                                .map(|_| {
                                    let sp: Vec<u32> = (0..rng.gen_range(1..4))
                                        .map(|_| rng.gen_range(0..n as u32))
                                        .collect();
                                    let sign = if rng.gen_range(0..2) == 0 { 1.0 } else { -1.0 };
                                    term(
                                        sign * rng.gen_range(1..3) as f64,
                                        rng.gen_range(0..4),
                                        &sp,
                                    )
                                })
                                .collect(),
                        )
                    })
                    .collect(),
                n,
            );
            // Optimize first so the input forest has temps to chain through.
            let optimized = cse_forest(
                &crate::distopt::distribute_forest(&f),
                CseOptions::default(),
            );
            let tapes = compile_sensitivity(&optimized, Some(CseOptions::default()));
            let rates: Vec<f64> = (0..8).map(|_| rng.gen_range(0.1..2.0)).collect();
            let y: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..2.0)).collect();
            let mut ydot = vec![0.0; n];
            let mut jac_vals = vec![0.0; tapes.jac_nnz()];
            let mut dfdp_vals = vec![0.0; tapes.dfdp_nnz()];
            let mut regs = Vec::new();
            tapes.eval_all(
                &rates,
                &y,
                &mut ydot,
                &mut jac_vals,
                &mut dfdp_vals,
                &mut regs,
            );
            for (e, &(i, r)) in tapes.dfdp_entries.iter().enumerate() {
                let fd = fd_rate_entry(&f, &rates, &y, i as usize, r as usize);
                assert!(
                    (dfdp_vals[e] - fd).abs() <= 1e-5 * fd.abs().max(1.0),
                    "round {round} ∂f{i}/∂k{r}: analytic {} vs fd {fd}",
                    dfdp_vals[e]
                );
            }
            // Shared register file across the triple.
            assert_eq!(tapes.rhs.n_regs, tapes.jac.n_regs);
            assert_eq!(tapes.rhs.n_regs, tapes.dfdp.n_regs);
        }
    }

    #[test]
    fn rolled_jacobian_group_is_bit_identical() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let opts = RerollOptions {
            max_body: 64,
            min_trips: 2,
            min_savings: 1,
        };
        let mut rng = SmallRng::seed_from_u64(5);
        for round in 0..15 {
            let n = rng.gen_range(3..7);
            let f = forest(
                (0..n)
                    .map(|i| {
                        let i = i as u32;
                        Expr::sum(vec![
                            term(1.0, i % 4, &[i % n as u32, (i + 1) % n as u32]),
                            term(-1.0, (i + 1) % 4, &[(i + 2) % n as u32]),
                        ])
                    })
                    .collect(),
                n,
            );
            let tapes = compile_jacobian(&f, Some(CseOptions::default()));
            let rolled = tapes.reroll(&opts);
            assert_eq!(rolled.validate(&tapes), Ok(()));
            let rates: Vec<f64> = (0..8).map(|_| rng.gen_range(0.1..2.0)).collect();
            let y: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..2.0)).collect();
            let mut ydot = vec![0.0; n];
            let mut vals = vec![0.0; tapes.nnz()];
            let mut regs = Vec::new();
            tapes.eval_with_scratch(&rates, &y, &mut ydot, &mut vals, &mut regs);
            let mut ydot_r = vec![0.0; n];
            let mut vals_r = vec![0.0; tapes.nnz()];
            let mut regs_r = Vec::new();
            rolled.eval_with_scratch(&tapes, &rates, &y, &mut ydot_r, &mut vals_r, &mut regs_r);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&ydot), bits(&ydot_r), "round {round}: rhs diverged");
            assert_eq!(bits(&vals), bits(&vals_r), "round {round}: jac diverged");
        }
    }

    #[test]
    fn rolled_sensitivity_group_is_bit_identical_and_compresses() {
        let opts = RerollOptions {
            max_body: 64,
            min_trips: 2,
            min_savings: 1,
        };
        // A regular chain: every stanza has the same shape, so the group
        // should actually produce loops, not just validate trivially.
        let n = 12usize;
        let f = forest(
            (0..n)
                .map(|i| {
                    let i = i as u32;
                    Expr::sum(vec![
                        term(1.0, i % 4, &[i % n as u32, (i + 1) % n as u32]),
                        term(-1.0, (i + 1) % 4, &[(i + 2) % n as u32]),
                    ])
                })
                .collect(),
            n,
        );
        let tapes = compile_sensitivity(&f, Some(CseOptions::default()));
        let rolled = tapes.reroll(&opts);
        assert_eq!(rolled.validate(&tapes), Ok(()));
        assert!(
            rolled.loop_count() > 0,
            "regular sensitivity group should reroll"
        );
        assert!(rolled.rerolled_instrs() > 0);
        let rates: Vec<f64> = (0..8).map(|k| 0.2 + 0.1 * k as f64).collect();
        let y: Vec<f64> = (0..n).map(|s| 0.4 + 0.05 * s as f64).collect();
        let mut ydot = vec![0.0; n];
        let mut jac_vals = vec![0.0; tapes.jac_nnz()];
        let mut dfdp_vals = vec![0.0; tapes.dfdp_nnz()];
        let mut regs = Vec::new();
        tapes.eval_all(
            &rates,
            &y,
            &mut ydot,
            &mut jac_vals,
            &mut dfdp_vals,
            &mut regs,
        );
        let mut ydot_r = vec![0.0; n];
        let mut jac_r = vec![0.0; tapes.jac_nnz()];
        let mut dfdp_r = vec![0.0; tapes.dfdp_nnz()];
        let mut regs_r = Vec::new();
        rolled.eval_all(
            &tapes,
            &rates,
            &y,
            &mut ydot_r,
            &mut jac_r,
            &mut dfdp_r,
            &mut regs_r,
        );
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&ydot), bits(&ydot_r));
        assert_eq!(bits(&jac_vals), bits(&jac_r));
        assert_eq!(bits(&dfdp_vals), bits(&dfdp_r));
    }

    #[test]
    fn pattern_rows_round_trip() {
        let f = forest(vec![term(-1.0, 0, &[0, 1]), term(1.0, 0, &[0, 1])], 2);
        let tapes = compile_jacobian(&f, None);
        let rows = tapes.pattern_rows();
        assert_eq!(rows, vec![vec![0, 1], vec![0, 1]]);
        assert_eq!(tapes.nnz(), 4);
    }
}
