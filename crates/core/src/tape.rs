//! The evaluation tape: a linear, register-based program computing every
//! ODE right-hand side.
//!
//! This is our analog of the C function the paper's backend emits — the
//! form in which the system is actually executed by the ODE solver. The
//! tape's operation counts are the numbers reported in Table 1, and its
//! interpreter is the hot path of the whole runtime.

use rms_odegen::OpCounts;

use crate::expr::{Coeff, Expr, ExprForest};

/// Register index.
pub type Reg = u32;

/// Operand source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A previously computed register.
    Reg(Reg),
    /// Species concentration `y[i]`.
    Species(u32),
    /// Rate constant `k[i]`.
    Rate(u32),
    /// Literal constant.
    Const(f64),
}

/// One tape instruction. Loads are folded into operands; only arithmetic
/// occupies tape slots, so instruction counts equal flop counts.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // field meanings are given by each variant's formula
pub enum Instr {
    /// `regs[dst] = a + b`
    Add { dst: Reg, a: Operand, b: Operand },
    /// `regs[dst] = a - b`
    Sub { dst: Reg, a: Operand, b: Operand },
    /// `regs[dst] = a * b`
    Mul { dst: Reg, a: Operand, b: Operand },
    /// `regs[dst] = -a`
    Neg { dst: Reg, a: Operand },
    /// `regs[dst] = a` (operand materialization; also emitted when value
    /// numbering replaces a redundant operation)
    Copy { dst: Reg, a: Operand },
    /// `ydot[idx] = a`
    Store { idx: u32, a: Operand },
}

/// A compiled tape.
#[derive(Debug, Clone, Default)]
pub struct Tape {
    /// Instructions in execution order.
    pub instrs: Vec<Instr>,
    /// Register file size.
    pub n_regs: usize,
    /// Number of species (outputs).
    pub n_species: usize,
    /// Number of rate constants (inputs).
    pub n_rates: usize,
}

impl Instr {
    /// The instruction's input operands (destination registers and store
    /// indices excluded).
    pub fn operands(&self) -> impl Iterator<Item = Operand> {
        let (a, b) = match *self {
            Instr::Add { a, b, .. } | Instr::Sub { a, b, .. } | Instr::Mul { a, b, .. } => {
                (a, Some(b))
            }
            Instr::Neg { a, .. } | Instr::Copy { a, .. } | Instr::Store { a, .. } => (a, None),
        };
        std::iter::once(a).chain(b)
    }

    /// The destination register, when the instruction writes one
    /// (`Store` writes an output slot instead).
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Instr::Add { dst, .. }
            | Instr::Sub { dst, .. }
            | Instr::Mul { dst, .. }
            | Instr::Neg { dst, .. }
            | Instr::Copy { dst, .. } => Some(dst),
            Instr::Store { .. } => None,
        }
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "r{r}"),
            Operand::Species(i) => write!(f, "y{i}"),
            Operand::Rate(i) => write!(f, "k{i}"),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

impl std::fmt::Display for Instr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Instr::Add { dst, a, b } => write!(f, "r{dst} = {a} + {b}"),
            Instr::Sub { dst, a, b } => write!(f, "r{dst} = {a} - {b}"),
            Instr::Mul { dst, a, b } => write!(f, "r{dst} = {a} * {b}"),
            Instr::Neg { dst, a } => write!(f, "r{dst} = -{a}"),
            Instr::Copy { dst, a } => write!(f, "r{dst} = {a}"),
            Instr::Store { idx, a } => write!(f, "ydot[{idx}] = {a}"),
        }
    }
}

/// Disassembly listing: a header line then one instruction per line (the
/// `--dump-ir=lower` format).
impl std::fmt::Display for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "; tape: {} instrs, {} regs, {} species, {} rates",
            self.instrs.len(),
            self.n_regs,
            self.n_species,
            self.n_rates
        )?;
        for i in &self.instrs {
            writeln!(f, "{i}")?;
        }
        Ok(())
    }
}

impl Tape {
    /// Evaluate the tape: reads `rates` and `y`, writes `ydot`, using the
    /// caller-provided scratch register file (resized as needed so the
    /// solver loop allocates once).
    pub fn eval_with_scratch(
        &self,
        rates: &[f64],
        y: &[f64],
        ydot: &mut [f64],
        regs: &mut Vec<f64>,
    ) {
        if regs.len() < self.n_regs {
            regs.resize(self.n_regs, 0.0);
        }
        let fetch = |regs: &[f64], op: Operand| -> f64 {
            match op {
                Operand::Reg(r) => regs[r as usize],
                Operand::Species(i) => y[i as usize],
                Operand::Rate(i) => rates[i as usize],
                Operand::Const(v) => v,
            }
        };
        for instr in &self.instrs {
            match *instr {
                Instr::Add { dst, a, b } => regs[dst as usize] = fetch(regs, a) + fetch(regs, b),
                Instr::Sub { dst, a, b } => regs[dst as usize] = fetch(regs, a) - fetch(regs, b),
                Instr::Mul { dst, a, b } => regs[dst as usize] = fetch(regs, a) * fetch(regs, b),
                Instr::Neg { dst, a } => regs[dst as usize] = -fetch(regs, a),
                Instr::Copy { dst, a } => regs[dst as usize] = fetch(regs, a),
                Instr::Store { idx, a } => ydot[idx as usize] = fetch(regs, a),
            }
        }
    }

    /// Evaluate with a fresh register file.
    pub fn eval(&self, rates: &[f64], y: &[f64], ydot: &mut [f64]) {
        let mut regs = vec![0.0; self.n_regs];
        self.eval_with_scratch(rates, y, ydot, &mut regs);
    }

    /// Arithmetic operation counts (Table 1's "Number of *" and
    /// "Number of (+ and -)"). `Neg` counts as an add-class operation;
    /// `Copy`/`Store` are free.
    pub fn op_counts(&self) -> OpCounts {
        let mut counts = OpCounts::default();
        for instr in &self.instrs {
            match instr {
                Instr::Mul { .. } => counts.mults += 1,
                Instr::Add { .. } | Instr::Sub { .. } | Instr::Neg { .. } => counts.adds += 1,
                Instr::Copy { .. } | Instr::Store { .. } => {}
            }
        }
        counts
    }

    /// Number of instructions (IR size metric).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Check the tape's structural invariants: every operand index in
    /// bounds, no register read before it is written, every `Store` index
    /// below `n_species`, and no dead `Copy` (a copy whose destination is
    /// never read). Returns a description of the first violation.
    ///
    /// For a [`lower_split`] pair sharing one register file, use
    /// [`validate_program`], which carries the written-register set across
    /// tapes and checks each tape against its own output arity.
    pub fn validate(&self) -> Result<(), String> {
        validate_program(&[(self, self.n_species)])
    }
}

/// Validate tapes that execute back-to-back on one shared register file
/// (the [`lower_split`] contract). Each entry pairs a tape with its
/// output arity (the exclusive upper bound on its `Store` indices — a
/// secondary Jacobian tape stores one slot per nonzero, not per species).
/// Register writes in earlier tapes satisfy reads in later ones.
pub fn validate_program(tapes: &[(&Tape, usize)]) -> Result<(), String> {
    let Some(&(first, _)) = tapes.first() else {
        return Ok(());
    };
    for (t, &(tape, _)) in tapes.iter().enumerate() {
        if tape.n_regs != first.n_regs
            || tape.n_species != first.n_species
            || tape.n_rates != first.n_rates
        {
            return Err(format!(
                "tape {t} disagrees with tape 0 on file sizes \
                 (n_regs {} vs {}, n_species {} vs {}, n_rates {} vs {})",
                tape.n_regs,
                first.n_regs,
                tape.n_species,
                first.n_species,
                tape.n_rates,
                first.n_rates
            ));
        }
    }
    let mut written = vec![false; first.n_regs];
    // Pending `Copy` destination -> location of the copy, cleared when the
    // register is read; a redefinition or program end while still pending
    // means the copy was dead.
    let mut pending_copy: Vec<Option<(usize, usize)>> = vec![None; first.n_regs];
    for (t, &(tape, n_outputs)) in tapes.iter().enumerate() {
        for (p, instr) in tape.instrs.iter().enumerate() {
            let at = |what: &str| format!("tape {t}, instruction {p}: {what}");
            let mut read = |op: Operand| -> Result<(), String> {
                match op {
                    Operand::Reg(r) => {
                        let r = r as usize;
                        if r >= first.n_regs {
                            return Err(at(&format!(
                                "register operand r{r} out of bounds (n_regs = {})",
                                first.n_regs
                            )));
                        }
                        if !written[r] {
                            return Err(at(&format!("register r{r} read before write")));
                        }
                        pending_copy[r] = None;
                        Ok(())
                    }
                    Operand::Species(i) if (i as usize) >= first.n_species => Err(at(&format!(
                        "species operand y[{i}] out of bounds (n_species = {})",
                        first.n_species
                    ))),
                    Operand::Rate(i) if (i as usize) >= first.n_rates => Err(at(&format!(
                        "rate operand k[{i}] out of bounds (n_rates = {})",
                        first.n_rates
                    ))),
                    _ => Ok(()),
                }
            };
            match *instr {
                Instr::Add { a, b, .. } | Instr::Sub { a, b, .. } | Instr::Mul { a, b, .. } => {
                    read(a)?;
                    read(b)?;
                }
                Instr::Neg { a, .. } | Instr::Copy { a, .. } | Instr::Store { a, .. } => read(a)?,
            }
            match *instr {
                Instr::Store { idx, .. } => {
                    if (idx as usize) >= n_outputs {
                        return Err(at(&format!(
                            "store index {idx} out of bounds (n_outputs = {n_outputs})"
                        )));
                    }
                }
                Instr::Add { dst, .. }
                | Instr::Sub { dst, .. }
                | Instr::Mul { dst, .. }
                | Instr::Neg { dst, .. }
                | Instr::Copy { dst, .. } => {
                    let d = dst as usize;
                    if d >= first.n_regs {
                        return Err(at(&format!(
                            "destination r{d} out of bounds (n_regs = {})",
                            first.n_regs
                        )));
                    }
                    if let Some((ct, cp)) = pending_copy[d] {
                        return Err(format!(
                            "tape {ct}, instruction {cp}: dead copy into r{d} \
                             (overwritten at tape {t}, instruction {p} without a read)"
                        ));
                    }
                    written[d] = true;
                    pending_copy[d] = matches!(instr, Instr::Copy { .. }).then_some((t, p));
                }
            }
        }
    }
    if let Some((ct, cp)) = pending_copy.iter().flatten().next() {
        return Err(format!(
            "tape {ct}, instruction {cp}: dead copy (destination never read)"
        ));
    }
    Ok(())
}

/// Reassign registers by linear scan so slots are reused after their
/// last read. SSA lowering gives every instruction a fresh register —
/// harmless for small systems but a multi-megabyte register file at
/// paper scale (the 250 000-equation case would otherwise carry one slot
/// per instruction). Temporaries (multi-use registers) live until their
/// final reader; single-use values free immediately.
///
/// On single-assignment input, register-to-register `Copy` instructions
/// are propagated away instead of allocated: the destination aliases the
/// source's slot (reference-counted so the slot frees only after *both*
/// names die). Value numbering emits such copies for every redundant
/// operation it eliminates, and leaving them on the tape inflates `len()`
/// — the Table 1 IR-size metric. When any register is written more than
/// once, aliasing would be unsound and copies are materialized as before.
pub fn compact_registers(tape: &Tape) -> Tape {
    let n = tape.n_regs;
    // Last read position of each register.
    let mut last_read = vec![usize::MAX; n];
    let mark = |last_read: &mut [usize], op: Operand, pos: usize| {
        if let Operand::Reg(r) = op {
            last_read[r as usize] = pos;
        }
    };
    // Copy aliasing is only sound when no register is reassigned.
    let mut writes = vec![0u32; n];
    for (pos, instr) in tape.instrs.iter().enumerate() {
        match *instr {
            Instr::Add { dst, a, b } | Instr::Sub { dst, a, b } | Instr::Mul { dst, a, b } => {
                mark(&mut last_read, a, pos);
                mark(&mut last_read, b, pos);
                writes[dst as usize] += 1;
            }
            Instr::Neg { dst, a } | Instr::Copy { dst, a } => {
                mark(&mut last_read, a, pos);
                writes[dst as usize] += 1;
            }
            Instr::Store { a, .. } => {
                mark(&mut last_read, a, pos);
            }
        }
    }
    let ssa = writes.iter().all(|&w| w <= 1);
    // Linear scan with a free list. `refcount[slot]` counts the live
    // source registers mapped to each slot (> 1 only via copy aliasing).
    let mut mapping = vec![u32::MAX; n];
    let mut free: Vec<u32> = Vec::new();
    let mut refcount: Vec<u32> = Vec::new();
    let mut next_slot: u32 = 0;
    let mut out = Tape {
        instrs: Vec::with_capacity(tape.instrs.len()),
        n_regs: 0,
        n_species: tape.n_species,
        n_rates: tape.n_rates,
    };
    let remap = |mapping: &[u32], op: Operand| -> Operand {
        match op {
            Operand::Reg(r) => Operand::Reg(mapping[r as usize]),
            other => other,
        }
    };
    for (pos, instr) in tape.instrs.iter().enumerate() {
        // Remap sources first, releasing registers whose last read is now.
        let release =
            |mapping: &mut [u32], free: &mut Vec<u32>, refcount: &mut [u32], op: Operand| {
                if let Operand::Reg(r) = op {
                    // The u32::MAX guard prevents double-release when both
                    // operands are the same register (e.g. x*x).
                    if last_read[r as usize] == pos && mapping[r as usize] != u32::MAX {
                        let slot = mapping[r as usize];
                        mapping[r as usize] = u32::MAX;
                        refcount[slot as usize] -= 1;
                        if refcount[slot as usize] == 0 {
                            free.push(slot);
                        }
                    }
                }
            };
        let mut alloc =
            |mapping: &mut [u32], free: &mut Vec<u32>, refcount: &mut Vec<u32>, dst: Reg| -> u32 {
                let slot = free.pop().unwrap_or_else(|| {
                    let s = next_slot;
                    next_slot += 1;
                    refcount.push(0);
                    s
                });
                refcount[slot as usize] = 1;
                mapping[dst as usize] = slot;
                slot
            };
        if ssa {
            if let Instr::Copy {
                dst,
                a: Operand::Reg(r),
            } = *instr
            {
                // Propagate: the copy's destination shares the source's
                // slot; no instruction is emitted.
                let slot = mapping[r as usize];
                debug_assert_ne!(slot, u32::MAX, "copy of a dead register");
                refcount[slot as usize] += 1;
                mapping[dst as usize] = slot;
                release(&mut mapping, &mut free, &mut refcount, Operand::Reg(r));
                continue;
            }
        }
        let new_instr = match *instr {
            Instr::Add { dst, a, b } => {
                let (ra, rb) = (remap(&mapping, a), remap(&mapping, b));
                release(&mut mapping, &mut free, &mut refcount, a);
                release(&mut mapping, &mut free, &mut refcount, b);
                Instr::Add {
                    dst: alloc(&mut mapping, &mut free, &mut refcount, dst),
                    a: ra,
                    b: rb,
                }
            }
            Instr::Sub { dst, a, b } => {
                let (ra, rb) = (remap(&mapping, a), remap(&mapping, b));
                release(&mut mapping, &mut free, &mut refcount, a);
                release(&mut mapping, &mut free, &mut refcount, b);
                Instr::Sub {
                    dst: alloc(&mut mapping, &mut free, &mut refcount, dst),
                    a: ra,
                    b: rb,
                }
            }
            Instr::Mul { dst, a, b } => {
                let (ra, rb) = (remap(&mapping, a), remap(&mapping, b));
                release(&mut mapping, &mut free, &mut refcount, a);
                release(&mut mapping, &mut free, &mut refcount, b);
                Instr::Mul {
                    dst: alloc(&mut mapping, &mut free, &mut refcount, dst),
                    a: ra,
                    b: rb,
                }
            }
            Instr::Neg { dst, a } => {
                let ra = remap(&mapping, a);
                release(&mut mapping, &mut free, &mut refcount, a);
                Instr::Neg {
                    dst: alloc(&mut mapping, &mut free, &mut refcount, dst),
                    a: ra,
                }
            }
            Instr::Copy { dst, a } => {
                let ra = remap(&mapping, a);
                release(&mut mapping, &mut free, &mut refcount, a);
                Instr::Copy {
                    dst: alloc(&mut mapping, &mut free, &mut refcount, dst),
                    a: ra,
                }
            }
            Instr::Store { idx, a } => {
                let ra = remap(&mapping, a);
                release(&mut mapping, &mut free, &mut refcount, a);
                Instr::Store { idx, a: ra }
            }
        };
        out.instrs.push(new_instr);
    }
    out.n_regs = next_slot as usize;
    out
}

/// Species dependency pattern of a tape: for each output (derivative)
/// index, the sorted list of species whose concentrations influence it.
///
/// This is the Jacobian sparsity structure `∂ydot_i/∂y_j ≠ 0 ⇒ j ∈
/// pattern[i]`, extracted by forward dataflow over the registers. Large
/// chemistry systems are extremely sparse (a species interacts with a
/// handful of others), which the colored finite-difference Jacobian in
/// `rms-solver` exploits.
pub fn species_dependencies(tape: &Tape) -> Vec<Vec<u32>> {
    // Per-register dependency sets, shared via Rc to avoid quadratic
    // copying along sum chains.
    use std::collections::BTreeSet;
    use std::rc::Rc;
    let mut reg_deps: Vec<Option<Rc<BTreeSet<u32>>>> = vec![None; tape.n_regs];
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); tape.n_species];
    let deps_of =
        |reg_deps: &[Option<Rc<BTreeSet<u32>>>], op: Operand| -> Option<Rc<BTreeSet<u32>>> {
            match op {
                Operand::Reg(r) => reg_deps[r as usize].clone(),
                Operand::Species(i) => {
                    let mut s = BTreeSet::new();
                    s.insert(i);
                    Some(Rc::new(s))
                }
                Operand::Rate(_) | Operand::Const(_) => None,
            }
        };
    let union = |a: Option<Rc<BTreeSet<u32>>>, b: Option<Rc<BTreeSet<u32>>>| match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => {
            if x.is_superset(&y) {
                Some(x)
            } else if y.is_superset(&x) {
                Some(y)
            } else {
                let mut merged: BTreeSet<u32> = (*x).clone();
                merged.extend(y.iter().copied());
                Some(Rc::new(merged))
            }
        }
    };
    for instr in &tape.instrs {
        match *instr {
            Instr::Add { dst, a, b } | Instr::Sub { dst, a, b } | Instr::Mul { dst, a, b } => {
                reg_deps[dst as usize] = union(deps_of(&reg_deps, a), deps_of(&reg_deps, b));
            }
            Instr::Neg { dst, a } | Instr::Copy { dst, a } => {
                reg_deps[dst as usize] = deps_of(&reg_deps, a);
            }
            Instr::Store { idx, a } => {
                if let Some(deps) = deps_of(&reg_deps, a) {
                    out[idx as usize] = deps.iter().copied().collect();
                }
            }
        }
    }
    out
}

/// Forward `Copy` chains and drop the copies: reads of a copied register
/// go straight to the source.
///
/// **Requires single-assignment input** (each register written at most
/// once — true of [`lower`]'s output and of [`crate::generic_compile`]
/// run on such a tape). On register-reused tapes forwarding would be
/// unsound; run it before [`compact_registers`], never after.
pub fn forward_copies(tape: &Tape) -> Tape {
    let mut source: Vec<Option<Operand>> = vec![None; tape.n_regs];
    let resolve = |source: &[Option<Operand>], op: Operand| -> Operand {
        match op {
            Operand::Reg(r) => match source[r as usize] {
                Some(fwd) => fwd,
                None => op,
            },
            other => other,
        }
    };
    let mut out = Tape {
        instrs: Vec::with_capacity(tape.instrs.len()),
        n_regs: tape.n_regs,
        n_species: tape.n_species,
        n_rates: tape.n_rates,
    };
    for instr in &tape.instrs {
        match *instr {
            Instr::Copy { dst, a } => {
                // Chain-resolve so copies of copies flatten.
                source[dst as usize] = Some(resolve(&source, a));
            }
            Instr::Add { dst, a, b } => out.instrs.push(Instr::Add {
                dst,
                a: resolve(&source, a),
                b: resolve(&source, b),
            }),
            Instr::Sub { dst, a, b } => out.instrs.push(Instr::Sub {
                dst,
                a: resolve(&source, a),
                b: resolve(&source, b),
            }),
            Instr::Mul { dst, a, b } => out.instrs.push(Instr::Mul {
                dst,
                a: resolve(&source, a),
                b: resolve(&source, b),
            }),
            Instr::Neg { dst, a } => out.instrs.push(Instr::Neg {
                dst,
                a: resolve(&source, a),
            }),
            Instr::Store { idx, a } => out.instrs.push(Instr::Store {
                idx,
                a: resolve(&source, a),
            }),
        }
    }
    out
}

/// Lower an expression forest to a tape.
///
/// Sign-aware sum lowering keeps the cost model of the symbolic layers:
/// negative-coefficient terms combine with `Sub` instead of paying a
/// multiply by −1, and ±1 coefficients never multiply.
pub fn lower(forest: &ExprForest) -> Tape {
    let mut b = Builder {
        tape: Tape {
            instrs: Vec::new(),
            n_regs: 0,
            n_species: forest.n_species,
            n_rates: forest.n_rates,
        },
        temp_slots: Vec::with_capacity(forest.temps.len()),
    };
    for t in &forest.temps {
        let op = b.lower_expr(t);
        b.temp_slots.push(op);
    }
    for (i, rhs) in forest.rhs.iter().enumerate() {
        let op = b.lower_expr(rhs);
        b.tape.instrs.push(Instr::Store {
            idx: i as u32,
            a: op,
        });
    }
    // `lower` is also used on combined forests whose rhs count exceeds
    // n_species, so validate against the actual output arity.
    #[cfg(debug_assertions)]
    if let Err(e) = validate_program(&[(&b.tape, forest.rhs.len().max(b.tape.n_species))]) {
        panic!("lower produced an invalid tape: {e}");
    }
    b.tape
}

/// Lower a combined forest into **two** tapes sharing one register file:
/// a primary tape computing `rhs[..n_primary]` (stored at indices
/// `0..n_primary`) and a secondary tape computing the remaining outputs
/// (store indices rebased to start at 0).
///
/// Temporaries are placed on the tape that first needs them: everything
/// reachable from the primary outputs lowers into the primary tape, so
/// the secondary tape can read those registers for free when it runs
/// right after the primary on the same scratch file — this is how the
/// Jacobian tape reuses the RHS tape's subexpressions. Temporaries
/// referenced by no output are skipped entirely.
pub fn lower_split(forest: &ExprForest, n_primary: usize) -> (Tape, Tape) {
    let mut tapes = lower_split_multi(forest, &[n_primary, forest.rhs.len() - n_primary]);
    let second = tapes.pop().expect("two groups");
    let first = tapes.pop().expect("two groups");
    (first, second)
}

/// [`lower_split`] generalized to any number of back-to-back output
/// groups over one register file: `counts[g]` outputs go to group `g`
/// (store indices rebased to 0 within each group). Temporaries are
/// placed on the earliest tape whose outputs reach them, so every later
/// tape reads the registers of everything that ran before it. This is
/// how the sensitivity tape `∂f/∂p` reuses the subexpressions of both
/// the RHS and the Jacobian tapes.
pub fn lower_split_multi(forest: &ExprForest, counts: &[usize]) -> Vec<Tape> {
    assert_eq!(
        counts.iter().sum::<usize>(),
        forest.rhs.len(),
        "group counts must cover every forest output"
    );
    let m = forest.temps.len();
    // Transitive temp reachability from each output group.
    let reach = |roots: &[Expr]| -> Vec<bool> {
        let mut seen = vec![false; m];
        let mut stack = Vec::new();
        for e in roots {
            collect_temp_refs(e, &mut stack);
        }
        while let Some(t) = stack.pop() {
            let t = t as usize;
            if !seen[t] {
                seen[t] = true;
                collect_temp_refs(&forest.temps[t], &mut stack);
            }
        }
        seen
    };
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    offsets.push(0usize);
    for &c in counts {
        offsets.push(offsets.last().expect("non-empty") + c);
    }
    let mut b = Builder {
        tape: Tape {
            instrs: Vec::new(),
            n_regs: 0,
            n_species: forest.n_species,
            n_rates: forest.n_rates,
        },
        // Placeholder slots; a NaN leaking into results marks a
        // temp lowered out of dependency order.
        temp_slots: vec![Operand::Const(f64::NAN); m],
    };
    let mut lowered = vec![false; m];
    let mut boundaries = Vec::with_capacity(counts.len());
    for g in 0..counts.len() {
        let group = &forest.rhs[offsets[g]..offsets[g + 1]];
        let wanted = reach(group);
        for (k, temp) in forest.temps.iter().enumerate() {
            if wanted[k] && !lowered[k] {
                let op = b.lower_expr(temp);
                b.temp_slots[k] = op;
                lowered[k] = true;
            }
        }
        for (i, e) in group.iter().enumerate() {
            let op = b.lower_expr(e);
            b.tape.instrs.push(Instr::Store {
                idx: i as u32,
                a: op,
            });
        }
        boundaries.push(b.tape.instrs.len());
    }
    let n_regs = b.tape.n_regs;
    let mut instrs = b.tape.instrs;
    let mut tapes: Vec<Tape> = Vec::with_capacity(counts.len());
    for g in (1..counts.len()).rev() {
        let tail = instrs.split_off(boundaries[g - 1]);
        tapes.push(Tape {
            instrs: tail,
            n_regs,
            n_species: forest.n_species,
            n_rates: forest.n_rates,
        });
    }
    tapes.push(Tape {
        instrs,
        n_regs,
        n_species: forest.n_species,
        n_rates: forest.n_rates,
    });
    tapes.reverse();
    #[cfg(debug_assertions)]
    {
        let program: Vec<(&Tape, usize)> = tapes.iter().zip(counts.iter().copied()).collect();
        if let Err(e) = validate_program(&program) {
            panic!("lower_split_multi produced an invalid tape sequence: {e}");
        }
    }
    tapes
}

fn collect_temp_refs(expr: &Expr, out: &mut Vec<u32>) {
    match expr {
        Expr::Temp(t) => out.push(t.0),
        Expr::Prod(_, factors) => {
            for f in factors {
                collect_temp_refs(f, out);
            }
        }
        Expr::Sum(children) => {
            for c in children {
                collect_temp_refs(c, out);
            }
        }
        _ => {}
    }
}

/// Jointly compact the registers of two tapes that execute back-to-back
/// on one scratch file ([`lower_split`] output): liveness flows across
/// the boundary, so values the second tape still needs keep their slots
/// while everything else is reused.
///
/// Requires copy-free input (true of [`lower_split`]) so the instruction
/// count — and with it the split point — is preserved.
pub fn compact_registers_pair(first: &Tape, second: &Tape) -> (Tape, Tape) {
    let mut tapes = compact_registers_multi(&[first, second]);
    let second_out = tapes.pop().expect("two tapes");
    let first_out = tapes.pop().expect("two tapes");
    (first_out, second_out)
}

/// [`compact_registers_pair`] for any number of tapes executing
/// back-to-back on one scratch file ([`lower_split_multi`] output):
/// liveness flows across every boundary, so values a later tape still
/// needs keep their slots while everything else is reused.
pub fn compact_registers_multi(tapes: &[&Tape]) -> Vec<Tape> {
    debug_assert!(
        tapes
            .iter()
            .flat_map(|t| &t.instrs)
            .all(|i| !matches!(i, Instr::Copy { .. })),
        "joint compaction expects copy-free tapes"
    );
    let first = tapes.first().expect("at least one tape");
    let mut merged = (*first).clone();
    merged.n_regs = tapes.iter().map(|t| t.n_regs).max().unwrap_or(0);
    for t in &tapes[1..] {
        merged.instrs.extend_from_slice(&t.instrs);
    }
    let compacted = compact_registers(&merged);
    let n_regs = compacted.n_regs;
    let mut instrs = compacted.instrs;
    let mut out: Vec<Tape> = Vec::with_capacity(tapes.len());
    for (g, t) in tapes.iter().enumerate().skip(1).rev() {
        let boundary: usize = tapes[..g].iter().map(|t| t.instrs.len()).sum();
        let tail = instrs.split_off(boundary);
        out.push(Tape {
            instrs: tail,
            n_regs,
            n_species: t.n_species,
            n_rates: t.n_rates,
        });
    }
    out.push(Tape {
        instrs,
        n_regs,
        n_species: first.n_species,
        n_rates: first.n_rates,
    });
    out.reverse();
    out
}

struct Builder {
    tape: Tape,
    temp_slots: Vec<Operand>,
}

impl Builder {
    fn fresh(&mut self) -> Reg {
        let r = self.tape.n_regs as Reg;
        self.tape.n_regs += 1;
        r
    }

    /// Lower an expression, returning the operand holding its value.
    fn lower_expr(&mut self, expr: &Expr) -> Operand {
        let (negated, op) = self.lower_signed(expr);
        if negated {
            let dst = self.fresh();
            self.tape.instrs.push(Instr::Neg { dst, a: op });
            Operand::Reg(dst)
        } else {
            op
        }
    }

    /// Lower an expression, allowing the sign to be returned separately
    /// (so enclosing sums can absorb it into a `Sub`). Returns
    /// `(negated, operand)` where the value is `operand` negated if
    /// `negated`.
    fn lower_signed(&mut self, expr: &Expr) -> (bool, Operand) {
        match expr {
            Expr::Const(Coeff(v)) => (false, Operand::Const(*v)),
            Expr::Rate(i) => (false, Operand::Rate(*i)),
            Expr::Species(i) => (false, Operand::Species(*i)),
            Expr::Temp(t) => (false, self.temp_slots[t.0 as usize]),
            Expr::Prod(Coeff(c), factors) => {
                let negated = *c < 0.0;
                let mag = c.abs();
                let mut acc: Option<Operand> = if mag != 1.0 {
                    Some(Operand::Const(mag))
                } else {
                    None
                };
                for f in factors {
                    let f_op = self.lower_expr(f);
                    acc = Some(match acc {
                        None => f_op,
                        Some(prev) => {
                            let dst = self.fresh();
                            self.tape.instrs.push(Instr::Mul {
                                dst,
                                a: prev,
                                b: f_op,
                            });
                            Operand::Reg(dst)
                        }
                    });
                }
                (negated, acc.unwrap_or(Operand::Const(1.0)))
            }
            Expr::Sum(children) => {
                let mut acc: Option<(bool, Operand)> = None;
                for ch in children {
                    let (neg, op) = self.lower_signed(ch);
                    acc = Some(match acc {
                        None => (neg, op),
                        Some((acc_neg, acc_op)) => {
                            let dst = self.fresh();
                            // acc ± term, tracking the accumulated sign.
                            // (±a) + (±b): emit in terms of the accumulator
                            // sign so only one flag survives.
                            if acc_neg == neg {
                                self.tape.instrs.push(Instr::Add {
                                    dst,
                                    a: acc_op,
                                    b: op,
                                });
                                (acc_neg, Operand::Reg(dst))
                            } else {
                                self.tape.instrs.push(Instr::Sub {
                                    dst,
                                    a: acc_op,
                                    b: op,
                                });
                                (acc_neg, Operand::Reg(dst))
                            }
                        }
                    });
                }
                acc.unwrap_or((false, Operand::Const(0.0)))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Loop-structured tape IR (the reroll pass).
//
// The rate-law generator emits thousands of structurally identical stanzas
// — same opcode/operand-kind pattern, differing only in species, rate,
// register or constant payloads. The reroll pass detects maximal runs of
// such stanzas and describes them as `Loop { trip_count, body }` regions
// over the flat tape; per-slot payloads become fixed values, affine
// `base + stride * trip` sequences, or explicit per-trip index tables.
// The flat tape stays the single source of truth (a rolled view never
// reorders or rewrites an instruction), so the degenerate case — no loops
// found — is exactly the old flat form, and every consumer that replays
// the loops trip-by-trip reproduces the flat execution bit for bit.
// ---------------------------------------------------------------------------

/// Tuning knobs for the reroll pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RerollOptions {
    /// Longest candidate loop body, in instructions. Large mechanisms
    /// repeat whole per-species stanzas, so this is deliberately generous.
    pub max_body: usize,
    /// Minimum trip count for a run to become a loop.
    pub min_trips: usize,
    /// Minimum instructions saved (`(trips - 1) * body_len`) for a run to
    /// become a loop; filters out tiny loops whose index tables would cost
    /// more than the straight-line code they replace.
    pub min_savings: usize,
}

impl Default for RerollOptions {
    fn default() -> RerollOptions {
        RerollOptions {
            max_body: 256,
            min_trips: 2,
            min_savings: 8,
        }
    }
}

/// One rerolled region: `trips` consecutive stanzas of `body_len`
/// instructions starting at flat index `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeLoop {
    /// Flat index of the first instruction of trip 0 (the template).
    pub start: usize,
    /// Instructions per trip.
    pub body_len: usize,
    /// Number of trips (≥ 2).
    pub trips: usize,
}

impl TapeLoop {
    /// One past the last flat instruction covered by the loop.
    pub fn end(&self) -> usize {
        self.start + self.body_len * self.trips
    }

    /// Instructions this loop removes from the rolled form.
    pub fn savings(&self) -> usize {
        (self.trips - 1) * self.body_len
    }
}

/// A loop-structured view over a flat [`Tape`]: sorted, disjoint
/// [`TapeLoop`] regions; everything between them is straight-line code.
/// An empty `loops` vector is the degenerate (fully straight) case.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RolledTape {
    /// Flat instruction count of the tape this view was built for.
    pub len: usize,
    /// Rerolled regions, sorted by `start`, pairwise disjoint.
    pub loops: Vec<TapeLoop>,
}

/// One element of a rolled walk: a straight range or a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolledSegment {
    /// Straight-line instructions `start .. start + len`.
    Straight {
        /// First flat index.
        start: usize,
        /// Instruction count.
        len: usize,
    },
    /// A rerolled loop region.
    Loop(TapeLoop),
}

impl RolledTape {
    /// The degenerate view: no loops, everything straight.
    pub fn straight(len: usize) -> RolledTape {
        RolledTape {
            len,
            loops: Vec::new(),
        }
    }

    /// Number of loop regions.
    pub fn loop_count(&self) -> usize {
        self.loops.len()
    }

    /// Flat instructions eliminated by rerolling (bodies beyond trip 0).
    pub fn rerolled_instrs(&self) -> usize {
        self.loops.iter().map(TapeLoop::savings).sum()
    }

    /// Instruction count of the rolled form: straight instructions plus
    /// one body per loop. This is what the native backend actually emits.
    pub fn rolled_len(&self) -> usize {
        self.len - self.rerolled_instrs()
    }

    /// The walk order: straight ranges interleaved with loops, covering
    /// `0 .. self.len` exactly once.
    pub fn segments(&self) -> Vec<RolledSegment> {
        let mut out = Vec::with_capacity(2 * self.loops.len() + 1);
        let mut at = 0usize;
        for lp in &self.loops {
            if lp.start > at {
                out.push(RolledSegment::Straight {
                    start: at,
                    len: lp.start - at,
                });
            }
            out.push(RolledSegment::Loop(*lp));
            at = lp.end();
        }
        if at < self.len {
            out.push(RolledSegment::Straight {
                start: at,
                len: self.len - at,
            });
        }
        out
    }

    /// Check the view against its tape: loops sorted and disjoint, in
    /// bounds, trip counts ≥ 2, and every trip shape-identical to the
    /// template (same opcodes and operand kinds). A view that validates
    /// replays the flat tape exactly when walked trip by trip.
    pub fn validate(&self, tape: &Tape) -> Result<(), String> {
        if self.len != tape.len() {
            return Err(format!(
                "rolled view built for {} instrs, tape has {}",
                self.len,
                tape.len()
            ));
        }
        let mut at = 0usize;
        for (i, lp) in self.loops.iter().enumerate() {
            if lp.body_len == 0 || lp.trips < 2 {
                return Err(format!(
                    "loop {i}: degenerate shape (body_len {}, trips {})",
                    lp.body_len, lp.trips
                ));
            }
            if lp.start < at {
                return Err(format!(
                    "loop {i}: starts at {} inside the previous region (ends {at})",
                    lp.start
                ));
            }
            if lp.end() > self.len {
                return Err(format!(
                    "loop {i}: ends at {} past the tape ({} instrs)",
                    lp.end(),
                    self.len
                ));
            }
            for t in 1..lp.trips {
                for p in 0..lp.body_len {
                    let a = &tape.instrs[lp.start + p];
                    let b = &tape.instrs[lp.start + t * lp.body_len + p];
                    if a.shape_key() != b.shape_key() {
                        return Err(format!(
                            "loop {i}: trip {t} position {p} ({b}) does not match \
                             the template ({a})"
                        ));
                    }
                }
            }
            at = lp.end();
        }
        Ok(())
    }

    /// Human-readable listing of the rolled structure (dump format): loop
    /// headers with slot patterns, straight ranges elided to counts.
    pub fn render(&self, tape: &Tape) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; rolled: {} loops, {} of {} instrs rerolled ({} emitted)",
            self.loop_count(),
            self.rerolled_instrs(),
            self.len,
            self.rolled_len()
        );
        for seg in self.segments() {
            match seg {
                RolledSegment::Straight { start, len } => {
                    let _ = writeln!(out, "straight {start}..{} ({len} instrs)", start + len);
                }
                RolledSegment::Loop(lp) => {
                    let _ = writeln!(
                        out,
                        "loop @{} trips={} body={} {{",
                        lp.start, lp.trips, lp.body_len
                    );
                    let patterns = loop_slot_patterns(tape, &lp);
                    for (p, pats) in patterns.iter().enumerate() {
                        let tags: Vec<String> = pats
                            .iter()
                            .map(|sp| match sp {
                                SlotPattern::Fixed => "fix".to_string(),
                                SlotPattern::Affine { stride } => format!("aff{stride:+}"),
                                SlotPattern::Table(_) => "tab".to_string(),
                                SlotPattern::ConstTable(_) => "ctab".to_string(),
                            })
                            .collect();
                        let _ = writeln!(
                            out,
                            "  {}   ; [{}]",
                            tape.instrs[lp.start + p],
                            tags.join(",")
                        );
                    }
                    let _ = writeln!(out, "}}");
                }
            }
        }
        out
    }
}

impl Instr {
    /// Structural shape key: opcode plus operand kinds, payloads ignored.
    /// Two instructions with equal keys differ only in species/rate/
    /// register/constant payloads — the reroll equivalence.
    pub(crate) fn shape_key(&self) -> u64 {
        let kind = |o: &Operand| -> u64 {
            match o {
                Operand::Reg(_) => 0,
                Operand::Species(_) => 1,
                Operand::Rate(_) => 2,
                Operand::Const(_) => 3,
            }
        };
        match self {
            Instr::Add { a, b, .. } => (1 << 8) | (kind(a) << 4) | kind(b),
            Instr::Sub { a, b, .. } => (2 << 8) | (kind(a) << 4) | kind(b),
            Instr::Mul { a, b, .. } => (3 << 8) | (kind(a) << 4) | kind(b),
            Instr::Neg { a, .. } => (4 << 8) | kind(a),
            Instr::Copy { a, .. } => (5 << 8) | kind(a),
            Instr::Store { a, .. } => (6 << 8) | kind(a),
        }
    }

    /// Number of payload slots (destination/store-index plus operands).
    pub(crate) fn slot_count(&self) -> usize {
        match self {
            Instr::Add { .. } | Instr::Sub { .. } | Instr::Mul { .. } => 3,
            Instr::Neg { .. } | Instr::Copy { .. } | Instr::Store { .. } => 2,
        }
    }

    /// Payload of slot `s`: slot 0 is the destination register (or store
    /// index), later slots are operand payloads in order. Constants are
    /// returned as their bit pattern.
    pub(crate) fn slot(&self, s: usize) -> u64 {
        let op = |o: &Operand| -> u64 {
            match o {
                Operand::Reg(r) => *r as u64,
                Operand::Species(i) => *i as u64,
                Operand::Rate(i) => *i as u64,
                Operand::Const(c) => c.to_bits(),
            }
        };
        match (self, s) {
            (Instr::Add { dst, .. } | Instr::Sub { dst, .. } | Instr::Mul { dst, .. }, 0) => {
                *dst as u64
            }
            (Instr::Neg { dst, .. } | Instr::Copy { dst, .. }, 0) => *dst as u64,
            (Instr::Store { idx, .. }, 0) => *idx as u64,
            (Instr::Add { a, .. } | Instr::Sub { a, .. } | Instr::Mul { a, .. }, 1) => op(a),
            (Instr::Add { b, .. } | Instr::Sub { b, .. } | Instr::Mul { b, .. }, 2) => op(b),
            (Instr::Neg { a, .. } | Instr::Copy { a, .. } | Instr::Store { a, .. }, 1) => op(a),
            _ => unreachable!("slot index out of range"),
        }
    }

    /// Rewrite slot `s`'s payload, preserving the operand kind.
    pub(crate) fn set_slot(&mut self, s: usize, v: u64) {
        let patch = |o: &mut Operand| match o {
            Operand::Reg(r) => *r = v as u32,
            Operand::Species(i) => *i = v as u32,
            Operand::Rate(i) => *i = v as u32,
            Operand::Const(c) => *c = f64::from_bits(v),
        };
        match (self, s) {
            (Instr::Add { dst, .. } | Instr::Sub { dst, .. } | Instr::Mul { dst, .. }, 0) => {
                *dst = v as u32
            }
            (Instr::Neg { dst, .. } | Instr::Copy { dst, .. }, 0) => *dst = v as u32,
            (Instr::Store { idx, .. }, 0) => *idx = v as u32,
            (Instr::Add { a, .. } | Instr::Sub { a, .. } | Instr::Mul { a, .. }, 1) => patch(a),
            (Instr::Add { b, .. } | Instr::Sub { b, .. } | Instr::Mul { b, .. }, 2) => patch(b),
            (Instr::Neg { a, .. } | Instr::Copy { a, .. } | Instr::Store { a, .. }, 1) => patch(a),
            _ => unreachable!("slot index out of range"),
        }
    }
}

/// How one payload slot of a loop body varies across trips.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotPattern {
    /// Identical in every trip (rendered once, hoisted out of the loop).
    Fixed,
    /// `template + stride * trip` — rendered inline, no table needed.
    Affine {
        /// Per-trip index increment (may be negative).
        stride: i64,
    },
    /// Arbitrary per-trip indices; consumers intern these tables.
    Table(Vec<u32>),
    /// Arbitrary per-trip constants (bit-exact values).
    ConstTable(Vec<f64>),
}

/// Classify every payload slot of `lp`'s body: for each body position,
/// one [`SlotPattern`] per slot. The loop must shape-validate first.
pub fn loop_slot_patterns(tape: &Tape, lp: &TapeLoop) -> Vec<Vec<SlotPattern>> {
    let mut out = Vec::with_capacity(lp.body_len);
    for p in 0..lp.body_len {
        let template = &tape.instrs[lp.start + p];
        // Slot 0 is the destination/store index; slot s > 0 is operand s-1.
        let ops: Vec<Operand> = template.operands().collect();
        let is_const = |s: usize| s > 0 && matches!(ops[s - 1], Operand::Const(_));
        let mut slots = Vec::with_capacity(template.slot_count());
        for s in 0..template.slot_count() {
            let vals: Vec<u64> = (0..lp.trips)
                .map(|t| tape.instrs[lp.start + t * lp.body_len + p].slot(s))
                .collect();
            let fixed = vals.iter().all(|&v| v == vals[0]);
            if fixed {
                slots.push(SlotPattern::Fixed);
            } else if is_const(s) {
                slots.push(SlotPattern::ConstTable(
                    vals.iter().map(|&v| f64::from_bits(v)).collect(),
                ));
            } else {
                let stride = vals[1] as i64 - vals[0] as i64;
                let affine = vals.windows(2).all(|w| w[1] as i64 - w[0] as i64 == stride);
                if affine {
                    slots.push(SlotPattern::Affine { stride });
                } else {
                    slots.push(SlotPattern::Table(vals.iter().map(|&v| v as u32).collect()));
                }
            }
        }
        out.push(slots);
    }
    out
}

/// Materialize trip `t` of a loop body instruction from its template and
/// slot patterns — the inverse of [`loop_slot_patterns`].
pub fn resolve_instr(template: &Instr, patterns: &[SlotPattern], t: usize) -> Instr {
    let mut instr = *template;
    for (s, pat) in patterns.iter().enumerate() {
        match pat {
            SlotPattern::Fixed => {}
            SlotPattern::Affine { stride } => {
                let base = template.slot(s) as i64;
                instr.set_slot(s, (base + stride * t as i64) as u64);
            }
            SlotPattern::Table(tab) => instr.set_slot(s, tab[t] as u64),
            SlotPattern::ConstTable(tab) => instr.set_slot(s, tab[t].to_bits()),
        }
    }
    instr
}

/// Greedy run detection over a shape-key sequence. At each position the
/// candidate body lengths `1..=max_body` compete on savings
/// (`(trips - 1) * body_len`); the winner becomes a loop and the scan
/// resumes past it. Shared by the tape-level pass and the exec engine's
/// post-fusion reroll (which runs over fused superinstruction shapes).
pub(crate) fn detect_runs(shapes: &[u64], opts: &RerollOptions) -> Vec<TapeLoop> {
    let n = shapes.len();
    let mut loops = Vec::new();
    let mut s = 0usize;
    while s < n {
        let mut best: Option<TapeLoop> = None;
        let max_body = opts.max_body.min((n - s) / 2);
        for body in 1..=max_body {
            // Trip 1 must open like trip 0 — cheap rejection before the
            // full stanza comparison.
            if shapes[s + body] != shapes[s] {
                continue;
            }
            let mut trips = 1usize;
            while s + (trips + 1) * body <= n
                && (0..body).all(|p| shapes[s + trips * body + p] == shapes[s + p])
            {
                trips += 1;
            }
            let cand = TapeLoop {
                start: s,
                body_len: body,
                trips,
            };
            if trips >= opts.min_trips
                && cand.savings() >= opts.min_savings
                && best.is_none_or(|b| cand.savings() > b.savings())
            {
                best = Some(cand);
            }
        }
        match best {
            Some(lp) => {
                s = lp.end();
                loops.push(lp);
            }
            None => s += 1,
        }
    }
    loops
}

/// The reroll pass: detect runs of shape-identical stanzas in `tape` and
/// return the loop-structured view. Pure structure recovery — the tape
/// itself is untouched, so rolled and flat execution are bit-identical
/// by construction.
pub fn reroll(tape: &Tape, opts: &RerollOptions) -> RolledTape {
    let shapes: Vec<u64> = tape.instrs.iter().map(Instr::shape_key).collect();
    let rolled = RolledTape {
        len: tape.len(),
        loops: detect_runs(&shapes, opts),
    };
    debug_assert_eq!(rolled.validate(tape), Ok(()));
    rolled
}

impl Tape {
    /// Evaluate through a rolled view: straight segments interpret as
    /// usual; loop segments execute the *template* trip by trip with
    /// payloads resolved from the slot patterns. Exercises the genuine
    /// loop walk (not a flat replay), and must be bit-identical to
    /// [`Tape::eval_with_scratch`].
    pub fn eval_rolled_with_scratch(
        &self,
        rolled: &RolledTape,
        rates: &[f64],
        y: &[f64],
        ydot: &mut [f64],
        regs: &mut Vec<f64>,
    ) {
        if regs.len() < self.n_regs {
            regs.resize(self.n_regs, 0.0);
        }
        let fetch = |regs: &[f64], op: Operand| -> f64 {
            match op {
                Operand::Reg(r) => regs[r as usize],
                Operand::Species(i) => y[i as usize],
                Operand::Rate(i) => rates[i as usize],
                Operand::Const(v) => v,
            }
        };
        let step = |regs: &mut [f64], ydot: &mut [f64], instr: &Instr| match *instr {
            Instr::Add { dst, a, b } => regs[dst as usize] = fetch(regs, a) + fetch(regs, b),
            Instr::Sub { dst, a, b } => regs[dst as usize] = fetch(regs, a) - fetch(regs, b),
            Instr::Mul { dst, a, b } => regs[dst as usize] = fetch(regs, a) * fetch(regs, b),
            Instr::Neg { dst, a } => regs[dst as usize] = -fetch(regs, a),
            Instr::Copy { dst, a } => regs[dst as usize] = fetch(regs, a),
            Instr::Store { idx, a } => ydot[idx as usize] = fetch(regs, a),
        };
        for seg in rolled.segments() {
            match seg {
                RolledSegment::Straight { start, len } => {
                    for instr in &self.instrs[start..start + len] {
                        step(regs, ydot, instr);
                    }
                }
                RolledSegment::Loop(lp) => {
                    let patterns = loop_slot_patterns(self, &lp);
                    for t in 0..lp.trips {
                        for (p, pats) in patterns.iter().enumerate() {
                            let instr = resolve_instr(&self.instrs[lp.start + p], pats, t);
                            step(regs, ydot, &instr);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cse::{cse_forest, CseOptions};
    use crate::distopt::distribute_forest;

    fn term(c: f64, rate: u32, species: &[u32]) -> Expr {
        let mut f = vec![Expr::Rate(rate)];
        f.extend(species.iter().map(|&s| Expr::Species(s)));
        Expr::prod(c, f)
    }

    /// A minimal well-formed tape to mutate in the validate tests:
    /// r0 = y0*k0; r1 = r0 + y1; store both outputs.
    fn valid_tape() -> Tape {
        Tape {
            instrs: vec![
                Instr::Mul {
                    dst: 0,
                    a: Operand::Species(0),
                    b: Operand::Rate(0),
                },
                Instr::Add {
                    dst: 1,
                    a: Operand::Reg(0),
                    b: Operand::Species(1),
                },
                Instr::Store {
                    idx: 0,
                    a: Operand::Reg(1),
                },
                Instr::Store {
                    idx: 1,
                    a: Operand::Reg(0),
                },
            ],
            n_regs: 2,
            n_species: 2,
            n_rates: 1,
        }
    }

    #[test]
    fn validate_accepts_well_formed_tapes() {
        assert_eq!(valid_tape().validate(), Ok(()));
        // Lowered + compacted production tapes validate too.
        let f = forest(vec![
            Expr::sum(vec![term(2.0, 0, &[0, 1]), term(-1.0, 1, &[1])]),
            term(-2.0, 0, &[0, 1]),
        ]);
        let tape = compact_registers(&lower(&f));
        assert_eq!(tape.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_bounds_operands() {
        let mut t = valid_tape();
        t.instrs[1] = Instr::Add {
            dst: 1,
            a: Operand::Reg(0),
            b: Operand::Species(9),
        };
        assert!(t.validate().unwrap_err().contains("y[9] out of bounds"));

        let mut t = valid_tape();
        t.instrs[0] = Instr::Mul {
            dst: 0,
            a: Operand::Species(0),
            b: Operand::Rate(7),
        };
        assert!(t.validate().unwrap_err().contains("k[7] out of bounds"));

        let mut t = valid_tape();
        t.instrs[1] = Instr::Add {
            dst: 5,
            a: Operand::Reg(0),
            b: Operand::Species(1),
        };
        assert!(t.validate().unwrap_err().contains("r5 out of bounds"));
    }

    #[test]
    fn validate_rejects_read_before_write() {
        let mut t = valid_tape();
        t.instrs[1] = Instr::Add {
            dst: 1,
            a: Operand::Reg(1),
            b: Operand::Species(1),
        };
        assert!(t.validate().unwrap_err().contains("r1 read before write"));
    }

    #[test]
    fn validate_rejects_store_out_of_range() {
        let mut t = valid_tape();
        t.instrs[2] = Instr::Store {
            idx: 2,
            a: Operand::Reg(1),
        };
        assert!(t
            .validate()
            .unwrap_err()
            .contains("store index 2 out of bounds"));
    }

    #[test]
    fn validate_rejects_dead_copy() {
        // The copy into r1 is overwritten by the Add without ever being
        // read.
        let t = Tape {
            instrs: vec![
                Instr::Copy {
                    dst: 1,
                    a: Operand::Species(0),
                },
                Instr::Add {
                    dst: 1,
                    a: Operand::Species(0),
                    b: Operand::Species(1),
                },
                Instr::Store {
                    idx: 0,
                    a: Operand::Reg(1),
                },
                Instr::Store {
                    idx: 1,
                    a: Operand::Species(0),
                },
            ],
            n_regs: 2,
            n_species: 2,
            n_rates: 1,
        };
        assert!(t.validate().unwrap_err().contains("dead copy"));

        // A trailing copy that nothing reads is dead too.
        let t = Tape {
            instrs: vec![
                Instr::Store {
                    idx: 0,
                    a: Operand::Species(0),
                },
                Instr::Copy {
                    dst: 0,
                    a: Operand::Species(0),
                },
            ],
            n_regs: 1,
            n_species: 1,
            n_rates: 0,
        };
        assert!(t.validate().unwrap_err().contains("dead copy"));
    }

    #[test]
    fn validate_program_tracks_writes_across_tapes() {
        let mut pair0 = valid_tape();
        pair0.instrs.truncate(3); // keep: r0, r1 defined; store idx 0
        let pair1 = Tape {
            // Reads r0 written by the first tape; stores its single
            // output at rebased index 0.
            instrs: vec![Instr::Store {
                idx: 0,
                a: Operand::Reg(0),
            }],
            n_regs: 2,
            n_species: 2,
            n_rates: 1,
        };
        assert_eq!(validate_program(&[(&pair0, 2), (&pair1, 1)]), Ok(()));
        // Alone, the second tape reads an unwritten register.
        assert!(validate_program(&[(&pair1, 1)])
            .unwrap_err()
            .contains("read before write"));
    }

    fn forest(rhs: Vec<Expr>) -> ExprForest {
        // Fixtures freely reference species beyond the output count as
        // pure inputs, so size the species space to cover them.
        let mut n = rhs.len();
        for e in &rhs {
            max_species_bound(e, &mut n);
        }
        ExprForest {
            temps: vec![],
            rhs,
            n_species: n,
            n_rates: 8,
        }
    }

    fn max_species_bound(e: &Expr, n: &mut usize) {
        match e {
            Expr::Species(i) => *n = (*n).max(*i as usize + 1),
            Expr::Prod(_, fs) => fs.iter().for_each(|f| max_species_bound(f, n)),
            Expr::Sum(cs) => cs.iter().for_each(|c| max_species_bound(c, n)),
            _ => {}
        }
    }

    fn check_tape_matches_forest(f: &ExprForest, rates: &[f64], y: &[f64]) {
        let tape = lower(f);
        let mut expect = vec![0.0; f.rhs.len()];
        f.eval_into(rates, y, &mut expect);
        let mut got = vec![0.0; f.rhs.len()];
        tape.eval(rates, y, &mut got);
        for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "eq {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn simple_decay() {
        // dA/dt = -k0*A
        let f = forest(vec![term(-1.0, 0, &[0])]);
        let tape = lower(&f);
        // one Mul + one Neg + Store
        assert_eq!(tape.op_counts(), OpCounts { mults: 1, adds: 1 });
        let mut ydot = vec![0.0];
        tape.eval(&[2.0], &[3.0], &mut ydot);
        assert_eq!(ydot[0], -6.0);
    }

    #[test]
    fn sub_absorbs_signs() {
        // k0*A - k1*B: 2 muls, 1 sub, no negs
        let f = forest(vec![Expr::sum(vec![
            term(1.0, 0, &[0]),
            term(-1.0, 1, &[0]),
        ])]);
        let tape = lower(&f);
        assert_eq!(tape.op_counts(), OpCounts { mults: 2, adds: 1 });
        assert!(tape.instrs.iter().any(|i| matches!(i, Instr::Sub { .. })));
        assert!(!tape.instrs.iter().any(|i| matches!(i, Instr::Neg { .. })));
        check_tape_matches_forest(&f, &[2.0, 5.0], &[3.0]);
    }

    #[test]
    fn all_negative_sum() {
        // -k0*A - k1*B = -(k0*A + k1*B): adds then one neg
        let f = forest(vec![Expr::sum(vec![
            term(-1.0, 0, &[0]),
            term(-1.0, 1, &[0]),
        ])]);
        let tape = lower(&f);
        assert_eq!(tape.op_counts(), OpCounts { mults: 2, adds: 2 });
        check_tape_matches_forest(&f, &[2.0, 5.0], &[3.0]);
    }

    #[test]
    fn tape_op_counts_match_forest_cost_model() {
        let f = forest(vec![
            Expr::sum(vec![term(2.0, 0, &[0, 1]), term(1.0, 1, &[2])]),
            term(-3.0, 2, &[1, 1]),
        ]);
        let tape = lower(&f);
        let fc = f.op_counts();
        let tc = tape.op_counts();
        assert_eq!(tc.mults, fc.mults);
        // Neg for the leading -3 coeff product counts as one extra add-op.
        assert!(tc.adds >= fc.adds);
        check_tape_matches_forest(&f, &[1.1, 2.2, 3.3], &[0.5, 0.7, 0.9]);
    }

    #[test]
    fn temps_computed_once() {
        let f = forest(vec![
            term(-1.0, 0, &[0, 1]),
            term(-1.0, 0, &[0, 1]),
            term(1.0, 0, &[0, 1]),
        ]);
        let optimized = cse_forest(&f, CseOptions::default());
        let tape = lower(&optimized);
        assert_eq!(tape.op_counts().mults, 2);
        check_tape_matches_forest(&optimized, &[2.0], &[3.0, 5.0, 0.0]);
    }

    #[test]
    fn zero_rhs_stores_constant() {
        let f = forest(vec![Expr::constant(0.0)]);
        let tape = lower(&f);
        let mut ydot = vec![99.0];
        tape.eval(&[], &[0.0], &mut ydot);
        assert_eq!(ydot[0], 0.0);
        assert_eq!(tape.op_counts(), OpCounts::default());
    }

    #[test]
    fn scratch_reuse() {
        let f = forest(vec![term(1.0, 0, &[0])]);
        let tape = lower(&f);
        let mut regs = Vec::new();
        let mut ydot = vec![0.0];
        tape.eval_with_scratch(&[2.0], &[3.0], &mut ydot, &mut regs);
        assert_eq!(ydot[0], 6.0);
        tape.eval_with_scratch(&[2.0], &[4.0], &mut ydot, &mut regs);
        assert_eq!(ydot[0], 8.0);
    }

    #[test]
    fn register_compaction_preserves_semantics_and_shrinks() {
        use crate::cse::{cse_forest, CseOptions};
        use crate::distopt::distribute_forest;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..20 {
            let n_eq = rng.gen_range(2..6);
            let f = forest(
                (0..n_eq)
                    .map(|_| {
                        Expr::sum(
                            (0..rng.gen_range(1..7))
                                .map(|_| {
                                    let sp: Vec<u32> = (0..rng.gen_range(1..4))
                                        .map(|_| rng.gen_range(0..6))
                                        .collect();
                                    term(rng.gen_range(1..3) as f64, rng.gen_range(0..3), &sp)
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            );
            let optimized = cse_forest(&distribute_forest(&f), CseOptions::default());
            let tape = lower(&optimized);
            let compact = compact_registers(&tape);
            assert!(compact.n_regs <= tape.n_regs);
            assert_eq!(compact.len(), tape.len());
            assert_eq!(compact.op_counts(), tape.op_counts());
            let rates: Vec<f64> = (0..8).map(|_| rng.gen_range(0.1..2.0)).collect();
            let y: Vec<f64> = (0..6).map(|_| rng.gen_range(0.1..2.0)).collect();
            let mut a = vec![0.0; n_eq];
            let mut b = vec![0.0; n_eq];
            tape.eval(&rates, &y, &mut a);
            compact.eval(&rates, &y, &mut b);
            assert_eq!(a, b, "compaction changed results");
        }
    }

    #[test]
    fn compaction_handles_squared_operands() {
        // x*x reads the same register twice at its last use; the slot must
        // be released exactly once.
        let f = forest(vec![Expr::prod(
            1.0,
            vec![
                Expr::sum(vec![Expr::Species(0), Expr::Species(1)]),
                Expr::sum(vec![Expr::Species(0), Expr::Species(1)]),
            ],
        )]);
        let tape = lower(&f);
        let compact = compact_registers(&tape);
        let mut a = vec![0.0];
        let mut b = vec![0.0];
        tape.eval(&[], &[2.0, 3.0], &mut a);
        compact.eval(&[], &[2.0, 3.0], &mut b);
        assert_eq!(a, b);
        assert_eq!(a[0], 25.0);
    }

    #[test]
    fn compaction_reuses_slots_in_long_chains() {
        // A long sum: SSA takes ~n registers, compaction needs O(1).
        let f = forest(vec![Expr::sum(
            (0..64).map(|i| term(1.0, 0, &[i])).collect(),
        )]);
        let tape = lower(&f);
        assert!(tape.n_regs >= 64);
        let compact = compact_registers(&tape);
        assert!(
            compact.n_regs <= 4,
            "expected O(1) slots, got {}",
            compact.n_regs
        );
    }

    #[test]
    fn copy_forwarding_drops_vn_copies() {
        use crate::generic::{generic_compile, GenericOptions};
        // Duplicate products inside one equation -> VN emits Copies ->
        // forwarding removes them. (Direct Sum construction keeps the
        // duplicates; no store intervenes, so the alias barrier does not
        // block the match.)
        let f = forest(vec![Expr::Sum(vec![
            term(1.0, 0, &[0, 1]),
            term(1.0, 0, &[0, 1]),
            term(2.0, 0, &[0, 1]),
        ])]);
        let ssa = lower(&f);
        let vn = generic_compile(
            &ssa,
            GenericOptions {
                opt_level: 4,
                memory_budget: usize::MAX,
            },
        )
        .unwrap();
        assert!(vn
            .tape
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Copy { .. })));
        let fwd = forward_copies(&vn.tape);
        assert!(!fwd.instrs.iter().any(|i| matches!(i, Instr::Copy { .. })));
        assert!(fwd.len() < vn.tape.len());
        let mut a = vec![0.0; 1];
        let mut b = vec![0.0; 1];
        ssa.eval(&[2.0], &[3.0, 5.0], &mut a);
        compact_registers(&fwd).eval(&[2.0], &[3.0, 5.0], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn compaction_propagates_vn_copies() {
        use crate::generic::{generic_compile, GenericOptions};
        let f = forest(vec![Expr::Sum(vec![
            term(1.0, 0, &[0, 1]),
            term(1.0, 0, &[0, 1]),
            term(2.0, 0, &[0, 1]),
        ])]);
        let ssa = lower(&f);
        let vn = generic_compile(
            &ssa,
            GenericOptions {
                opt_level: 4,
                memory_budget: usize::MAX,
            },
        )
        .unwrap();
        assert!(vn.tape.instrs.iter().any(|i| matches!(
            i,
            Instr::Copy {
                a: Operand::Reg(_),
                ..
            }
        )));
        // compact_registers alone (no forward_copies pre-pass) must now
        // absorb the register-to-register copies via slot aliasing.
        let compact = compact_registers(&vn.tape);
        assert!(!compact.instrs.iter().any(|i| matches!(
            i,
            Instr::Copy {
                a: Operand::Reg(_),
                ..
            }
        )));
        assert!(compact.len() < vn.tape.len());
        let mut a = vec![0.0; 1];
        let mut b = vec![0.0; 1];
        ssa.eval(&[2.0], &[3.0, 5.0], &mut a);
        compact.eval(&[2.0], &[3.0, 5.0], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn compaction_keeps_copies_on_register_reuse() {
        // Register 0 is written twice: aliasing the copy would read the
        // *second* value, so the copy must be materialized.
        let tape = Tape {
            instrs: vec![
                Instr::Mul {
                    dst: 0,
                    a: Operand::Species(0),
                    b: Operand::Rate(0),
                },
                Instr::Copy {
                    dst: 1,
                    a: Operand::Reg(0),
                },
                Instr::Mul {
                    dst: 0,
                    a: Operand::Species(1),
                    b: Operand::Rate(0),
                },
                Instr::Store {
                    idx: 0,
                    a: Operand::Reg(1),
                },
                Instr::Store {
                    idx: 1,
                    a: Operand::Reg(0),
                },
            ],
            n_regs: 2,
            n_species: 2,
            n_rates: 1,
        };
        let compact = compact_registers(&tape);
        assert!(compact
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Copy { .. })));
        let mut a = vec![0.0; 2];
        let mut b = vec![0.0; 2];
        tape.eval(&[2.0], &[3.0, 5.0], &mut a);
        compact.eval(&[2.0], &[3.0, 5.0], &mut b);
        assert_eq!(a, b);
        assert_eq!(a, vec![6.0, 10.0]);
    }

    #[test]
    fn split_lowering_matches_monolithic() {
        // t0 shared by a primary and a secondary output; t1 secondary-only.
        let f = ExprForest {
            temps: vec![
                Expr::prod(1.0, vec![Expr::Rate(0), Expr::Species(0), Expr::Species(1)]),
                Expr::prod(1.0, vec![Expr::Rate(1), Expr::Species(1)]),
            ],
            rhs: vec![
                Expr::prod(-1.0, vec![Expr::Temp(crate::expr::TempId(0))]),
                Expr::Temp(crate::expr::TempId(0)),
                // secondary outputs
                Expr::sum(vec![
                    Expr::Temp(crate::expr::TempId(0)),
                    Expr::Temp(crate::expr::TempId(1)),
                ]),
                Expr::Temp(crate::expr::TempId(1)),
            ],
            n_species: 2,
            n_rates: 2,
        };
        let mono = lower(&f);
        let (first, second) = lower_split(&f, 2);
        let (first, second) = compact_registers_pair(&first, &second);
        assert_eq!(first.n_regs, second.n_regs);
        // t0's product must not be recomputed by the secondary tape.
        assert_eq!(
            first.op_counts().total() + second.op_counts().total(),
            mono.op_counts().total()
        );
        let rates = [2.0, 3.0];
        let y = [5.0, 7.0];
        let mut expect = vec![0.0; 4];
        mono.eval(&rates, &y, &mut expect);
        let mut out1 = vec![0.0; 2];
        let mut out2 = vec![0.0; 2];
        let mut regs = Vec::new();
        first.eval_with_scratch(&rates, &y, &mut out1, &mut regs);
        second.eval_with_scratch(&rates, &y, &mut out2, &mut regs);
        assert_eq!(out1, expect[..2].to_vec());
        assert_eq!(out2, expect[2..].to_vec());
    }

    #[test]
    fn split_lowering_skips_unreferenced_temps() {
        let f = ExprForest {
            temps: vec![
                Expr::prod(1.0, vec![Expr::Rate(0), Expr::Species(0), Expr::Species(1)]),
                // Dead temp: referenced by nothing.
                Expr::prod(1.0, vec![Expr::Rate(1), Expr::Species(0), Expr::Species(1)]),
            ],
            rhs: vec![
                Expr::Temp(crate::expr::TempId(0)),
                Expr::prod(2.0, vec![Expr::Temp(crate::expr::TempId(0))]),
            ],
            n_species: 2,
            n_rates: 2,
        };
        let (first, second) = lower_split(&f, 1);
        let total = first.op_counts().total() + second.op_counts().total();
        // 2 muls for t0, 1 mul for the 2* scaling; the dead temp's 2 muls
        // must not appear.
        assert_eq!(total, 3);
    }

    #[test]
    fn species_dependencies_tracked_through_temps() {
        // eq0 = k0*y0*y1 ; eq1 = k1*y2 ; shared temp does not leak deps.
        let f = ExprForest {
            temps: vec![Expr::prod(
                1.0,
                vec![Expr::Rate(0), Expr::Species(0), Expr::Species(1)],
            )],
            rhs: vec![
                Expr::Temp(crate::expr::TempId(0)),
                Expr::prod(1.0, vec![Expr::Rate(1), Expr::Species(2)]),
            ],
            n_species: 3,
            n_rates: 2,
        };
        let tape = lower(&f);
        let deps = species_dependencies(&tape);
        assert_eq!(deps[0], vec![0, 1]);
        assert_eq!(deps[1], vec![2]);
        // Compaction must not change the answer.
        let deps2 = species_dependencies(&compact_registers(&tape));
        assert_eq!(deps, deps2);
    }

    #[test]
    fn species_dependencies_constant_rhs_empty() {
        let f = forest(vec![Expr::constant(0.0)]);
        let deps = species_dependencies(&lower(&f));
        assert!(deps[0].is_empty());
    }

    #[test]
    fn copy_chains_flatten() {
        use crate::tape::{Instr, Operand, Tape};
        let tape = Tape {
            instrs: vec![
                Instr::Mul {
                    dst: 0,
                    a: Operand::Species(0),
                    b: Operand::Rate(0),
                },
                Instr::Copy {
                    dst: 1,
                    a: Operand::Reg(0),
                },
                Instr::Copy {
                    dst: 2,
                    a: Operand::Reg(1),
                },
                Instr::Store {
                    idx: 0,
                    a: Operand::Reg(2),
                },
            ],
            n_regs: 3,
            n_species: 1,
            n_rates: 1,
        };
        let fwd = forward_copies(&tape);
        assert_eq!(fwd.len(), 2);
        let mut out = vec![0.0];
        fwd.eval(&[3.0], &[4.0], &mut out);
        assert_eq!(out[0], 12.0);
    }

    #[test]
    fn full_pipeline_tape_semantics() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..30 {
            let n_eq = rng.gen_range(2..6);
            let f = forest(
                (0..n_eq)
                    .map(|_| {
                        Expr::sum(
                            (0..rng.gen_range(1..6))
                                .map(|_| {
                                    let sp: Vec<u32> = (0..rng.gen_range(1..4))
                                        .map(|_| rng.gen_range(0..6))
                                        .collect();
                                    term(rng.gen_range(1..3) as f64, rng.gen_range(0..3), &sp)
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            );
            let optimized = cse_forest(&distribute_forest(&f), CseOptions::default());
            let rates: Vec<f64> = (0..8).map(|_| rng.gen_range(0.1..2.0)).collect();
            let y: Vec<f64> = (0..6).map(|_| rng.gen_range(0.1..2.0)).collect();
            let tape = lower(&optimized);
            let mut expect = vec![0.0; n_eq];
            f.eval_into(&rates, &y, &mut expect);
            let mut got = vec![0.0; n_eq];
            tape.eval(&rates, &y, &mut got);
            for (a, b) in expect.iter().zip(&got) {
                assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    // --- reroll -----------------------------------------------------------

    /// A hand-built tape with an obvious rerollable run: 6 stanzas of
    /// `r0 = k[j] * y[a]; ydot[j] = r0` with irregular species indices.
    fn stanza_tape() -> Tape {
        let species = [0u32, 3, 1, 7, 2, 5];
        let mut instrs = Vec::new();
        for (j, &sp) in species.iter().enumerate() {
            instrs.push(Instr::Mul {
                dst: 0,
                a: Operand::Rate(j as u32),
                b: Operand::Species(sp),
            });
            instrs.push(Instr::Store {
                idx: j as u32,
                a: Operand::Reg(0),
            });
        }
        Tape {
            instrs,
            n_regs: 1,
            n_species: 8,
            n_rates: 6,
        }
    }

    fn loose() -> RerollOptions {
        RerollOptions {
            max_body: 64,
            min_trips: 2,
            min_savings: 1,
        }
    }

    #[test]
    fn reroll_detects_stanza_runs() {
        let tape = stanza_tape();
        let rolled = reroll(&tape, &loose());
        assert_eq!(rolled.validate(&tape), Ok(()));
        assert_eq!(rolled.loop_count(), 1);
        let lp = rolled.loops[0];
        assert_eq!((lp.start, lp.body_len, lp.trips), (0, 2, 6));
        assert_eq!(rolled.rerolled_instrs(), 10);
        assert_eq!(rolled.rolled_len(), 2);
    }

    #[test]
    fn reroll_slot_patterns_classify_fixed_affine_table() {
        let tape = stanza_tape();
        let rolled = reroll(&tape, &loose());
        let patterns = loop_slot_patterns(&tape, &rolled.loops[0]);
        // Mul: dst fixed, rate affine (+1), species a table.
        assert_eq!(patterns[0][0], SlotPattern::Fixed);
        assert_eq!(patterns[0][1], SlotPattern::Affine { stride: 1 });
        assert_eq!(patterns[0][2], SlotPattern::Table(vec![0, 3, 1, 7, 2, 5]));
        // Store: idx affine, source register fixed.
        assert_eq!(patterns[1][0], SlotPattern::Affine { stride: 1 });
        assert_eq!(patterns[1][1], SlotPattern::Fixed);
        // Round trip: resolving every trip reproduces the flat instrs.
        let lp = rolled.loops[0];
        for t in 0..lp.trips {
            for (p, pats) in patterns.iter().enumerate() {
                assert_eq!(
                    resolve_instr(&tape.instrs[lp.start + p], pats, t),
                    tape.instrs[lp.start + t * lp.body_len + p]
                );
            }
        }
    }

    #[test]
    fn reroll_const_payloads_get_const_tables() {
        let mut instrs = Vec::new();
        for (j, c) in [2.0f64, 3.5, -1.25, 0.75].iter().enumerate() {
            instrs.push(Instr::Mul {
                dst: 0,
                a: Operand::Species(j as u32),
                b: Operand::Const(*c),
            });
            instrs.push(Instr::Store {
                idx: j as u32,
                a: Operand::Reg(0),
            });
        }
        let tape = Tape {
            instrs,
            n_regs: 1,
            n_species: 4,
            n_rates: 0,
        };
        let rolled = reroll(&tape, &loose());
        assert_eq!(rolled.loop_count(), 1);
        let patterns = loop_slot_patterns(&tape, &rolled.loops[0]);
        assert_eq!(
            patterns[0][2],
            SlotPattern::ConstTable(vec![2.0, 3.5, -1.25, 0.75])
        );
    }

    #[test]
    fn reroll_degenerate_and_thresholds() {
        // No repetition: the degenerate straight view.
        let tape = valid_tape();
        let rolled = reroll(&tape, &RerollOptions::default());
        assert_eq!(rolled.loops, Vec::new());
        assert_eq!(rolled.rolled_len(), tape.len());
        assert_eq!(rolled.validate(&tape), Ok(()));
        // min_savings filters small runs out.
        let tape = stanza_tape();
        let strict = RerollOptions {
            min_savings: 50,
            ..RerollOptions::default()
        };
        assert_eq!(reroll(&tape, &strict).loop_count(), 0);
    }

    #[test]
    fn rolled_validate_rejects_bad_views() {
        let tape = stanza_tape();
        let mut rolled = reroll(&tape, &loose());
        rolled.loops[0].trips += 10; // runs past the end
        assert!(rolled
            .validate(&tape)
            .unwrap_err()
            .contains("past the tape"));

        let bad = RolledTape {
            len: tape.len(),
            loops: vec![TapeLoop {
                start: 0, // wrong period: trip 1 opens with a Store
                body_len: 3,
                trips: 2,
            }],
        };
        assert!(bad.validate(&tape).unwrap_err().contains("does not match"));

        let stale = RolledTape::straight(3);
        assert!(stale.validate(&tape).unwrap_err().contains("built for"));
    }

    #[test]
    fn eval_rolled_is_bit_identical_on_production_tapes() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for trial in 0..30 {
            let n_eq = 4 + (trial % 5);
            let f = forest(
                (0..n_eq)
                    .map(|_| {
                        Expr::sum(
                            (0..rng.gen_range(1..6))
                                .map(|_| {
                                    let sp: Vec<u32> = (0..rng.gen_range(1..4))
                                        .map(|_| rng.gen_range(0..6))
                                        .collect();
                                    term(rng.gen_range(1..3) as f64, rng.gen_range(0..3), &sp)
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            );
            let tape = compact_registers(&lower(&f));
            let rolled = reroll(&tape, &loose());
            assert_eq!(rolled.validate(&tape), Ok(()));
            let rates: Vec<f64> = (0..8).map(|_| rng.gen_range(0.1..2.0)).collect();
            let y: Vec<f64> = (0..6).map(|_| rng.gen_range(0.1..2.0)).collect();
            let mut flat = vec![0.0; n_eq];
            tape.eval(&rates, &y, &mut flat);
            let mut rolled_out = vec![0.0; n_eq];
            let mut regs = Vec::new();
            tape.eval_rolled_with_scratch(&rolled, &rates, &y, &mut rolled_out, &mut regs);
            assert_eq!(
                flat.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                rolled_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "rolled interpreter diverged on trial {trial}"
            );
        }
    }

    #[test]
    fn rolled_render_lists_loops_and_patterns() {
        let tape = stanza_tape();
        let rolled = reroll(&tape, &loose());
        let dump = rolled.render(&tape);
        assert!(dump.contains("; rolled: 1 loops"));
        assert!(dump.contains("loop @0 trips=6 body=2"));
        assert!(dump.contains("tab"));
    }
}
