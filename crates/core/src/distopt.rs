//! The distributive optimization (paper §3.2, Figure 6).
//!
//! Rewrites each equation's sum-of-products by repeatedly factoring out
//! the term that appears in the most products:
//!
//! ```text
//! k1*B*C + k1*B*D + k1*E*F
//!   → k1 * (B*C + B*D + E*F)          (factor k1)
//!   → k1 * (B*(C + D) + E*F)          (recursive factor B)
//! ```
//!
//! reducing six multiplications and two additions to three
//! multiplications and two additions.

use std::collections::HashMap;

use crate::expr::{Expr, ExprForest};

/// Apply the distributive optimization to every equation of the forest.
pub fn distribute_forest(forest: &ExprForest) -> ExprForest {
    ExprForest {
        temps: forest.temps.iter().map(distribute_expr).collect(),
        rhs: forest.rhs.iter().map(distribute_expr).collect(),
        n_species: forest.n_species,
        n_rates: forest.n_rates,
    }
}

/// Apply the distributive optimization to a single expression. Only flat
/// sums of products are transformed; anything else is recursed into.
pub fn distribute_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Sum(children) => {
            // Partition into factorable products and other children.
            let mut products: Vec<(f64, Vec<Expr>)> = Vec::new();
            let mut others: Vec<Expr> = Vec::new();
            for ch in children {
                match ch {
                    Expr::Prod(c, factors) if factors.iter().all(Expr::is_atom) => {
                        products.push((c.0, factors.clone()));
                    }
                    atom if atom.is_atom() => {
                        products.push((1.0, vec![atom.clone()]));
                    }
                    nested => others.push(distribute_expr(nested)),
                }
            }
            let mut out = dist_opt(products);
            out.extend(others);
            Expr::sum(out)
        }
        Expr::Prod(c, factors) => Expr::prod(c.0, factors.iter().map(distribute_expr).collect()),
        atom => atom.clone(),
    }
}

/// Figure 6's `DistOpt`: returns the children of the optimized sum.
fn dist_opt(mut products: Vec<(f64, Vec<Expr>)>) -> Vec<Expr> {
    let mut result: Vec<Expr> = Vec::new();
    loop {
        if products.is_empty() {
            return result;
        }
        // mostFrequent(T): the factor contained in the most products
        // (each product counts once per distinct factor), tie-broken by
        // canonical order for determinism.
        let mut counts: HashMap<&Expr, usize> = HashMap::new();
        for (_, factors) in &products {
            let mut seen: Vec<&Expr> = Vec::with_capacity(factors.len());
            for f in factors {
                if !seen.contains(&f) {
                    seen.push(f);
                    *counts.entry(f).or_insert(0) += 1;
                }
            }
        }
        let Some((k, c)) = counts
            .into_iter()
            .max_by(|(ka, ca), (kb, cb)| ca.cmp(cb).then_with(|| kb.cmp(ka)))
        else {
            // Only coefficient-only products remain.
            result.extend(
                products
                    .drain(..)
                    .map(|(c, factors)| Expr::prod(c, factors)),
            );
            return result;
        };
        if c <= 1 {
            // No factor is shared: emit the remaining products unchanged.
            result.extend(
                products
                    .drain(..)
                    .map(|(c, factors)| Expr::prod(c, factors)),
            );
            return result;
        }
        let k = k.clone();
        // P_k = products containing k; divide each by one occurrence of k.
        let (with_k, without_k): (Vec<_>, Vec<_>) = products
            .into_iter()
            .partition(|(_, factors)| factors.contains(&k));
        products = without_k;
        let quotients: Vec<(f64, Vec<Expr>)> = with_k
            .into_iter()
            .map(|(c, mut factors)| {
                let pos = factors.iter().position(|f| f == &k).expect("k in product");
                factors.remove(pos);
                (c, factors)
            })
            .collect();
        // k * DistOpt(Σ p/k), recursively factoring the quotient sum.
        let inner = Expr::sum(dist_opt(quotients));
        result.push(Expr::prod(1.0, vec![k, inner]));
        // The while loop continues on Γ (the products without k).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_odegen::OpCounts;

    fn term(c: f64, rate: u32, species: &[u32]) -> Expr {
        let mut f = vec![Expr::Rate(rate)];
        f.extend(species.iter().map(|&s| Expr::Species(s)));
        Expr::prod(c, f)
    }

    fn assert_equivalent(a: &Expr, b: &Expr, rates: &[f64], y: &[f64]) {
        let va = a.eval(rates, y, &[]);
        let vb = b.eval(rates, y, &[]);
        assert!(
            (va - vb).abs() <= 1e-9 * va.abs().max(vb.abs()).max(1.0),
            "{a} = {va} but {b} = {vb}"
        );
    }

    #[test]
    fn paper_fig6_example() {
        // k1*B*C + k1*B*D + k1*E*F -> k1*(B*(C+D) + E*F)
        // B=1 C=2 D=3 E=4 F=5
        let e = Expr::sum(vec![
            term(1.0, 1, &[1, 2]),
            term(1.0, 1, &[1, 3]),
            term(1.0, 1, &[4, 5]),
        ]);
        assert_eq!(e.op_counts(), OpCounts { mults: 6, adds: 2 });
        let d = distribute_expr(&e);
        assert_eq!(d.op_counts(), OpCounts { mults: 3, adds: 2 }, "{d}");
        let rates = [0.0, 2.0];
        let y = [0.0, 3.0, 5.0, 7.0, 11.0, 13.0];
        assert_equivalent(&e, &d, &rates, &y);
    }

    #[test]
    fn unshared_products_pass_through() {
        let e = Expr::sum(vec![term(1.0, 1, &[1]), term(1.0, 2, &[2])]);
        let d = distribute_expr(&e);
        assert_eq!(d, e);
    }

    #[test]
    fn gamma_tail_handled() {
        // k1*A + k1*B + k2*C + k2*D -> k1*(A+B) + k2*(C+D)
        let e = Expr::sum(vec![
            term(1.0, 1, &[1]),
            term(1.0, 1, &[2]),
            term(1.0, 2, &[3]),
            term(1.0, 2, &[4]),
        ]);
        let d = distribute_expr(&e);
        assert_eq!(d.op_counts(), OpCounts { mults: 2, adds: 3 }, "{d}");
        assert_equivalent(&e, &d, &[0.0, 2.0, 3.0], &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn coefficients_preserved() {
        // 2*k*A + 3*k*B -> k*(2A + 3B)
        let e = Expr::sum(vec![term(2.0, 0, &[1]), term(3.0, 0, &[2])]);
        let d = distribute_expr(&e);
        assert_equivalent(&e, &d, &[5.0], &[0.0, 7.0, 11.0]);
        // factored: k * (2*y1 + 3*y2): 3 mults (was 4)
        assert_eq!(d.op_counts().mults, 3);
    }

    #[test]
    fn squared_species_factors_once_per_product() {
        // k*A*A + k*A*B -> k*(A*A + A*B) -> k*A*(A + B)
        let e = Expr::sum(vec![term(1.0, 0, &[1, 1]), term(1.0, 0, &[1, 2])]);
        let d = distribute_expr(&e);
        assert_eq!(d.op_counts(), OpCounts { mults: 2, adds: 1 }, "{d}");
        assert_equivalent(&e, &d, &[2.0], &[0.0, 3.0, 5.0]);
    }

    #[test]
    fn coefficient_only_quotient() {
        // k*A + 2*k -> k*(A + 2)
        let e = Expr::sum(vec![
            term(1.0, 0, &[1]),
            Expr::prod(2.0, vec![Expr::Rate(0)]),
        ]);
        let d = distribute_expr(&e);
        assert_equivalent(&e, &d, &[3.0], &[0.0, 4.0]);
        assert_eq!(d.op_counts().mults, 1, "{d}");
    }

    #[test]
    fn never_increases_ops() {
        // Randomized: distribution must never add operations.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let n_terms = rng.gen_range(1..10);
            let e = Expr::sum(
                (0..n_terms)
                    .map(|_| {
                        let rate = rng.gen_range(0..3);
                        let n_sp = rng.gen_range(1..4);
                        let sp: Vec<u32> = (0..n_sp).map(|_| rng.gen_range(0..5)).collect();
                        term(rng.gen_range(1..4) as f64, rate, &sp)
                    })
                    .collect(),
            );
            let d = distribute_expr(&e);
            let before = e.op_counts();
            let after = d.op_counts();
            assert!(
                after.total() <= before.total(),
                "ops grew: {e} ({before:?}) -> {d} ({after:?})"
            );
            let rates: Vec<f64> = (0..3).map(|_| rng.gen_range(0.1..3.0)).collect();
            let y: Vec<f64> = (0..5).map(|_| rng.gen_range(0.1..3.0)).collect();
            assert_equivalent(&e, &d, &rates, &y);
        }
    }

    #[test]
    fn forest_distribution() {
        let forest = ExprForest {
            temps: vec![],
            rhs: vec![Expr::sum(vec![term(1.0, 0, &[1]), term(1.0, 0, &[2])])],
            n_species: 3,
            n_rates: 1,
        };
        let out = distribute_forest(&forest);
        assert_eq!(out.op_counts().mults, 1);
    }
}
