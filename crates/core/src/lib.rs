//! # rms-core — the optimizing compiler (the paper's core contribution)
//!
//! Takes the ODE systems produced by `rms-odegen` — machine-generated
//! code whose largest basic blocks held ~3.3 million floating-point
//! operations in the paper — and removes their massive redundancy through
//! three domain-specific passes:
//!
//! 1. **Equation simplification** (§3.1, [`simplify`]): merge products
//!    differing only in constants;
//! 2. **Distributive optimization** (§3.2, Fig. 6, [`distopt`]): recursive
//!    factoring of the most frequent term;
//! 3. **Domain CSE** (§3.3, Fig. 7, [`cse`]): canonical-order,
//!    length-indexed exact and prefix matching with temporaries emitted
//!    write-before-read.
//!
//! The optimized forest lowers to an executable [`tape::Tape`] (our analog
//! of the generated C function) or to actual C text ([`emit_c`]). The
//! [`generic`] module models the *commercial* compiler of Table 1 — a
//! syntactic value-numbering optimizer with a memory budget that fails
//! with "lack of space" on exactly the paper's failure pattern.

#![warn(missing_docs)]

pub mod cse;
pub mod deriv;
pub mod distopt;
pub mod emit_c;
pub mod exec;
pub mod expr;
pub mod generic;
pub mod native;
pub mod pipeline;
pub mod simplify;
pub mod tape;

pub use cse::{cse_forest, CseOptions};
pub use deriv::{
    compile_jacobian, compile_sensitivity, differentiate_forest, differentiate_forest_sensitivity,
    JacobianRolled, JacobianTapes, SensitivityRolled, SensitivityTapes,
};
pub use distopt::{distribute_expr, distribute_forest};
pub use emit_c::{
    c_f64, emit_c, emit_kernel, emit_kernel_units, EmitOptions, EmittedKernel, KernelSpec,
    RolledViews, KERNEL_ABI_VERSION, KERNEL_LANES,
};
pub use exec::{ExecFrame, ExecInstr, ExecTape, FMA_CONTRACTS, LANES};
pub use expr::{Coeff, Expr, ExprForest, TempId};
pub use generic::{
    generic_compile, generic_compile_best_effort, GenericError, GenericOptions, GenericResult,
    IR_BYTES_PER_OP, PAPER_MEMORY_BUDGET,
};
pub use native::{
    compile_and_load, compile_and_load_units, compile_kernel, compile_kernel_units,
    probe_toolchain, CompileTiming, KernelMeta, NativeError, NativeKernel, Toolchain,
};
pub use pipeline::{
    optimize, optimize_traced, optimize_with_passes, CompiledOde, OptLevel, PassEvent, PassTrace,
    Passes, StageCounts,
};
pub use simplify::{simplify_expr, simplify_forest};
pub use tape::{
    compact_registers, compact_registers_multi, compact_registers_pair, forward_copies,
    loop_slot_patterns, lower, lower_split, lower_split_multi, reroll, resolve_instr,
    species_dependencies, validate_program, Instr, Operand, RerollOptions, RolledSegment,
    RolledTape, SlotPattern, Tape, TapeLoop,
};
