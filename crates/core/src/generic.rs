//! A model of the *commercial* (domain-blind) optimizing compiler.
//!
//! Table 1 of the paper includes a "with C compiler optimizations only"
//! row: the machine-generated C is fed to IBM's xlc at `-O4`, which
//! (a) achieves only modest improvement (case 2 runs in 82% of the
//! unoptimized time) because it cannot reassociate floating-point
//! expressions or exploit domain knowledge, and (b) **fails** on larger
//! inputs with "Compilation ended due to lack of space" once its IR
//! outgrows the 4.5 GB node memory.
//!
//! This module reproduces both behaviours mechanically: a local
//! value-numbering pass with a bounded table (the optimization), and a
//! per-instruction IR-memory model that grows with the optimization level
//! (the failure). The calibration constants are chosen so the paper-scale
//! test cases fail in exactly the pattern of Table 1 under a 4.5 GB
//! budget.

use std::collections::HashMap;

use crate::tape::{Instr, Operand, Tape};

/// xlc's default 4.5 GB compiler memory on the paper's thin nodes.
pub const PAPER_MEMORY_BUDGET: usize = 4_500_000_000;

/// IR bytes consumed per tape instruction at each `-O` level. Higher
/// levels build richer IR (SSA, dependence graphs, scheduling state), so
/// the same program costs more compiler memory — which is why xlc fails
/// *earlier* at `-O4` than at `-O0` in Table 1.
pub const IR_BYTES_PER_OP: [usize; 5] = [1_500, 3_000, 6_000, 12_000, 20_000];

/// Value-numbering table capacity per level (a window: the table is
/// flushed when full, modelling the compiler's bounded optimization
/// scope over multi-million-operation basic blocks).
const VN_WINDOW: [usize; 5] = [0, 256, 1_024, 4_096, 16_384];

/// Options for the generic compiler.
#[derive(Debug, Clone, Copy)]
pub struct GenericOptions {
    /// Optimization level 0–4 (mirrors `-O0`…`-O4`).
    pub opt_level: u8,
    /// Compiler memory budget in bytes.
    pub memory_budget: usize,
}

impl Default for GenericOptions {
    fn default() -> GenericOptions {
        GenericOptions {
            opt_level: 4,
            memory_budget: PAPER_MEMORY_BUDGET,
        }
    }
}

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenericError {
    /// "Compilation ended due to lack of space."
    OutOfSpace {
        /// IR bytes the compilation would need.
        needed: usize,
        /// Configured budget.
        budget: usize,
        /// Level at which the failure occurred.
        opt_level: u8,
    },
}

impl std::fmt::Display for GenericError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenericError::OutOfSpace {
                needed,
                budget,
                opt_level,
            } => write!(
                f,
                "Compilation ended due to lack of space (-O{opt_level}: needs {needed} bytes, budget {budget})"
            ),
        }
    }
}

impl std::error::Error for GenericError {}

/// Result of a successful generic compilation.
#[derive(Debug, Clone)]
pub struct GenericResult {
    /// The (possibly value-numbered) tape.
    pub tape: Tape,
    /// IR memory the compilation consumed under the model.
    pub ir_bytes: usize,
    /// Instructions eliminated by value numbering.
    pub eliminated: usize,
}

/// Compile a tape with the generic compiler model at the given level.
pub fn generic_compile(
    tape: &Tape,
    options: GenericOptions,
) -> Result<GenericResult, GenericError> {
    let per_op = IR_BYTES_PER_OP[options.opt_level.min(4) as usize];
    let needed = tape.len().saturating_mul(per_op);
    if needed > options.memory_budget {
        return Err(GenericError::OutOfSpace {
            needed,
            budget: options.memory_budget,
            opt_level: options.opt_level,
        });
    }
    let window = VN_WINDOW[options.opt_level.min(4) as usize];
    if window == 0 {
        return Ok(GenericResult {
            tape: tape.clone(),
            ir_bytes: needed,
            eliminated: 0,
        });
    }
    Ok(value_number(tape, window, needed, options.opt_level >= 2))
}

/// Try decreasing optimization levels until one fits the budget, the way
/// the authors "reduced the optimization level from O4 … on down to the
/// default … until the compilation succeeded". Returns the level used.
pub fn generic_compile_best_effort(
    tape: &Tape,
    memory_budget: usize,
) -> Result<(u8, GenericResult), GenericError> {
    let mut last_err = None;
    for level in (0..=4u8).rev() {
        match generic_compile(
            tape,
            GenericOptions {
                opt_level: level,
                memory_budget,
            },
        ) {
            Ok(result) => return Ok((level, result)),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one level attempted"))
}

/// Operand key with register operands resolved to value numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum OpKey {
    Val(u64),
    Species(u32),
    Rate(u32),
    Const(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ExprKey {
    Add(OpKey, OpKey),
    Sub(OpKey, OpKey),
    Mul(OpKey, OpKey),
    Neg(OpKey),
}

/// Local value numbering with a bounded table. Unlike the domain CSE this
/// never reassociates or reorders: it only recognizes *syntactically*
/// identical operations, which is all a conservative C compiler may do
/// with floating point.
///
/// The pass is sound on tapes with register reuse (post-compaction):
/// every register carries a monotonically increasing *value id*; table
/// hits are validated against the current value id of the holding
/// register, and an eliminated operation is replaced by a `Copy` (free in
/// the op-count model) rather than an alias, so liveness is untouched.
fn value_number(tape: &Tape, window: usize, ir_bytes: usize, commutative: bool) -> GenericResult {
    let mut out = Tape {
        instrs: Vec::with_capacity(tape.instrs.len()),
        n_regs: tape.n_regs,
        n_species: tape.n_species,
        n_rates: tape.n_rates,
    };
    let mut next_val: u64 = 0;
    // Current value id held by each register (fresh = undefined).
    let mut val: Vec<u64> = (0..tape.n_regs)
        .map(|_| {
            next_val += 1;
            next_val - 1
        })
        .collect();
    // ExprKey -> (register holding the value, value id it must still hold).
    let mut table: HashMap<ExprKey, (u32, u64)> = HashMap::new();
    let mut eliminated = 0usize;

    let keyed = |val: &[u64], op: Operand| -> OpKey {
        match op {
            Operand::Reg(r) => OpKey::Val(val[r as usize]),
            Operand::Species(i) => OpKey::Species(i),
            Operand::Rate(i) => OpKey::Rate(i),
            Operand::Const(v) => OpKey::Const(v.to_bits()),
        }
    };

    for instr in &tape.instrs {
        // Bounded table: flush when the window is exceeded, modelling the
        // limited lookback of a real compiler on enormous basic blocks.
        if table.len() >= window {
            table.clear();
        }
        match *instr {
            Instr::Add { dst, a, b } | Instr::Sub { dst, a, b } | Instr::Mul { dst, a, b } => {
                let (mut ka, mut kb) = (keyed(&val, a), keyed(&val, b));
                let is_comm = matches!(instr, Instr::Add { .. } | Instr::Mul { .. });
                if commutative && is_comm && kb < ka {
                    std::mem::swap(&mut ka, &mut kb);
                }
                let key = match instr {
                    Instr::Add { .. } => ExprKey::Add(ka, kb),
                    Instr::Sub { .. } => ExprKey::Sub(ka, kb),
                    Instr::Mul { .. } => ExprKey::Mul(ka, kb),
                    _ => unreachable!(),
                };
                match table.get(&key) {
                    Some(&(home, home_val)) if val[home as usize] == home_val => {
                        out.instrs.push(Instr::Copy {
                            dst,
                            a: Operand::Reg(home),
                        });
                        val[dst as usize] = home_val;
                        eliminated += 1;
                    }
                    stale => {
                        if stale.is_some() {
                            table.remove(&key);
                        }
                        out.instrs.push(*instr);
                        next_val += 1;
                        val[dst as usize] = next_val - 1;
                        table.insert(key, (dst, next_val - 1));
                    }
                }
            }
            Instr::Neg { dst, a } => {
                let key = ExprKey::Neg(keyed(&val, a));
                match table.get(&key) {
                    Some(&(home, home_val)) if val[home as usize] == home_val => {
                        out.instrs.push(Instr::Copy {
                            dst,
                            a: Operand::Reg(home),
                        });
                        val[dst as usize] = home_val;
                        eliminated += 1;
                    }
                    stale => {
                        if stale.is_some() {
                            table.remove(&key);
                        }
                        out.instrs.push(*instr);
                        next_val += 1;
                        val[dst as usize] = next_val - 1;
                        table.insert(key, (dst, next_val - 1));
                    }
                }
            }
            Instr::Copy { dst, a } => {
                out.instrs.push(*instr);
                val[dst as usize] = match a {
                    Operand::Reg(r) => val[r as usize],
                    _ => {
                        next_val += 1;
                        next_val - 1
                    }
                };
            }
            Instr::Store { .. } => {
                // Alias barrier: "the left and right hand sides of the
                // ODEs could appear to be aliased to the target C
                // compiler, preventing the target C compiler from
                // optimizing these expressions" (§3.3). A write through
                // `ydot` may alias the `y`/`k` loads under C rules, so a
                // conservative compiler invalidates every remembered
                // load-derived expression — this is what limits xlc to
                // the modest 18 % gain of Table 1's case 2.
                table.clear();
                out.instrs.push(*instr);
            }
        }
    }
    GenericResult {
        tape: out,
        ir_bytes,
        eliminated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, ExprForest};
    use crate::tape::lower;

    fn term(c: f64, rate: u32, species: &[u32]) -> Expr {
        let mut f = vec![Expr::Rate(rate)];
        f.extend(species.iter().map(|&s| Expr::Species(s)));
        Expr::prod(c, f)
    }

    fn forest(rhs: Vec<Expr>) -> ExprForest {
        // Fixtures reference species beyond the output count as pure
        // inputs; size the species space to cover them.
        fn bound(e: &Expr, n: &mut usize) {
            match e {
                Expr::Species(i) => *n = (*n).max(*i as usize + 1),
                Expr::Prod(_, fs) => fs.iter().for_each(|f| bound(f, n)),
                Expr::Sum(cs) => cs.iter().for_each(|c| bound(c, n)),
                _ => {}
            }
        }
        let mut n = rhs.len();
        for e in &rhs {
            bound(e, &mut n);
        }
        ExprForest {
            temps: vec![],
            rhs,
            n_species: n,
            n_rates: 4,
        }
    }

    #[test]
    fn o0_is_identity() {
        let tape = lower(&forest(vec![term(1.0, 0, &[0, 1])]));
        let result = generic_compile(
            &tape,
            GenericOptions {
                opt_level: 0,
                memory_budget: usize::MAX,
            },
        )
        .unwrap();
        assert_eq!(result.tape.len(), tape.len());
        assert_eq!(result.eliminated, 0);
    }

    #[test]
    fn vn_dedups_within_an_equation() {
        // One equation summing k0*y0*y1 three times (duplicate reaction
        // events before §3.1 runs): VN catches the repeats because no
        // store intervenes.
        let tape = lower(&forest(vec![Expr::sum(vec![
            term(1.0, 0, &[0, 1]),
            term(1.0, 0, &[0, 1]),
            term(1.0, 0, &[0, 1]),
        ])]));
        let before = tape.op_counts();
        let result = generic_compile(
            &tape,
            GenericOptions {
                opt_level: 4,
                memory_budget: usize::MAX,
            },
        )
        .unwrap();
        let after = result.tape.op_counts();
        assert!(after.mults < before.mults, "{before:?} -> {after:?}");
        assert_eq!(result.eliminated, 4);
        // semantics preserved
        let mut a = vec![0.0; 1];
        let mut b = vec![0.0; 1];
        tape.eval(&[2.0], &[3.0, 5.0], &mut a);
        result.tape.eval(&[2.0], &[3.0, 5.0], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn stores_are_alias_barriers() {
        // The same product in three *separate equations*: a store sits
        // between the repeats, so the conservative compiler (unable to
        // prove ydot does not alias y/k) must recompute — the paper's
        // stated reason xlc gains little on this code.
        let tape = lower(&forest(vec![
            term(1.0, 0, &[0, 1]),
            term(1.0, 0, &[0, 1]),
            term(1.0, 0, &[0, 1]),
        ]));
        let result = generic_compile(
            &tape,
            GenericOptions {
                opt_level: 4,
                memory_budget: usize::MAX,
            },
        )
        .unwrap();
        assert_eq!(result.eliminated, 0);
        assert_eq!(result.tape.op_counts(), tape.op_counts());
    }

    #[test]
    fn vn_cannot_reassociate() {
        // k0*(y0*y1) vs (k0*y0)*y1 lower to different instruction shapes;
        // the sums k0*y0*y1 + y2 and y2 + k0*y0*y1 are canonicalized by
        // *our* IR, so build tapes directly to show VN's syntactic limit.
        use crate::tape::{Instr, Operand, Tape};
        let tape = Tape {
            instrs: vec![
                // r0 = y0 * y1 ; r1 = k0 * r0        (k0*(y0*y1))
                Instr::Mul {
                    dst: 0,
                    a: Operand::Species(0),
                    b: Operand::Species(1),
                },
                Instr::Mul {
                    dst: 1,
                    a: Operand::Rate(0),
                    b: Operand::Reg(0),
                },
                // r2 = k0 * y0 ; r3 = r2 * y1        ((k0*y0)*y1)
                Instr::Mul {
                    dst: 2,
                    a: Operand::Rate(0),
                    b: Operand::Species(0),
                },
                Instr::Mul {
                    dst: 3,
                    a: Operand::Reg(2),
                    b: Operand::Species(1),
                },
                Instr::Store {
                    idx: 0,
                    a: Operand::Reg(1),
                },
                Instr::Store {
                    idx: 1,
                    a: Operand::Reg(3),
                },
            ],
            n_regs: 4,
            n_species: 2,
            n_rates: 1,
        };
        let result = generic_compile(
            &tape,
            GenericOptions {
                opt_level: 4,
                memory_budget: usize::MAX,
            },
        )
        .unwrap();
        // Nothing eliminated: equal values, different syntax.
        assert_eq!(result.eliminated, 0);
    }

    #[test]
    fn commutativity_only_at_higher_levels() {
        use crate::tape::{Instr, Operand, Tape};
        let tape = Tape {
            instrs: vec![
                Instr::Mul {
                    dst: 0,
                    a: Operand::Species(0),
                    b: Operand::Species(1),
                },
                Instr::Mul {
                    dst: 1,
                    a: Operand::Species(1),
                    b: Operand::Species(0),
                },
                Instr::Store {
                    idx: 0,
                    a: Operand::Reg(0),
                },
                Instr::Store {
                    idx: 1,
                    a: Operand::Reg(1),
                },
            ],
            n_regs: 2,
            n_species: 2,
            n_rates: 0,
        };
        let o1 = generic_compile(
            &tape,
            GenericOptions {
                opt_level: 1,
                memory_budget: usize::MAX,
            },
        )
        .unwrap();
        assert_eq!(o1.eliminated, 0);
        let o2 = generic_compile(
            &tape,
            GenericOptions {
                opt_level: 2,
                memory_budget: usize::MAX,
            },
        )
        .unwrap();
        assert_eq!(o2.eliminated, 1);
    }

    #[test]
    fn window_limits_elimination() {
        // Duplicate products separated by > window DISTINCT instructions
        // within ONE equation escape a small VN window but not a large
        // one. (Expr::sum would canonicalize the duplicates adjacent, so
        // build the jumbled order the generator could emit directly.)
        let mut children = vec![term(1.0, 0, &[0, 1])];
        for i in 0..300u32 {
            children.push(term(1.0, 1, &[2 + i, 302 + i, 602 + i]));
        }
        children.push(term(1.0, 0, &[0, 1])); // duplicate of the first
        let big = lower(&ExprForest {
            temps: vec![],
            rhs: vec![Expr::Sum(children)],
            n_species: 902,
            n_rates: 2,
        });
        let small_window = generic_compile(
            &big,
            GenericOptions {
                opt_level: 1, // window 256
                memory_budget: usize::MAX,
            },
        )
        .unwrap();
        let big_window = generic_compile(
            &big,
            GenericOptions {
                opt_level: 4, // window 16384
                memory_budget: usize::MAX,
            },
        )
        .unwrap();
        assert!(big_window.eliminated > small_window.eliminated);
    }

    #[test]
    fn out_of_space_error() {
        let tape = lower(&forest(vec![term(1.0, 0, &[0, 1, 2])]));
        let err = generic_compile(
            &tape,
            GenericOptions {
                opt_level: 4,
                memory_budget: 10,
            },
        )
        .unwrap_err();
        let GenericError::OutOfSpace {
            needed,
            budget,
            opt_level,
        } = err;
        assert!(needed > budget);
        assert_eq!(opt_level, 4);
    }

    #[test]
    fn best_effort_degrades_level() {
        let tape = lower(&forest(vec![
            term(1.0, 0, &[0, 1]),
            term(1.0, 1, &[1, 2]),
            term(1.0, 2, &[2, 0]),
        ]));
        // Budget fits O0 (1500/op) but not O4 (20000/op).
        let budget = tape.len() * 2_000;
        let (level, _) = generic_compile_best_effort(&tape, budget).unwrap();
        assert_eq!(level, 0);
        // Budget too small for any level.
        let err = generic_compile_best_effort(&tape, 10).unwrap_err();
        assert!(matches!(err, GenericError::OutOfSpace { opt_level: 0, .. }));
    }

    #[test]
    fn calibration_matches_table1_pattern() {
        // Paper-scale op counts (Table 1, "without optimizations"):
        let case_ops = [4_440usize, 122_100, 323_800, 1_840_000, 3_374_000];
        // O0 compiles cases 1-4, fails 5; O4 compiles 1-2, fails 3-5.
        for (i, &ops) in case_ops.iter().enumerate() {
            let o0 = ops * IR_BYTES_PER_OP[0] <= PAPER_MEMORY_BUDGET;
            let o4 = ops * IR_BYTES_PER_OP[4] <= PAPER_MEMORY_BUDGET;
            match i {
                0 | 1 => {
                    assert!(o0 && o4, "case {} should compile at both", i + 1)
                }
                2 | 3 => assert!(o0 && !o4, "case {} should fail only at O4", i + 1),
                _ => assert!(!o0 && !o4, "case {} should fail everywhere", i + 1),
            }
        }
    }
}
