//! The optimizer pipeline: ODE system → (simplify → distribute → CSE) →
//! tape, with per-stage operation statistics for the Table 1 harness.

use rms_odegen::{OdeSystem, OpCounts};

use crate::cse::{cse_forest, CseOptions};
use crate::distopt::distribute_forest;
use crate::expr::ExprForest;
use crate::simplify::simplify_forest;
use crate::tape::{compact_registers, lower, Tape};

/// Named optimization levels matching the paper's experimental
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// No optimization: naive sum-of-products evaluation (Table 1's
    /// "without algebraic/CSE optimizations").
    None,
    /// §3.1 equation simplification only.
    Simplify,
    /// Simplification + §3.2 distributive optimization.
    Algebraic,
    /// Simplification + distribution + §3.3 CSE (Table 1's "with
    /// algebraic/CSE optimizations"). The paper notes CSE cannot run
    /// without the algebraic passes; this level encodes that ordering.
    Full,
}

impl OptLevel {
    /// All levels, weakest first.
    pub const ALL: [OptLevel; 4] = [
        OptLevel::None,
        OptLevel::Simplify,
        OptLevel::Algebraic,
        OptLevel::Full,
    ];

    /// Expand into individual pass switches.
    pub fn passes(self) -> Passes {
        match self {
            OptLevel::None => Passes {
                simplify: false,
                distribute: false,
                cse: None,
            },
            OptLevel::Simplify => Passes {
                simplify: true,
                distribute: false,
                cse: None,
            },
            OptLevel::Algebraic => Passes {
                simplify: true,
                distribute: true,
                cse: None,
            },
            OptLevel::Full => Passes {
                simplify: true,
                distribute: true,
                cse: Some(CseOptions::default()),
            },
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OptLevel::None => "none",
            OptLevel::Simplify => "simplify",
            OptLevel::Algebraic => "simplify+distopt",
            OptLevel::Full => "simplify+distopt+cse",
        };
        f.write_str(s)
    }
}

/// Individual pass switches (for ablation studies; [`OptLevel`] covers the
/// paper's configurations).
#[derive(Debug, Clone, Copy, Default)]
pub struct Passes {
    /// Run §3.1 equation simplification.
    pub simplify: bool,
    /// Run §3.2 distributive optimization.
    pub distribute: bool,
    /// Run §3.3 CSE with these options.
    pub cse: Option<CseOptions>,
}

/// Per-stage operation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounts {
    /// Counts of the input sum-of-products form.
    pub input: OpCounts,
    /// After simplification (equals `input` when the pass is off).
    pub after_simplify: OpCounts,
    /// After distribution.
    pub after_distribute: OpCounts,
    /// After CSE (the final expression-level counts).
    pub after_cse: OpCounts,
    /// Counts of the lowered tape (what actually executes; may include a
    /// few extra sign ops).
    pub tape: OpCounts,
}

/// A fully compiled ODE right-hand side.
#[derive(Debug, Clone)]
pub struct CompiledOde {
    /// Final expression forest (for C emission and inspection).
    pub forest: ExprForest,
    /// Executable tape.
    pub tape: Tape,
    /// Per-stage statistics.
    pub stages: StageCounts,
}

impl CompiledOde {
    /// Fraction of input arithmetic remaining after optimization
    /// (the paper reports 6.9 % for its largest case).
    pub fn remaining_fraction(&self) -> f64 {
        let input = self.stages.input.total();
        if input == 0 {
            return 1.0;
        }
        self.stages.after_cse.total() as f64 / input as f64
    }
}

/// One observed optimizer pass: wall time plus the size of its output IR.
#[derive(Debug, Clone)]
pub struct PassEvent {
    /// Pass name (`"input"`, `"simplify"`, `"distribute"`, `"cse"`,
    /// `"lower"`).
    pub pass: &'static str,
    /// Wall-clock seconds spent in the pass.
    pub seconds: f64,
    /// Arithmetic operation counts of the pass output.
    pub counts: OpCounts,
    /// IR node count of the pass output (tape instruction count for
    /// `"lower"`).
    pub nodes: usize,
    /// Rendered IR after the pass, when capture was requested.
    pub ir: Option<String>,
}

/// Collects [`PassEvent`]s during [`optimize_traced`]. The pipeline
/// driver turns these into stage records of its `PipelineReport`.
#[derive(Debug, Default, Clone)]
pub struct PassTrace {
    /// Events in execution order. Only passes that actually ran appear;
    /// `"input"` and `"lower"` always do.
    pub events: Vec<PassEvent>,
    /// Capture a rendered IR snapshot after every pass (for
    /// `--dump-ir`); costs an extra formatting walk per pass.
    pub capture_ir: bool,
}

impl PassTrace {
    /// A trace that records IR snapshots alongside timings.
    pub fn with_ir() -> PassTrace {
        PassTrace {
            events: Vec::new(),
            capture_ir: true,
        }
    }

    fn record(&mut self, pass: &'static str, seconds: f64, forest: &ExprForest) {
        self.events.push(PassEvent {
            pass,
            seconds,
            counts: forest.op_counts(),
            nodes: forest.node_count(),
            ir: self.capture_ir.then(|| forest.to_string()),
        });
    }
}

/// Optimize an ODE system at a named level.
pub fn optimize(system: &OdeSystem, level: OptLevel) -> CompiledOde {
    optimize_with_passes(system, level.passes())
}

/// Optimize with explicit pass switches.
pub fn optimize_with_passes(system: &OdeSystem, passes: Passes) -> CompiledOde {
    optimize_traced(system, passes, None)
}

/// [`optimize_with_passes`] with optional per-pass instrumentation.
///
/// Behaviorally identical to the untraced form — the trace only observes
/// pass boundaries; it never alters pass order, the (distribute ∘ cse)
/// fixpoint, or the lowered tape.
pub fn optimize_traced(
    system: &OdeSystem,
    passes: Passes,
    mut trace: Option<&mut PassTrace>,
) -> CompiledOde {
    let mut clock = std::time::Instant::now();
    let mut lap = |trace: &mut Option<&mut PassTrace>, pass: &'static str, forest: &ExprForest| {
        let seconds = clock.elapsed().as_secs_f64();
        if let Some(t) = trace.as_deref_mut() {
            t.record(pass, seconds, forest);
        }
        clock = std::time::Instant::now();
    };

    let mut forest = ExprForest::from_system(system);
    lap(&mut trace, "input", &forest);
    let mut stages = StageCounts {
        input: forest.op_counts(),
        ..StageCounts::default()
    };
    if passes.simplify {
        forest = simplify_forest(&forest);
        lap(&mut trace, "simplify", &forest);
    }
    stages.after_simplify = forest.op_counts();
    if passes.distribute {
        forest = distribute_forest(&forest);
        lap(&mut trace, "distribute", &forest);
    }
    stages.after_distribute = forest.op_counts();
    if let Some(cse_options) = passes.cse {
        forest = cse_forest(&forest, cse_options);
        if passes.distribute {
            // Iterate (distribute ∘ cse) to a fixpoint: once CSE has named
            // a shared sum (e.g. the total rubber concentration Σ R_f),
            // the distributive pass can factor that temporary out of the
            // equations that use it — `Σ_i Σ_f k·As_i·R_f` collapses to
            // `k·(Σ As_i)·(Σ R_f)`. This cross-pass interplay is where
            // the paper's large cases earn their 14x op reduction.
            let mut best = forest.op_counts().total();
            for _round in 0..8 {
                let candidate = cse_forest(&distribute_forest(&forest), cse_options);
                let total = candidate.op_counts().total();
                if total >= best {
                    break;
                }
                best = total;
                forest = candidate;
            }
        }
        lap(&mut trace, "cse", &forest);
    }
    stages.after_cse = forest.op_counts();
    let tape = compact_registers(&lower(&forest));
    debug_assert!(
        !tape.instrs.iter().any(|i| matches!(
            i,
            crate::tape::Instr::Copy {
                a: crate::tape::Operand::Reg(_),
                ..
            }
        )),
        "register-to-register copies must not survive lowering"
    );
    stages.tape = tape.op_counts();
    if let Some(t) = trace {
        let seconds = clock.elapsed().as_secs_f64();
        t.events.push(PassEvent {
            pass: "lower",
            seconds,
            counts: tape.op_counts(),
            nodes: tape.instrs.len(),
            ir: t.capture_ir.then(|| format!("{tape}")),
        });
    }
    CompiledOde {
        forest,
        tape,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_rcip::RateTable;
    use rms_rdl::{Reaction, ReactionNetwork};

    /// A small network with heavy redundancy: many reactions sharing rate
    /// constants and reactants.
    fn redundant_system() -> OdeSystem {
        let mut n = ReactionNetwork::new();
        let ids: Vec<_> = (0..8)
            .map(|i| n.add_abstract_species(&format!("S{i}"), 1.0 / (i as f64 + 1.0)))
            .collect();
        // Reactions: S_i + S_(i+1) -> S_(i+2), cycling, two rate constants.
        for i in 0..8 {
            n.add_reaction(Reaction {
                reactants: vec![ids[i % 8], ids[(i + 1) % 8]],
                products: vec![ids[(i + 2) % 8]],
                rate: if i % 2 == 0 { "K_even" } else { "K_odd" }.to_string(),
                rule: "r".to_string(),
            });
        }
        let rates = RateTable::parse("rate K_even = 2; rate K_odd = 3;").unwrap();
        rms_odegen::generate(&n, &rates, rms_odegen::GenerateOptions { simplify: false }).unwrap()
    }

    #[test]
    fn levels_monotonically_reduce_ops() {
        let sys = redundant_system();
        let mut last = usize::MAX;
        for level in OptLevel::ALL {
            let compiled = optimize(&sys, level);
            let total = compiled.stages.after_cse.total();
            assert!(total <= last, "{level} increased ops: {total} > {last}");
            last = total;
        }
    }

    #[test]
    fn all_levels_agree_semantically() {
        let sys = redundant_system();
        let y: Vec<f64> = (0..sys.len()).map(|i| 0.1 + i as f64 * 0.3).collect();
        let reference = sys.eval_nominal(&y);
        for level in OptLevel::ALL {
            let compiled = optimize(&sys, level);
            let mut got = vec![0.0; sys.len()];
            compiled.tape.eval(&sys.rate_values, &y, &mut got);
            for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "{level} eq {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn cse_alone_shares_mass_action_products() {
        // On the flat (fully non-distributed) form, each of the 8 distinct
        // mass-action products K*Si*Sj appears in 3 equations; CSE computes
        // each once: 2 mults per reaction.
        let sys = redundant_system();
        let compiled = optimize_with_passes(
            &sys,
            Passes {
                simplify: true,
                distribute: false,
                cse: Some(crate::cse::CseOptions::default()),
            },
        );
        assert_eq!(compiled.stages.after_cse.mults, 16, "{:?}", compiled.stages);
        let y: Vec<f64> = (0..sys.len()).map(|i| 0.1 + i as f64 * 0.3).collect();
        let mut got = vec![0.0; sys.len()];
        compiled.tape.eval(&sys.rate_values, &y, &mut got);
        let expect = sys.eval_nominal(&y);
        for (a, b) in expect.iter().zip(&got) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
    }

    #[test]
    fn full_level_reduces_ops() {
        let sys = redundant_system();
        let compiled = optimize(&sys, OptLevel::Full);
        assert!(
            compiled.stages.after_cse.total() < compiled.stages.input.total(),
            "{:?}",
            compiled.stages
        );
        assert!(compiled.remaining_fraction() < 1.0);
    }

    #[test]
    fn stage_counts_populated() {
        let sys = redundant_system();
        let compiled = optimize(&sys, OptLevel::Full);
        assert!(compiled.stages.input.total() > 0);
        assert!(compiled.stages.after_cse.total() > 0);
        assert!(compiled.stages.tape.total() >= compiled.stages.after_cse.total());
    }

    #[test]
    fn none_level_matches_system_counts() {
        let sys = redundant_system();
        let compiled = optimize(&sys, OptLevel::None);
        assert_eq!(compiled.stages.after_cse, sys.op_counts());
    }

    #[test]
    fn display_names() {
        assert_eq!(OptLevel::Full.to_string(), "simplify+distopt+cse");
        assert_eq!(OptLevel::None.to_string(), "none");
    }
}
