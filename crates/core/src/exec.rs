//! Pre-decoded fused execution engine for compiled tapes.
//!
//! [`Tape`]'s interpreter re-dispatches on operand kind
//! (register/species/rate/constant) for every operand of every
//! instruction — four-way branches in the innermost loop of the whole
//! runtime. This module removes that cost with a one-time decode pass:
//!
//! * **Unified frame.** Every operand becomes an absolute index into one
//!   flat buffer laid out `[rates | species | constants | registers]`.
//!   Rate constants and the state vector are copied into the frame prefix
//!   at evaluation start; literal constants are deduplicated into a pool
//!   written once at decode time. Operand fetch is then a single indexed
//!   load with no branch.
//! * **Superinstruction fusion.** A peephole pass fuses a `Mul` whose
//!   result feeds exactly one adjacent `Add`/`Sub` into a single
//!   multiply-accumulate instruction, and folds `Neg` into the `Store`
//!   that consumes it. Fused multiply-adds use the hardware FMA only when
//!   the build enables it (`target_feature = "fma"`); otherwise they
//!   compute `a * b + c` with two roundings, bit-identical to the
//!   interpreter. See [`fma`].
//! * **Batched evaluation.** [`ExecTape::eval_batch`] runs up to
//!   [`LANES`] states per instruction dispatch in structure-of-arrays
//!   layout (lane-major frame, fixed-width inner loops the
//!   autovectorizer turns into SIMD). The colored finite-difference
//!   Jacobian evaluates all color-perturbed states in one batched pass
//!   this way.
//!
//! [`ExecTape::op_counts`] reports the same totals as the source tape
//! (each fused multiply-add counts as one multiply plus one add, a fused
//! negating store as one add), so Table 1 reproduction numbers are
//! engine-independent.

use std::sync::atomic::{AtomicU64, Ordering};

use rms_odegen::OpCounts;

use crate::tape::{Instr, Operand, Tape};

/// Batch width of [`ExecTape::eval_batch`]: states evaluated per
/// instruction dispatch. Eight `f64` lanes fill an AVX-512 register and
/// two AVX2 registers; the inner loops are fixed-length so the
/// autovectorizer can emit packed arithmetic either way.
pub const LANES: usize = 8;

/// A decoded instruction. All operands are absolute frame indices; the
/// frame layout is `[rates | species | constants | registers]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings are given by each variant's formula
pub enum ExecInstr {
    /// `frame[dst] = frame[a] + frame[b]`
    Add { dst: u32, a: u32, b: u32 },
    /// `frame[dst] = frame[a] - frame[b]`
    Sub { dst: u32, a: u32, b: u32 },
    /// `frame[dst] = frame[a] * frame[b]`
    Mul { dst: u32, a: u32, b: u32 },
    /// `frame[dst] = frame[a] * frame[b] + frame[c]` (fused Mul+Add)
    MulAdd { dst: u32, a: u32, b: u32, c: u32 },
    /// `frame[dst] = frame[a] * frame[b] - frame[c]` (fused Mul+Sub,
    /// product on the left)
    MulSub { dst: u32, a: u32, b: u32, c: u32 },
    /// `frame[dst] = frame[c] - frame[a] * frame[b]` (fused Mul+Sub,
    /// product on the right)
    SubMul { dst: u32, a: u32, b: u32, c: u32 },
    /// `frame[dst] = -frame[a]`
    Neg { dst: u32, a: u32 },
    /// `frame[dst] = frame[a]`
    Copy { dst: u32, a: u32 },
    /// `ydot[idx] = frame[a]`
    Store { idx: u32, a: u32 },
    /// `ydot[idx] = -frame[a]` (fused Neg+Store)
    StoreNeg { idx: u32, a: u32 },
}

/// Fused multiply-add as executed by the engine.
///
/// When the build enables hardware FMA (`-C target-feature=+fma`) this is
/// a single-rounding `mul_add` — results may differ from the interpreter
/// by up to 1 ulp per fused pair. Without the feature, `mul_add` would
/// fall back to a slow libm routine, so we compute `a * b + c` with two
/// roundings instead — bit-identical to the unfused interpreter.
#[inline(always)]
fn fma(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// Whether fused multiply-adds contract to a single rounding (hardware
/// FMA enabled at compile time). When `false`, [`ExecTape`] evaluation is
/// bit-identical to the [`Tape`] interpreter.
pub const FMA_CONTRACTS: bool = cfg!(target_feature = "fma");

static NEXT_TAPE_ID: AtomicU64 = AtomicU64::new(1);

/// How one index field of a rolled loop body varies across trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecIdx {
    /// Same as the template in every trip.
    Fix,
    /// `template + stride * trip`.
    Aff(i32),
    /// `tables[offset + trip]` — an interned per-trip index table.
    Tab(u32),
}

/// One instruction of a rolled loop body: the trip-0 template plus a
/// per-field variation pattern (`[dst_or_idx, a, b, c]`; unused trailing
/// fields are `Fix`).
type RolledExecInstr = (ExecInstr, [ExecIdx; 4]);

/// One element of a rolled execution walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecSeg {
    /// `instrs[start..start + len]`, executed once.
    Straight { start: u32, len: u32 },
    /// `bodies[body_off..body_off + body_len]`, executed `trips` times
    /// with per-trip field resolution.
    Loop {
        body_off: u32,
        body_len: u32,
        trips: u32,
    },
}

/// A [`Tape`] decoded for execution: branch-free operand fetch, fused
/// superinstructions, and a batched structure-of-arrays evaluator.
///
/// With [`ExecTape::compile_rolled`] the post-fusion stream is rerolled:
/// runs of shape-identical instructions collapse into loop segments whose
/// bodies are stored once, with per-iteration offset tables (interned and
/// deduplicated) for the varying frame indices. Execution replays the
/// exact flat instruction sequence trip by trip, so rolled and flat
/// evaluation are bit-identical; what changes is the memory footprint of
/// the decoded program, which for large mechanisms drops from one record
/// per flat instruction to one per *distinct* stanza plus index tables.
#[derive(Debug, Clone)]
pub struct ExecTape {
    /// Straight-line instructions. For a flat tape this is the whole
    /// program; for a rolled tape, only the inter-loop segments.
    instrs: Vec<ExecInstr>,
    /// Rolled loop bodies (templates + field patterns), all loops
    /// concatenated; empty for flat tapes.
    bodies: Vec<RolledExecInstr>,
    /// Execution order. Empty means "flat": run `instrs` start to end.
    segments: Vec<ExecSeg>,
    /// Interned per-trip index tables (shared across loops and fields).
    tables: Vec<u32>,
    /// Executed instructions per evaluation (the flat post-fusion count,
    /// loop bodies weighted by their trip counts).
    exec_len: usize,
    /// Pooled literal constants, in frame order.
    consts: Vec<f64>,
    /// Total frame length: `n_rates + n_species + consts.len() + n_regs`.
    frame_len: usize,
    n_species: usize,
    n_rates: usize,
    n_outputs: usize,
    /// Identity for frame reuse: a frame initialized for one tape must
    /// not be reused verbatim for another (different constant pool).
    id: u64,
}

impl ExecTape {
    /// Decode `tape` (with superinstruction fusion). The tape's `Store`
    /// indices must address `0..tape.n_species`; use
    /// [`compile_with_outputs`](ExecTape::compile_with_outputs) for tapes
    /// with a different output arity.
    pub fn compile(tape: &Tape) -> ExecTape {
        ExecTape::compile_with_outputs(tape, tape.n_species)
    }

    /// Decode a tape whose `Store` indices address `0..n_outputs`
    /// (e.g. the secondary tape of a Jacobian pair).
    pub fn compile_with_outputs(tape: &Tape, n_outputs: usize) -> ExecTape {
        let decoded = decode(tape, n_outputs);
        fuse(decoded)
    }

    /// Decode without the fusion peephole (reference engine for tests
    /// and for isolating the decode-only speedup in benchmarks).
    pub fn compile_unfused(tape: &Tape) -> ExecTape {
        decode(tape, tape.n_species)
    }

    /// Decode, fuse, then reroll: runs of shape-identical (post-fusion)
    /// instructions become loop segments with per-trip offset tables.
    /// Bit-identical to [`ExecTape::compile`] — fusion happens before
    /// rerolling, so superinstructions roll like any other shape.
    pub fn compile_rolled(tape: &Tape, opts: &crate::tape::RerollOptions) -> ExecTape {
        ExecTape::compile_with_outputs_rolled(tape, tape.n_species, opts)
    }

    /// Rolled decode for tapes with a non-default output arity (the
    /// secondary tape of a Jacobian or sensitivity group).
    pub fn compile_with_outputs_rolled(
        tape: &Tape,
        n_outputs: usize,
        opts: &crate::tape::RerollOptions,
    ) -> ExecTape {
        roll(fuse(decode(tape, n_outputs)), opts)
    }

    /// Instructions executed per evaluation (the flat post-fusion count;
    /// rolled loop bodies are weighted by their trip counts). Fusion
    /// shrinks this below the source tape's length.
    pub fn len(&self) -> usize {
        self.exec_len
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.exec_len == 0
    }

    /// Whether the program carries rolled loop segments.
    pub fn is_rolled(&self) -> bool {
        !self.segments.is_empty()
    }

    /// Number of rolled loop segments.
    pub fn loop_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, ExecSeg::Loop { .. }))
            .count()
    }

    /// Decoded instruction *records* held in memory: straight
    /// instructions plus one template per loop-body position. For flat
    /// tapes this equals [`ExecTape::len`]; rerolling shrinks it.
    pub fn stored_len(&self) -> usize {
        self.instrs.len() + self.bodies.len()
    }

    /// Entries in the interned per-trip index tables.
    pub fn table_len(&self) -> usize {
        self.tables.len()
    }

    /// The decoded instruction stream.
    pub fn instrs(&self) -> &[ExecInstr] {
        &self.instrs
    }

    /// Number of distinct pooled constants.
    pub fn n_consts(&self) -> usize {
        self.consts.len()
    }

    /// Number of species (state variables read as inputs).
    pub fn n_species(&self) -> usize {
        self.n_species
    }

    /// Number of rate constants.
    pub fn n_rates(&self) -> usize {
        self.n_rates
    }

    /// Number of outputs written by `Store`/`StoreNeg`.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Arithmetic operation counts, matching the source [`Tape`]:
    /// each fused multiply-add/sub counts as one multiply plus one add,
    /// a fused negating store as one add (`Neg` is add-class), and
    /// `Copy`/`Store` are free.
    pub fn op_counts(&self) -> OpCounts {
        let mut counts = OpCounts::default();
        let mut count = |instr: &ExecInstr, weight: usize| match instr {
            ExecInstr::Mul { .. } => counts.mults += weight,
            ExecInstr::Add { .. } | ExecInstr::Sub { .. } | ExecInstr::Neg { .. } => {
                counts.adds += weight
            }
            ExecInstr::MulAdd { .. } | ExecInstr::MulSub { .. } | ExecInstr::SubMul { .. } => {
                counts.mults += weight;
                counts.adds += weight;
            }
            ExecInstr::StoreNeg { .. } => counts.adds += weight,
            ExecInstr::Copy { .. } | ExecInstr::Store { .. } => {}
        };
        for instr in &self.instrs {
            count(instr, 1);
        }
        for seg in &self.segments {
            if let ExecSeg::Loop {
                body_off,
                body_len,
                trips,
            } = *seg
            {
                for (tmpl, _) in &self.bodies[body_off as usize..(body_off + body_len) as usize] {
                    count(tmpl, trips as usize);
                }
            }
        }
        counts
    }

    /// Prepare `frame` for this tape: size the scalar buffer and write
    /// the constant pool into its slots. Cheap when the frame is already
    /// bound to this tape.
    fn bind(&self, frame: &mut ExecFrame) {
        if frame.tape_id == self.id && frame.data.len() == self.frame_len {
            return;
        }
        frame.data.clear();
        frame.data.resize(self.frame_len, 0.0);
        let const_base = self.n_rates + self.n_species;
        frame.data[const_base..const_base + self.consts.len()].copy_from_slice(&self.consts);
        frame.tape_id = self.id;
        frame.batch_bound = false;
    }

    /// Prepare the batched (lane-major) buffers of `frame`.
    fn bind_batch(&self, frame: &mut ExecFrame) {
        self.bind(frame);
        if frame.batch_bound && frame.batch.len() == self.frame_len * LANES {
            return;
        }
        frame.batch.clear();
        frame.batch.resize(self.frame_len * LANES, 0.0);
        let const_base = self.n_rates + self.n_species;
        for (k, &c) in self.consts.iter().enumerate() {
            let o = (const_base + k) * LANES;
            frame.batch[o..o + LANES].fill(c);
        }
        frame.out.clear();
        frame.out.resize(self.n_outputs * LANES, 0.0);
        frame.batch_bound = true;
    }

    /// Evaluate one state: reads `rates` and `y`, writes `ydot`. The
    /// frame is bound on first use and reused allocation-free after.
    pub fn eval(&self, rates: &[f64], y: &[f64], ydot: &mut [f64], frame: &mut ExecFrame) {
        assert_eq!(y.len(), self.n_species, "state length mismatch");
        assert_eq!(rates.len(), self.n_rates, "rates length mismatch");
        assert_eq!(ydot.len(), self.n_outputs, "output length mismatch");
        self.bind(frame);
        let f = &mut frame.data[..];
        f[..self.n_rates].copy_from_slice(rates);
        f[self.n_rates..self.n_rates + self.n_species].copy_from_slice(y);
        if self.segments.is_empty() {
            for instr in &self.instrs {
                step_scalar(*instr, f, ydot);
            }
            return;
        }
        for seg in &self.segments {
            match *seg {
                ExecSeg::Straight { start, len } => {
                    for instr in &self.instrs[start as usize..(start + len) as usize] {
                        step_scalar(*instr, f, ydot);
                    }
                }
                ExecSeg::Loop {
                    body_off,
                    body_len,
                    trips,
                } => {
                    let body = &self.bodies[body_off as usize..(body_off + body_len) as usize];
                    for t in 0..trips {
                        for &(tmpl, fields) in body {
                            step_scalar(resolve_exec(tmpl, &fields, t, &self.tables), f, ydot);
                        }
                    }
                }
            }
        }
    }

    /// Evaluate `n_states` stacked states in one pass: `ys` holds the
    /// states row-major (`n_states * n_species` long) and `ydots`
    /// receives the outputs in the same layout. States are processed
    /// [`LANES`] at a time in a lane-major structure-of-arrays frame; a
    /// trailing partial chunk pads with copies of its first state (the
    /// padded lanes' outputs are discarded).
    pub fn eval_batch(&self, rates: &[f64], ys: &[f64], ydots: &mut [f64], frame: &mut ExecFrame) {
        let n = self.n_species;
        assert_eq!(rates.len(), self.n_rates, "rates length mismatch");
        assert!(n > 0, "batched evaluation needs at least one species");
        assert_eq!(ys.len() % n, 0, "ys length must be a multiple of n_species");
        let n_states = ys.len() / n;
        assert_eq!(
            ydots.len(),
            n_states * self.n_outputs,
            "ydots length mismatch"
        );
        self.bind_batch(frame);
        // Broadcast the rate constants once; they are shared by every
        // state in the batch.
        for (i, &k) in rates.iter().enumerate() {
            let o = i * LANES;
            frame.batch[o..o + LANES].fill(k);
        }
        let species_base = self.n_rates;
        let mut s0 = 0;
        while s0 < n_states {
            let lanes_used = LANES.min(n_states - s0);
            // Transpose the chunk's states into lane-major layout,
            // padding short chunks with the first state of the chunk.
            for i in 0..n {
                let o = (species_base + i) * LANES;
                let row = &mut frame.batch[o..o + LANES];
                for (l, slot) in row.iter_mut().enumerate() {
                    let s = if l < lanes_used { s0 + l } else { s0 };
                    *slot = ys[s * n + i];
                }
            }
            self.run_lanes(&mut frame.batch, &mut frame.out);
            for i in 0..self.n_outputs {
                let o = i * LANES;
                for l in 0..lanes_used {
                    ydots[(s0 + l) * self.n_outputs + i] = frame.out[o + l];
                }
            }
            s0 += lanes_used;
        }
    }

    /// Execute the instruction stream over all [`LANES`] lanes of a bound
    /// batch frame. The fixed-width inner loops are the autovectorization
    /// target: every operation is a straight-line map over `[f64; LANES]`.
    fn run_lanes(&self, batch: &mut [f64], out: &mut [f64]) {
        if self.segments.is_empty() {
            for instr in &self.instrs {
                step_lanes(*instr, batch, out);
            }
            return;
        }
        for seg in &self.segments {
            match *seg {
                ExecSeg::Straight { start, len } => {
                    for instr in &self.instrs[start as usize..(start + len) as usize] {
                        step_lanes(*instr, batch, out);
                    }
                }
                ExecSeg::Loop {
                    body_off,
                    body_len,
                    trips,
                } => {
                    let body = &self.bodies[body_off as usize..(body_off + body_len) as usize];
                    for t in 0..trips {
                        for &(tmpl, fields) in body {
                            step_lanes(resolve_exec(tmpl, &fields, t, &self.tables), batch, out);
                        }
                    }
                }
            }
        }
    }
}

/// Execute one instruction against the scalar frame.
#[inline(always)]
fn step_scalar(instr: ExecInstr, f: &mut [f64], ydot: &mut [f64]) {
    match instr {
        ExecInstr::Add { dst, a, b } => f[dst as usize] = f[a as usize] + f[b as usize],
        ExecInstr::Sub { dst, a, b } => f[dst as usize] = f[a as usize] - f[b as usize],
        ExecInstr::Mul { dst, a, b } => f[dst as usize] = f[a as usize] * f[b as usize],
        ExecInstr::MulAdd { dst, a, b, c } => {
            f[dst as usize] = fma(f[a as usize], f[b as usize], f[c as usize])
        }
        ExecInstr::MulSub { dst, a, b, c } => {
            f[dst as usize] = fma(f[a as usize], f[b as usize], -f[c as usize])
        }
        ExecInstr::SubMul { dst, a, b, c } => {
            f[dst as usize] = f[c as usize] - f[a as usize] * f[b as usize]
        }
        ExecInstr::Neg { dst, a } => f[dst as usize] = -f[a as usize],
        ExecInstr::Copy { dst, a } => f[dst as usize] = f[a as usize],
        ExecInstr::Store { idx, a } => ydot[idx as usize] = f[a as usize],
        ExecInstr::StoreNeg { idx, a } => ydot[idx as usize] = -f[a as usize],
    }
}

/// Execute one instruction over all [`LANES`] lanes of a batch frame.
#[inline(always)]
fn step_lanes(instr: ExecInstr, batch: &mut [f64], out: &mut [f64]) {
    #[inline(always)]
    fn load(buf: &[f64], slot: u32) -> [f64; LANES] {
        let o = slot as usize * LANES;
        let mut v = [0.0; LANES];
        v.copy_from_slice(&buf[o..o + LANES]);
        v
    }
    #[inline(always)]
    fn store(buf: &mut [f64], slot: u32, v: [f64; LANES]) {
        let o = slot as usize * LANES;
        buf[o..o + LANES].copy_from_slice(&v);
    }
    match instr {
        ExecInstr::Add { dst, a, b } => {
            let (va, vb) = (load(batch, a), load(batch, b));
            let mut r = [0.0; LANES];
            for l in 0..LANES {
                r[l] = va[l] + vb[l];
            }
            store(batch, dst, r);
        }
        ExecInstr::Sub { dst, a, b } => {
            let (va, vb) = (load(batch, a), load(batch, b));
            let mut r = [0.0; LANES];
            for l in 0..LANES {
                r[l] = va[l] - vb[l];
            }
            store(batch, dst, r);
        }
        ExecInstr::Mul { dst, a, b } => {
            let (va, vb) = (load(batch, a), load(batch, b));
            let mut r = [0.0; LANES];
            for l in 0..LANES {
                r[l] = va[l] * vb[l];
            }
            store(batch, dst, r);
        }
        ExecInstr::MulAdd { dst, a, b, c } => {
            let (va, vb, vc) = (load(batch, a), load(batch, b), load(batch, c));
            let mut r = [0.0; LANES];
            for l in 0..LANES {
                r[l] = fma(va[l], vb[l], vc[l]);
            }
            store(batch, dst, r);
        }
        ExecInstr::MulSub { dst, a, b, c } => {
            let (va, vb, vc) = (load(batch, a), load(batch, b), load(batch, c));
            let mut r = [0.0; LANES];
            for l in 0..LANES {
                r[l] = fma(va[l], vb[l], -vc[l]);
            }
            store(batch, dst, r);
        }
        ExecInstr::SubMul { dst, a, b, c } => {
            let (va, vb, vc) = (load(batch, a), load(batch, b), load(batch, c));
            let mut r = [0.0; LANES];
            for l in 0..LANES {
                r[l] = vc[l] - va[l] * vb[l];
            }
            store(batch, dst, r);
        }
        ExecInstr::Neg { dst, a } => {
            let va = load(batch, a);
            let mut r = [0.0; LANES];
            for l in 0..LANES {
                r[l] = -va[l];
            }
            store(batch, dst, r);
        }
        ExecInstr::Copy { dst, a } => {
            let va = load(batch, a);
            store(batch, dst, va);
        }
        ExecInstr::Store { idx, a } => {
            let va = load(batch, a);
            let o = idx as usize * LANES;
            out[o..o + LANES].copy_from_slice(&va);
        }
        ExecInstr::StoreNeg { idx, a } => {
            let va = load(batch, a);
            let o = idx as usize * LANES;
            let row = &mut out[o..o + LANES];
            for l in 0..LANES {
                row[l] = -va[l];
            }
        }
    }
}

/// Resolve trip `t` of a rolled body instruction: patch each varying
/// field from its pattern (affine stride or interned table).
#[inline(always)]
fn resolve_exec(tmpl: ExecInstr, fields: &[ExecIdx; 4], t: u32, tables: &[u32]) -> ExecInstr {
    let mut instr = tmpl;
    for (k, pat) in fields.iter().enumerate() {
        match *pat {
            ExecIdx::Fix => {}
            ExecIdx::Aff(stride) => {
                let base = get_field(&instr, k) as i64;
                set_field(&mut instr, k, (base + stride as i64 * t as i64) as u32);
            }
            ExecIdx::Tab(off) => set_field(&mut instr, k, tables[(off + t) as usize]),
        }
    }
    instr
}

/// Number of index fields of an instruction (destination/store index
/// plus operands).
fn field_count(i: &ExecInstr) -> usize {
    match i {
        ExecInstr::MulAdd { .. } | ExecInstr::MulSub { .. } | ExecInstr::SubMul { .. } => 4,
        ExecInstr::Add { .. } | ExecInstr::Sub { .. } | ExecInstr::Mul { .. } => 3,
        ExecInstr::Neg { .. }
        | ExecInstr::Copy { .. }
        | ExecInstr::Store { .. }
        | ExecInstr::StoreNeg { .. } => 2,
    }
}

/// Field `k` of an instruction: 0 is the destination (or store index),
/// 1..=3 the operands in order.
#[inline(always)]
fn get_field(i: &ExecInstr, k: usize) -> u32 {
    match (*i, k) {
        (
            ExecInstr::Add { dst, .. }
            | ExecInstr::Sub { dst, .. }
            | ExecInstr::Mul { dst, .. }
            | ExecInstr::MulAdd { dst, .. }
            | ExecInstr::MulSub { dst, .. }
            | ExecInstr::SubMul { dst, .. }
            | ExecInstr::Neg { dst, .. }
            | ExecInstr::Copy { dst, .. },
            0,
        ) => dst,
        (ExecInstr::Store { idx, .. } | ExecInstr::StoreNeg { idx, .. }, 0) => idx,
        (
            ExecInstr::Add { a, .. }
            | ExecInstr::Sub { a, .. }
            | ExecInstr::Mul { a, .. }
            | ExecInstr::MulAdd { a, .. }
            | ExecInstr::MulSub { a, .. }
            | ExecInstr::SubMul { a, .. }
            | ExecInstr::Neg { a, .. }
            | ExecInstr::Copy { a, .. }
            | ExecInstr::Store { a, .. }
            | ExecInstr::StoreNeg { a, .. },
            1,
        ) => a,
        (
            ExecInstr::Add { b, .. }
            | ExecInstr::Sub { b, .. }
            | ExecInstr::Mul { b, .. }
            | ExecInstr::MulAdd { b, .. }
            | ExecInstr::MulSub { b, .. }
            | ExecInstr::SubMul { b, .. },
            2,
        ) => b,
        (
            ExecInstr::MulAdd { c, .. } | ExecInstr::MulSub { c, .. } | ExecInstr::SubMul { c, .. },
            3,
        ) => c,
        _ => unreachable!("field index out of range"),
    }
}

/// Rewrite field `k` of an instruction.
#[inline(always)]
fn set_field(i: &mut ExecInstr, k: usize, v: u32) {
    match (i, k) {
        (
            ExecInstr::Add { dst, .. }
            | ExecInstr::Sub { dst, .. }
            | ExecInstr::Mul { dst, .. }
            | ExecInstr::MulAdd { dst, .. }
            | ExecInstr::MulSub { dst, .. }
            | ExecInstr::SubMul { dst, .. }
            | ExecInstr::Neg { dst, .. }
            | ExecInstr::Copy { dst, .. },
            0,
        ) => *dst = v,
        (ExecInstr::Store { idx, .. } | ExecInstr::StoreNeg { idx, .. }, 0) => *idx = v,
        (
            ExecInstr::Add { a, .. }
            | ExecInstr::Sub { a, .. }
            | ExecInstr::Mul { a, .. }
            | ExecInstr::MulAdd { a, .. }
            | ExecInstr::MulSub { a, .. }
            | ExecInstr::SubMul { a, .. }
            | ExecInstr::Neg { a, .. }
            | ExecInstr::Copy { a, .. }
            | ExecInstr::Store { a, .. }
            | ExecInstr::StoreNeg { a, .. },
            1,
        ) => *a = v,
        (
            ExecInstr::Add { b, .. }
            | ExecInstr::Sub { b, .. }
            | ExecInstr::Mul { b, .. }
            | ExecInstr::MulAdd { b, .. }
            | ExecInstr::MulSub { b, .. }
            | ExecInstr::SubMul { b, .. },
            2,
        ) => *b = v,
        (
            ExecInstr::MulAdd { c, .. } | ExecInstr::MulSub { c, .. } | ExecInstr::SubMul { c, .. },
            3,
        ) => *c = v,
        _ => unreachable!("field index out of range"),
    }
}

/// Structural shape of an instruction for run detection: the opcode
/// alone, since every field is a frame index expressible as a table.
fn exec_shape(i: &ExecInstr) -> u64 {
    match i {
        ExecInstr::Add { .. } => 1,
        ExecInstr::Sub { .. } => 2,
        ExecInstr::Mul { .. } => 3,
        ExecInstr::MulAdd { .. } => 4,
        ExecInstr::MulSub { .. } => 5,
        ExecInstr::SubMul { .. } => 6,
        ExecInstr::Neg { .. } => 7,
        ExecInstr::Copy { .. } => 8,
        ExecInstr::Store { .. } => 9,
        ExecInstr::StoreNeg { .. } => 10,
    }
}

/// Reroll the fused stream: detect shape-identical runs, classify each
/// body field as fixed/affine/table (tables interned and deduplicated),
/// and rebuild the program as segments. The flat stream is dropped for
/// loop regions — only templates, patterns and tables remain.
fn roll(tape: ExecTape, opts: &crate::tape::RerollOptions) -> ExecTape {
    let shapes: Vec<u64> = tape.instrs.iter().map(exec_shape).collect();
    let loops = crate::tape::detect_runs(&shapes, opts);
    if loops.is_empty() {
        return tape;
    }
    let flat = &tape.instrs;
    let mut instrs: Vec<ExecInstr> = Vec::new();
    let mut bodies: Vec<RolledExecInstr> = Vec::new();
    let mut segments: Vec<ExecSeg> = Vec::new();
    let mut tables: Vec<u32> = Vec::new();
    let mut interned: std::collections::HashMap<Vec<u32>, u32> = std::collections::HashMap::new();
    let mut at = 0usize;
    let straight = |instrs: &mut Vec<ExecInstr>,
                    segments: &mut Vec<ExecSeg>,
                    range: std::ops::Range<usize>| {
        if !range.is_empty() {
            segments.push(ExecSeg::Straight {
                start: instrs.len() as u32,
                len: range.len() as u32,
            });
            instrs.extend_from_slice(&flat[range]);
        }
    };
    for lp in &loops {
        straight(&mut instrs, &mut segments, at..lp.start);
        let body_off = bodies.len() as u32;
        for p in 0..lp.body_len {
            let tmpl = flat[lp.start + p];
            let mut fields = [ExecIdx::Fix; 4];
            for (k, field) in fields.iter_mut().enumerate().take(field_count(&tmpl)) {
                let vals: Vec<u32> = (0..lp.trips)
                    .map(|t| get_field(&flat[lp.start + t * lp.body_len + p], k))
                    .collect();
                if vals.iter().all(|&v| v == vals[0]) {
                    continue;
                }
                let stride = vals[1] as i64 - vals[0] as i64;
                if vals.windows(2).all(|w| w[1] as i64 - w[0] as i64 == stride) {
                    *field = ExecIdx::Aff(stride as i32);
                } else {
                    let off = *interned.entry(vals.clone()).or_insert_with(|| {
                        let off = tables.len() as u32;
                        tables.extend_from_slice(&vals);
                        off
                    });
                    *field = ExecIdx::Tab(off);
                }
            }
            bodies.push((tmpl, fields));
        }
        segments.push(ExecSeg::Loop {
            body_off,
            body_len: lp.body_len as u32,
            trips: lp.trips as u32,
        });
        at = lp.end();
    }
    straight(&mut instrs, &mut segments, at..flat.len());
    ExecTape {
        instrs,
        bodies,
        segments,
        tables,
        ..tape
    }
}

/// Reusable evaluation scratch for an [`ExecTape`]: the unified scalar
/// frame, the lane-major batch frame, and the batched output staging
/// buffer. Binding is lazy and keyed by tape identity, so one frame can
/// serve different tapes over its lifetime (rebinding reinitializes it)
/// while repeated evaluation of one tape allocates nothing.
#[derive(Debug, Default)]
pub struct ExecFrame {
    tape_id: u64,
    data: Vec<f64>,
    batch: Vec<f64>,
    out: Vec<f64>,
    batch_bound: bool,
}

impl ExecFrame {
    /// An empty frame; sized on first use.
    pub fn new() -> ExecFrame {
        ExecFrame::default()
    }
}

/// Decode pass: resolve every operand to an absolute frame index,
/// pooling literal constants (deduplicated by bit pattern).
fn decode(tape: &Tape, n_outputs: usize) -> ExecTape {
    let rate_base = 0u32;
    let species_base = tape.n_rates as u32;
    let const_base = species_base + tape.n_species as u32;
    let mut consts: Vec<f64> = Vec::new();
    let mut const_index: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    // The register section starts after the constants; constants are
    // interned first so register indices can be assigned in one pass.
    // Two sweeps: intern constants, then resolve.
    for instr in &tape.instrs {
        let mut intern = |op: Operand| {
            if let Operand::Const(v) = op {
                const_index.entry(v.to_bits()).or_insert_with(|| {
                    consts.push(v);
                    (consts.len() - 1) as u32
                });
            }
        };
        match *instr {
            Instr::Add { a, b, .. } | Instr::Sub { a, b, .. } | Instr::Mul { a, b, .. } => {
                intern(a);
                intern(b);
            }
            Instr::Neg { a, .. } | Instr::Copy { a, .. } | Instr::Store { a, .. } => intern(a),
        }
    }
    let reg_base = const_base + consts.len() as u32;
    let resolve = |op: Operand| -> u32 {
        match op {
            Operand::Reg(r) => reg_base + r,
            Operand::Species(i) => species_base + i,
            Operand::Rate(i) => rate_base + i,
            Operand::Const(v) => const_base + const_index[&v.to_bits()],
        }
    };
    let instrs: Vec<ExecInstr> = tape
        .instrs
        .iter()
        .map(|instr| match *instr {
            Instr::Add { dst, a, b } => ExecInstr::Add {
                dst: reg_base + dst,
                a: resolve(a),
                b: resolve(b),
            },
            Instr::Sub { dst, a, b } => ExecInstr::Sub {
                dst: reg_base + dst,
                a: resolve(a),
                b: resolve(b),
            },
            Instr::Mul { dst, a, b } => ExecInstr::Mul {
                dst: reg_base + dst,
                a: resolve(a),
                b: resolve(b),
            },
            Instr::Neg { dst, a } => ExecInstr::Neg {
                dst: reg_base + dst,
                a: resolve(a),
            },
            Instr::Copy { dst, a } => ExecInstr::Copy {
                dst: reg_base + dst,
                a: resolve(a),
            },
            Instr::Store { idx, a } => ExecInstr::Store { idx, a: resolve(a) },
        })
        .collect();
    let exec_len = instrs.len();
    ExecTape {
        instrs,
        bodies: Vec::new(),
        segments: Vec::new(),
        tables: Vec::new(),
        exec_len,
        frame_len: reg_base as usize + tape.n_regs,
        consts,
        n_species: tape.n_species,
        n_rates: tape.n_rates,
        n_outputs,
        id: NEXT_TAPE_ID.fetch_add(1, Ordering::Relaxed),
    }
}

/// Destination slot of an instruction, if it writes the frame.
fn dst_of(i: &ExecInstr) -> Option<u32> {
    match *i {
        ExecInstr::Add { dst, .. }
        | ExecInstr::Sub { dst, .. }
        | ExecInstr::Mul { dst, .. }
        | ExecInstr::MulAdd { dst, .. }
        | ExecInstr::MulSub { dst, .. }
        | ExecInstr::SubMul { dst, .. }
        | ExecInstr::Neg { dst, .. }
        | ExecInstr::Copy { dst, .. } => Some(dst),
        ExecInstr::Store { .. } | ExecInstr::StoreNeg { .. } => None,
    }
}

/// Source slots of an instruction.
fn srcs_of(i: &ExecInstr, out: &mut Vec<u32>) {
    out.clear();
    match *i {
        ExecInstr::Add { a, b, .. } | ExecInstr::Sub { a, b, .. } | ExecInstr::Mul { a, b, .. } => {
            out.push(a);
            out.push(b);
        }
        ExecInstr::MulAdd { a, b, c, .. }
        | ExecInstr::MulSub { a, b, c, .. }
        | ExecInstr::SubMul { a, b, c, .. } => {
            out.push(a);
            out.push(b);
            out.push(c);
        }
        ExecInstr::Neg { a, .. }
        | ExecInstr::Copy { a, .. }
        | ExecInstr::Store { a, .. }
        | ExecInstr::StoreNeg { a, .. } => out.push(a),
    }
}

/// Peephole fusion over the decoded stream. A `Mul` at position `p`
/// fuses into the instruction at `p + 1` when that instruction is the
/// *only* reader of the `Mul`'s destination (before any redefinition) and
/// reads it exactly once — so the fused pair is observationally identical
/// to the sequence. `Neg` folds into an adjacent sole-consumer `Store`
/// the same way.
fn fuse(tape: ExecTape) -> ExecTape {
    let n = tape.instrs.len();
    // For each defining instruction position: how many times its value is
    // read before the destination is redefined, and whether any of those
    // reads happen beyond the immediately following instruction.
    let mut reads = vec![0u32; n];
    let mut far_read = vec![false; n];
    let mut last_def: Vec<usize> = vec![usize::MAX; tape.frame_len];
    let mut srcs = Vec::with_capacity(3);
    for (q, instr) in tape.instrs.iter().enumerate() {
        srcs_of(instr, &mut srcs);
        for &s in &srcs {
            let p = last_def[s as usize];
            if p != usize::MAX {
                reads[p] += 1;
                if q != p + 1 {
                    far_read[p] = true;
                }
            }
        }
        if let Some(d) = dst_of(instr) {
            last_def[d as usize] = q;
        }
    }
    let mut out = Vec::with_capacity(n);
    let mut p = 0;
    while p < n {
        let sole_adjacent_use = reads[p] == 1 && !far_read[p];
        let fused = if sole_adjacent_use && p + 1 < n {
            match (tape.instrs[p], tape.instrs[p + 1]) {
                (ExecInstr::Mul { dst: t, a, b }, ExecInstr::Add { dst, a: x, b: y })
                    if (x == t) != (y == t) =>
                {
                    let c = if x == t { y } else { x };
                    Some(ExecInstr::MulAdd { dst, a, b, c })
                }
                (ExecInstr::Mul { dst: t, a, b }, ExecInstr::Sub { dst, a: x, b: y })
                    if x == t && y != t =>
                {
                    Some(ExecInstr::MulSub { dst, a, b, c: y })
                }
                (ExecInstr::Mul { dst: t, a, b }, ExecInstr::Sub { dst, a: x, b: y })
                    if y == t && x != t =>
                {
                    Some(ExecInstr::SubMul { dst, a, b, c: x })
                }
                (ExecInstr::Neg { dst: t, a }, ExecInstr::Store { idx, a: x }) if x == t => {
                    Some(ExecInstr::StoreNeg { idx, a })
                }
                _ => None,
            }
        } else {
            None
        };
        match fused {
            Some(instr) => {
                out.push(instr);
                p += 2;
            }
            None => {
                out.push(tape.instrs[p]);
                p += 1;
            }
        }
    }
    let exec_len = out.len();
    ExecTape {
        instrs: out,
        exec_len,
        ..tape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, ExprForest};
    use crate::tape::lower;

    fn term(c: f64, rate: u32, species: &[u32]) -> Expr {
        let mut f = vec![Expr::Rate(rate)];
        f.extend(species.iter().map(|&s| Expr::Species(s)));
        Expr::prod(c, f)
    }

    fn forest(rhs: Vec<Expr>) -> ExprForest {
        let n = rhs.len();
        ExprForest {
            temps: vec![],
            rhs,
            n_species: n,
            n_rates: 8,
        }
    }

    fn assert_engines_agree(tape: &Tape, rates: &[f64], y: &[f64]) {
        let exec = ExecTape::compile(tape);
        let mut frame = ExecFrame::new();
        let mut want = vec![0.0; tape.n_species];
        tape.eval(rates, y, &mut want);
        let mut got = vec![0.0; tape.n_species];
        exec.eval(rates, y, &mut got, &mut frame);
        assert_eq!(want, got, "scalar exec diverged");
        // Batched: replicate the state across more than LANES states so
        // both full and partial chunks are exercised.
        let n_states = LANES + 3;
        let ys: Vec<f64> = (0..n_states).flat_map(|_| y.iter().copied()).collect();
        let mut ydots = vec![0.0; n_states * tape.n_species];
        exec.eval_batch(rates, &ys, &mut ydots, &mut frame);
        for s in 0..n_states {
            let row = &ydots[s * tape.n_species..(s + 1) * tape.n_species];
            assert_eq!(want.as_slice(), row, "batched exec diverged at state {s}");
        }
    }

    #[test]
    fn decode_matches_interpreter() {
        let f = forest(vec![
            Expr::sum(vec![term(2.0, 0, &[0, 1]), term(-1.0, 1, &[2])]),
            term(-3.0, 2, &[1, 1]),
            term(1.0, 0, &[0]),
        ]);
        let tape = lower(&f);
        assert_engines_agree(
            &tape,
            &[1.1, 2.2, 3.3, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[0.5, 0.7, 0.9],
        );
    }

    #[test]
    fn constants_are_pooled() {
        // 2.0 appears in two products but occupies one pool slot.
        let f = forest(vec![term(2.0, 0, &[0]), term(2.0, 1, &[1])]);
        let tape = lower(&f);
        let exec = ExecTape::compile(&tape);
        assert_eq!(exec.n_consts(), 1);
        assert_engines_agree(
            &tape,
            &[1.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[0.4, 0.6],
        );
    }

    #[test]
    fn mul_add_fuses() {
        // k0*y0 + k1*y1: Mul, Mul, Add -> Mul, MulAdd.
        let f = forest(vec![Expr::sum(vec![
            term(1.0, 0, &[0]),
            term(1.0, 1, &[0]),
        ])]);
        let tape = lower(&f);
        let exec = ExecTape::compile(&tape);
        assert!(exec
            .instrs()
            .iter()
            .any(|i| matches!(i, ExecInstr::MulAdd { .. })));
        assert!(exec.len() < tape.len());
        assert_eq!(exec.op_counts(), tape.op_counts());
        assert_engines_agree(&tape, &[2.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], &[3.0]);
    }

    #[test]
    fn mul_sub_fuses_both_orientations() {
        // k0*y0 - k1*y1 lowers to Mul, Mul, Sub where the second Mul
        // feeds the Sub's right operand -> SubMul.
        let f = forest(vec![Expr::sum(vec![
            term(1.0, 0, &[0]),
            term(-1.0, 1, &[0]),
        ])]);
        let tape = lower(&f);
        let exec = ExecTape::compile(&tape);
        assert!(exec
            .instrs()
            .iter()
            .any(|i| matches!(i, ExecInstr::SubMul { .. })));
        assert_eq!(exec.op_counts(), tape.op_counts());
        assert_engines_agree(&tape, &[2.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], &[3.0]);

        // Hand-built MulSub orientation: r1 = y0*k0; store r1 - y1.
        let tape = Tape {
            instrs: vec![
                Instr::Mul {
                    dst: 0,
                    a: Operand::Species(0),
                    b: Operand::Rate(0),
                },
                Instr::Sub {
                    dst: 1,
                    a: Operand::Reg(0),
                    b: Operand::Species(1),
                },
                Instr::Store {
                    idx: 0,
                    a: Operand::Reg(1),
                },
                Instr::Store {
                    idx: 1,
                    a: Operand::Species(0),
                },
            ],
            n_regs: 2,
            n_species: 2,
            n_rates: 1,
        };
        let exec = ExecTape::compile(&tape);
        assert!(exec
            .instrs()
            .iter()
            .any(|i| matches!(i, ExecInstr::MulSub { .. })));
        assert_eq!(exec.op_counts(), tape.op_counts());
        assert_engines_agree(&tape, &[2.0], &[3.0, 5.0]);
    }

    #[test]
    fn neg_folds_into_store() {
        // dA/dt = -k0*A: Mul, Neg, Store -> Mul, StoreNeg.
        let f = forest(vec![term(-1.0, 0, &[0])]);
        let tape = lower(&f);
        let exec = ExecTape::compile(&tape);
        assert!(exec
            .instrs()
            .iter()
            .any(|i| matches!(i, ExecInstr::StoreNeg { .. })));
        assert!(!exec
            .instrs()
            .iter()
            .any(|i| matches!(i, ExecInstr::Neg { .. })));
        assert_eq!(exec.op_counts(), tape.op_counts());
        assert_engines_agree(&tape, &[2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], &[3.0]);
    }

    #[test]
    fn multi_use_mul_does_not_fuse() {
        // r0 = y0*k0 is read by the Add AND a Store: fusing would lose
        // the stored value.
        let tape = Tape {
            instrs: vec![
                Instr::Mul {
                    dst: 0,
                    a: Operand::Species(0),
                    b: Operand::Rate(0),
                },
                Instr::Add {
                    dst: 1,
                    a: Operand::Reg(0),
                    b: Operand::Species(1),
                },
                Instr::Store {
                    idx: 0,
                    a: Operand::Reg(1),
                },
                Instr::Store {
                    idx: 1,
                    a: Operand::Reg(0),
                },
            ],
            n_regs: 2,
            n_species: 2,
            n_rates: 1,
        };
        let exec = ExecTape::compile(&tape);
        assert!(!exec
            .instrs()
            .iter()
            .any(|i| matches!(i, ExecInstr::MulAdd { .. })));
        assert_engines_agree(&tape, &[2.0], &[3.0, 5.0]);
    }

    #[test]
    fn squared_sum_operand_does_not_fuse() {
        // Add reads the Mul's destination twice ((a*b) + (a*b)): a single
        // FMA cannot express it.
        let tape = Tape {
            instrs: vec![
                Instr::Mul {
                    dst: 0,
                    a: Operand::Species(0),
                    b: Operand::Rate(0),
                },
                Instr::Add {
                    dst: 1,
                    a: Operand::Reg(0),
                    b: Operand::Reg(0),
                },
                Instr::Store {
                    idx: 0,
                    a: Operand::Reg(1),
                },
            ],
            n_regs: 2,
            n_species: 1,
            n_rates: 1,
        };
        let exec = ExecTape::compile(&tape);
        assert!(!exec
            .instrs()
            .iter()
            .any(|i| matches!(i, ExecInstr::MulAdd { .. })));
        assert_engines_agree(&tape, &[2.0], &[3.0]);
    }

    #[test]
    fn register_reuse_blocks_unsound_fusion() {
        // r0 is redefined between its definition and a later read; the
        // read-count analysis is per-definition, so the first Mul (read
        // only by the adjacent Add) fuses while the value stays correct.
        let tape = Tape {
            instrs: vec![
                Instr::Mul {
                    dst: 0,
                    a: Operand::Species(0),
                    b: Operand::Rate(0),
                },
                Instr::Add {
                    dst: 0,
                    a: Operand::Reg(0),
                    b: Operand::Species(1),
                },
                Instr::Store {
                    idx: 0,
                    a: Operand::Reg(0),
                },
                Instr::Store {
                    idx: 1,
                    a: Operand::Species(1),
                },
            ],
            n_regs: 1,
            n_species: 2,
            n_rates: 1,
        };
        let exec = ExecTape::compile(&tape);
        assert!(exec
            .instrs()
            .iter()
            .any(|i| matches!(i, ExecInstr::MulAdd { .. })));
        assert_engines_agree(&tape, &[2.0], &[3.0, 5.0]);
    }

    #[test]
    fn frame_rebinds_across_tapes() {
        let fa = forest(vec![term(2.0, 0, &[0])]);
        let fb = forest(vec![term(5.0, 0, &[0])]);
        let (ta, tb) = (lower(&fa), lower(&fb));
        let (ea, eb) = (ExecTape::compile(&ta), ExecTape::compile(&tb));
        let mut frame = ExecFrame::new();
        let rates = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let mut out = vec![0.0];
        ea.eval(&rates, &[3.0], &mut out, &mut frame);
        assert_eq!(out[0], 6.0);
        // Same frame, different tape with a different constant pool.
        eb.eval(&rates, &[3.0], &mut out, &mut frame);
        assert_eq!(out[0], 15.0);
        ea.eval(&rates, &[3.0], &mut out, &mut frame);
        assert_eq!(out[0], 6.0);
    }

    #[test]
    fn batch_handles_odd_state_counts() {
        let f = forest(vec![Expr::sum(vec![
            term(1.0, 0, &[0]),
            term(-0.5, 1, &[0]),
        ])]);
        let tape = lower(&f);
        let exec = ExecTape::compile(&tape);
        let rates = [2.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let mut frame = ExecFrame::new();
        for n_states in [1usize, 2, LANES - 1, LANES, LANES + 1, 3 * LANES + 5] {
            let ys: Vec<f64> = (0..n_states).map(|s| 0.1 + s as f64).collect();
            let mut ydots = vec![0.0; n_states];
            exec.eval_batch(&rates, &ys, &mut ydots, &mut frame);
            for s in 0..n_states {
                let mut want = vec![0.0];
                tape.eval(&rates, &[ys[s]], &mut want);
                assert_eq!(want[0], ydots[s], "state {s} of {n_states}");
            }
        }
    }

    #[test]
    fn op_counts_parity_through_optimizer_passes() {
        use crate::cse::{cse_forest, CseOptions};
        use crate::distopt::distribute_forest;
        use crate::simplify::simplify_forest;
        use crate::tape::compact_registers;
        // A small redundant system through each optimizer stage: parity
        // must hold after simplification, distribution, CSE and register
        // compaction alike.
        let f = forest(vec![
            Expr::sum(vec![
                term(2.0, 0, &[0, 1]),
                term(-1.0, 1, &[2]),
                term(1.0, 2, &[0, 2]),
            ]),
            Expr::sum(vec![term(-2.0, 0, &[0, 1]), term(1.0, 1, &[2])]),
            term(-3.0, 2, &[1, 1]),
        ]);
        let simplified = simplify_forest(&f);
        let distributed = distribute_forest(&simplified);
        let csed = cse_forest(&distributed, CseOptions::default());
        for (name, forest) in [
            ("input", &f),
            ("simplify", &simplified),
            ("distopt", &distributed),
            ("cse", &csed),
        ] {
            let tape = compact_registers(&lower(forest));
            let exec = ExecTape::compile(&tape);
            assert_eq!(
                exec.op_counts(),
                tape.op_counts(),
                "op_counts diverged after {name}"
            );
        }
    }

    /// A forest of structurally identical reaction stanzas — the shape
    /// the reroll pass exists for.
    fn stanza_forest(n_eq: usize) -> ExprForest {
        forest(
            (0..n_eq)
                .map(|i| {
                    let i = i as u32;
                    Expr::sum(vec![
                        term(1.0, i % 8, &[i % 5, (i + 1) % 5]),
                        term(-1.0, (i + 3) % 8, &[(i + 2) % 5]),
                    ])
                })
                .collect(),
        )
    }

    fn loose() -> crate::tape::RerollOptions {
        crate::tape::RerollOptions {
            max_body: 64,
            min_trips: 2,
            min_savings: 1,
        }
    }

    fn assert_rolled_matches_flat(tape: &Tape, rates: &[f64], y: &[f64]) {
        let flat = ExecTape::compile(tape);
        let rolled = ExecTape::compile_rolled(tape, &loose());
        assert_eq!(rolled.len(), flat.len(), "executed count must not change");
        assert_eq!(rolled.op_counts(), flat.op_counts());
        let mut frame = ExecFrame::new();
        let n = tape.n_species;
        let mut want = vec![0.0; n];
        flat.eval(rates, y, &mut want, &mut frame);
        let mut got = vec![0.0; n];
        rolled.eval(rates, y, &mut got, &mut frame);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&want), bits(&got), "scalar rolled exec diverged");
        let n_states = LANES + 3;
        let ys: Vec<f64> = (0..n_states).flat_map(|_| y.iter().copied()).collect();
        let mut flat_out = vec![0.0; n_states * n];
        let mut rolled_out = vec![0.0; n_states * n];
        flat.eval_batch(rates, &ys, &mut flat_out, &mut frame);
        rolled.eval_batch(rates, &ys, &mut rolled_out, &mut frame);
        assert_eq!(
            bits(&flat_out),
            bits(&rolled_out),
            "batched rolled exec diverged"
        );
    }

    #[test]
    fn rolled_exec_compresses_stanza_runs() {
        let tape = crate::tape::compact_registers(&lower(&stanza_forest(24)));
        let rolled = ExecTape::compile_rolled(&tape, &loose());
        assert!(rolled.is_rolled(), "stanza tape should produce loops");
        assert!(rolled.loop_count() >= 1);
        assert!(
            rolled.stored_len() < rolled.len() / 2,
            "stored {} vs executed {}: expected >2x compression",
            rolled.stored_len(),
            rolled.len()
        );
        let rates: Vec<f64> = (0..8).map(|k| 0.3 + 0.2 * k as f64).collect();
        let y: Vec<f64> = (0..tape.n_species).map(|s| 0.5 + 0.1 * s as f64).collect();
        assert_rolled_matches_flat(&tape, &rates, &y);
    }

    #[test]
    fn rolled_exec_degenerates_to_flat_on_irregular_tapes() {
        let f = forest(vec![
            Expr::sum(vec![term(2.0, 0, &[0, 1]), term(-1.0, 1, &[2])]),
            term(-3.0, 2, &[1, 1]),
            term(1.0, 0, &[0]),
        ]);
        let tape = lower(&f);
        let rolled = ExecTape::compile_rolled(
            &tape,
            &crate::tape::RerollOptions {
                max_body: 64,
                min_trips: 2,
                min_savings: 1000,
            },
        );
        assert!(!rolled.is_rolled());
        assert_eq!(rolled.loop_count(), 0);
        assert_eq!(rolled.stored_len(), rolled.len());
        assert_rolled_matches_flat(
            &tape,
            &[1.1, 2.2, 3.3, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[0.5, 0.7, 0.9],
        );
    }

    #[test]
    fn rolled_exec_preserves_fusion_inside_bodies() {
        // Each stanza fuses Mul+Add -> MulAdd before rolling; the rolled
        // bodies must carry the fused opcodes.
        let tape = crate::tape::compact_registers(&lower(&stanza_forest(16)));
        let flat = ExecTape::compile(&tape);
        let has_fused = flat
            .instrs()
            .iter()
            .any(|i| matches!(i, ExecInstr::MulAdd { .. } | ExecInstr::SubMul { .. }));
        assert!(has_fused, "stanza forest should fuse");
        let rolled = ExecTape::compile_rolled(&tape, &loose());
        assert!(rolled.is_rolled());
        assert_eq!(rolled.op_counts(), flat.op_counts());
    }

    #[test]
    fn rolled_exec_is_bit_identical_on_random_forests() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        for trial in 0..30 {
            let n_eq = 4 + (trial % 6);
            let f = forest(
                (0..n_eq)
                    .map(|_| {
                        Expr::sum(
                            (0..rng.gen_range(1..6))
                                .map(|_| {
                                    let sp: Vec<u32> = (0..rng.gen_range(1..4))
                                        .map(|_| rng.gen_range(0..n_eq as u32))
                                        .collect();
                                    term(rng.gen_range(1..3) as f64, rng.gen_range(0..3), &sp)
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            );
            let tape = crate::tape::compact_registers(&lower(&f));
            let rates: Vec<f64> = (0..8).map(|_| rng.gen_range(0.1..2.0)).collect();
            let y: Vec<f64> = (0..tape.n_species)
                .map(|_| rng.gen_range(0.1..2.0))
                .collect();
            assert_rolled_matches_flat(&tape, &rates, &y);
        }
    }
}
