//! Domain-specific common subexpression elimination (paper §3.3, Fig. 7).
//!
//! The paper's CSE exploits three domain facts: variable *names* label
//! *values* (single assignment per solver iteration, no aliasing, rate
//! constants pre-deduplicated by value), every expression is kept in a
//! canonical fully-non-distributed form with terms in canonical
//! lexicographical order, and expressions are indexed by length so that
//! equal-length matching is exact matching and shorter-vs-longer matching
//! is *prefix* matching ("finding the longest matching prefix of e_long
//! corresponds to finding the most redundancy").
//!
//! Implementation: the forest is hash-consed into a DAG (equal canonical
//! subexpressions intern to one node — the equal-length case of Fig. 7);
//! any interior node referenced more than once becomes a temporary. A
//! second, length-indexed pass then performs Fig. 7's longest-first prefix
//! matching over the node definitions, rewriting `A+B+C+D` as `temp0 + D`
//! when `temp0 = A+B+C` exists. Temporaries are emitted in dependency
//! order (shorter common subexpressions first), exactly as the paper
//! requires for its write-before-read guarantee.

use std::collections::HashMap;

use crate::expr::{Coeff, Expr, ExprForest, TempId};

/// Options for the CSE pass.
#[derive(Debug, Clone, Copy)]
pub struct CseOptions {
    /// Minimum number of uses for a subexpression to earn a temporary.
    pub min_uses: usize,
    /// Run the Fig. 7 prefix-matching phase (equal-length exact matching
    /// always runs via hash-consing).
    pub prefix_matching: bool,
}

impl Default for CseOptions {
    fn default() -> CseOptions {
        CseOptions {
            min_uses: 2,
            prefix_matching: true,
        }
    }
}

/// Node id within the hash-consed DAG.
type NodeId = usize;

/// Sentinel node representing the multiplicative unit (pure constants in
/// sums reference it).
const UNIT: NodeId = 0;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Node {
    Unit,
    Rate(u32),
    Species(u32),
    /// Unit-coefficient product of ≥2 factor nodes, sorted.
    Prod(Vec<NodeId>),
    /// Sum of coefficient-scaled children, ≥2, sorted.
    Sum(Vec<(Coeff, NodeId)>),
}

struct Dag {
    nodes: Vec<Node>,
    index: HashMap<Node, NodeId>,
    uses: Vec<usize>,
    /// Resolution of the *input* forest's temporaries: `Temp(t)` interns
    /// to `temp_nodes[t]` (a coefficient and the body's node).
    temp_nodes: Vec<(f64, NodeId)>,
}

impl Dag {
    fn new() -> Dag {
        let mut dag = Dag {
            nodes: Vec::new(),
            index: HashMap::new(),
            uses: Vec::new(),
            temp_nodes: Vec::new(),
        };
        let unit = dag.intern_node(Node::Unit);
        debug_assert_eq!(unit, UNIT);
        dag
    }

    fn intern_node(&mut self, node: Node) -> NodeId {
        self.intern_node_traced(node).0
    }

    /// Intern, also reporting whether the node was newly created (children
    /// use-counts are charged exactly once, at creation).
    fn intern_node_traced(&mut self, node: Node) -> (NodeId, bool) {
        if let Some(&id) = self.index.get(&node) {
            return (id, false);
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        self.index.insert(node, id);
        self.uses.push(0);
        (id, true)
    }

    /// Intern an expression, returning `(coefficient, node)` such that the
    /// expression equals `coefficient * node`.
    fn intern_expr(&mut self, expr: &Expr) -> (f64, NodeId) {
        match expr {
            Expr::Const(c) => (c.0, UNIT),
            Expr::Rate(i) => (1.0, self.intern_node(Node::Rate(*i))),
            Expr::Species(i) => (1.0, self.intern_node(Node::Species(*i))),
            Expr::Temp(t) => self.temp_nodes[t.0 as usize],
            Expr::Prod(c, factors) => {
                let mut coeff = c.0;
                let mut ids: Vec<NodeId> = factors
                    .iter()
                    .map(|f| {
                        let (fc, id) = self.intern_expr(f);
                        coeff *= fc;
                        id
                    })
                    .collect();
                ids.sort_unstable();
                ids.retain(|&id| id != UNIT);
                match ids.len() {
                    0 => (coeff, UNIT),
                    1 => (coeff, ids[0]),
                    _ => {
                        let (id, is_new) = self.intern_node_traced(Node::Prod(ids.clone()));
                        // Children are charged one use per *distinct parent*,
                        // at parent creation time.
                        if is_new {
                            for &f in &ids {
                                self.uses[f] += 1;
                            }
                        }
                        (coeff, id)
                    }
                }
            }
            Expr::Sum(children) => {
                let mut pairs: Vec<(Coeff, NodeId)> = children
                    .iter()
                    .map(|ch| {
                        let (c, id) = self.intern_expr(ch);
                        (Coeff(c), id)
                    })
                    .collect();
                pairs.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
                let (id, is_new) = self.intern_node_traced(Node::Sum(pairs.clone()));
                if is_new {
                    for &(_, ch) in &pairs {
                        self.uses[ch] += 1;
                    }
                }
                (1.0, id)
            }
        }
    }
}

/// Apply CSE to a forest (typically after the distributive optimization;
/// the paper notes CSE is only run after the algebraic passes).
pub fn cse_forest(forest: &ExprForest, options: CseOptions) -> ExprForest {
    let mut dag = Dag::new();

    // Existing temporaries intern first; `Temp(t)` references then resolve
    // to the temp's *body node*, so re-running CSE (or running it after a
    // second distributive pass) sees one shared DAG rather than inlined
    // copies. Stale temps that lose all references simply drop out.
    for t in &forest.temps {
        let resolved = dag.intern_expr(t);
        dag.temp_nodes.push(resolved);
    }

    let roots: Vec<(f64, NodeId)> = forest.rhs.iter().map(|e| dag.intern_expr(e)).collect();
    for &(_, id) in &roots {
        dag.uses[id] += 1;
    }

    // Which nodes deserve temporaries? Interior nodes used at least
    // `min_uses` times.
    let mut force_temp = vec![false; dag.nodes.len()];
    for (id, node) in dag.nodes.iter().enumerate() {
        if matches!(node, Node::Prod(_) | Node::Sum(_)) && dag.uses[id] >= options.min_uses {
            force_temp[id] = true;
        }
    }

    // Fig. 7 prefix matching over node definitions, longest first.
    // `rewrites[id]` overrides a node's definition body.
    let mut prod_rewrites: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    let mut sum_rewrites: HashMap<NodeId, Vec<(Coeff, NodeId)>> = HashMap::new();
    if options.prefix_matching {
        prefix_pass(&dag, &mut force_temp, &mut prod_rewrites, &mut sum_rewrites);
    }

    // Topological emission order over final definitions.
    let order = topo_order(&dag, &prod_rewrites, &sum_rewrites);

    let mut temp_ids: HashMap<NodeId, TempId> = HashMap::new();
    let mut temps: Vec<Expr> = Vec::new();
    let mut rendered: HashMap<NodeId, Expr> = HashMap::new();

    for &id in &order {
        let body = render(
            id,
            &dag,
            &prod_rewrites,
            &sum_rewrites,
            &temp_ids,
            &mut rendered,
        );
        if force_temp[id] {
            let t = TempId(temps.len() as u32);
            temps.push(body);
            temp_ids.insert(id, t);
            rendered.insert(id, Expr::Temp(t));
        }
    }

    let rhs: Vec<Expr> = roots
        .iter()
        .map(|&(c, id)| {
            let base = render(
                id,
                &dag,
                &prod_rewrites,
                &sum_rewrites,
                &temp_ids,
                &mut rendered,
            );
            Expr::prod(c, vec![base])
        })
        .collect();

    ExprForest {
        temps,
        rhs,
        n_species: forest.n_species,
        n_rates: forest.n_rates,
    }
}

/// Fig. 7: index distinct expressions by length; for each expression
/// (longest first) find the longest shorter expression that is a prefix
/// of it, rewrite the long expression in terms of the short one's
/// temporary, and mark the short one's `genTemp` bit.
fn prefix_pass(
    dag: &Dag,
    force_temp: &mut [bool],
    prod_rewrites: &mut HashMap<NodeId, Vec<NodeId>>,
    sum_rewrites: &mut HashMap<NodeId, Vec<(Coeff, NodeId)>>,
) {
    // Products and sums are separate namespaces (a sum prefix can only be
    // another sum).
    let mut prod_by_def: HashMap<&[NodeId], NodeId> = HashMap::new();
    let mut sum_by_def: HashMap<&[(Coeff, NodeId)], NodeId> = HashMap::new();
    let mut prods: Vec<(NodeId, &Vec<NodeId>)> = Vec::new();
    let mut sums: Vec<(NodeId, &Vec<(Coeff, NodeId)>)> = Vec::new();
    for (id, node) in dag.nodes.iter().enumerate() {
        match node {
            Node::Prod(def) => {
                prod_by_def.insert(def.as_slice(), id);
                prods.push((id, def));
            }
            Node::Sum(def) => {
                sum_by_def.insert(def.as_slice(), id);
                sums.push((id, def));
            }
            _ => {}
        }
    }

    // Longest first (paper: len = maxLen down to 2).
    prods.sort_by_key(|(_, def)| std::cmp::Reverse(def.len()));
    for (id, def) in prods {
        if def.len() < 3 {
            continue; // a length-2 prefix of a length-2 product is the whole product
        }
        for i in (2..def.len()).rev() {
            if let Some(&short) = prod_by_def.get(&def[..i]) {
                if short == id {
                    continue;
                }
                prod_rewrites.insert(id, {
                    let mut new_def = vec![short];
                    new_def.extend_from_slice(&def[i..]);
                    new_def
                });
                force_temp[short] = true; // genTemp
                break;
            }
        }
    }

    sums.sort_by_key(|(_, def)| std::cmp::Reverse(def.len()));
    for (id, def) in sums {
        if def.len() < 3 {
            continue;
        }
        for i in (2..def.len()).rev() {
            if let Some(&short) = sum_by_def.get(&def[..i]) {
                if short == id {
                    continue;
                }
                sum_rewrites.insert(id, {
                    let mut new_def = vec![(Coeff(1.0), short)];
                    new_def.extend_from_slice(&def[i..]);
                    new_def
                });
                force_temp[short] = true; // genTemp
                break;
            }
        }
    }
}

/// Children of a node under the final (possibly rewritten) definition.
fn children_of(
    id: NodeId,
    dag: &Dag,
    prod_rewrites: &HashMap<NodeId, Vec<NodeId>>,
    sum_rewrites: &HashMap<NodeId, Vec<(Coeff, NodeId)>>,
) -> Vec<NodeId> {
    match &dag.nodes[id] {
        Node::Prod(def) => prod_rewrites.get(&id).unwrap_or(def).clone(),
        Node::Sum(def) => sum_rewrites
            .get(&id)
            .map(|d| d.iter().map(|&(_, c)| c).collect())
            .unwrap_or_else(|| def.iter().map(|&(_, c)| c).collect()),
        _ => Vec::new(),
    }
}

/// DFS topological order (children before parents) over final definitions.
fn topo_order(
    dag: &Dag,
    prod_rewrites: &HashMap<NodeId, Vec<NodeId>>,
    sum_rewrites: &HashMap<NodeId, Vec<(Coeff, NodeId)>>,
) -> Vec<NodeId> {
    let n = dag.nodes.len();
    let mut state = vec![0u8; n]; // 0 unvisited, 1 in stack, 2 done
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(NodeId, bool)> = (0..n).rev().map(|i| (i, false)).collect();
    while let Some((id, expanded)) = stack.pop() {
        if expanded {
            state[id] = 2;
            order.push(id);
            continue;
        }
        if state[id] != 0 {
            continue;
        }
        state[id] = 1;
        stack.push((id, true));
        for ch in children_of(id, dag, prod_rewrites, sum_rewrites) {
            if state[ch] == 0 {
                stack.push((ch, false));
            }
        }
    }
    order
}

/// Render a node to an expression, substituting temporaries.
fn render(
    id: NodeId,
    dag: &Dag,
    prod_rewrites: &HashMap<NodeId, Vec<NodeId>>,
    sum_rewrites: &HashMap<NodeId, Vec<(Coeff, NodeId)>>,
    temp_ids: &HashMap<NodeId, TempId>,
    rendered: &mut HashMap<NodeId, Expr>,
) -> Expr {
    if let Some(t) = temp_ids.get(&id) {
        return Expr::Temp(*t);
    }
    if let Some(e) = rendered.get(&id) {
        return e.clone();
    }
    let expr = match &dag.nodes[id] {
        Node::Unit => Expr::constant(1.0),
        Node::Rate(i) => Expr::Rate(*i),
        Node::Species(i) => Expr::Species(*i),
        Node::Prod(def) => {
            let def = prod_rewrites.get(&id).unwrap_or(def).clone();
            let factors = def
                .iter()
                .map(|&f| render(f, dag, prod_rewrites, sum_rewrites, temp_ids, rendered))
                .collect();
            Expr::prod(1.0, factors)
        }
        Node::Sum(def) => {
            let def = sum_rewrites
                .get(&id)
                .cloned()
                .unwrap_or_else(|| def.clone());
            let children = def
                .iter()
                .map(|&(c, ch)| {
                    if ch == UNIT {
                        Expr::constant(c.0)
                    } else {
                        let base = render(ch, dag, prod_rewrites, sum_rewrites, temp_ids, rendered);
                        Expr::prod(c.0, vec![base])
                    }
                })
                .collect();
            Expr::sum(children)
        }
    };
    rendered.insert(id, expr.clone());
    expr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distopt::distribute_forest;

    fn term(c: f64, rate: u32, species: &[u32]) -> Expr {
        let mut f = vec![Expr::Rate(rate)];
        f.extend(species.iter().map(|&s| Expr::Species(s)));
        Expr::prod(c, f)
    }

    fn forest(rhs: Vec<Expr>) -> ExprForest {
        let n = rhs.len();
        ExprForest {
            temps: vec![],
            rhs,
            n_species: n,
            n_rates: 8,
        }
    }

    fn assert_forest_equivalent(a: &ExprForest, b: &ExprForest, rates: &[f64], y: &[f64]) {
        let mut da = vec![0.0; a.rhs.len()];
        let mut db = vec![0.0; b.rhs.len()];
        a.eval_into(rates, y, &mut da);
        b.eval_into(rates, y, &mut db);
        for (i, (va, vb)) in da.iter().zip(&db).enumerate() {
            assert!(
                (va - vb).abs() <= 1e-9 * va.abs().max(vb.abs()).max(1.0),
                "rhs {i}: {va} vs {vb}"
            );
        }
    }

    #[test]
    fn shared_reaction_product_computed_once() {
        // dC/dt = -K*C*D ; dD/dt = -K*C*D ; dE/dt = +K*C*D
        // The mass-action product K*C*D must be computed once.
        let f = forest(vec![
            term(-1.0, 0, &[0, 1]),
            term(-1.0, 0, &[0, 1]),
            term(1.0, 0, &[0, 1]),
        ]);
        let out = cse_forest(&f, CseOptions::default());
        assert_eq!(out.temps.len(), 1);
        // temp = k0*y0*y1 (2 mults); uses are ±temp (0 ops)
        assert_eq!(out.op_counts().mults, 2);
        assert_eq!(out.op_counts().adds, 0);
        assert_forest_equivalent(&f, &out, &[3.0], &[2.0, 5.0, 0.0]);
    }

    #[test]
    fn paper_fig7_sum_prefix_example() {
        // dA += (A+B+C+D)*k1*E ; dB += (A+B+C+D)*k2*F ; dC += (A+B+C)*k3*G
        // Expect temp0 = A+B+C, temp1 = temp0 + D.
        let abcd = Expr::sum(vec![
            Expr::Species(0),
            Expr::Species(1),
            Expr::Species(2),
            Expr::Species(3),
        ]);
        let abc = Expr::sum(vec![Expr::Species(0), Expr::Species(1), Expr::Species(2)]);
        let f = forest(vec![
            Expr::prod(1.0, vec![abcd.clone(), Expr::Rate(1), Expr::Species(4)]),
            Expr::prod(1.0, vec![abcd, Expr::Rate(2), Expr::Species(5)]),
            Expr::prod(1.0, vec![abc, Expr::Rate(3), Expr::Species(6)]),
        ]);
        let out = cse_forest(&f, CseOptions::default());
        assert_eq!(out.temps.len(), 2, "temps: {:?}", out.temps);
        // First temp is the shorter sum (emitted before its user).
        let t0 = &out.temps[0];
        let Expr::Sum(ch0) = t0 else { panic!("{t0}") };
        assert_eq!(ch0.len(), 3);
        let t1 = &out.temps[1];
        let Expr::Sum(ch1) = t1 else { panic!("{t1}") };
        assert_eq!(ch1.len(), 2);
        assert!(ch1.contains(&Expr::Temp(TempId(0))), "{t1}");
        let rates = [0.0, 2.0, 3.0, 5.0];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert_forest_equivalent(&f, &out, &rates, &y);
        // Without prefix matching only exact duplicates share.
        let no_prefix = cse_forest(
            &f,
            CseOptions {
                min_uses: 2,
                prefix_matching: false,
            },
        );
        assert_eq!(no_prefix.temps.len(), 1);
        assert!(no_prefix.op_counts().adds > out.op_counts().adds);
    }

    #[test]
    fn product_prefix_matching() {
        // k*A*B used twice (gets a temp); k*A*B*C once — rewritten as
        // temp * C by the prefix pass.
        let f = forest(vec![
            term(1.0, 0, &[0, 1]),
            term(2.0, 0, &[0, 1]),
            term(1.0, 0, &[0, 1, 2]),
        ]);
        let out = cse_forest(&f, CseOptions::default());
        assert_eq!(out.temps.len(), 1);
        // temp = k*A*B: 2 mults; rhs: 0, 1 (coeff), 1 (temp*C) = 2
        assert_eq!(out.op_counts().mults, 4);
        assert_forest_equivalent(&f, &out, &[2.0], &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn single_use_expressions_stay_inline() {
        let f = forest(vec![term(1.0, 0, &[0]), term(1.0, 1, &[1])]);
        let out = cse_forest(&f, CseOptions::default());
        assert!(out.temps.is_empty());
        assert_eq!(out.op_counts(), f.op_counts());
    }

    #[test]
    fn identical_whole_equations_share() {
        let f = forest(vec![
            Expr::sum(vec![term(1.0, 0, &[0]), term(1.0, 1, &[1])]),
            Expr::sum(vec![term(1.0, 0, &[0]), term(1.0, 1, &[1])]),
        ]);
        let out = cse_forest(&f, CseOptions::default());
        assert_eq!(out.temps.len(), 1);
        assert!(matches!(out.rhs[0], Expr::Temp(_)));
        assert!(matches!(out.rhs[1], Expr::Temp(_)));
        assert_forest_equivalent(&f, &out, &[2.0, 3.0], &[1.5, 2.5]);
    }

    #[test]
    fn opposite_sign_products_share_base() {
        // -K*A*B and +K*A*B share the base product; signs stay at use site.
        let f = forest(vec![term(-1.0, 0, &[0, 1]), term(1.0, 0, &[0, 1])]);
        let out = cse_forest(&f, CseOptions::default());
        assert_eq!(out.temps.len(), 1);
        assert_eq!(out.op_counts().mults, 2);
        assert_forest_equivalent(&f, &out, &[2.0], &[3.0, 5.0]);
    }

    #[test]
    fn cse_after_distopt_preserves_semantics() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for round in 0..50 {
            let n_eq = rng.gen_range(2..8);
            let f = forest(
                (0..n_eq)
                    .map(|_| {
                        Expr::sum(
                            (0..rng.gen_range(1..8))
                                .map(|_| {
                                    let sp: Vec<u32> = (0..rng.gen_range(1..4))
                                        .map(|_| rng.gen_range(0..8))
                                        .collect();
                                    term(
                                        rng.gen_range(-3..4).max(1) as f64,
                                        rng.gen_range(0..4),
                                        &sp,
                                    )
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            );
            let dist = distribute_forest(&f);
            let out = cse_forest(&dist, CseOptions::default());
            let rates: Vec<f64> = (0..8).map(|_| rng.gen_range(0.1..2.0)).collect();
            let y: Vec<f64> = (0..8).map(|_| rng.gen_range(0.1..2.0)).collect();
            let mut expect = vec![0.0; f.rhs.len()];
            f.eval_into(&rates, &y, &mut expect);
            let mut got = vec![0.0; out.rhs.len()];
            out.eval_into(&rates, &y, &mut got);
            for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "round {round} rhs {i}: {a} vs {b}"
                );
            }
            assert!(
                out.op_counts().total() <= f.op_counts().total(),
                "round {round}: CSE increased ops"
            );
        }
    }

    #[test]
    fn idempotent_on_already_csed_forest() {
        let f = forest(vec![
            term(-1.0, 0, &[0, 1]),
            term(-1.0, 0, &[0, 1]),
            term(1.0, 0, &[0, 1]),
        ]);
        let once = cse_forest(&f, CseOptions::default());
        let twice = cse_forest(&once, CseOptions::default());
        assert_eq!(once.op_counts(), twice.op_counts());
        assert_forest_equivalent(&once, &twice, &[3.0], &[2.0, 5.0, 0.0]);
    }
}
