//! Native kernel compilation and loading.
//!
//! Takes the C source produced by [`emit_kernel`](crate::emit_c::emit_kernel),
//! hands it to the platform C compiler (`$CC`, falling back to `cc`, `gcc`,
//! `clang`) as `-O2 -fPIC -shared -ffp-contract=off`, and `dlopen`s the
//! resulting shared object behind the safe [`NativeKernel`] wrapper. This is
//! the last mile of the paper's pipeline: the optimized forest executing as
//! real machine code rather than an interpreted tape.
//!
//! Every kernel object exports its artifact fingerprint and dimensions
//! (`rms_key`, `rms_n_species`, …); [`NativeKernel::load`] validates them
//! against the expected [`KernelMeta`] before trusting any function pointer,
//! so a stale or truncated `.so` in the cache directory is detected and can
//! be quarantined by the caller instead of corrupting a simulation.
//!
//! Nothing in this module panics on a missing toolchain: every failure is a
//! diagnosable [`NativeError`] so the driver can fall back to the exec
//! engine.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Why a native kernel could not be produced or loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NativeError {
    /// No working C compiler was found on this machine.
    NoToolchain(String),
    /// The compiler ran but failed; payload holds its stderr.
    CompileFailed(String),
    /// `dlopen`/`dlsym` failed on the shared object.
    LoadFailed(String),
    /// The object loaded but its fingerprint or dimensions disagree with
    /// the artifact (stale or foreign `.so`).
    Mismatch(String),
    /// Native kernels are not supported on this platform.
    Unsupported(String),
    /// Filesystem error while writing source or renaming objects.
    Io(String),
}

impl fmt::Display for NativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeError::NoToolchain(m) => write!(f, "no C toolchain: {m}"),
            NativeError::CompileFailed(m) => write!(f, "C compilation failed: {m}"),
            NativeError::LoadFailed(m) => write!(f, "loading shared object failed: {m}"),
            NativeError::Mismatch(m) => write!(f, "kernel object mismatch: {m}"),
            NativeError::Unsupported(m) => write!(f, "native kernels unsupported: {m}"),
            NativeError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for NativeError {}

/// A detected C compiler.
#[derive(Debug, Clone)]
pub struct Toolchain {
    /// Command name or path (e.g. `cc`).
    pub cc: String,
    /// First line of `--version` output.
    pub version: String,
}

/// Find a working C compiler.
///
/// Honors `$CC` when set and non-empty (and then tries *only* that, so an
/// explicit override never silently falls back to a different compiler);
/// otherwise probes `cc`, `gcc`, `clang` in order. Probing is a single
/// `--version` spawn per candidate — cheap next to an actual compile, and
/// deliberately uncached so tests and long-running services observe
/// environment changes.
pub fn probe_toolchain() -> Result<Toolchain, NativeError> {
    let explicit = std::env::var("CC").ok().filter(|s| !s.trim().is_empty());
    let candidates: Vec<String> = match &explicit {
        Some(cc) => vec![cc.clone()],
        None => ["cc", "gcc", "clang"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    for cand in &candidates {
        if let Ok(out) = Command::new(cand).arg("--version").output() {
            if out.status.success() {
                let version = String::from_utf8_lossy(&out.stdout)
                    .lines()
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string();
                return Ok(Toolchain {
                    cc: cand.clone(),
                    version,
                });
            }
        }
    }
    Err(NativeError::NoToolchain(format!(
        "tried {} (set $CC to override)",
        candidates.join(", ")
    )))
}

/// Compile `source` to a shared object at `out_so`.
///
/// The source is kept next to the object as `<out_so>.c` for inspection;
/// the object is built to a process-unique temporary and renamed into
/// place, so concurrent builders of the same key race benignly.
pub fn compile_kernel(
    source: &str,
    out_so: &Path,
    toolchain: &Toolchain,
) -> Result<(), NativeError> {
    compile_kernel_units(std::slice::from_ref(&source.to_string()), out_so, toolchain).map(|_| ())
}

/// Wall-clock breakdown of a (possibly multi-unit) kernel build, for the
/// driver's pipeline report.
#[derive(Debug, Clone, Default)]
pub struct CompileTiming {
    /// Seconds spent compiling each translation unit. Units compile
    /// concurrently, so the build's compile wall-time is the maximum,
    /// not the sum.
    pub unit_seconds: Vec<f64>,
    /// Seconds spent in the final link (0 for single-unit builds, which
    /// compile and link in one compiler invocation).
    pub link_seconds: f64,
}

impl CompileTiming {
    /// Longest single unit compile.
    pub fn max_unit_seconds(&self) -> f64 {
        self.unit_seconds.iter().copied().fold(0.0, f64::max)
    }
}

/// Invoke the C compiler once, retrying without `-march=native` for
/// compilers that reject it.
///
/// `-march=native` lets the lane kernel's 512-bit vectors map onto the
/// host's widest SIMD instead of being split into baseline-SSE2 halves
/// (the cache directory is per-machine, so host-tuned objects are safe).
/// `-ffp-contract=off` keeps the op-for-op rounding identical to the
/// interpreter either way.
fn run_cc(toolchain: &Toolchain, args: &[&std::ffi::OsStr]) -> Result<(), NativeError> {
    let run = |march: bool| {
        let mut cmd = Command::new(&toolchain.cc);
        if march {
            cmd.arg("-march=native");
        }
        cmd.args(args)
            .output()
            .map_err(|e| NativeError::NoToolchain(format!("{}: {e}", toolchain.cc)))
    };
    let mut out = run(true)?;
    if !out.status.success() {
        out = run(false)?;
    }
    if !out.status.success() {
        let stderr = String::from_utf8_lossy(&out.stderr);
        let first = stderr.lines().take(4).collect::<Vec<_>>().join("; ");
        return Err(NativeError::CompileFailed(format!(
            "{} exited with {}: {first}",
            toolchain.cc, out.status
        )));
    }
    Ok(())
}

/// Compile one or more translation units to a shared object at `out_so`.
///
/// A single unit takes the historic compile-and-link-in-one path. With
/// several units, each `cc -c` runs on its own thread — chunked kernels
/// are embarrassingly parallel to compile — followed by a single
/// `cc -shared` link. Sources stay next to the object (`<out_so>.c` or
/// `<out_so>.u<i>.c`) for inspection; the object is built at a
/// process-unique temporary and renamed into place, so concurrent
/// builders of the same key race benignly.
pub fn compile_kernel_units(
    units: &[String],
    out_so: &Path,
    toolchain: &Toolchain,
) -> Result<CompileTiming, NativeError> {
    use std::time::Instant;
    assert!(!units.is_empty(), "no translation units to compile");
    let pid = std::process::id();
    let tmp = out_so.with_extension(format!("so.{pid}.tmp"));
    let fail_io = |p: &Path, e: std::io::Error| NativeError::Io(format!("{}: {e}", p.display()));

    if units.len() == 1 {
        let c_path = out_so.with_extension("so.c");
        std::fs::write(&c_path, &units[0]).map_err(|e| fail_io(&c_path, e))?;
        let clock = Instant::now();
        let args = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-o"];
        let mut full: Vec<&std::ffi::OsStr> = args.iter().map(|s| s.as_ref()).collect();
        full.push(tmp.as_os_str());
        full.push(c_path.as_os_str());
        if let Err(e) = run_cc(toolchain, &full) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        let timing = CompileTiming {
            unit_seconds: vec![clock.elapsed().as_secs_f64()],
            link_seconds: 0.0,
        };
        std::fs::rename(&tmp, out_so).map_err(|e| fail_io(out_so, e))?;
        return Ok(timing);
    }

    // Write every unit, then compile them concurrently.
    let mut c_paths = Vec::with_capacity(units.len());
    let mut obj_paths = Vec::with_capacity(units.len());
    for (i, unit) in units.iter().enumerate() {
        let c_path = out_so.with_extension(format!("so.u{i}.c"));
        std::fs::write(&c_path, unit).map_err(|e| fail_io(&c_path, e))?;
        obj_paths.push(out_so.with_extension(format!("so.u{i}.{pid}.o")));
        c_paths.push(c_path);
    }
    let cleanup = |paths: &[PathBuf]| {
        for p in paths {
            let _ = std::fs::remove_file(p);
        }
    };
    let compiled: Vec<Result<f64, NativeError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..units.len())
            .map(|i| {
                let (c_path, obj_path) = (&c_paths[i], &obj_paths[i]);
                scope.spawn(move || {
                    let clock = Instant::now();
                    let args = ["-O2", "-fPIC", "-c", "-ffp-contract=off", "-o"];
                    let mut full: Vec<&std::ffi::OsStr> = args.iter().map(|s| s.as_ref()).collect();
                    full.push(obj_path.as_os_str());
                    full.push(c_path.as_os_str());
                    run_cc(toolchain, &full).map(|()| clock.elapsed().as_secs_f64())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("unit compile thread panicked"))
            .collect()
    });
    let mut unit_seconds = Vec::with_capacity(units.len());
    for r in compiled {
        match r {
            Ok(secs) => unit_seconds.push(secs),
            Err(e) => {
                cleanup(&obj_paths);
                return Err(e);
            }
        }
    }

    let clock = Instant::now();
    let args = ["-shared", "-o"];
    let mut full: Vec<&std::ffi::OsStr> = args.iter().map(|s| s.as_ref()).collect();
    full.push(tmp.as_os_str());
    for obj in &obj_paths {
        full.push(obj.as_os_str());
    }
    let linked = run_cc(toolchain, &full);
    let link_seconds = clock.elapsed().as_secs_f64();
    cleanup(&obj_paths);
    if let Err(e) = linked {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, out_so).map_err(|e| fail_io(out_so, e))?;
    Ok(CompileTiming {
        unit_seconds,
        link_seconds,
    })
}

/// Expected identity of a kernel object, validated on load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelMeta {
    /// Content-addressed artifact fingerprint.
    pub key: u128,
    /// State dimension.
    pub n_species: usize,
    /// Rate-constant count.
    pub n_rates: usize,
    /// Analytic-Jacobian nnz when `ode_jac` is expected.
    pub jac_nnz: Option<usize>,
    /// `(jac_nnz, dfdp_nnz)` when `ode_sens` is expected.
    pub sens_nnz: Option<(usize, usize)>,
}

type RhsFn = unsafe extern "C" fn(*const f64, *const f64, *mut f64);
type BatchFn = unsafe extern "C" fn(*const f64, *const f64, *mut f64, std::os::raw::c_long);
type JacFn = unsafe extern "C" fn(*const f64, *const f64, *mut f64, *mut f64);
type SensFn = unsafe extern "C" fn(*const f64, *const f64, *mut f64, *mut f64, *mut f64);

/// A loaded native kernel: a `dlopen`ed shared object whose exported
/// functions evaluate the RHS (scalar and batched), and optionally the
/// analytic Jacobian and sensitivity tails, of one compiled model.
///
/// All entry points take slices and assert dimensions, so no unsafety
/// leaks to callers. The underlying handle is closed on drop.
pub struct NativeKernel {
    #[cfg(unix)]
    handle: *mut std::os::raw::c_void,
    rhs: RhsFn,
    rhs_batch: BatchFn,
    jac: Option<JacFn>,
    sens: Option<SensFn>,
    meta: KernelMeta,
    loop_count: usize,
    rolled_instrs: usize,
    path: PathBuf,
}

// Safety: the kernel functions are pure (read inputs, write the provided
// output buffers, no global state), and the raw handle is only used by
// `Drop`, which runs at most once after all borrows end.
unsafe impl Send for NativeKernel {}
unsafe impl Sync for NativeKernel {}

impl fmt::Debug for NativeKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeKernel")
            .field("path", &self.path)
            .field("key", &format_args!("{:032x}", self.meta.key))
            .field("n_species", &self.meta.n_species)
            .field("n_rates", &self.meta.n_rates)
            .field("jac", &self.jac.is_some())
            .field("sens", &self.sens.is_some())
            .finish()
    }
}

#[cfg(unix)]
mod dl {
    use std::os::raw::{c_char, c_int, c_void};

    #[link(name = "dl")]
    extern "C" {
        pub fn dlopen(filename: *const c_char, flag: c_int) -> *mut c_void;
        pub fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
        pub fn dlclose(handle: *mut c_void) -> c_int;
        pub fn dlerror() -> *mut c_char;
    }

    pub const RTLD_NOW: c_int = 2;

    /// Drain and render the thread's dlerror state.
    pub fn last_error() -> String {
        unsafe {
            let p = dlerror();
            if p.is_null() {
                "unknown dl error".to_string()
            } else {
                std::ffi::CStr::from_ptr(p).to_string_lossy().into_owned()
            }
        }
    }
}

#[cfg(unix)]
impl NativeKernel {
    /// Load and validate a kernel object.
    ///
    /// Returns [`NativeError::LoadFailed`] when the file is not a loadable
    /// shared object, and [`NativeError::Mismatch`] when it loads but was
    /// built for a different artifact (wrong fingerprint, dimensions, ABI,
    /// or missing an expected function). Both cases mean the file should
    /// be quarantined and rebuilt.
    pub fn load(path: &Path, expect: &KernelMeta) -> Result<Self, NativeError> {
        use std::ffi::CString;

        let c_path = CString::new(path.as_os_str().as_encoded_bytes())
            .map_err(|_| NativeError::LoadFailed("path contains NUL".to_string()))?;
        let handle = unsafe { dl::dlopen(c_path.as_ptr(), dl::RTLD_NOW) };
        if handle.is_null() {
            return Err(NativeError::LoadFailed(dl::last_error()));
        }
        // From here on, close the handle on any failure path.
        let close = |e: NativeError| -> NativeError {
            unsafe { dl::dlclose(handle) };
            e
        };
        let sym = |name: &str| -> Result<*mut std::os::raw::c_void, NativeError> {
            let c_name = CString::new(name).expect("symbol names are NUL-free");
            let p = unsafe { dl::dlsym(handle, c_name.as_ptr()) };
            if p.is_null() {
                Err(NativeError::Mismatch(format!("missing symbol {name}")))
            } else {
                Ok(p)
            }
        };
        let read_i32 =
            |name: &str| -> Result<i32, NativeError> { Ok(unsafe { *(sym(name)? as *const i32) }) };
        let read_i64 =
            |name: &str| -> Result<i64, NativeError> { Ok(unsafe { *(sym(name)? as *const i64) }) };

        let result = (|| -> Result<Self, NativeError> {
            let abi = read_i32("rms_abi_version")?;
            if abi != crate::emit_c::KERNEL_ABI_VERSION {
                return Err(NativeError::Mismatch(format!(
                    "abi version {abi}, expected {}",
                    crate::emit_c::KERNEL_ABI_VERSION
                )));
            }
            let key_ptr = sym("rms_key")? as *const u64;
            let key = unsafe { (*key_ptr as u128) | ((*key_ptr.add(1) as u128) << 64) };
            if key != expect.key {
                return Err(NativeError::Mismatch(format!(
                    "fingerprint {key:032x}, expected {:032x}",
                    expect.key
                )));
            }
            let n_species = read_i32("rms_n_species")? as usize;
            let n_rates = read_i32("rms_n_rates")? as usize;
            if n_species != expect.n_species || n_rates != expect.n_rates {
                return Err(NativeError::Mismatch(format!(
                    "dimensions {n_species}x{n_rates}, expected {}x{}",
                    expect.n_species, expect.n_rates
                )));
            }
            let jac_nnz = read_i64("rms_jac_nnz")?;
            let sens_jac_nnz = read_i64("rms_sens_jac_nnz")?;
            let dfdp_nnz = read_i64("rms_dfdp_nnz")?;
            // ABI v2 objects always export the reroll counters (0 when
            // the kernel was emitted fully unrolled).
            let loop_count = read_i64("rms_loop_count")?.max(0) as usize;
            let rolled_instrs = read_i64("rms_rolled_instrs")?.max(0) as usize;

            let rhs: RhsFn = unsafe { std::mem::transmute(sym("ode_rhs")?) };
            let rhs_batch: BatchFn = unsafe { std::mem::transmute(sym("ode_rhs_batch")?) };
            let jac = match expect.jac_nnz {
                None => None,
                Some(n) => {
                    if jac_nnz != n as i64 {
                        return Err(NativeError::Mismatch(format!(
                            "jacobian nnz {jac_nnz}, expected {n}"
                        )));
                    }
                    Some(unsafe {
                        std::mem::transmute::<*mut std::ffi::c_void, JacFn>(sym("ode_jac")?)
                    })
                }
            };
            let sens = match expect.sens_nnz {
                None => None,
                Some((jn, dn)) => {
                    if sens_jac_nnz != jn as i64 || dfdp_nnz != dn as i64 {
                        return Err(NativeError::Mismatch(format!(
                            "sensitivity nnz ({sens_jac_nnz}, {dfdp_nnz}), expected ({jn}, {dn})"
                        )));
                    }
                    Some(unsafe {
                        std::mem::transmute::<*mut std::ffi::c_void, SensFn>(sym("ode_sens")?)
                    })
                }
            };
            Ok(NativeKernel {
                handle,
                rhs,
                rhs_batch,
                jac,
                sens,
                meta: *expect,
                loop_count,
                rolled_instrs,
                path: path.to_path_buf(),
            })
        })();
        result.map_err(close)
    }
}

#[cfg(not(unix))]
impl NativeKernel {
    /// Native kernels require `dlopen`; unsupported on this platform.
    pub fn load(_path: &Path, _expect: &KernelMeta) -> Result<Self, NativeError> {
        Err(NativeError::Unsupported(
            "dlopen-based kernel loading is only implemented for unix".to_string(),
        ))
    }
}

impl NativeKernel {
    /// State dimension.
    pub fn n_species(&self) -> usize {
        self.meta.n_species
    }

    /// Rate-constant count.
    pub fn n_rates(&self) -> usize {
        self.meta.n_rates
    }

    /// Fingerprint baked into the object.
    pub fn key(&self) -> u128 {
        self.meta.key
    }

    /// Path of the loaded shared object.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loop regions the object's kernel was rendered with (0 when emitted
    /// fully unrolled).
    pub fn loop_count(&self) -> usize {
        self.loop_count
    }

    /// Flat instructions the emitter absorbed into rendered loops.
    pub fn rolled_instrs(&self) -> usize {
        self.rolled_instrs
    }

    /// Whether `ode_jac` was loaded.
    pub fn has_jacobian(&self) -> bool {
        self.jac.is_some()
    }

    /// Whether `ode_sens` was loaded.
    pub fn has_sensitivity(&self) -> bool {
        self.sens.is_some()
    }

    /// Analytic-Jacobian nnz (0 when absent).
    pub fn jac_nnz(&self) -> usize {
        self.meta.jac_nnz.unwrap_or(0)
    }

    /// `∂f/∂p` nnz (0 when absent).
    pub fn dfdp_nnz(&self) -> usize {
        self.meta.sens_nnz.map_or(0, |(_, d)| d)
    }

    /// Evaluate the RHS for one state.
    pub fn eval(&self, rates: &[f64], y: &[f64], ydot: &mut [f64]) {
        assert_eq!(rates.len(), self.meta.n_rates);
        assert_eq!(y.len(), self.meta.n_species);
        assert_eq!(ydot.len(), self.meta.n_species);
        unsafe { (self.rhs)(rates.as_ptr(), y.as_ptr(), ydot.as_mut_ptr()) }
    }

    /// Evaluate the RHS for `ys.len() / n_species` row-major states at
    /// once through the batched entry point.
    pub fn eval_batch(&self, rates: &[f64], ys: &[f64], ydots: &mut [f64]) {
        let n = self.meta.n_species;
        assert_eq!(rates.len(), self.meta.n_rates);
        assert_eq!(ys.len() % n, 0, "ys must hold whole states");
        assert_eq!(ydots.len(), ys.len());
        let n_states = (ys.len() / n) as std::os::raw::c_long;
        unsafe { (self.rhs_batch)(rates.as_ptr(), ys.as_ptr(), ydots.as_mut_ptr(), n_states) }
    }

    /// Evaluate RHS + analytic Jacobian values (tape entry order).
    ///
    /// Panics if the kernel was built without `ode_jac`.
    pub fn eval_rhs_jac(&self, rates: &[f64], y: &[f64], ydot: &mut [f64], jac_vals: &mut [f64]) {
        let jac = self.jac.expect("kernel has no ode_jac");
        assert_eq!(rates.len(), self.meta.n_rates);
        assert_eq!(y.len(), self.meta.n_species);
        assert_eq!(ydot.len(), self.meta.n_species);
        assert_eq!(jac_vals.len(), self.meta.jac_nnz.unwrap_or(0));
        unsafe {
            jac(
                rates.as_ptr(),
                y.as_ptr(),
                ydot.as_mut_ptr(),
                jac_vals.as_mut_ptr(),
            )
        }
    }

    /// Evaluate RHS + Jacobian + `∂f/∂p` values (tape entry order).
    ///
    /// Panics if the kernel was built without `ode_sens`.
    pub fn eval_all(
        &self,
        rates: &[f64],
        y: &[f64],
        ydot: &mut [f64],
        jac_vals: &mut [f64],
        dfdp_vals: &mut [f64],
    ) {
        let sens = self.sens.expect("kernel has no ode_sens");
        let (jn, dn) = self.meta.sens_nnz.unwrap_or((0, 0));
        assert_eq!(rates.len(), self.meta.n_rates);
        assert_eq!(y.len(), self.meta.n_species);
        assert_eq!(ydot.len(), self.meta.n_species);
        assert_eq!(jac_vals.len(), jn);
        assert_eq!(dfdp_vals.len(), dn);
        unsafe {
            sens(
                rates.as_ptr(),
                y.as_ptr(),
                ydot.as_mut_ptr(),
                jac_vals.as_mut_ptr(),
                dfdp_vals.as_mut_ptr(),
            )
        }
    }
}

impl Drop for NativeKernel {
    fn drop(&mut self) {
        #[cfg(unix)]
        unsafe {
            dl::dlclose(self.handle);
        }
    }
}

/// Probe the toolchain, compile `source` to `out_so`, and load it.
pub fn compile_and_load(
    source: &str,
    out_so: &Path,
    meta: &KernelMeta,
) -> Result<NativeKernel, NativeError> {
    if !cfg!(unix) {
        return Err(NativeError::Unsupported(
            "native kernels are only implemented for unix".to_string(),
        ));
    }
    let toolchain = probe_toolchain()?;
    compile_kernel(source, out_so, &toolchain)?;
    NativeKernel::load(out_so, meta)
}

/// Probe the toolchain, compile the translation units (concurrently when
/// there are several) to `out_so`, and load the linked object.
pub fn compile_and_load_units(
    units: &[String],
    out_so: &Path,
    meta: &KernelMeta,
) -> Result<(NativeKernel, CompileTiming), NativeError> {
    if !cfg!(unix) {
        return Err(NativeError::Unsupported(
            "native kernels are only implemented for unix".to_string(),
        ));
    }
    let toolchain = probe_toolchain()?;
    let timing = compile_kernel_units(units, out_so, &toolchain)?;
    Ok((NativeKernel::load(out_so, meta)?, timing))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::deriv::{compile_jacobian, compile_sensitivity};
    use crate::emit_c::{emit_kernel, KernelSpec};
    use crate::expr::{Expr, ExprForest};
    use crate::tape::lower;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rms-native-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn toy_forest() -> ExprForest {
        // ydot0 = -k0*y0*y1 + k1*y2 ; ydot1 = same ; ydot2 = k0*y0*y1 - k1*y2
        let fwd = |c: f64| Expr::prod(c, vec![Expr::Rate(0), Expr::Species(0), Expr::Species(1)]);
        let rev = |c: f64| Expr::prod(c, vec![Expr::Rate(1), Expr::Species(2)]);
        ExprForest {
            temps: vec![],
            rhs: vec![
                Expr::sum(vec![fwd(-1.0), rev(1.0)]),
                Expr::sum(vec![fwd(-1.0), rev(1.0)]),
                Expr::sum(vec![fwd(1.0), rev(-1.0)]),
            ],
            n_species: 3,
            n_rates: 2,
        }
    }

    fn skip_without_toolchain() -> Option<Toolchain> {
        match probe_toolchain() {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("SKIP: {e}");
                None
            }
        }
    }

    #[test]
    fn compiles_loads_and_matches_interpreter() {
        let Some(_) = skip_without_toolchain() else {
            return;
        };
        let forest = toy_forest();
        let tape = lower(&forest);
        let jt = compile_jacobian(&forest, None);
        let st = compile_sensitivity(&forest, None);
        let key = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        let src = emit_kernel(&KernelSpec {
            name: "toy",
            rhs: &tape,
            jacobian: Some(&jt),
            sensitivity: Some(&st),
            rolled: None,
            key,
        });
        let meta = KernelMeta {
            key,
            n_species: 3,
            n_rates: 2,
            jac_nnz: Some(jt.nnz()),
            sens_nnz: Some((st.jac_nnz(), st.dfdp_nnz())),
        };
        let dir = tmpdir("roundtrip");
        let so = dir.join("toy.so");
        let kernel = compile_and_load(&src, &so, &meta).expect("compile+load");

        let rates = [2.5, 0.75];
        let y = [1.0, 0.25, 0.125];
        let mut want = [0.0; 3];
        let mut regs = Vec::new();
        tape.eval_with_scratch(&rates, &y, &mut want, &mut regs);
        let mut got = [0.0; 3];
        kernel.eval(&rates, &y, &mut got);
        assert_eq!(want, got, "scalar rhs must be bit-identical");

        // Batched: 11 states (one vector block + scalar tail).
        let n_states = 11;
        let mut ys = Vec::new();
        for s in 0..n_states {
            for j in 0..3 {
                ys.push(0.1 + 0.3 * s as f64 + 0.07 * j as f64);
            }
        }
        let mut ydots = vec![0.0; ys.len()];
        kernel.eval_batch(&rates, &ys, &mut ydots);
        for s in 0..n_states {
            let mut want = [0.0; 3];
            tape.eval_with_scratch(&rates, &ys[s * 3..s * 3 + 3], &mut want, &mut regs);
            assert_eq!(&ydots[s * 3..s * 3 + 3], &want, "state {s}");
        }

        // Jacobian + sensitivity agree with the interpreted tapes.
        let mut ydot_a = [0.0; 3];
        let mut vals_a = vec![0.0; jt.nnz()];
        jt.eval_with_scratch(&rates, &y, &mut ydot_a, &mut vals_a, &mut regs);
        let mut ydot_b = [0.0; 3];
        let mut vals_b = vec![0.0; jt.nnz()];
        kernel.eval_rhs_jac(&rates, &y, &mut ydot_b, &mut vals_b);
        assert_eq!(vals_a, vals_b);
        assert_eq!(ydot_a, ydot_b);

        let mut jv_a = vec![0.0; st.jac_nnz()];
        let mut dv_a = vec![0.0; st.dfdp_nnz()];
        st.eval_all(&rates, &y, &mut ydot_a, &mut jv_a, &mut dv_a, &mut regs);
        let mut jv_b = vec![0.0; st.jac_nnz()];
        let mut dv_b = vec![0.0; st.dfdp_nnz()];
        kernel.eval_all(&rates, &y, &mut ydot_b, &mut jv_b, &mut dv_b);
        assert_eq!(jv_a, jv_b);
        assert_eq!(dv_a, dv_b);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_and_corrupt_objects_are_rejected() {
        let Some(_) = skip_without_toolchain() else {
            return;
        };
        let forest = toy_forest();
        let tape = lower(&forest);
        let key = 42u128;
        let src = emit_kernel(&KernelSpec {
            name: "toy",
            rhs: &tape,
            jacobian: None,
            sensitivity: None,
            rolled: None,
            key,
        });
        let meta = KernelMeta {
            key,
            n_species: 3,
            n_rates: 2,
            jac_nnz: None,
            sens_nnz: None,
        };
        let dir = tmpdir("stale");
        let so = dir.join("toy.so");
        compile_and_load(&src, &so, &meta).expect("compile+load");

        // Wrong fingerprint → Mismatch (stale object for a different model).
        let wrong = KernelMeta { key: 43, ..meta };
        match NativeKernel::load(&so, &wrong) {
            Err(NativeError::Mismatch(m)) => assert!(m.contains("fingerprint"), "{m}"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
        // Expecting a Jacobian the object does not have → Mismatch.
        let wants_jac = KernelMeta {
            jac_nnz: Some(7),
            ..meta
        };
        assert!(matches!(
            NativeKernel::load(&so, &wants_jac),
            Err(NativeError::Mismatch(_))
        ));
        // Garbage bytes → LoadFailed.
        std::fs::write(&so, b"not an elf object").unwrap();
        assert!(matches!(
            NativeKernel::load(&so, &meta),
            Err(NativeError::LoadFailed(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Structurally identical reaction stanzas — the reroll pass's target.
    fn stanza_forest(n_eq: usize) -> ExprForest {
        let term = |c: f64, rate: u32, species: &[u32]| {
            let mut f = vec![Expr::Rate(rate)];
            f.extend(species.iter().map(|&s| Expr::Species(s)));
            Expr::prod(c, f)
        };
        let rhs = (0..n_eq)
            .map(|i| {
                let i = i as u32;
                Expr::sum(vec![
                    term(1.0, i % 8, &[i % 5, (i + 1) % 5]),
                    term(-2.5, (i + 3) % 8, &[(i + 2) % 5]),
                ])
            })
            .collect();
        ExprForest {
            temps: vec![],
            rhs,
            n_species: n_eq.max(5),
            n_rates: 8,
        }
    }

    #[test]
    fn rolled_multiunit_kernel_matches_interpreter_bitwise() {
        use crate::emit_c::{emit_kernel_units, EmitOptions, RolledViews};
        use crate::tape::{reroll, RerollOptions};
        let Some(toolchain) = skip_without_toolchain() else {
            return;
        };
        let forest = stanza_forest(96);
        let tape = lower(&forest);
        let jt = compile_jacobian(&forest, None);
        let st = compile_sensitivity(&forest, None);
        let opts = RerollOptions {
            max_body: 64,
            min_trips: 2,
            min_savings: 1,
        };
        let rolled = reroll(&tape, &opts);
        assert!(rolled.loop_count() > 0, "stanza forest must reroll");
        let jr = jt.reroll(&opts);
        let sr = st.reroll(&opts);
        let key = 0xfeed_0000_0000_0000_0000_0000_0000_beefu128;
        let emitted = emit_kernel_units(
            &KernelSpec {
                name: "stanzas",
                rhs: &tape,
                jacobian: Some(&jt),
                sensitivity: Some(&st),
                rolled: Some(RolledViews {
                    rhs: &rolled,
                    jacobian: Some(&jr),
                    sensitivity: Some(&sr),
                }),
                key,
            },
            &EmitOptions { units: 3 },
        );
        assert!(emitted.units.len() > 1, "expected a multi-unit build");
        let meta = KernelMeta {
            key,
            n_species: tape.n_species,
            n_rates: tape.n_rates,
            jac_nnz: Some(jt.nnz()),
            sens_nnz: Some((st.jac_nnz(), st.dfdp_nnz())),
        };
        let dir = tmpdir("rolled");
        let so = dir.join("stanzas.so");
        let timing = compile_kernel_units(&emitted.units, &so, &toolchain).expect("compile units");
        assert_eq!(timing.unit_seconds.len(), emitted.units.len());
        assert!(
            timing.link_seconds > 0.0,
            "multi-unit builds link separately"
        );
        let kernel = NativeKernel::load(&so, &meta).expect("load");
        assert_eq!(kernel.loop_count(), emitted.loop_count);
        assert_eq!(kernel.rolled_instrs(), emitted.rolled_instrs);
        assert!(kernel.loop_count() > 0);

        let n = tape.n_species;
        let rates: Vec<f64> = (0..tape.n_rates).map(|i| 0.3 + 0.17 * i as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| 0.05 + 0.011 * i as f64).collect();
        let mut regs = Vec::new();
        let mut want = vec![0.0; n];
        tape.eval_with_scratch(&rates, &y, &mut want, &mut regs);
        let mut got = vec![0.0; n];
        kernel.eval(&rates, &y, &mut got);
        assert_eq!(want, got, "rolled scalar rhs must be bit-identical");

        // Batched (exercises the rolled lane kernel + scalar tail).
        let n_states = 13;
        let ys: Vec<f64> = (0..n_states * n)
            .map(|i| 0.02 + 0.003 * (i % 37) as f64)
            .collect();
        let mut ydots = vec![0.0; ys.len()];
        kernel.eval_batch(&rates, &ys, &mut ydots);
        for s in 0..n_states {
            tape.eval_with_scratch(&rates, &ys[s * n..(s + 1) * n], &mut want, &mut regs);
            assert_eq!(&ydots[s * n..(s + 1) * n], &want[..], "state {s}");
        }

        // Rolled Jacobian and sensitivity groups, bit-for-bit.
        let mut ydot_a = vec![0.0; n];
        let mut vals_a = vec![0.0; jt.nnz()];
        jt.eval_with_scratch(&rates, &y, &mut ydot_a, &mut vals_a, &mut regs);
        let mut ydot_b = vec![0.0; n];
        let mut vals_b = vec![0.0; jt.nnz()];
        kernel.eval_rhs_jac(&rates, &y, &mut ydot_b, &mut vals_b);
        assert_eq!(vals_a, vals_b);
        assert_eq!(ydot_a, ydot_b);

        let mut jv_a = vec![0.0; st.jac_nnz()];
        let mut dv_a = vec![0.0; st.dfdp_nnz()];
        st.eval_all(&rates, &y, &mut ydot_a, &mut jv_a, &mut dv_a, &mut regs);
        let mut jv_b = vec![0.0; st.jac_nnz()];
        let mut dv_b = vec![0.0; st.dfdp_nnz()];
        kernel.eval_all(&rates, &y, &mut ydot_b, &mut jv_b, &mut dv_b);
        assert_eq!(jv_a, jv_b);
        assert_eq!(dv_a, dv_b);
        assert_eq!(ydot_a, ydot_b);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
