//! Synthetic experimental data.
//!
//! The paper's experiments use 16 proprietary data files containing "the
//! time evolution of the crosslink concentrations for different
//! formulations at the same temperature", each with >3000 records. We
//! synthesize equivalents by forward-simulating the ground-truth model
//! per formulation and adding measurement noise; the parameter estimation
//! experiment then has a recoverable known answer (see DESIGN.md).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rms_parallel::{ExperimentFile, Simulator};

/// Configuration for data synthesis.
#[derive(Debug, Clone, Copy)]
pub struct ExpDataSpec {
    /// Number of files (the paper uses 16).
    pub n_files: usize,
    /// Records per file (paper: >3000; scale down for quick tests).
    pub records: usize,
    /// Base cure-time horizon; individual files spread around it so
    /// per-file solve costs are heterogeneous (the Table 2 imbalance).
    pub base_horizon: f64,
    /// Relative horizon skew: file horizons span
    /// `base · (1 ± skew)` linearly across files.
    pub horizon_skew: f64,
    /// Gaussian measurement noise (relative).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExpDataSpec {
    fn default() -> ExpDataSpec {
        ExpDataSpec {
            n_files: 16,
            records: 3200,
            base_horizon: 4.0,
            horizon_skew: 0.25,
            noise: 1e-3,
            seed: 20070326, // IPDPS 2007, Long Beach
        }
    }
}

/// Forward-simulate and synthesize the experiment files using the
/// ground-truth rate constants.
pub fn synthesize<S: Simulator>(
    simulator: &S,
    true_rates: &[f64],
    spec: ExpDataSpec,
) -> Result<Vec<ExperimentFile>, String> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut files = Vec::with_capacity(spec.n_files);
    for i in 0..spec.n_files {
        // Linear spread of horizons => heterogeneous solve times.
        let frac = if spec.n_files > 1 {
            i as f64 / (spec.n_files - 1) as f64
        } else {
            0.5
        };
        let horizon =
            spec.base_horizon * (1.0 - spec.horizon_skew + 2.0 * spec.horizon_skew * frac);
        let times: Vec<f64> = (1..=spec.records)
            .map(|j| horizon * j as f64 / spec.records as f64)
            .collect();
        let clean = simulator.simulate(true_rates, i, &times)?;
        let values: Vec<f64> = clean
            .iter()
            .map(|v| {
                // Box-Muller Gaussian noise, relative to signal scale.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                v * (1.0 + spec.noise * gauss)
            })
            .collect();
        files.push(ExperimentFile {
            label: format!("formulation_{i:02}"),
            times,
            values,
        });
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cheap analytic simulator for testing the synthesis logic itself.
    fn toy(rates: &[f64], file: usize, times: &[f64]) -> Result<Vec<f64>, String> {
        Ok(times
            .iter()
            .map(|t| (1.0 - (-rates[0] * t).exp()) * (1.0 + file as f64 * 0.1))
            .collect())
    }

    #[test]
    fn file_count_and_lengths() {
        let spec = ExpDataSpec {
            n_files: 5,
            records: 40,
            noise: 0.0,
            ..ExpDataSpec::default()
        };
        let files = synthesize(&toy, &[1.0], spec).unwrap();
        assert_eq!(files.len(), 5);
        for f in &files {
            assert_eq!(f.len(), 40);
            assert!(f.times.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn horizons_are_skewed() {
        let spec = ExpDataSpec {
            n_files: 4,
            records: 10,
            base_horizon: 10.0,
            horizon_skew: 0.5,
            noise: 0.0,
            ..ExpDataSpec::default()
        };
        let files = synthesize(&toy, &[1.0], spec).unwrap();
        let last_times: Vec<f64> = files.iter().map(|f| *f.times.last().unwrap()).collect();
        assert!((last_times[0] - 5.0).abs() < 1e-9, "{last_times:?}");
        assert!((last_times[3] - 15.0).abs() < 1e-9);
    }

    #[test]
    fn noise_zero_reproduces_simulator() {
        let spec = ExpDataSpec {
            n_files: 2,
            records: 16,
            noise: 0.0,
            ..ExpDataSpec::default()
        };
        let files = synthesize(&toy, &[0.7], spec).unwrap();
        for (i, f) in files.iter().enumerate() {
            let clean = toy(&[0.7], i, &f.times).unwrap();
            for (a, b) in clean.iter().zip(&f.values) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn noise_is_small_and_seeded() {
        let spec = ExpDataSpec {
            n_files: 1,
            records: 200,
            noise: 1e-3,
            ..ExpDataSpec::default()
        };
        let a = synthesize(&toy, &[1.0], spec).unwrap();
        let b = synthesize(&toy, &[1.0], spec).unwrap();
        assert_eq!(
            a[0].values, b[0].values,
            "seeded synthesis must be deterministic"
        );
        let clean = toy(&[1.0], 0, &a[0].times).unwrap();
        let max_rel: f64 = clean
            .iter()
            .zip(&a[0].values)
            .map(|(c, v)| ((c - v) / c.abs().max(1e-12)).abs())
            .fold(0.0, f64::max);
        assert!(max_rel < 0.01, "noise too large: {max_rel}");
        assert!(max_rel > 0.0, "noise absent");
    }
}
