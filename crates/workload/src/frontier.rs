//! A frontend-scaling workload: RDL models whose network closure grows
//! quadratically with one knob, for benchmarking the chemical compiler's
//! network-generation stage past the 10k-species mark.
//!
//! The model is three families of dimethyl chalcogenide/amine chains —
//! `CS{n}C`, `CO{n}C`, `CN{n}C` — with a family-scoped homolytic
//! scission each, plus three cross-family radical couplings. Scission
//! over the length-`n` seeds produces every terminal radical `C X{a}•`
//! (`a ≤ arms − 1`); each coupling pair (S·O, S·N, O·N) then joins two
//! radical pools combinatorially into mixed chains `C X{a} Y{b} C`.
//! With `k = arms − 1` chain lengths per family the closed network holds
//! exactly `3k` seeds, `3k` radicals and `3k²` mixed chains — species
//! count `3k² + 6k`, reached at a fixpoint by generation 2. The mixed
//! products belong to no named family and carry no radicals, so neither
//! rule ever rewrites them: growth is entirely frontier-driven, which is
//! exactly the access pattern the parallel closure engine optimizes.

/// Shape of a frontier workload: `arms` is the longest seed chain
/// (lengths run `2..=arms` per family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierSpec {
    /// Longest chain length in each seed family (must be ≥ 2).
    pub arms: usize,
}

impl FrontierSpec {
    /// The smallest spec whose closed network holds at least `target`
    /// species.
    pub fn for_species(target: usize) -> FrontierSpec {
        let mut k = 1;
        while 3 * k * k + 6 * k < target {
            k += 1;
        }
        FrontierSpec { arms: k + 1 }
    }

    /// Exact species count of the closed network: `3k² + 6k` with
    /// `k = arms − 1` (seeds + radicals + cross-family coupled chains).
    pub fn species_estimate(&self) -> usize {
        let k = self.arms - 1;
        3 * k * k + 6 * k
    }

    /// Render the RDL source for this spec.
    pub fn rdl_source(&self) -> String {
        assert!(self.arms >= 2, "arms must be at least 2");
        format!(
            r#"# frontier workload: 3 chain families, arms = {arms}
rate K_sc_s = 4;
rate K_sc_o = 3;
rate K_sc_n = 2;
rate K_cp_so = 2.5;
rate K_cp_sn = 1.5;
rate K_cp_on = 0.5;

molecule SChain = "CS{{n}}C" for n in 2..{arms} init 1.0;
molecule OChain = "CO{{n}}C" for n in 2..{arms} init 0.5;
molecule NChain = "CN{{n}}C" for n in 2..{arms} init 0.25;

rule scission_s {{
    on SChain;
    site bond S ~ S order single;
    action disconnect;
    rate K_sc_s;
}}
rule scission_o {{
    on OChain;
    site bond O ~ O order single;
    action disconnect;
    rate K_sc_o;
}}
rule scission_n {{
    on NChain;
    site bond N ~ N order single;
    action disconnect;
    rate K_sc_n;
}}
rule couple_so {{
    site pair S & radical, O & radical;
    action connect single;
    rate K_cp_so;
}}
rule couple_sn {{
    site pair S & radical, N & radical;
    action connect single;
    rate K_cp_sn;
}}
rule couple_on {{
    site pair O & radical, N & radical;
    action connect single;
    rate K_cp_on;
}}

limit atoms {max_atoms};
limit species {max_species};
limit generations 4;
"#,
            arms = self.arms,
            max_atoms = 2 * self.arms,
            max_species = 2 * self.species_estimate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_rdl::{compile, parse_rdl};

    #[test]
    fn closure_hits_the_exact_species_estimate() {
        for arms in [2, 3, 5, 8] {
            let spec = FrontierSpec { arms };
            let model = compile(&parse_rdl(&spec.rdl_source()).unwrap()).unwrap();
            assert_eq!(
                model.network.species_count(),
                spec.species_estimate(),
                "arms = {arms}"
            );
            assert!(model.stats.fixpoint, "arms = {arms} did not close");
            assert!(model.stats.generations <= 3, "arms = {arms} ran long");
        }
    }

    #[test]
    fn for_species_meets_the_target() {
        for target in [100, 10_000, 50_000] {
            let spec = FrontierSpec::for_species(target);
            assert!(spec.species_estimate() >= target);
            // And the next size down would undershoot.
            let smaller = FrontierSpec {
                arms: spec.arms - 1,
            };
            assert!(smaller.species_estimate() < target);
        }
        // The 50k acceptance case: k = 129 gives 50 697 species.
        let spec = FrontierSpec::for_species(50_000);
        assert_eq!(spec.arms, 130);
        assert_eq!(spec.species_estimate(), 50_697);
    }

    #[test]
    fn mixed_chains_come_from_every_coupling_pair() {
        let model = compile(&parse_rdl(&FrontierSpec { arms: 4 }.rdl_source()).unwrap()).unwrap();
        for rule in ["couple_so", "couple_sn", "couple_on"] {
            assert!(
                model.network.reactions().iter().any(|r| r.rule == rule),
                "no {rule} reactions"
            );
        }
        // k = 3: every coupling pair contributes k² = 9 product chains.
        let k = 3;
        assert_eq!(model.network.species_count(), 3 * k * k + 6 * k);
    }
}
