//! A chemistry-derived vulcanization model written in RDL.
//!
//! The paper-scale test cases are synthesized programmatically
//! ([`crate::vulcanization`]); this module exercises the *frontend* path:
//! a real reaction description — accelerator-derived polysulfidic species
//! attacking a model diene rubber — compiled through SMILES, rule
//! application and network closure. Useful as a benchmark for the
//! chemical compiler itself and as a template users can extend.

/// RDL source: sulfur exchange + crosslinking on a 2-methyl-2-butene
/// rubber surrogate (one isoprene unit).
pub const VULCANIZATION_RDL: &str = r#"
# ---- kinetics (10 distinct parameters, as in the paper's models) ------
rate K_scission   = 4;        # S-S homolysis in polysulfides
rate K_exchange   = 2;        # interior S-S scission (chain shuffling)
rate K_abstract   = 1.5;      # allylic H abstraction by thiyl radicals
rate K_graft      = 3;        # C-S coupling (pendant formation)
rate K_couple     = 2.5;      # S-S radical recombination
rate K_quench     = 0.5;      # radical quench by hydrogen
rate K_deep       = K_exchange / 2;
rate K_beta       = 0.8;
rate K_gamma      = 1.2;
rate K_delta      = 0.3;

bound K_scission in [0.4, 40];
bound K_graft    in [0.3, 30];

# ---- species -----------------------------------------------------------
# model rubber: 2-methyl-2-butene (trisubstituted alkene, allylic CH3s)
molecule Rubber   = "CC=C(C)C" init 2.0;
# accelerator-derived polysulfides, chain lengths 2..5
molecule PolyS    = "CS{n}C" for n in 2..5 init 1.0;

# ---- rules: the paper's six primitives in chemical context -------------
rule scission {
    on PolyS;
    site bond S ~ S order single;
    action disconnect;
    rate K_scission;
}
rule deep_scission {
    site bond S & chain(S) >= 2 ~ S & chain(S) >= 2 order single;
    action disconnect;
    rate K_deep;
}
rule abstraction {
    on Rubber;
    site atom C & allylic & hydrogens >= 1;
    action remove_h;
    rate K_abstract;
}
rule graft {
    site pair S & radical, C & radical;
    action connect single;
    rate K_graft;
}
rule couple {
    site pair S & radical, S & radical;
    action connect single;
    rate K_couple;
}
rule quench {
    site atom S & radical & bonded(C);
    action add_h;
    rate K_quench;
}

# ---- generation control -------------------------------------------------
limit atoms 24;
limit species 400;
limit generations 4;
forbid chain S > 5;
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use rms_rdl::{compile, parse_rdl};

    #[test]
    fn rdl_model_compiles_to_a_real_network() {
        let model = compile(&parse_rdl(VULCANIZATION_RDL).unwrap()).unwrap();
        // Seeds: Rubber + 4 PolyS variants = 5; closure must generate
        // radicals, grafts and recombination products.
        assert!(
            model.network.species_count() > 10,
            "only {} species",
            model.network.species_count()
        );
        assert!(
            model.network.reaction_count() > 15,
            "only {} reactions",
            model.network.reaction_count()
        );
        assert_eq!(model.rates.name_count(), 10);
        // K_deep = K_exchange/2 = 1 (distinct value) — all 10 distinct?
        // K_exchange=2 vs K_couple=2.5 vs ... check dedup count is <= 10.
        assert!(model.rates.distinct_count() <= 10);
    }

    #[test]
    fn grafting_produces_carbon_sulfur_crosslinks() {
        let model = compile(&parse_rdl(VULCANIZATION_RDL).unwrap()).unwrap();
        let grafts = model
            .network
            .reactions()
            .iter()
            .filter(|r| r.rule == "graft")
            .count();
        assert!(grafts > 0, "no graft reactions generated");
    }

    #[test]
    fn forbidden_chains_absent() {
        use rms_molecule::Element;
        let model = compile(&parse_rdl(VULCANIZATION_RDL).unwrap()).unwrap();
        for (_, sp) in model.network.species_iter() {
            if let Some(mol) = &sp.structure {
                // max same-element S component must be <= 5
                let mut seen = vec![false; mol.atom_count()];
                for start in 0..mol.atom_count() {
                    if seen[start] || mol.atom(start).unwrap().element != Element::S {
                        continue;
                    }
                    let mut size = 0;
                    let mut stack = vec![start];
                    seen[start] = true;
                    while let Some(at) = stack.pop() {
                        size += 1;
                        for nb in mol.neighbors(at).collect::<Vec<_>>() {
                            if !seen[nb] && mol.atom(nb).unwrap().element == Element::S {
                                seen[nb] = true;
                                stack.push(nb);
                            }
                        }
                    }
                    assert!(size <= 5, "species {} has S{size} chain", sp.name);
                }
            }
        }
    }

    #[test]
    fn full_pipeline_on_rdl_model() {
        use rms_core::OptLevel;
        use rms_driver::{CacheStatus, CompilerSession, Stage};
        let session = CompilerSession::new(OptLevel::Full);
        let compiled = session
            .compile_source("vulcanization.rdl", VULCANIZATION_RDL)
            .unwrap();
        let artifact = &compiled.artifact;
        assert!(
            artifact.compiled.stages.after_cse.total() < artifact.compiled.stages.input.total()
        );
        // The session instrumented every frontend stage on the way.
        for stage in [Stage::Parse, Stage::Expand, Stage::Rcip, Stage::Network] {
            assert!(artifact.report.stage(stage).is_some(), "missing {stage}");
        }
        // Semantics: tape equals naive evaluation.
        let sys = &artifact.system;
        let y: Vec<f64> = (0..sys.len())
            .map(|i| 0.05 + (i % 7) as f64 * 0.1)
            .collect();
        let expect = sys.eval_nominal(&y);
        let mut got = vec![0.0; sys.len()];
        artifact.compiled.tape.eval(&sys.rate_values, &y, &mut got);
        for (a, b) in expect.iter().zip(&got) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
        // Recompiling the identical source hits the process-wide cache.
        let again = session
            .compile_source("vulcanization.rdl", VULCANIZATION_RDL)
            .unwrap();
        assert_eq!(again.status, CacheStatus::Memory);
        assert!(std::sync::Arc::ptr_eq(&compiled.artifact, &again.artifact));
    }
}
