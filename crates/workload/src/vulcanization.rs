//! Synthetic vulcanization kinetics generator.
//!
//! The paper's benchmarks are "kinetic models for the vulcanization
//! process … of natural rubber by the benzothiazolesulfenamide class of
//! accelerators", five test cases of 450–250 000 equations sharing "the
//! same 10 distinct kinetic parameters". Those models are proprietary to
//! the authors' research project, so this module synthesizes networks
//! with the same structure (see DESIGN.md, substitution table):
//!
//! * species families indexed by polymer site `f` and sulfur chain length
//!   `n` (the paper's molecule *variants*);
//! * accelerator chemistry: active sulfurating agents `As_n` grow by
//!   sulfur insertion, sulfurate rubber sites into pendant polysulfides
//!   `RS_{f,n}`, which crosslink *neighbouring* chains into `X_{f,g}`;
//! * crosslinks revert; pendants desulfurate;
//! * exactly 10 distinct kinetic parameters spread over thousands of
//!   reactions (rate-constant sharing is what the RCIP dedup and the CSE
//!   pass exploit).
//!
//! The generated redundancy mirrors the real models: the same mass-action
//! product appears in several equations, families of equations share sums
//! over chain-length variants, and everything is driven by 10 parameters.

// Species tables are indexed by site `f` throughout, matching the
// `RS_{f,n}` / `X_{f,g}` naming scheme the doc comment describes.
#![allow(clippy::needless_range_loop)]

use rms_rcip::RateTable;
use rms_rdl::{Reaction, ReactionNetwork, SpeciesId};

/// Ground-truth values of the 10 kinetic parameters (used to synthesize
/// experimental data; the estimator must recover them).
pub const TRUE_RATES: [f64; 10] = [2.0, 3.5, 1.2, 0.8, 1.6, 0.6, 0.9, 1.4, 0.25, 0.45];

/// Names of the 10 distinct kinetic parameters.
pub const RATE_NAMES: [&str; 10] = [
    "K_agent", "K_sulf", "K_xl0", "K_xl1", "K_xl2", "K_xl3", "K_dec0", "K_dec1", "K_rev", "K_pend",
];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct VulcanizationSpec {
    /// Number of polymer sites `F`.
    pub sites: usize,
    /// Maximum sulfur chain length `N` (the paper's variant ranges;
    /// polysulfidic crosslinks run up to ~8 sulfurs).
    pub max_chain: usize,
    /// Crosslinking neighbourhood `B`: site `f` crosslinks sites
    /// `f+1 ..= f+B`.
    pub neighbourhood: usize,
}

impl VulcanizationSpec {
    /// Spec sized to approximately `target` equations (= species).
    ///
    /// Species count ≈ F·(1 + N + B) + N + 2 with N = 8, B = 3.
    pub fn for_equation_count(target: usize) -> VulcanizationSpec {
        let n = 8usize;
        let b = 3usize;
        let per_site = 1 + n + b;
        let fixed = n + 2;
        let sites = ((target.saturating_sub(fixed)) / per_site).max(2);
        VulcanizationSpec {
            sites,
            max_chain: n,
            neighbourhood: b,
        }
    }

    /// Exact species count this spec generates.
    pub fn species_count(&self) -> usize {
        // A, S1, As_n (N), R_f (F), RS_{f,n} (F·N), X_{f,g} (F·B capped)
        let crosslinks: usize = (0..self.sites)
            .map(|f| self.neighbourhood.min(self.sites - 1 - f))
            .sum();
        2 + self.max_chain + self.sites * (1 + self.max_chain) + crosslinks
    }
}

/// A generated vulcanization model.
#[derive(Debug, Clone)]
pub struct VulcanizationModel {
    /// The reaction network.
    pub network: ReactionNetwork,
    /// The 10-parameter rate table (values = [`TRUE_RATES`]).
    pub rates: RateTable,
    /// Species ids of all crosslink species `X_{f,g}` — their summed
    /// concentration is the measured property (crosslink density, which
    /// the paper's experiments track over cure time).
    pub crosslink_species: Vec<SpeciesId>,
    /// The spec used.
    pub spec: VulcanizationSpec,
}

/// Generate the model for a spec.
pub fn generate_model(spec: VulcanizationSpec) -> VulcanizationModel {
    assert!(spec.sites >= 2, "need at least two polymer sites");
    assert!(spec.max_chain >= 2, "need chains of at least 2");
    let mut network = ReactionNetwork::new();
    let mut rates = RateTable::default();
    for (name, value) in RATE_NAMES.iter().zip(TRUE_RATES) {
        rates.define(name, value).expect("unique rate names");
    }
    // Default bounds: an order of magnitude around the truth.
    for (i, value) in TRUE_RATES.iter().enumerate() {
        let id = rates.id(RATE_NAMES[i]).expect("defined above");
        rates
            .set_bounds(id, value * 0.1, value * 10.0)
            .expect("valid bounds");
    }

    let n = spec.max_chain;
    let f_count = spec.sites;

    // Shared species.
    let accelerator = network.add_abstract_species("A", 0.3);
    let sulfur = network.add_abstract_species("S1", 1.0);
    let agents: Vec<SpeciesId> = (1..=n)
        .map(|i| network.add_abstract_species(&format!("As_{i}"), if i == 1 { 0.2 } else { 0.0 }))
        .collect();

    // Per-site species.
    let rubbers: Vec<SpeciesId> = (0..f_count)
        .map(|f| network.add_abstract_species(&format!("R_{f}"), 1.0))
        .collect();
    let pendants: Vec<Vec<SpeciesId>> = (0..f_count)
        .map(|f| {
            (1..=n)
                .map(|i| network.add_abstract_species(&format!("RS_{f}_{i}"), 0.0))
                .collect()
        })
        .collect();
    let mut crosslink_species = Vec::new();
    let mut crosslinks = vec![Vec::new(); f_count];
    for f in 0..f_count {
        for g in (f + 1)..=(f + spec.neighbourhood).min(f_count - 1) {
            let id = network.add_abstract_species(&format!("X_{f}_{g}"), 0.0);
            crosslinks[f].push((g, id));
            crosslink_species.push(id);
        }
    }

    // Rule events are emitted position-resolved (the paper's "exhaustive
    // listing of all possible reactions"): `multiplicity` identical events
    // per symmetric site. §3.1's on-the-fly simplification later merges
    // them into stoichiometric coefficients.
    let mut add = |reactants: Vec<SpeciesId>,
                   products: Vec<SpeciesId>,
                   rate: &str,
                   rule: &str,
                   multiplicity: usize| {
        for _ in 0..multiplicity {
            network.add_reaction_event(Reaction {
                reactants: reactants.clone(),
                products: products.clone(),
                rate: rate.to_string(),
                rule: rule.to_string(),
            });
        }
    };

    // 1. Agent growth: As_{i} + S1 -> As_{i+1}   (K_agent)
    for i in 0..(n - 1) {
        add(
            vec![agents[i], sulfur],
            vec![agents[i + 1]],
            "K_agent",
            "agent_growth",
            2, // sulfur can insert at either chain end
        );
    }

    // 2. Sulfuration: As_i + R_f -> RS_{f,i} + A   (K_sulf)
    for f in 0..f_count {
        for i in 0..n {
            add(
                vec![agents[i], rubbers[f]],
                vec![pendants[f][i], accelerator],
                "K_sulf",
                "sulfuration",
                3, // three equivalent allylic sites per isoprene unit
            );
        }
    }

    // 3. Crosslinking: RS_{f,i} + R_g -> X_{f,g} + As_{i-1} (i >= 2)
    //    rate K_xl{i mod 4} — chain length modulates reactivity.
    for f in 0..f_count {
        for &(g, x) in &crosslinks[f] {
            for i in 1..n {
                let rate = format!("K_xl{}", i % 4);
                add(
                    vec![pendants[f][i], rubbers[g]],
                    vec![x, agents[i - 1]],
                    &rate,
                    "crosslink",
                    3, // attack at any allylic site of the partner chain
                );
            }
        }
    }

    // 4. Pendant desulfuration: RS_{f,i} -> RS_{f,i-1} + S1  (K_dec{i%2})
    for f in 0..f_count {
        for i in 1..n {
            let rate = format!("K_dec{}", i % 2);
            add(
                vec![pendants[f][i]],
                vec![pendants[f][i - 1], sulfur],
                &rate,
                "desulfuration",
                1,
            );
        }
    }

    // 5. Reversion: X_{f,g} -> R_f + R_g   (K_rev)
    for f in 0..f_count {
        for &(g, x) in &crosslinks[f] {
            add(
                vec![x],
                vec![rubbers[f], rubbers[g]],
                "K_rev",
                "reversion",
                1,
            );
        }
    }

    // 6. Pendant quench: RS_{f,1} -> R_f + S1   (K_pend)
    for f in 0..f_count {
        add(
            vec![pendants[f][0]],
            vec![rubbers[f], sulfur],
            "K_pend",
            "quench",
            1,
        );
    }

    // 7. Pendant chain scission (variant family, paper §2's "disconnect"
    //    applied at every interior position of the sulfur chain):
    //    RS_{f,n} -> RS_{f,j} + As_{n-j} for every split point j.
    //    All n−1 reactions of a family share ONE rate expression
    //    K_pend·[RS_{f,n}] — the redundancy pattern that lets the paper's
    //    largest cases keep only ~1% of their multiplies.
    for f in 0..f_count {
        for n_len in 2..=n {
            for j in 1..n_len {
                add(
                    vec![pendants[f][n_len - 1]],
                    vec![pendants[f][j - 1], agents[n_len - j - 1]],
                    "K_pend",
                    "pendant_scission",
                    1, // each split point is its own event (j runs over all)
                );
            }
        }
    }

    // 8. Agent chain scission: As_n -> As_j + As_{n-j}, same family
    //    structure (rate K_agent·[As_n] shared across split points).
    for n_len in 2..=n {
        for j in 1..n_len {
            add(
                vec![agents[n_len - 1]],
                vec![agents[j - 1], agents[n_len - j - 1]],
                "K_agent",
                "agent_scission",
                1, // j runs over all split points incl. mirror images
            );
        }
    }

    VulcanizationModel {
        network,
        rates,
        crosslink_species,
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_odegen::{generate, GenerateOptions};

    #[test]
    fn species_count_matches_spec() {
        for target in [450usize, 2000, 10_000] {
            let spec = VulcanizationSpec::for_equation_count(target);
            let model = generate_model(spec);
            assert_eq!(model.network.species_count(), spec.species_count());
            let got = model.network.species_count();
            let err = (got as f64 - target as f64).abs() / target as f64;
            assert!(err < 0.05, "target {target}: got {got}");
        }
    }

    #[test]
    fn exactly_ten_distinct_rates() {
        let model = generate_model(VulcanizationSpec::for_equation_count(450));
        assert_eq!(model.rates.distinct_count(), 10);
        for name in RATE_NAMES {
            assert!(model.rates.get(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn network_generates_valid_odes() {
        let model = generate_model(VulcanizationSpec::for_equation_count(450));
        let sys = generate(&model.network, &model.rates, GenerateOptions::default()).unwrap();
        assert_eq!(sys.len(), model.network.species_count());
        // Every equation of a crosslink species has production terms.
        for &x in &model.crosslink_species {
            assert!(
                !sys.equations[x.0 as usize].terms.is_empty(),
                "crosslink {x:?} inert"
            );
        }
    }

    #[test]
    fn dynamics_form_crosslinks() {
        // Forward-integrate a small model: crosslink density must rise
        // from zero (the S-curve the paper's experiments measure).
        use rms_solver::{solve_bdf, FnRhs, SolverOptions};
        let model = generate_model(VulcanizationSpec {
            sites: 4,
            max_chain: 4,
            neighbourhood: 2,
        });
        let sys = generate(&model.network, &model.rates, GenerateOptions::default()).unwrap();
        let rhs = FnRhs::new(sys.len(), |_t, y: &[f64], ydot: &mut [f64]| {
            sys.eval_into(&sys.rate_values, y, ydot);
        });
        let y0 = sys.initial.clone();
        let (sol, _) = solve_bdf(
            &rhs,
            0.0,
            &y0,
            &[0.5, 2.0],
            SolverOptions {
                rtol: 1e-6,
                atol: 1e-10,
                max_steps: 200_000,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        let density = |y: &[f64]| -> f64 {
            model
                .crosslink_species
                .iter()
                .map(|x| y[x.0 as usize])
                .sum()
        };
        let d1 = density(&sol[0]);
        let d2 = density(&sol[1]);
        assert!(d1 > 0.0, "no crosslinks formed by t=0.5");
        // The cure curve rises, plateaus, and may revert late (the shape
        // the paper's rheometer data shows); by t=2 reversion can have
        // set in, so only require a healthy density, not monotonicity.
        assert!(d2 > 0.5 * d1, "crosslink density collapsed: {d1} vs {d2}");
        // Concentrations stay nonnegative-ish (within solver tolerance).
        assert!(sol[1].iter().all(|&v| v > -1e-6));
    }

    #[test]
    fn redundancy_is_present() {
        // The optimizer's food: shared rate constants and shared reactant
        // products across equations.
        let model = generate_model(VulcanizationSpec::for_equation_count(450));
        let reactions = model.network.reaction_count();
        assert!(
            reactions > 10 * model.rates.distinct_count(),
            "too few reactions per rate constant: {reactions}"
        );
    }

    #[test]
    fn bounds_bracket_truth() {
        let model = generate_model(VulcanizationSpec::for_equation_count(450));
        let (lo, hi) = model.rates.bounds_vectors();
        for (i, &truth) in TRUE_RATES.iter().enumerate() {
            assert!(lo[i] < truth && truth < hi[i]);
        }
    }
}
