//! The paper's five benchmark test cases and their reference numbers.

use crate::vulcanization::{generate_model, VulcanizationModel, VulcanizationSpec};

/// Paper Table 1 reference data for one test case.
#[derive(Debug, Clone, Copy)]
pub struct Table1Reference {
    /// Test case id (1–5).
    pub case: usize,
    /// "Number of Equations".
    pub equations: usize,
    /// "Number of *" without algebraic/CSE optimizations.
    pub mults_unopt: usize,
    /// "Number of (+ and -)" without optimizations.
    pub adds_unopt: usize,
    /// Execution time (s) without optimizations (None = compiler error).
    pub time_unopt: Option<f64>,
    /// Execution time (s) with C compiler optimizations only.
    pub time_ccomp: Option<f64>,
    /// "Number of *" with algebraic/CSE optimizations.
    pub mults_opt: usize,
    /// "Number of (+ and -)" with optimizations.
    pub adds_opt: usize,
    /// Execution time (s) with our optimizations.
    pub time_opt: f64,
}

/// Table 1 of the paper, verbatim.
pub const TABLE1: [Table1Reference; 5] = [
    Table1Reference {
        case: 1,
        equations: 450,
        mults_unopt: 2_670,
        adds_unopt: 1_770,
        time_unopt: Some(924.0),
        time_ccomp: Some(920.0),
        mults_opt: 629,
        adds_opt: 761,
        time_opt: 824.0,
    },
    Table1Reference {
        case: 2,
        equations: 10_000,
        mults_unopt: 85_500,
        adds_unopt: 36_600,
        time_unopt: Some(4_290.0),
        time_ccomp: Some(3_530.0),
        mults_opt: 7_450,
        adds_opt: 22_800,
        time_opt: 2_500.0,
    },
    Table1Reference {
        case: 3,
        equations: 24_500,
        mults_unopt: 229_000,
        adds_unopt: 94_800,
        time_unopt: Some(7_480.0),
        time_ccomp: None,
        mults_opt: 11_800,
        adds_opt: 56_800,
        time_opt: 4_240.0,
    },
    Table1Reference {
        case: 4,
        equations: 125_000,
        mults_unopt: 1_320_000,
        adds_unopt: 520_000,
        time_unopt: Some(42_800.0),
        time_ccomp: None,
        mults_opt: 22_000,
        adds_opt: 125_000,
        time_opt: 8_130.0,
    },
    Table1Reference {
        case: 5,
        equations: 250_000,
        mults_unopt: 2_400_000,
        adds_unopt: 974_000,
        time_unopt: None,
        time_ccomp: None,
        mults_opt: 32_400,
        adds_opt: 201_000,
        time_opt: 15_459.0,
    },
];

/// Paper Table 2 reference (MPI scaling over 16 data files).
#[derive(Debug, Clone, Copy)]
pub struct Table2Reference {
    /// Number of nodes.
    pub nodes: usize,
    /// Total time (s) without dynamic load balancing.
    pub time_block: f64,
    /// Speedup without dynamic load balancing.
    pub speedup_block: f64,
    /// Total time (s) with dynamic load balancing.
    pub time_lb: f64,
    /// Speedup with dynamic load balancing.
    pub speedup_lb: f64,
}

/// Table 2 of the paper, verbatim.
pub const TABLE2: [Table2Reference; 5] = [
    Table2Reference {
        nodes: 1,
        time_block: 15_459.0,
        speedup_block: 1.0,
        time_lb: 15_459.0,
        speedup_lb: 1.0,
    },
    Table2Reference {
        nodes: 2,
        time_block: 7_619.0,
        speedup_block: 1.99,
        time_lb: 7_784.0,
        speedup_lb: 2.03,
    },
    Table2Reference {
        nodes: 4,
        time_block: 3_874.0,
        speedup_block: 3.91,
        time_lb: 3_598.0,
        speedup_lb: 3.99,
    },
    Table2Reference {
        nodes: 8,
        time_block: 1_935.0,
        speedup_block: 7.08,
        time_lb: 2_183.0,
        speedup_lb: 7.99,
    },
    Table2Reference {
        nodes: 16,
        time_block: 1_210.0,
        speedup_block: 12.78,
        time_lb: 1_210.0,
        speedup_lb: 12.78,
    },
];

/// Build the test case at full paper scale (symbolic work only — solving
/// a 250 000-equation system end-to-end is a supercomputer job, but
/// operation counting and compilation are laptop-feasible).
pub fn paper_case(case: usize) -> VulcanizationModel {
    let reference = TABLE1[case - 1];
    generate_model(VulcanizationSpec::for_equation_count(reference.equations))
}

/// Build the test case scaled down by `factor` (≥ 1) for timed runs.
pub fn scaled_case(case: usize, factor: usize) -> VulcanizationModel {
    let reference = TABLE1[case - 1];
    let target = (reference.equations / factor.max(1)).max(60);
    generate_model(VulcanizationSpec::for_equation_count(target))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_match_paper_headlines() {
        // Case 5: ops reduced to 6.9 % overall, 1.35 % of multiplies.
        let c5 = TABLE1[4];
        let total_unopt = (c5.mults_unopt + c5.adds_unopt) as f64;
        let total_opt = (c5.mults_opt + c5.adds_opt) as f64;
        let fraction = total_opt / total_unopt;
        assert!((fraction - 0.069).abs() < 0.001, "{fraction}");
        let mult_fraction = c5.mults_opt as f64 / c5.mults_unopt as f64;
        assert!((mult_fraction - 0.0135).abs() < 0.001, "{mult_fraction}");
        // Case 4 speedup 5.26x.
        let c4 = TABLE1[3];
        let speedup = c4.time_unopt.unwrap() / c4.time_opt;
        assert!((speedup - 5.26).abs() < 0.01, "{speedup}");
    }

    #[test]
    fn paper_case_sizes() {
        for (i, reference) in TABLE1.iter().enumerate().take(2) {
            let model = paper_case(i + 1);
            let got = model.network.species_count();
            let err = (got as f64 - reference.equations as f64).abs() / reference.equations as f64;
            assert!(
                err < 0.05,
                "case {}: {} vs {}",
                i + 1,
                got,
                reference.equations
            );
        }
    }

    #[test]
    fn scaled_case_shrinks() {
        let full = paper_case(1);
        let small = scaled_case(1, 4);
        assert!(small.network.species_count() < full.network.species_count());
        assert!(small.network.species_count() >= 60);
    }

    #[test]
    fn table2_internally_consistent() {
        for row in TABLE2 {
            let implied = 15_459.0 / row.time_block;
            // The paper's 8-node row swaps its columns; tolerate ~15 %.
            assert!(
                (implied - row.speedup_block).abs() / row.speedup_block < 0.15,
                "nodes {}: implied {implied} vs {}",
                row.nodes,
                row.speedup_block
            );
        }
    }
}
