//! # rms-workload — benchmark workloads and data synthesis
//!
//! The paper evaluates on proprietary rubber-vulcanization kinetic models
//! (five test cases, 450–250 000 equations, 10 distinct kinetic
//! parameters) fit against 16 proprietary experimental data files. This
//! crate synthesizes structurally equivalent workloads (see DESIGN.md's
//! substitution table):
//!
//! * [`vulcanization`]: a benzothiazole-accelerated-vulcanization-shaped
//!   network generator with variant families, shared rate constants and
//!   the redundancy profile the optimizer exploits;
//! * [`testcases`]: the five paper test cases (and scaled variants),
//!   together with Tables 1 and 2 of the paper as reference data;
//! * [`simulate`]: the compiled-tape + BDF simulation backend measuring
//!   crosslink density;
//! * [`expdata`]: synthetic `<t, value>` experiment files from the
//!   ground-truth parameters plus noise.

#![warn(missing_docs)]

pub mod expdata;
pub mod frontier;
pub mod rdl_model;
pub mod simulate;
pub mod testcases;
pub mod vulcanization;

pub use expdata::{synthesize, ExpDataSpec};
pub use frontier::FrontierSpec;
pub use rdl_model::VULCANIZATION_RDL;
pub use rms_solver::LinearSolver;
pub use simulate::{
    resolve_auto, EngineMode, ExecRhs, FallbackStats, JacobianMode, NativeJacobian, NativeRhs,
    NativeSensitivity, TapeJacobian, TapeSensitivity, TapeSimulator, NATIVE_CROSSOVER_INSTRS,
};
pub use testcases::{paper_case, scaled_case, Table1Reference, Table2Reference, TABLE1, TABLE2};
pub use vulcanization::{
    generate_model, VulcanizationModel, VulcanizationSpec, RATE_NAMES, TRUE_RATES,
};
