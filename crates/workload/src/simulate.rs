//! The chemistry simulation backend: compiled ODE tape + stiff solver +
//! observable, plugged into the parallel estimator.

use std::cell::RefCell;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};

use std::sync::Arc;

use rms_core::{
    species_dependencies, ExecFrame, ExecTape, JacobianTapes, NativeKernel, SensitivityTapes, Tape,
};
use rms_parallel::Simulator;
use rms_solver::{
    AnalyticJacobian, Bdf, CancelToken, FnRhs, JacobianSource, LinearSolver, OdeRhs, Rk45,
    SensitivityRhs, SolverError, SolverOptions, SparsityPattern,
};

/// Which right-hand-side evaluator the simulator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// The legacy tape interpreter (`Tape::eval_with_scratch`): one
    /// operand `match` per instruction.
    Interp,
    /// The pre-decoded execution engine ([`ExecTape`]): operands resolved
    /// to absolute frame indices at decode time, Mul+Add fused, and
    /// Jacobian color sweeps evaluated in SIMD-batched lanes.
    #[default]
    Exec,
    /// The `dlopen`ed native kernel (the *Codegen* stage output): the
    /// tape compiled to machine code by the system C compiler. Falls
    /// back to [`EngineMode::Exec`] when no kernel is attached (e.g. no
    /// C toolchain on this machine).
    Native,
    /// Size-aware selection between [`EngineMode::Native`] and
    /// [`EngineMode::Exec`]: native when a kernel is attached and its
    /// code is compact enough to stay in the instruction cache (always
    /// true for rerolled kernels), batched exec otherwise. Resolved per
    /// simulator via [`resolve_auto`]; the chosen engine and the reason
    /// are available through [`TapeSimulator::resolve_engine`].
    Auto,
}

/// The instruction-count crossover for [`EngineMode::Auto`]: above this
/// many emitted statements, an *unrolled* native kernel's straight-line
/// code overruns the instruction cache and the SIMD-batched exec engine
/// wins (measured on the scaled vulcanization family; see
/// `BENCH_codegen.json`). Rerolled kernels compress the code stream by
/// one to two orders of magnitude, so the crossover only applies to
/// unrolled emission.
pub const NATIVE_CROSSOVER_INSTRS: usize = 32_768;

/// Resolve [`EngineMode::Auto`] for a tape of `instrs` flat instructions
/// and an optionally attached native kernel. Returns the concrete engine
/// plus a human-readable reason (surfaced by the CLI and reports).
pub fn resolve_auto(instrs: usize, kernel: Option<&NativeKernel>) -> (EngineMode, String) {
    match kernel {
        None => (
            EngineMode::Exec,
            format!("auto: no native kernel attached; batched exec engine over {instrs} instructions"),
        ),
        Some(k) if k.loop_count() > 0 => (
            EngineMode::Native,
            format!(
                "auto: native kernel rerolled into {} loops ({} instructions absorbed), compact enough for the I-cache",
                k.loop_count(),
                k.rolled_instrs()
            ),
        ),
        Some(_) if instrs <= NATIVE_CROSSOVER_INSTRS => (
            EngineMode::Native,
            format!(
                "auto: unrolled kernel ({instrs} instructions) under the {NATIVE_CROSSOVER_INSTRS}-instruction I-cache crossover"
            ),
        ),
        Some(_) => (
            EngineMode::Exec,
            format!(
                "auto: unrolled kernel ({instrs} instructions) past the {NATIVE_CROSSOVER_INSTRS}-instruction I-cache crossover; batched exec engine"
            ),
        ),
    }
}

impl FromStr for EngineMode {
    type Err = String;

    fn from_str(s: &str) -> Result<EngineMode, String> {
        match s {
            "interp" => Ok(EngineMode::Interp),
            "exec" => Ok(EngineMode::Exec),
            "native" => Ok(EngineMode::Native),
            "auto" => Ok(EngineMode::Auto),
            other => Err(format!(
                "unknown engine '{other}' (expected interp, exec, native or auto)"
            )),
        }
    }
}

impl fmt::Display for EngineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EngineMode::Interp => "interp",
            EngineMode::Exec => "exec",
            EngineMode::Native => "native",
            EngineMode::Auto => "auto",
        })
    }
}

thread_local! {
    /// Per-thread execution frame. The parallel estimator spawns one
    /// scoped thread per rank inside each `objective()` call, so a rank's
    /// frame is created once per objective evaluation and then reused
    /// across every solver step, Newton iteration and Jacobian sweep of
    /// that rank's simulations — the inner hot loops allocate nothing.
    static EXEC_FRAME: RefCell<ExecFrame> = RefCell::new(ExecFrame::new());
}

/// [`OdeRhs`] adapter over a pre-decoded [`ExecTape`] bound to one
/// rate-constant vector. Both the scalar and the batched entry points
/// route into the execution engine; the batched one keeps all states of
/// a colored-FD sweep in structure-of-arrays lanes.
pub struct ExecRhs<'a> {
    tape: &'a ExecTape,
    rates: &'a [f64],
}

impl<'a> ExecRhs<'a> {
    /// Bind `tape` to `rates` for the duration of a solve.
    pub fn new(tape: &'a ExecTape, rates: &'a [f64]) -> ExecRhs<'a> {
        ExecRhs { tape, rates }
    }
}

impl OdeRhs for ExecRhs<'_> {
    fn dim(&self) -> usize {
        self.tape.n_species()
    }

    fn eval(&self, _t: f64, y: &[f64], ydot: &mut [f64]) {
        EXEC_FRAME.with(|f| self.tape.eval(self.rates, y, ydot, &mut f.borrow_mut()));
    }

    fn eval_batch(&self, _t: f64, ys: &[f64], ydots: &mut [f64]) {
        EXEC_FRAME.with(|f| {
            self.tape
                .eval_batch(self.rates, ys, ydots, &mut f.borrow_mut())
        });
    }
}

/// [`OdeRhs`] adapter over a `dlopen`ed [`NativeKernel`] bound to one
/// rate-constant vector. Scalar and batched entry points both dispatch
/// straight into the compiled machine code; no per-call scratch is
/// needed because the kernel's registers are C locals.
pub struct NativeRhs<'a> {
    kernel: &'a NativeKernel,
    rates: &'a [f64],
}

impl<'a> NativeRhs<'a> {
    /// Bind `kernel` to `rates` for the duration of a solve.
    pub fn new(kernel: &'a NativeKernel, rates: &'a [f64]) -> NativeRhs<'a> {
        NativeRhs { kernel, rates }
    }
}

impl OdeRhs for NativeRhs<'_> {
    fn dim(&self) -> usize {
        self.kernel.n_species()
    }

    fn eval(&self, _t: f64, y: &[f64], ydot: &mut [f64]) {
        self.kernel.eval(self.rates, y, ydot);
    }

    fn eval_batch(&self, _t: f64, ys: &[f64], ydots: &mut [f64]) {
        self.kernel.eval_batch(self.rates, ys, ydots);
    }
}

/// How the BDF solver obtains its Jacobian.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JacobianMode {
    /// Compiler-emitted analytic sparse tape ([`JacobianTapes`]).
    Analytic,
    /// Colored finite differences over the structural sparsity.
    #[default]
    FdColored,
    /// Dense finite differences (one RHS evaluation per state variable).
    FdDense,
}

impl FromStr for JacobianMode {
    type Err = String;

    fn from_str(s: &str) -> Result<JacobianMode, String> {
        match s {
            "analytic" => Ok(JacobianMode::Analytic),
            "fd-colored" => Ok(JacobianMode::FdColored),
            "fd-dense" => Ok(JacobianMode::FdDense),
            other => Err(format!(
                "unknown jacobian mode '{other}' (expected analytic, fd-colored or fd-dense)"
            )),
        }
    }
}

impl fmt::Display for JacobianMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JacobianMode::Analytic => "analytic",
            JacobianMode::FdColored => "fd-colored",
            JacobianMode::FdDense => "fd-dense",
        })
    }
}

/// [`AnalyticJacobian`] provider over a compiled [`JacobianTapes`] pair,
/// bound to one rate-constant vector for the duration of a solve.
pub struct TapeJacobian<'a> {
    tapes: &'a JacobianTapes,
    rates: &'a [f64],
    pattern: SparsityPattern,
    /// `(ydot, regs)` scratch reused across Newton iterations.
    scratch: RefCell<(Vec<f64>, Vec<f64>)>,
}

impl<'a> TapeJacobian<'a> {
    /// Bind `tapes` to `rates` and extract the exact sparsity pattern.
    pub fn new(tapes: &'a JacobianTapes, rates: &'a [f64]) -> TapeJacobian<'a> {
        let pattern = SparsityPattern::new(tapes.pattern_rows(), tapes.n_species);
        TapeJacobian {
            tapes,
            rates,
            pattern,
            scratch: RefCell::new((Vec::new(), Vec::new())),
        }
    }
}

impl AnalyticJacobian for TapeJacobian<'_> {
    fn pattern(&self) -> &SparsityPattern {
        &self.pattern
    }

    fn eval_values(&self, _t: f64, y: &[f64], vals: &mut [f64]) {
        let mut scratch = self.scratch.borrow_mut();
        let (ydot, regs) = &mut *scratch;
        ydot.resize(self.tapes.n_species, 0.0);
        self.tapes
            .eval_with_scratch(self.rates, y, ydot, vals, regs);
    }
}

/// [`AnalyticJacobian`] provider over a native kernel's `ode_jac` entry
/// point. The sparsity pattern still comes from the compiled
/// [`JacobianTapes`] (the kernel stores values in the same tape entry
/// order), but the evaluation runs as machine code.
pub struct NativeJacobian<'a> {
    kernel: &'a NativeKernel,
    rates: &'a [f64],
    pattern: SparsityPattern,
    /// `ydot` scratch reused across Newton iterations.
    scratch: RefCell<Vec<f64>>,
}

impl<'a> NativeJacobian<'a> {
    /// Bind `kernel` (which must export `ode_jac`) to `rates`, taking the
    /// sparsity pattern from the tapes the kernel was emitted from.
    pub fn new(
        kernel: &'a NativeKernel,
        tapes: &JacobianTapes,
        rates: &'a [f64],
    ) -> NativeJacobian<'a> {
        assert!(kernel.has_jacobian(), "kernel was built without ode_jac");
        let pattern = SparsityPattern::new(tapes.pattern_rows(), tapes.n_species);
        NativeJacobian {
            kernel,
            rates,
            pattern,
            scratch: RefCell::new(Vec::new()),
        }
    }
}

impl AnalyticJacobian for NativeJacobian<'_> {
    fn pattern(&self) -> &SparsityPattern {
        &self.pattern
    }

    fn eval_values(&self, _t: f64, y: &[f64], vals: &mut [f64]) {
        let mut ydot = self.scratch.borrow_mut();
        ydot.resize(self.kernel.n_species(), 0.0);
        self.kernel.eval_rhs_jac(self.rates, y, &mut ydot, vals);
    }
}

/// Combined [`AnalyticJacobian`] + [`SensitivityRhs`] provider over a
/// compiled [`SensitivityTapes`] triple, bound to one rate-constant
/// vector for the duration of a solve. The BDF solver pulls its Newton
/// iteration matrix from the `jac` group and the forward-sensitivity
/// forcing `∂f/∂p_k` from the `dfdp` group; all three groups share one
/// register file and the CSE'd subexpressions of the RHS.
pub struct TapeSensitivity<'a> {
    tapes: &'a SensitivityTapes,
    rates: &'a [f64],
    pattern: SparsityPattern,
    /// `(ydot, jac_vals, dfdp_vals, regs, last_y)` scratch reused across
    /// steps. `last_y` is the state of the most recent rhs+jac pass:
    /// when `∂f/∂p` is requested at the same point (the solver always
    /// refreshes the Jacobian right before the sensitivity forcing), the
    /// dfdp tape resumes over the already-filled register file instead
    /// of re-running all three groups.
    #[allow(clippy::type_complexity)]
    scratch: RefCell<(Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>)>,
}

impl<'a> TapeSensitivity<'a> {
    /// Bind `tapes` to `rates` and extract the Jacobian sparsity.
    pub fn new(tapes: &'a SensitivityTapes, rates: &'a [f64]) -> TapeSensitivity<'a> {
        let pattern = SparsityPattern::new(tapes.pattern_rows(), tapes.n_species);
        TapeSensitivity {
            tapes,
            rates,
            pattern,
            scratch: RefCell::new(Default::default()),
        }
    }
}

impl AnalyticJacobian for TapeSensitivity<'_> {
    fn pattern(&self) -> &SparsityPattern {
        &self.pattern
    }

    fn eval_values(&self, _t: f64, y: &[f64], vals: &mut [f64]) {
        let mut scratch = self.scratch.borrow_mut();
        let (ydot, _, _, regs, last_y) = &mut *scratch;
        ydot.resize(self.tapes.n_species, 0.0);
        self.tapes.eval_rhs_jac(self.rates, y, ydot, vals, regs);
        last_y.clear();
        last_y.extend_from_slice(y);
    }
}

impl SensitivityRhs for TapeSensitivity<'_> {
    fn n_params(&self) -> usize {
        self.tapes.n_rates
    }

    fn eval_dfdp(&self, _t: f64, y: &[f64], out: &mut [f64]) {
        let mut scratch = self.scratch.borrow_mut();
        let (ydot, jac_vals, dfdp_vals, regs, last_y) = &mut *scratch;
        let n = self.tapes.n_species;
        ydot.resize(n, 0.0);
        jac_vals.resize(self.tapes.jac_nnz(), 0.0);
        dfdp_vals.resize(self.tapes.dfdp_nnz(), 0.0);
        if last_y.as_slice() == y {
            // The rhs+jac groups just ran here; only the dfdp group is
            // left to evaluate over the shared register file.
            self.tapes.eval_dfdp_resumed(self.rates, y, dfdp_vals, regs);
        } else {
            self.tapes
                .eval_all(self.rates, y, ydot, jac_vals, dfdp_vals, regs);
            last_y.clear();
            last_y.extend_from_slice(y);
        }
        // Scatter the sparse (species, rate) entries into the dense
        // parameter-major layout the solver consumes.
        out.fill(0.0);
        for (e, &(i, k)) in self.tapes.dfdp_entries.iter().enumerate() {
            out[k as usize * n + i as usize] = dfdp_vals[e];
        }
    }
}

/// Combined [`AnalyticJacobian`] + [`SensitivityRhs`] provider over a
/// native kernel's `ode_sens` entry point. The pattern and the sparse
/// `∂f/∂p` entry layout come from the compiled [`SensitivityTapes`]; the
/// arithmetic runs as machine code. Unlike [`TapeSensitivity`] there is
/// no register-file resume: the kernel's registers are C locals, so every
/// call evaluates the full RHS + Jacobian + `∂f/∂p` group (still far
/// cheaper than interpreting the same tapes).
pub struct NativeSensitivity<'a> {
    kernel: &'a NativeKernel,
    tapes: &'a SensitivityTapes,
    rates: &'a [f64],
    pattern: SparsityPattern,
    /// `(ydot, jac_vals, dfdp_vals)` scratch reused across steps.
    scratch: RefCell<(Vec<f64>, Vec<f64>, Vec<f64>)>,
}

impl<'a> NativeSensitivity<'a> {
    /// Bind `kernel` (which must export `ode_sens`) to `rates`.
    pub fn new(
        kernel: &'a NativeKernel,
        tapes: &'a SensitivityTapes,
        rates: &'a [f64],
    ) -> NativeSensitivity<'a> {
        assert!(
            kernel.has_sensitivity(),
            "kernel was built without ode_sens"
        );
        let pattern = SparsityPattern::new(tapes.pattern_rows(), tapes.n_species);
        NativeSensitivity {
            kernel,
            tapes,
            rates,
            pattern,
            scratch: RefCell::new(Default::default()),
        }
    }
}

impl AnalyticJacobian for NativeSensitivity<'_> {
    fn pattern(&self) -> &SparsityPattern {
        &self.pattern
    }

    fn eval_values(&self, _t: f64, y: &[f64], vals: &mut [f64]) {
        let mut scratch = self.scratch.borrow_mut();
        let (ydot, _, dfdp_vals) = &mut *scratch;
        ydot.resize(self.tapes.n_species, 0.0);
        dfdp_vals.resize(self.tapes.dfdp_nnz(), 0.0);
        self.kernel.eval_all(self.rates, y, ydot, vals, dfdp_vals);
    }
}

impl SensitivityRhs for NativeSensitivity<'_> {
    fn n_params(&self) -> usize {
        self.tapes.n_rates
    }

    fn eval_dfdp(&self, _t: f64, y: &[f64], out: &mut [f64]) {
        let mut scratch = self.scratch.borrow_mut();
        let (ydot, jac_vals, dfdp_vals) = &mut *scratch;
        let n = self.tapes.n_species;
        ydot.resize(n, 0.0);
        jac_vals.resize(self.tapes.jac_nnz(), 0.0);
        dfdp_vals.resize(self.tapes.dfdp_nnz(), 0.0);
        self.kernel
            .eval_all(self.rates, y, ydot, jac_vals, dfdp_vals);
        // Scatter the sparse (species, rate) entries into the dense
        // parameter-major layout the solver consumes.
        out.fill(0.0);
        for (e, &(i, k)) in self.tapes.dfdp_entries.iter().enumerate() {
            out[k as usize * n + i as usize] = dfdp_vals[e];
        }
    }
}

/// Simulates the measured property (a weighted sum of species
/// concentrations — e.g. crosslink density) by integrating the compiled
/// tape with the Gear/BDF stiff solver.
pub struct TapeSimulator {
    /// Compiled right-hand side.
    pub tape: Tape,
    /// The same right-hand side pre-decoded for the execution engine
    /// (decoded once at construction, shared by every solve).
    exec: ExecTape,
    /// Per-formulation initial concentration vectors; experiment file `i`
    /// uses `initials[i % initials.len()]`.
    pub initials: Vec<Vec<f64>>,
    /// Observable weights: property = `Σ w_i · y_i`.
    pub observable: Vec<f64>,
    /// Solver configuration.
    pub options: SolverOptions,
    /// Jacobian sparsity extracted from the tape (colored finite
    /// differences make Newton affordable at large species counts).
    sparsity: SparsityPattern,
    /// Compiler-emitted analytic Jacobian tapes, when compiled.
    jacobian: Option<JacobianTapes>,
    /// Compiler-emitted parameter-sensitivity tapes, when compiled:
    /// enable one-solve residual Jacobians in the estimator.
    sensitivity: Option<SensitivityTapes>,
    /// Which Jacobian source the BDF solver uses.
    jacobian_mode: JacobianMode,
    /// Which right-hand-side evaluator the solvers call.
    engine: EngineMode,
    /// Loaded native kernel (the *Codegen* stage output).
    /// [`EngineMode::Native`] silently degrades to the exec engine when
    /// absent; the CLI surfaces the artifact's codegen diagnostic.
    native: Option<Arc<NativeKernel>>,
    /// Cooperative cancellation shared with every solver this simulator
    /// builds (deadline/shutdown supervision).
    cancel: Option<CancelToken>,
    /// Primary BDF attempts that failed (fallback chain engaged).
    bdf_failures: AtomicUsize,
    /// Failures recovered by re-running BDF with tightened tolerances.
    tightened_recoveries: AtomicUsize,
    /// Failures recovered by the explicit RK45 last resort.
    rk45_recoveries: AtomicUsize,
}

/// Counters describing how often the solver fallback chain engaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FallbackStats {
    /// Primary BDF attempts that failed.
    pub bdf_failures: usize,
    /// Of those, recovered by BDF with 100× tighter tolerances.
    pub tightened_recoveries: usize,
    /// Of those, recovered by explicit RK45.
    pub rk45_recoveries: usize,
}

impl TapeSimulator {
    /// Build a simulator with one shared formulation.
    pub fn new(tape: Tape, initial: Vec<f64>, observable: Vec<f64>) -> TapeSimulator {
        let exec = ExecTape::compile(&tape);
        TapeSimulator::with_exec(tape, exec, initial, observable)
    }

    /// Build a simulator from a compiled pipeline artifact: reuses the
    /// artifact's pre-decoded execution tape (the *ExecDecode* stage
    /// output) instead of re-decoding, and attaches its analytic
    /// Jacobian tapes when the *Deriv* stage ran.
    pub fn from_artifact(
        artifact: &rms_driver::CompiledArtifact,
        observable: Vec<f64>,
    ) -> TapeSimulator {
        let tape = artifact.compiled.tape.clone();
        let exec = artifact
            .exec
            .clone()
            .unwrap_or_else(|| ExecTape::compile(&tape));
        let sim = TapeSimulator::with_exec(tape, exec, artifact.system.initial.clone(), observable);
        let sim = match &artifact.jacobian {
            Some(tapes) => sim.with_analytic_jacobian(tapes.clone()),
            None => sim,
        };
        let sim = match &artifact.sensitivity {
            Some(tapes) => sim.with_sensitivities(tapes.clone()),
            None => sim,
        };
        match &artifact.native {
            Some(kernel) => sim.with_native_kernel(kernel.clone()),
            None => sim,
        }
    }

    /// Build a simulator around an already-decoded execution tape,
    /// skipping the redundant decode. `exec` must be the decoded form of
    /// `tape`.
    pub fn with_exec(
        tape: Tape,
        exec: ExecTape,
        initial: Vec<f64>,
        observable: Vec<f64>,
    ) -> TapeSimulator {
        let n = tape.n_species;
        let sparsity = SparsityPattern::new(species_dependencies(&tape), n);
        TapeSimulator {
            tape,
            exec,
            initials: vec![initial],
            observable,
            options: SolverOptions {
                rtol: 1e-6,
                atol: 1e-9,
                max_steps: 2_000_000,
                ..SolverOptions::default()
            },
            sparsity,
            jacobian: None,
            sensitivity: None,
            jacobian_mode: JacobianMode::default(),
            engine: EngineMode::default(),
            native: None,
            cancel: None,
            bdf_failures: AtomicUsize::new(0),
            tightened_recoveries: AtomicUsize::new(0),
            rk45_recoveries: AtomicUsize::new(0),
        }
    }

    /// Attach compiled analytic Jacobian tapes and switch to them.
    pub fn with_analytic_jacobian(mut self, tapes: JacobianTapes) -> TapeSimulator {
        self.jacobian = Some(tapes);
        self.jacobian_mode = JacobianMode::Analytic;
        self
    }

    /// Attach compiled parameter-sensitivity tapes. With tapes attached,
    /// [`Simulator::simulate_with_sensitivities`] integrates the forward
    /// sensitivity system alongside the state (sharing the Newton
    /// factorization), and the parallel estimator's analytic
    /// residual-Jacobian path becomes available.
    pub fn with_sensitivities(mut self, tapes: SensitivityTapes) -> TapeSimulator {
        assert_eq!(
            tapes.n_species, self.tape.n_species,
            "sensitivity tapes compiled for a different system"
        );
        self.sensitivity = Some(tapes);
        self
    }

    /// Whether parameter-sensitivity tapes are attached.
    pub fn has_sensitivities(&self) -> bool {
        self.sensitivity.is_some()
    }

    /// Attach a `dlopen`ed native kernel, making [`EngineMode::Native`]
    /// run compiled machine code instead of degrading to exec.
    pub fn with_native_kernel(mut self, kernel: Arc<NativeKernel>) -> TapeSimulator {
        assert_eq!(
            kernel.n_species(),
            self.tape.n_species,
            "native kernel compiled for a different system"
        );
        self.native = Some(kernel);
        self
    }

    /// The attached native kernel, if any.
    pub fn native_kernel(&self) -> Option<&Arc<NativeKernel>> {
        self.native.as_ref()
    }

    /// Select the Jacobian source. [`JacobianMode::Analytic`] falls back
    /// to colored finite differences if no tapes are attached.
    pub fn set_jacobian_mode(&mut self, mode: JacobianMode) {
        self.jacobian_mode = mode;
    }

    /// The currently selected Jacobian source.
    pub fn jacobian_mode(&self) -> JacobianMode {
        self.jacobian_mode
    }

    /// Select the direct method for the Newton iteration matrix
    /// (shorthand for setting it on [`options`](TapeSimulator::options)).
    pub fn set_linear_solver(&mut self, solver: LinearSolver) {
        self.options.linear_solver = solver;
    }

    /// The currently selected iteration-matrix solver.
    pub fn linear_solver(&self) -> LinearSolver {
        self.options.linear_solver
    }

    /// Select the right-hand-side evaluator.
    pub fn set_engine(&mut self, engine: EngineMode) {
        self.engine = engine;
    }

    /// The currently selected right-hand-side evaluator.
    pub fn engine(&self) -> EngineMode {
        self.engine
    }

    /// The engine a solve will actually run, with a human-readable
    /// reason. [`EngineMode::Auto`] resolves here against the attached
    /// kernel and the tape size; explicit selections pass through.
    pub fn resolve_engine(&self) -> (EngineMode, String) {
        match self.engine {
            EngineMode::Auto => resolve_auto(self.exec.len(), self.native.as_deref()),
            mode => (mode, format!("{mode} engine explicitly selected")),
        }
    }

    /// The concrete engine dispatched by the solver bodies.
    fn effective_engine(&self) -> EngineMode {
        self.resolve_engine().0
    }

    /// The pre-decoded execution-engine form of the right-hand side.
    pub fn exec_tape(&self) -> &ExecTape {
        &self.exec
    }

    /// Attach a [`CancelToken`]: every solver built by subsequent
    /// `simulate` calls checks it at each step boundary, and the fallback
    /// chain aborts immediately on cancellation instead of retrying with
    /// a different method.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Observable value for a state vector.
    pub fn measure(&self, y: &[f64]) -> f64 {
        self.observable.iter().zip(y).map(|(w, v)| w * v).sum()
    }

    /// How often the solver fallback chain has engaged on this simulator.
    pub fn fallback_stats(&self) -> FallbackStats {
        FallbackStats {
            bdf_failures: self.bdf_failures.load(Ordering::Relaxed),
            tightened_recoveries: self.tightened_recoveries.load(Ordering::Relaxed),
            rk45_recoveries: self.rk45_recoveries.load(Ordering::Relaxed),
        }
    }

    /// Integrate the tape with BDF under `options`, returning the
    /// observable at each requested time. Dispatches on the configured
    /// [`EngineMode`] and delegates to the engine-generic body.
    fn integrate_bdf(
        &self,
        rate_constants: &[f64],
        y0: &[f64],
        times: &[f64],
        options: SolverOptions,
    ) -> Result<Vec<f64>, SolverError> {
        match self.effective_engine() {
            EngineMode::Auto => unreachable!("auto resolves before dispatch"),
            EngineMode::Exec => {
                let rhs = ExecRhs::new(&self.exec, rate_constants);
                self.integrate_bdf_with(&rhs, rate_constants, y0, times, options)
            }
            EngineMode::Interp => {
                let dim = self.tape.n_species;
                let scratch = RefCell::new(Vec::new());
                let rhs = FnRhs::new(dim, |_t, y: &[f64], ydot: &mut [f64]| {
                    self.tape
                        .eval_with_scratch(rate_constants, y, ydot, &mut scratch.borrow_mut());
                });
                self.integrate_bdf_with(&rhs, rate_constants, y0, times, options)
            }
            EngineMode::Native => match &self.native {
                Some(kernel) => {
                    let rhs = NativeRhs::new(kernel, rate_constants);
                    self.integrate_bdf_with(&rhs, rate_constants, y0, times, options)
                }
                // Graceful degradation: no kernel attached (no toolchain,
                // codegen failure) → run the exec engine instead.
                None => {
                    let rhs = ExecRhs::new(&self.exec, rate_constants);
                    self.integrate_bdf_with(&rhs, rate_constants, y0, times, options)
                }
            },
        }
    }

    /// Engine-generic BDF body: build the Jacobian source and walk the
    /// requested output times.
    fn integrate_bdf_with<R: OdeRhs>(
        &self,
        rhs: &R,
        rate_constants: &[f64],
        y0: &[f64],
        times: &[f64],
        options: SolverOptions,
    ) -> Result<Vec<f64>, SolverError> {
        // Analytic Jacobian provider: native `ode_jac` when the native
        // engine runs with a jacobian-bearing kernel, interpreted tapes
        // otherwise. One enum so a single `Bdf` borrow covers both.
        enum Provider<'a> {
            Tape(TapeJacobian<'a>),
            Native(NativeJacobian<'a>),
        }
        impl AnalyticJacobian for Provider<'_> {
            fn pattern(&self) -> &SparsityPattern {
                match self {
                    Provider::Tape(p) => p.pattern(),
                    Provider::Native(p) => p.pattern(),
                }
            }
            fn eval_values(&self, t: f64, y: &[f64], vals: &mut [f64]) {
                match self {
                    Provider::Tape(p) => p.eval_values(t, y, vals),
                    Provider::Native(p) => p.eval_values(t, y, vals),
                }
            }
        }
        // Declared before `solver` so the provider outlives the borrow.
        let provider = match (self.jacobian_mode, &self.jacobian) {
            (JacobianMode::Analytic, Some(tapes)) => Some(match &self.native {
                Some(kernel)
                    if self.effective_engine() == EngineMode::Native && kernel.has_jacobian() =>
                {
                    Provider::Native(NativeJacobian::new(kernel, tapes, rate_constants))
                }
                _ => Provider::Tape(TapeJacobian::new(tapes, rate_constants)),
            }),
            _ => None,
        };
        let mut solver = Bdf::new(rhs, 0.0, y0, options);
        if let Some(token) = &self.cancel {
            solver.set_cancel(token.clone());
        }
        match (&provider, self.jacobian_mode) {
            (Some(p), _) => solver.set_jacobian_source(JacobianSource::AnalyticTape(p)),
            (None, JacobianMode::FdDense) => {}
            // Analytic without tapes falls back to colored FD.
            (None, _) => {
                solver.set_jacobian_source(JacobianSource::FdColored(self.sparsity.clone()))
            }
        }
        let mut out = Vec::with_capacity(times.len());
        for &t in times {
            solver.integrate_to(t)?;
            out.push(self.measure(solver.y()));
        }
        Ok(out)
    }

    /// Sensitivity-augmented BDF solve: dispatch on the engine.
    fn integrate_bdf_sens(
        &self,
        tapes: &SensitivityTapes,
        rate_constants: &[f64],
        y0: &[f64],
        times: &[f64],
        options: SolverOptions,
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>), SolverError> {
        match self.effective_engine() {
            EngineMode::Auto => unreachable!("auto resolves before dispatch"),
            EngineMode::Exec => {
                let rhs = ExecRhs::new(&self.exec, rate_constants);
                let provider = TapeSensitivity::new(tapes, rate_constants);
                self.integrate_bdf_sens_with(&rhs, &provider, tapes, y0, times, options)
            }
            EngineMode::Interp => {
                let dim = self.tape.n_species;
                let scratch = RefCell::new(Vec::new());
                let rhs = FnRhs::new(dim, |_t, y: &[f64], ydot: &mut [f64]| {
                    self.tape
                        .eval_with_scratch(rate_constants, y, ydot, &mut scratch.borrow_mut());
                });
                let provider = TapeSensitivity::new(tapes, rate_constants);
                self.integrate_bdf_sens_with(&rhs, &provider, tapes, y0, times, options)
            }
            EngineMode::Native => match &self.native {
                Some(kernel) if kernel.has_sensitivity() => {
                    let rhs = NativeRhs::new(kernel, rate_constants);
                    let provider = NativeSensitivity::new(kernel, tapes, rate_constants);
                    self.integrate_bdf_sens_with(&rhs, &provider, tapes, y0, times, options)
                }
                Some(kernel) => {
                    // Kernel without ode_sens: native RHS, interpreted tail.
                    let rhs = NativeRhs::new(kernel, rate_constants);
                    let provider = TapeSensitivity::new(tapes, rate_constants);
                    self.integrate_bdf_sens_with(&rhs, &provider, tapes, y0, times, options)
                }
                None => {
                    let rhs = ExecRhs::new(&self.exec, rate_constants);
                    let provider = TapeSensitivity::new(tapes, rate_constants);
                    self.integrate_bdf_sens_with(&rhs, &provider, tapes, y0, times, options)
                }
            },
        }
    }

    /// Engine-generic sensitivity-augmented BDF body: the state and every
    /// sensitivity column `s_k = ∂y/∂p_k` advance together, reusing the
    /// shared `I − hβJ` factorization, and the observable's derivative at
    /// each output time is the weighted sum `Σ w_i s_k[i]`.
    fn integrate_bdf_sens_with<R: OdeRhs, P: AnalyticJacobian + SensitivityRhs>(
        &self,
        rhs: &R,
        provider: &P,
        tapes: &SensitivityTapes,
        y0: &[f64],
        times: &[f64],
        options: SolverOptions,
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>), SolverError> {
        let mut solver = Bdf::new(rhs, 0.0, y0, options);
        if let Some(token) = &self.cancel {
            solver.set_cancel(token.clone());
        }
        solver.set_jacobian_source(JacobianSource::AnalyticTape(provider));
        solver.set_sensitivities(provider);
        let n = rhs.dim();
        let p = tapes.n_rates;
        let mut values = Vec::with_capacity(times.len());
        let mut sens_rows = Vec::with_capacity(times.len());
        for &t in times {
            solver.integrate_to(t)?;
            values.push(self.measure(&solver.y()[..n]));
            let s = solver.sensitivities();
            let row: Vec<f64> = (0..p)
                .map(|k| {
                    self.observable
                        .iter()
                        .zip(&s[k * n..(k + 1) * n])
                        .map(|(w, v)| w * v)
                        .sum()
                })
                .collect();
            sens_rows.push(row);
        }
        Ok((values, sens_rows))
    }

    /// Integrate with the explicit RK45 last resort.
    fn integrate_rk45(
        &self,
        rate_constants: &[f64],
        y0: &[f64],
        times: &[f64],
    ) -> Result<Vec<f64>, SolverError> {
        match self.effective_engine() {
            EngineMode::Auto => unreachable!("auto resolves before dispatch"),
            EngineMode::Exec => {
                let rhs = ExecRhs::new(&self.exec, rate_constants);
                self.integrate_rk45_with(&rhs, y0, times)
            }
            EngineMode::Interp => {
                let dim = self.tape.n_species;
                let scratch = RefCell::new(Vec::new());
                let rhs = FnRhs::new(dim, |_t, y: &[f64], ydot: &mut [f64]| {
                    self.tape
                        .eval_with_scratch(rate_constants, y, ydot, &mut scratch.borrow_mut());
                });
                self.integrate_rk45_with(&rhs, y0, times)
            }
            EngineMode::Native => match &self.native {
                Some(kernel) => {
                    let rhs = NativeRhs::new(kernel, rate_constants);
                    self.integrate_rk45_with(&rhs, y0, times)
                }
                None => {
                    let rhs = ExecRhs::new(&self.exec, rate_constants);
                    self.integrate_rk45_with(&rhs, y0, times)
                }
            },
        }
    }

    /// Engine-generic RK45 body (mirrors `solve_rk45`, with cancellation).
    fn integrate_rk45_with<R: OdeRhs>(
        &self,
        rhs: &R,
        y0: &[f64],
        times: &[f64],
    ) -> Result<Vec<f64>, SolverError> {
        let mut solver = Rk45::new(rhs, 0.0, y0, self.options);
        if let Some(token) = &self.cancel {
            solver.set_cancel(token.clone());
        }
        let mut out = Vec::with_capacity(times.len());
        for &t in times {
            solver.integrate_to(t)?;
            out.push(self.measure(&solver.y));
        }
        Ok(out)
    }
}

impl Simulator for TapeSimulator {
    /// Integrate with a three-stage fallback chain: BDF at the configured
    /// tolerances, then BDF with 100× tighter error control (stiff-step
    /// rejection cascades often pass under stricter control), then
    /// explicit RK45. The success path of the first stage is byte-for-byte
    /// the pre-fallback behavior; the chain only engages on failure.
    fn simulate(
        &self,
        rate_constants: &[f64],
        file_index: usize,
        times: &[f64],
    ) -> Result<Vec<f64>, String> {
        let y0 = &self.initials[file_index % self.initials.len()];
        let primary = match self.integrate_bdf(rate_constants, y0, times, self.options) {
            Ok(out) => return Ok(out),
            Err(e) => e,
        };
        // A deadline/shutdown cancellation is not a numerical failure:
        // retrying with tighter tolerances or RK45 would just burn wall
        // clock past the deadline. Surface it directly.
        if primary.is_cancelled() {
            return Err(primary.to_string());
        }
        self.bdf_failures.fetch_add(1, Ordering::Relaxed);
        let tightened_options = SolverOptions {
            rtol: self.options.rtol * 1e-2,
            atol: self.options.atol * 1e-2,
            ..self.options
        };
        let tightened = match self.integrate_bdf(rate_constants, y0, times, tightened_options) {
            Ok(out) => {
                self.tightened_recoveries.fetch_add(1, Ordering::Relaxed);
                return Ok(out);
            }
            Err(e) => e,
        };
        if tightened.is_cancelled() {
            return Err(tightened.to_string());
        }
        match self.integrate_rk45(rate_constants, y0, times) {
            Ok(out) => {
                self.rk45_recoveries.fetch_add(1, Ordering::Relaxed);
                Ok(out)
            }
            Err(rk45) => Err(format!(
                "all solvers failed: BDF: {primary}; BDF (tightened): {tightened}; RK45: {rk45}"
            )),
        }
    }

    fn sensitivity_params(&self) -> usize {
        match &self.sensitivity {
            Some(tapes) => tapes.n_rates,
            None => 0,
        }
    }

    /// One forward-sensitivity-augmented solve per call, independent of
    /// the parameter count. The fallback chain here is two-stage (primary
    /// BDF, then BDF with tightened tolerances): RK45 integrates no
    /// sensitivity system, so a total failure surfaces as an error and
    /// the estimator falls back to finite differences for this point.
    fn simulate_with_sensitivities(
        &self,
        rate_constants: &[f64],
        file_index: usize,
        times: &[f64],
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>), String> {
        let tapes = self
            .sensitivity
            .as_ref()
            .ok_or_else(|| "no parameter-sensitivity tapes compiled".to_string())?;
        let y0 = &self.initials[file_index % self.initials.len()];
        let primary = match self.integrate_bdf_sens(tapes, rate_constants, y0, times, self.options)
        {
            Ok(out) => return Ok(out),
            Err(e) => e,
        };
        if primary.is_cancelled() {
            return Err(primary.to_string());
        }
        let tightened_options = SolverOptions {
            rtol: self.options.rtol * 1e-2,
            atol: self.options.atol * 1e-2,
            ..self.options
        };
        self.integrate_bdf_sens(tapes, rate_constants, y0, times, tightened_options)
            .map_err(|tightened| {
                format!("sensitivity solves failed: BDF: {primary}; BDF (tightened): {tightened}")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_core::{optimize, OptLevel};
    use rms_odegen::{generate, GenerateOptions};

    use crate::vulcanization::{generate_model, VulcanizationSpec};

    fn small_simulator() -> (TapeSimulator, Vec<f64>) {
        let model = generate_model(VulcanizationSpec {
            sites: 3,
            max_chain: 3,
            neighbourhood: 1,
        });
        let sys = generate(&model.network, &model.rates, GenerateOptions::default()).unwrap();
        let compiled = optimize(&sys, OptLevel::Full);
        let mut observable = vec![0.0; sys.len()];
        for &x in &model.crosslink_species {
            observable[x.0 as usize] = 1.0;
        }
        (
            TapeSimulator::new(compiled.tape, sys.initial.clone(), observable),
            sys.rate_values.clone(),
        )
    }

    #[test]
    fn simulation_produces_rising_crosslink_density() {
        let (sim, rates) = small_simulator();
        let times = [0.2, 0.6, 1.2, 2.4];
        let values = sim.simulate(&rates, 0, &times).unwrap();
        assert_eq!(values.len(), 4);
        assert!(values[0] > 0.0);
        // Cure curve: density rises to a plateau, then reversion may set
        // in (the real rheometer curves the paper fits show the same
        // rise-then-revert shape).
        assert!(
            values[1] > values[0] && values[2] > values[1],
            "density should rise early: {values:?}"
        );
        assert!(
            values[3] > 0.5 * values[2],
            "late-time collapse: {values:?}"
        );
    }

    #[test]
    fn different_rates_change_output() {
        let (sim, rates) = small_simulator();
        let times = [1.0];
        let base = sim.simulate(&rates, 0, &times).unwrap();
        let mut slower = rates.clone();
        for v in &mut slower {
            *v *= 0.5;
        }
        let slow = sim.simulate(&slower, 0, &times).unwrap();
        assert!(
            slow[0] < base[0],
            "halving all rates should slow crosslinking: {} vs {}",
            slow[0],
            base[0]
        );
    }

    #[test]
    fn fallback_chain_reports_every_stage_on_total_failure() {
        let (mut sim, rates) = small_simulator();
        // Starve every solver: one step is never enough to reach t = 2.
        sim.options.max_steps = 1;
        let err = sim.simulate(&rates, 0, &[2.0]).unwrap_err();
        assert!(err.contains("all solvers failed"), "{err}");
        assert!(err.contains("BDF (tightened)"), "{err}");
        assert!(err.contains("RK45"), "{err}");
        let stats = sim.fallback_stats();
        assert_eq!(stats.bdf_failures, 1);
        assert_eq!(stats.tightened_recoveries, 0);
        assert_eq!(stats.rk45_recoveries, 0);
    }

    #[test]
    fn healthy_solves_never_engage_fallback() {
        let (sim, rates) = small_simulator();
        sim.simulate(&rates, 0, &[0.5, 1.0]).unwrap();
        assert_eq!(sim.fallback_stats(), FallbackStats::default());
    }

    fn small_simulator_with_jacobian() -> (TapeSimulator, Vec<f64>) {
        let model = generate_model(VulcanizationSpec {
            sites: 3,
            max_chain: 3,
            neighbourhood: 1,
        });
        let sys = generate(&model.network, &model.rates, GenerateOptions::default()).unwrap();
        let compiled = optimize(&sys, OptLevel::Full);
        let tapes = rms_core::compile_jacobian(&compiled.forest, Some(Default::default()));
        let mut observable = vec![0.0; sys.len()];
        for &x in &model.crosslink_species {
            observable[x.0 as usize] = 1.0;
        }
        (
            TapeSimulator::new(compiled.tape, sys.initial.clone(), observable)
                .with_analytic_jacobian(tapes),
            sys.rate_values.clone(),
        )
    }

    #[test]
    fn analytic_jacobian_matches_fd_trajectories() {
        let (sim, rates) = small_simulator_with_jacobian();
        assert_eq!(sim.jacobian_mode(), JacobianMode::Analytic);
        let times = [0.2, 0.6, 1.2, 2.4];
        let analytic = sim.simulate(&rates, 0, &times).unwrap();
        let mut sim = sim;
        sim.set_jacobian_mode(JacobianMode::FdColored);
        let colored = sim.simulate(&rates, 0, &times).unwrap();
        sim.set_jacobian_mode(JacobianMode::FdDense);
        let dense = sim.simulate(&rates, 0, &times).unwrap();
        for i in 0..times.len() {
            let scale = analytic[i].abs().max(1e-12);
            assert!(
                (analytic[i] - colored[i]).abs() < 1e-4 * scale,
                "t={}: analytic {} vs colored {}",
                times[i],
                analytic[i],
                colored[i]
            );
            assert!(
                (analytic[i] - dense[i]).abs() < 1e-4 * scale,
                "t={}: analytic {} vs dense {}",
                times[i],
                analytic[i],
                dense[i]
            );
        }
    }

    #[test]
    fn analytic_mode_without_tapes_falls_back() {
        let (mut sim, rates) = small_simulator();
        sim.set_jacobian_mode(JacobianMode::Analytic);
        let out = sim.simulate(&rates, 0, &[1.0]).unwrap();
        assert!(out[0].is_finite());
    }

    #[test]
    fn engine_mode_parses_round_trip() {
        for mode in [
            EngineMode::Interp,
            EngineMode::Exec,
            EngineMode::Native,
            EngineMode::Auto,
        ] {
            assert_eq!(mode.to_string().parse::<EngineMode>().unwrap(), mode);
        }
        assert!("jit".parse::<EngineMode>().is_err());
        assert_eq!(EngineMode::default(), EngineMode::Exec);
    }

    #[test]
    fn auto_engine_resolves_to_exec_without_a_kernel() {
        let (mut sim, rates) = small_simulator();
        sim.set_engine(EngineMode::Auto);
        assert_eq!(sim.engine(), EngineMode::Auto);
        let (resolved, reason) = sim.resolve_engine();
        assert_eq!(resolved, EngineMode::Exec);
        assert!(reason.contains("no native kernel"), "{reason}");
        // Auto must dispatch (to exec) rather than panic.
        let out = sim.simulate(&rates, 0, &[0.5]).unwrap();
        assert!(out[0].is_finite());
        // And match the explicit exec engine bitwise.
        sim.set_engine(EngineMode::Exec);
        assert_eq!(out, sim.simulate(&rates, 0, &[0.5]).unwrap());
    }

    #[test]
    fn resolve_auto_applies_the_icache_crossover() {
        let (small, r) = resolve_auto(100, None);
        assert_eq!(small, EngineMode::Exec);
        assert!(r.starts_with("auto:"), "{r}");
        // Without a kernel the crossover is moot — even a huge model
        // resolves to exec; kernel-bearing cases are covered end-to-end
        // in tests/native_engine.rs (they need a C toolchain).
        let (huge, r) = resolve_auto(NATIVE_CROSSOVER_INSTRS * 10, None);
        assert_eq!(huge, EngineMode::Exec);
        assert!(r.starts_with("auto:"), "{r}");
    }

    #[test]
    fn engines_agree_through_the_simulator() {
        let (mut sim, rates) = small_simulator();
        let times = [0.2, 0.6, 1.2, 2.4];
        assert_eq!(sim.engine(), EngineMode::Exec);
        let exec = sim.simulate(&rates, 0, &times).unwrap();
        sim.set_engine(EngineMode::Interp);
        let interp = sim.simulate(&rates, 0, &times).unwrap();
        for (t, (a, b)) in times.iter().zip(exec.iter().zip(&interp)) {
            assert!(
                (a - b).abs() <= 1e-6 * a.abs().max(1e-9),
                "t={t}: exec {a} vs interp {b}"
            );
        }
        // The default build does not contract FMA, so the engines run
        // the same arithmetic and must agree bitwise.
        if !rms_core::FMA_CONTRACTS {
            assert_eq!(exec, interp);
        }
        assert_eq!(sim.fallback_stats(), FallbackStats::default());
    }

    #[test]
    fn exec_engine_runs_every_jacobian_mode() {
        let (mut sim, rates) = small_simulator_with_jacobian();
        let times = [0.5, 1.0];
        let analytic = sim.simulate(&rates, 0, &times).unwrap();
        for mode in [JacobianMode::FdColored, JacobianMode::FdDense] {
            sim.set_jacobian_mode(mode);
            let other = sim.simulate(&rates, 0, &times).unwrap();
            for (a, b) in analytic.iter().zip(&other) {
                assert!(
                    (a - b).abs() <= 1e-4 * a.abs().max(1e-12),
                    "{mode}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn jacobian_mode_parses_round_trip() {
        for mode in [
            JacobianMode::Analytic,
            JacobianMode::FdColored,
            JacobianMode::FdDense,
        ] {
            assert_eq!(mode.to_string().parse::<JacobianMode>().unwrap(), mode);
        }
        assert!("newton".parse::<JacobianMode>().is_err());
        assert_eq!(JacobianMode::default(), JacobianMode::FdColored);
    }

    #[test]
    fn artifact_simulator_reuses_compiled_stages() {
        use rms_driver::{CompilerSession, SessionOptions};
        let model = generate_model(VulcanizationSpec {
            sites: 3,
            max_chain: 3,
            neighbourhood: 1,
        });
        let crosslinks = model.crosslink_species.clone();
        let mut options = SessionOptions::new(OptLevel::Full);
        options.deriv = true;
        let compiled = CompilerSession::with_options(options)
            .compile_network("simulate-test", model.network, model.rates)
            .unwrap();
        let artifact = &compiled.artifact;
        let mut observable = vec![0.0; artifact.system.len()];
        for &x in &crosslinks {
            observable[x.0 as usize] = 1.0;
        }
        let sim = TapeSimulator::from_artifact(artifact, observable.clone());
        // The artifact carried Jacobian tapes, so the simulator starts
        // analytic; its exec tape is the artifact's, not a re-decode.
        assert_eq!(sim.jacobian_mode(), JacobianMode::Analytic);
        assert_eq!(
            sim.exec_tape().len(),
            artifact.exec.as_ref().expect("decoded").len()
        );
        let direct = TapeSimulator::new(
            artifact.compiled.tape.clone(),
            artifact.system.initial.clone(),
            observable,
        );
        let times = [0.5, 1.0, 2.0];
        let rates = &artifact.system.rate_values;
        let a = sim.simulate(rates, 0, &times).unwrap();
        let b = direct.simulate(rates, 0, &times).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (x - y).abs() <= 1e-4 * x.abs().max(1e-12),
                "artifact {x} vs direct {y}"
            );
        }
    }

    fn small_simulator_with_sensitivities() -> (TapeSimulator, Vec<f64>) {
        let model = generate_model(VulcanizationSpec {
            sites: 3,
            max_chain: 3,
            neighbourhood: 1,
        });
        let sys = generate(&model.network, &model.rates, GenerateOptions::default()).unwrap();
        let compiled = optimize(&sys, OptLevel::Full);
        let sens = rms_core::compile_sensitivity(&compiled.forest, Some(Default::default()));
        let mut observable = vec![0.0; sys.len()];
        for &x in &model.crosslink_species {
            observable[x.0 as usize] = 1.0;
        }
        (
            TapeSimulator::new(compiled.tape, sys.initial.clone(), observable)
                .with_sensitivities(sens),
            sys.rate_values.clone(),
        )
    }

    #[test]
    fn sensitivities_match_central_differences() {
        let (mut sim, rates) = small_simulator_with_sensitivities();
        // Tight tolerances push the FD reference's solve-to-solve noise
        // floor well below the comparison threshold.
        sim.options.rtol = 1e-10;
        sim.options.atol = 1e-13;
        assert_eq!(
            rms_parallel::Simulator::sensitivity_params(&sim),
            rates.len()
        );
        let times = [0.3, 0.9, 1.8];
        let (values, sens) = sim.simulate_with_sensitivities(&rates, 0, &times).unwrap();
        let plain = sim.simulate(&rates, 0, &times).unwrap();
        for (a, b) in values.iter().zip(&plain) {
            assert!((a - b).abs() < 1e-7 * a.abs().max(1e-9), "{a} vs {b}");
        }
        assert_eq!(sens.len(), times.len());
        for k in 0..rates.len() {
            let h = 1e-4 * rates[k].abs().max(1e-4);
            let mut up = rates.clone();
            up[k] += h;
            let mut dn = rates.clone();
            dn[k] -= h;
            let fwd = sim.simulate(&up, 0, &times).unwrap();
            let bwd = sim.simulate(&dn, 0, &times).unwrap();
            for r in 0..times.len() {
                let fd = (fwd[r] - bwd[r]) / (2.0 * h);
                let got = sens[r][k];
                assert!(
                    (got - fd).abs() < 5e-4 * fd.abs().max(1e-2),
                    "t={} k={k}: analytic {got} vs fd {fd}",
                    times[r]
                );
            }
        }
    }

    #[test]
    fn sensitivities_run_on_both_engines() {
        let (mut sim, rates) = small_simulator_with_sensitivities();
        let times = [0.5, 1.0];
        let (exec_v, exec_s) = sim.simulate_with_sensitivities(&rates, 0, &times).unwrap();
        sim.set_engine(EngineMode::Interp);
        let (interp_v, interp_s) = sim.simulate_with_sensitivities(&rates, 0, &times).unwrap();
        for (a, b) in exec_v.iter().zip(&interp_v) {
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1e-9), "{a} vs {b}");
        }
        for (ra, rb) in exec_s.iter().zip(&interp_s) {
            for (a, b) in ra.iter().zip(rb) {
                assert!((a - b).abs() <= 1e-4 * a.abs().max(1e-6), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn simulator_without_tapes_rejects_sensitivity_requests() {
        let (sim, rates) = small_simulator();
        assert_eq!(rms_parallel::Simulator::sensitivity_params(&sim), 0);
        let err = sim
            .simulate_with_sensitivities(&rates, 0, &[1.0])
            .unwrap_err();
        assert!(err.contains("no parameter-sensitivity tapes"), "{err}");
    }

    #[test]
    fn artifact_with_sensitivity_stage_attaches_tapes() {
        use rms_driver::{CompilerSession, SessionOptions};
        let model = generate_model(VulcanizationSpec {
            sites: 3,
            max_chain: 3,
            neighbourhood: 1,
        });
        let crosslinks = model.crosslink_species.clone();
        let mut options = SessionOptions::new(OptLevel::Full);
        options.deriv = true;
        options.sensitivity = true;
        let compiled = CompilerSession::with_options(options)
            .compile_network("sensitivity-test", model.network, model.rates)
            .unwrap();
        let artifact = &compiled.artifact;
        assert!(artifact.sensitivity.is_some());
        // Deriv-stage metrics cover the dfdp group.
        let deriv = artifact
            .report
            .stage(rms_driver::Stage::Deriv)
            .expect("Deriv ran");
        assert!(deriv
            .metrics
            .iter()
            .any(|(k, v)| k == "dfdp_nnz" && *v > 0.0));
        assert!(deriv
            .metrics
            .iter()
            .any(|(k, v)| k == "dfdp_instrs" && *v > 0.0));
        let mut observable = vec![0.0; artifact.system.len()];
        for &x in &crosslinks {
            observable[x.0 as usize] = 1.0;
        }
        let sim = TapeSimulator::from_artifact(artifact, observable);
        assert!(sim.has_sensitivities());
        assert_eq!(
            rms_parallel::Simulator::sensitivity_params(&sim),
            artifact.system.rate_values.len()
        );
    }

    #[test]
    fn formulations_select_by_index() {
        let (mut sim, rates) = small_simulator();
        let mut alt = sim.initials[0].clone();
        for v in &mut alt {
            *v *= 0.5;
        }
        sim.initials.push(alt);
        let a = sim.simulate(&rates, 0, &[1.0]).unwrap();
        let b = sim.simulate(&rates, 1, &[1.0]).unwrap();
        let c = sim.simulate(&rates, 2, &[1.0]).unwrap(); // wraps to 0
        assert!(a[0] != b[0]);
        assert_eq!(a[0], c[0]);
    }
}
