//! The chemistry simulation backend: compiled ODE tape + stiff solver +
//! observable, plugged into the parallel estimator.

use std::cell::RefCell;

use rms_core::{species_dependencies, Tape};
use rms_parallel::Simulator;
use rms_solver::{Bdf, FnRhs, SolverOptions, SparsityPattern};

/// Simulates the measured property (a weighted sum of species
/// concentrations — e.g. crosslink density) by integrating the compiled
/// tape with the Gear/BDF stiff solver.
pub struct TapeSimulator {
    /// Compiled right-hand side.
    pub tape: Tape,
    /// Per-formulation initial concentration vectors; experiment file `i`
    /// uses `initials[i % initials.len()]`.
    pub initials: Vec<Vec<f64>>,
    /// Observable weights: property = `Σ w_i · y_i`.
    pub observable: Vec<f64>,
    /// Solver configuration.
    pub options: SolverOptions,
    /// Jacobian sparsity extracted from the tape (colored finite
    /// differences make Newton affordable at large species counts).
    sparsity: SparsityPattern,
}

impl TapeSimulator {
    /// Build a simulator with one shared formulation.
    pub fn new(tape: Tape, initial: Vec<f64>, observable: Vec<f64>) -> TapeSimulator {
        let n = tape.n_species;
        let sparsity = SparsityPattern::new(species_dependencies(&tape), n);
        TapeSimulator {
            tape,
            initials: vec![initial],
            observable,
            options: SolverOptions {
                rtol: 1e-6,
                atol: 1e-9,
                max_steps: 2_000_000,
                ..SolverOptions::default()
            },
            sparsity,
        }
    }

    /// Observable value for a state vector.
    pub fn measure(&self, y: &[f64]) -> f64 {
        self.observable.iter().zip(y).map(|(w, v)| w * v).sum()
    }
}

impl Simulator for TapeSimulator {
    fn simulate(
        &self,
        rate_constants: &[f64],
        file_index: usize,
        times: &[f64],
    ) -> Result<Vec<f64>, String> {
        let dim = self.tape.n_species;
        let scratch = RefCell::new(Vec::new());
        let rhs = FnRhs::new(dim, |_t, y: &[f64], ydot: &mut [f64]| {
            self.tape
                .eval_with_scratch(rate_constants, y, ydot, &mut scratch.borrow_mut());
        });
        let y0 = &self.initials[file_index % self.initials.len()];
        let mut solver = Bdf::new(&rhs, 0.0, y0, self.options);
        solver.set_sparsity(self.sparsity.clone());
        let mut out = Vec::with_capacity(times.len());
        for &t in times {
            solver
                .integrate_to(t)
                .map_err(|e| format!("BDF failed: {e}"))?;
            out.push(self.measure(solver.y()));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_core::{optimize, OptLevel};
    use rms_odegen::{generate, GenerateOptions};

    use crate::vulcanization::{generate_model, VulcanizationSpec};

    fn small_simulator() -> (TapeSimulator, Vec<f64>) {
        let model = generate_model(VulcanizationSpec {
            sites: 3,
            max_chain: 3,
            neighbourhood: 1,
        });
        let sys = generate(&model.network, &model.rates, GenerateOptions::default()).unwrap();
        let compiled = optimize(&sys, OptLevel::Full);
        let mut observable = vec![0.0; sys.len()];
        for &x in &model.crosslink_species {
            observable[x.0 as usize] = 1.0;
        }
        (
            TapeSimulator::new(compiled.tape, sys.initial.clone(), observable),
            sys.rate_values.clone(),
        )
    }

    #[test]
    fn simulation_produces_rising_crosslink_density() {
        let (sim, rates) = small_simulator();
        let times = [0.2, 0.6, 1.2, 2.4];
        let values = sim.simulate(&rates, 0, &times).unwrap();
        assert_eq!(values.len(), 4);
        assert!(values[0] > 0.0);
        // Cure curve: density rises to a plateau, then reversion may set
        // in (the real rheometer curves the paper fits show the same
        // rise-then-revert shape).
        assert!(
            values[1] > values[0] && values[2] > values[1],
            "density should rise early: {values:?}"
        );
        assert!(
            values[3] > 0.5 * values[2],
            "late-time collapse: {values:?}"
        );
    }

    #[test]
    fn different_rates_change_output() {
        let (sim, rates) = small_simulator();
        let times = [1.0];
        let base = sim.simulate(&rates, 0, &times).unwrap();
        let mut slower = rates.clone();
        for v in &mut slower {
            *v *= 0.5;
        }
        let slow = sim.simulate(&slower, 0, &times).unwrap();
        assert!(
            slow[0] < base[0],
            "halving all rates should slow crosslinking: {} vs {}",
            slow[0],
            base[0]
        );
    }

    #[test]
    fn formulations_select_by_index() {
        let (mut sim, rates) = small_simulator();
        let mut alt = sim.initials[0].clone();
        for v in &mut alt {
            *v *= 0.5;
        }
        sim.initials.push(alt);
        let a = sim.simulate(&rates, 0, &[1.0]).unwrap();
        let b = sim.simulate(&rates, 1, &[1.0]).unwrap();
        let c = sim.simulate(&rates, 2, &[1.0]).unwrap(); // wraps to 0
        assert!(a[0] != b[0]);
        assert_eq!(a[0], c[0]);
    }
}
