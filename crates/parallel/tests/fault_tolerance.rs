//! Fault-injection integration tests for the SPMD runtime.
//!
//! Every scenario here runs under a hard watchdog deadline: the single
//! worst historical failure mode of barrier-based runtimes is the silent
//! deadlock, where a dead rank leaves its peers parked forever and CI
//! only notices at the job timeout. [`with_deadline`] turns that hang
//! into an immediate, attributable test failure.

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use rms_parallel::comm::CommError;
use rms_parallel::estimator::{
    EstimatorConfig, EstimatorError, FailurePolicy, ParallelEstimator, RetryPolicy,
};
use rms_parallel::fault::{FaultPlan, FaultySimulator};
use rms_parallel::{run_cluster, run_cluster_with, CommConfig, ExperimentFile};

/// Run `body` on a helper thread; panic if it does not finish within
/// `deadline`. A deadlocked cluster thereby fails the test in bounded
/// wall-clock instead of hanging the whole suite.
fn with_deadline<T: Send + 'static>(
    deadline: Duration,
    body: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = thread::Builder::new()
        .name("deadline-guard".into())
        .spawn(move || {
            let _ = tx.send(body());
        })
        .expect("spawn watchdog worker");
    match rx.recv_timeout(deadline) {
        Ok(value) => {
            let _ = worker.join();
            value
        }
        Err(_) => panic!("test body exceeded its {deadline:?} deadline — likely deadlock"),
    }
}

/// Synthetic model: exponential decay with rate `p[0]`.
fn model(p: &[f64], _file: usize, times: &[f64]) -> Result<Vec<f64>, String> {
    if p[0] < 0.0 {
        return Err("negative rate".to_string());
    }
    Ok(times.iter().map(|t| (-p[0] * t).exp()).collect())
}

fn make_files(n: usize, records: usize) -> Vec<ExperimentFile> {
    (0..n)
        .map(|i| {
            let times: Vec<f64> = (1..=records).map(|j| j as f64 * 0.1).collect();
            let values = model(&[1.0], 0, &times).unwrap();
            ExperimentFile {
                label: format!("exp{i:02}"),
                times,
                values,
            }
        })
        .collect()
}

/// The headline deadlock-regression test: one rank panics mid-collective
/// and every survivor must come back with `CommError::RankPanicked`
/// within bounded wall-clock. Under the old `std::sync::Barrier`
/// implementation this scenario parked ranks 0, 1 and 3 forever.
#[test]
fn panicking_rank_fails_survivors_within_deadline() {
    with_deadline(Duration::from_secs(10), || {
        let started = Instant::now();
        let results = run_cluster(4, |comm| {
            if comm.rank() == 2 {
                panic!("injected rank failure");
            }
            comm.barrier()?;
            comm.all_reduce_sum(&[1.0])
        });
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "survivors took {:?} to observe the dead rank",
            started.elapsed()
        );
        for (rank, result) in results.iter().enumerate() {
            match (rank, result) {
                (2, Err(panic)) => {
                    assert_eq!(panic.rank, 2);
                    assert!(panic.message.contains("injected rank failure"));
                }
                (_, Ok(Err(CommError::RankPanicked { rank }))) => assert_eq!(*rank, 2),
                other => panic!("rank {rank}: unexpected outcome {other:?}"),
            }
        }
    });
}

/// A panic injected through the simulator (not hand-rolled in the rank
/// body) is contained the same way, end to end through the estimator.
#[test]
fn injected_simulator_panic_surfaces_as_estimator_error() {
    with_deadline(Duration::from_secs(10), || {
        let files = make_files(6, 8);
        let sim = FaultySimulator::new(model, FaultPlan::new().panic_at_call(2));
        let est = ParallelEstimator::new(&sim, files, 3, false);
        let err = est.objective(&[1.0]).unwrap_err();
        match err {
            EstimatorError::RankPanic(panic) => {
                assert!(panic.message.contains("injected panic"), "{panic}");
            }
            other => panic!("expected RankPanic, got {other:?}"),
        }
        let health = est.cumulative_health();
        assert_eq!(health.rank_panics.len(), 1, "{}", health.summary());
        assert!(!health.comm_errors.is_empty(), "{}", health.summary());
    });
}

/// A rank that stops participating (simulated by an extreme slowdown)
/// trips the collective deadline on its peers instead of hanging them.
#[test]
fn collective_timeout_detects_stalled_rank() {
    with_deadline(Duration::from_secs(10), || {
        let config = CommConfig::with_timeout(Duration::from_millis(200));
        let results = run_cluster_with(3, config, |comm| {
            if comm.rank() == 1 {
                // Stall well past the collective deadline.
                thread::sleep(Duration::from_millis(800));
            }
            comm.all_reduce_sum(&[comm.rank() as f64])
        });
        let timeouts = results
            .iter()
            .filter(|r| matches!(r, Ok(Err(CommError::Timeout { .. }))))
            .count();
        assert!(
            timeouts >= 2,
            "peers of the stalled rank must time out: {results:?}"
        );
    });
}

/// Graceful degradation: N files permanently failing under `Penalize`
/// still yields a completed objective, with every fault itemized in the
/// health report and penalty residuals on exactly the failed files.
#[test]
fn estimation_completes_with_injected_failures_and_reports_them() {
    with_deadline(Duration::from_secs(30), || {
        let files = make_files(8, 10);
        let plan = FaultPlan::new()
            .fail_file_permanently(1, "injected: solver diverged")
            .fail_file_permanently(5, "injected: singular iteration matrix");
        let sim = FaultySimulator::new(model, plan);
        let est = ParallelEstimator::with_config(
            &sim,
            files,
            4,
            EstimatorConfig {
                on_failure: FailurePolicy::Penalize,
                retry: RetryPolicy::with_max_retries(1),
                penalty: 1e3,
                ..EstimatorConfig::default()
            },
        );
        let out = est.objective(&[1.0]).unwrap();
        // Both injected faults are itemized.
        let failed: Vec<usize> = out.health.file_failures.iter().map(|f| f.file).collect();
        assert_eq!(failed, vec![1, 5], "{}", out.health.summary());
        for failure in &out.health.file_failures {
            assert!(failure.penalized);
            assert_eq!(failure.attempts, 2, "1 try + 1 retry");
            assert!(failure.error.contains("injected"));
        }
        // The 6 healthy files match experiment exactly (error 0), so each
        // record carries exactly the two files' penalties.
        for v in &out.error_vector {
            assert!((v - 2e3).abs() < 1e-9, "{v}");
        }
    });
}

/// A transient failure (fails once, then succeeds) is absorbed by the
/// retry policy: the objective output is bit-identical to the no-fault
/// run and the health report records the recovery.
#[test]
fn transient_failure_recovered_by_retry() {
    with_deadline(Duration::from_secs(30), || {
        let files = make_files(5, 10);
        let clean = ParallelEstimator::new(&model, files.clone(), 2, false)
            .objective(&[1.3])
            .unwrap();
        let sim = FaultySimulator::new(model, FaultPlan::new().fail_file(2, 1, "transient blip"));
        let est = ParallelEstimator::new(&sim, files, 2, false);
        let out = est.objective(&[1.3]).unwrap();
        assert_eq!(
            out.error_vector, clean.error_vector,
            "retry must be invisible"
        );
        assert_eq!(out.health.retries, 1);
        assert_eq!(out.health.recovered, 1);
        assert!(out.health.file_failures.is_empty());
    });
}

/// The acceptance criterion for zero-fault runs: with no faults injected,
/// the hardened runtime produces **bit-identical** error vectors across
/// rank counts and configurations — fault tolerance is free when nothing
/// fails.
#[test]
fn no_fault_error_vectors_bit_identical_across_configs() {
    with_deadline(Duration::from_secs(30), || {
        let files = make_files(7, 12);
        let params = [0.9];
        let reference = ParallelEstimator::new(&model, files.clone(), 1, false)
            .objective(&params)
            .unwrap();
        for ranks in [2, 3, 4] {
            for policy in [FailurePolicy::Abort, FailurePolicy::Penalize] {
                let sim = FaultySimulator::new(model, FaultPlan::new());
                let est = ParallelEstimator::with_config(
                    &sim,
                    files.clone(),
                    ranks,
                    EstimatorConfig {
                        on_failure: policy,
                        collective_timeout: Some(Duration::from_secs(5)),
                        ..EstimatorConfig::default()
                    },
                );
                let out = est.objective(&params).unwrap();
                // Bit-identical, not approximately equal.
                assert_eq!(
                    out.error_vector, reference.error_vector,
                    "ranks={ranks} policy={policy:?}"
                );
                assert!(out.health.is_healthy());
            }
        }
    });
}

/// Abort policy (the default) still fails fast on a permanent fault,
/// naming the file in the error.
#[test]
fn abort_policy_names_failing_file() {
    with_deadline(Duration::from_secs(10), || {
        let files = make_files(4, 6);
        let sim = FaultySimulator::new(
            model,
            FaultPlan::new().fail_file_permanently(3, "injected: Newton divergence"),
        );
        let est = ParallelEstimator::new(&sim, files, 2, false);
        let err = est.objective(&[1.0]).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("exp03"), "{text}");
        assert!(text.contains("Newton divergence"), "{text}");
    });
}

/// Slow ranks skew the measured per-file times; the dynamic load
/// balancer must still produce an exact cover and the run must finish.
#[test]
fn slowdown_faults_do_not_break_dynamic_load_balancing() {
    with_deadline(Duration::from_secs(30), || {
        let files = make_files(6, 8);
        let plan = FaultPlan::new()
            .slow_call(0, Duration::from_millis(50))
            .slow_call(3, Duration::from_millis(50));
        let sim = FaultySimulator::new(model, plan);
        let est = ParallelEstimator::new(&sim, files, 3, true);
        est.objective(&[1.0]).unwrap();
        // Second call reschedules from the skewed times.
        let out = est.objective(&[1.0]).unwrap();
        assert!(out.health.is_healthy());
        let schedule = est.current_schedule();
        let mut seen: Vec<usize> = schedule.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    });
}
