//! Experimental data files.
//!
//! "Each file contains more than 3000 records of the form
//! `<t_i, property value>`, where `t_i` is a time step and property value
//! is a measure of the property that is to be predicted by the chemical
//! model (e.g. elasticity or stiffness of the rubber compound)." (§4.3)
//!
//! Files are plain text: `#` comments, then one `t value` pair per line.
//! "The data files are replicated across the processors."

use std::fmt::Write as _;
use std::path::Path;

/// One experiment's measured time series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExperimentFile {
    /// Experiment label (e.g. formulation name).
    pub label: String,
    /// Sample times, strictly increasing.
    pub times: Vec<f64>,
    /// Measured property values, one per time.
    pub values: Vec<f64>,
}

/// Errors reading an experiment file.
#[derive(Debug)]
pub enum DataFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed record at a line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Times not strictly increasing at a line.
    NonMonotonicTime {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for DataFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataFileError::Io(e) => write!(f, "io error: {e}"),
            DataFileError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataFileError::NonMonotonicTime { line } => {
                write!(f, "non-monotonic time at line {line}")
            }
        }
    }
}

impl std::error::Error for DataFileError {}

impl From<std::io::Error> for DataFileError {
    fn from(e: std::io::Error) -> Self {
        DataFileError::Io(e)
    }
}

impl ExperimentFile {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the file has no records.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Parse the text format.
    pub fn parse(label: &str, text: &str) -> Result<ExperimentFile, DataFileError> {
        let mut file = ExperimentFile {
            label: label.to_string(),
            ..ExperimentFile::default()
        };
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(t_str), Some(v_str)) = (parts.next(), parts.next()) else {
                return Err(DataFileError::Parse {
                    line: i + 1,
                    message: format!("expected 't value', found '{line}'"),
                });
            };
            if parts.next().is_some() {
                return Err(DataFileError::Parse {
                    line: i + 1,
                    message: "trailing fields".to_string(),
                });
            }
            let t: f64 = t_str.parse().map_err(|_| DataFileError::Parse {
                line: i + 1,
                message: format!("bad time '{t_str}'"),
            })?;
            let v: f64 = v_str.parse().map_err(|_| DataFileError::Parse {
                line: i + 1,
                message: format!("bad value '{v_str}'"),
            })?;
            if let Some(&last) = file.times.last() {
                if t <= last {
                    return Err(DataFileError::NonMonotonicTime { line: i + 1 });
                }
            }
            file.times.push(t);
            file.values.push(v);
        }
        Ok(file)
    }

    /// Render the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# experiment: {}", self.label);
        let _ = writeln!(out, "# records: {}", self.len());
        for (t, v) in self.times.iter().zip(&self.values) {
            let _ = writeln!(out, "{t:e} {v:e}"); // shortest round-trip form
        }
        out
    }

    /// Read from disk.
    pub fn read(path: &Path) -> Result<ExperimentFile, DataFileError> {
        let text = std::fs::read_to_string(path)?;
        let label = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        ExperimentFile::parse(&label, &text)
    }

    /// Write to disk.
    pub fn write(&self, path: &Path) -> Result<(), DataFileError> {
        std::fs::write(path, self.to_text())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let f = ExperimentFile::parse("x", "0.0 1.0\n1.0 0.5\n2.0 0.25\n").unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(f.times, vec![0.0, 1.0, 2.0]);
        assert_eq!(f.values, vec![1.0, 0.5, 0.25]);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let f = ExperimentFile::parse("x", "# header\n\n0 1 # inline\n1 2\n").unwrap();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn round_trip() {
        let f = ExperimentFile {
            label: "trial".to_string(),
            times: vec![0.0, 0.5, 1.5],
            values: vec![1.0, 0.7, 0.2],
        };
        let f2 = ExperimentFile::parse("trial", &f.to_text()).unwrap();
        assert_eq!(f.times, f2.times);
        assert_eq!(f.values, f2.values);
    }

    #[test]
    fn errors_reported() {
        assert!(matches!(
            ExperimentFile::parse("x", "0.0\n"),
            Err(DataFileError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            ExperimentFile::parse("x", "0 1 2\n"),
            Err(DataFileError::Parse { .. })
        ));
        assert!(matches!(
            ExperimentFile::parse("x", "1 1\n0.5 2\n"),
            Err(DataFileError::NonMonotonicTime { line: 2 })
        ));
        assert!(matches!(
            ExperimentFile::parse("x", "abc 1\n"),
            Err(DataFileError::Parse { .. })
        ));
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join("rms_datafile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exp01.dat");
        let f = ExperimentFile {
            label: "exp01".to_string(),
            times: (0..100).map(|i| i as f64 * 0.1).collect(),
            values: (0..100).map(|i| (i as f64 * -0.05).exp()).collect(),
        };
        f.write(&path).unwrap();
        let f2 = ExperimentFile::read(&path).unwrap();
        assert_eq!(f2.label, "exp01");
        assert_eq!(f2.len(), 100);
        for (a, b) in f.values.iter().zip(&f2.values) {
            assert!((a - b).abs() < 1e-12);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
