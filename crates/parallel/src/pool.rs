//! Index-ordered parallel map over scoped threads.
//!
//! The rule-closure frontend fans match/edit/canonicalize work for one
//! generation out over worker threads and merges the results **in work-item
//! order**, so the generated network is bit-identical at any thread count.
//! [`scoped_map`] provides exactly that primitive: workers grab contiguous
//! chunks from an atomic cursor (so finishing early just means grabbing the
//! next chunk), and the chunks are stitched back together by their start
//! index before returning.
//!
//! Unlike the SPMD [`crate::comm`] cluster this is a fork/join helper: no
//! collectives, no ranks, no fault containment — a panicking worker
//! propagates the panic to the caller, matching what the same loop would do
//! serially.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use when the caller asked for "auto" (0):
/// the machine's available parallelism, or 1 if it cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` using `threads` scoped workers, returning results
/// in item order. `threads == 0` means [`available_threads`]; a resolved
/// thread count of 1 (or fewer than 2 items) runs serially on the caller's
/// thread with no synchronization at all.
pub fn scoped_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = if threads == 0 {
        available_threads()
    } else {
        threads
    };
    let n = items.len();
    if threads <= 1 || n < 2 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(n);
    // Small chunks keep the tail balanced; large enough to amortize the
    // cursor fetch. ~8 chunks per worker.
    let chunk = (n / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let chunks: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    return;
                }
                let end = (start + chunk).min(n);
                let out: Vec<R> = items[start..end].iter().map(&f).collect();
                chunks.lock().unwrap().push((start, out));
            });
        }
    });
    let mut chunks = chunks.into_inner().unwrap();
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut result = Vec::with_capacity(n);
    for (_, mut part) in chunks {
        result.append(&mut part);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            assert_eq!(scoped_map(threads, &items, |&x| x * 3 + 1), expect);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(scoped_map(8, &empty, |&x| x).is_empty());
        assert_eq!(scoped_map(8, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let items: Vec<usize> = (0..3).collect();
        assert_eq!(scoped_map(16, &items, |&x| x * x), vec![0, 1, 4]);
    }

    #[test]
    fn auto_threads_resolves() {
        assert!(available_threads() >= 1);
        let items: Vec<u32> = (0..100).collect();
        let expect: Vec<u32> = items.iter().map(|x| x + 1).collect();
        assert_eq!(scoped_map(0, &items, |&x| x + 1), expect);
    }
}
