//! The Parallel Parameter Estimator (paper §4, Fig. 8 & 9).
//!
//! The objective function distributes the experimental data files over
//! the ranks (block distribution, or the previous call's LPT schedule
//! when dynamic load balancing is on), solves the ODE system for each
//! assigned file's time grid, accumulates `simulated − experimental`
//! differences into a local error vector, and `MPI_Allreduce`-sums the
//! local vectors into the global error vector every rank receives. The
//! per-file solve times are reduced the same way and feed the next call's
//! schedule.

use std::time::Instant;

use parking_lot::Mutex;

use rms_nlopt::{optimize, LmOptions, LmResult, NloptError, Residual};

use crate::comm::run_cluster;
use crate::datafile::ExperimentFile;
use crate::loadbalance::{block_schedule, lpt_schedule};

/// A simulation backend: given kinetic rate constants, produce the
/// predicted property value at each requested time. This is where the
/// compiled ODE tape and the stiff solver plug in.
pub trait Simulator: Sync {
    /// Simulate the property time series for experiment `file_index` at
    /// the given sample times. The index lets the backend select that
    /// experiment's formulation (initial concentrations).
    fn simulate(
        &self,
        rate_constants: &[f64],
        file_index: usize,
        times: &[f64],
    ) -> Result<Vec<f64>, String>;
}

impl<F> Simulator for F
where
    F: Fn(&[f64], usize, &[f64]) -> Result<Vec<f64>, String> + Sync,
{
    fn simulate(
        &self,
        rate_constants: &[f64],
        file_index: usize,
        times: &[f64],
    ) -> Result<Vec<f64>, String> {
        self(rate_constants, file_index, times)
    }
}

/// One objective-function evaluation's outputs.
#[derive(Debug, Clone)]
pub struct ObjectiveOutput {
    /// Global error vector: `Σ_files (simulated − experimental)` per
    /// record index (shorter files contribute zeros at the tail).
    pub error_vector: Vec<f64>,
    /// Per-file solve times (seconds) recorded this call.
    pub file_times: Vec<f64>,
    /// Wall-clock of the whole parallel region (seconds).
    pub wall_time: f64,
}

/// The parallel parameter estimator.
pub struct ParallelEstimator<'a, S: Simulator> {
    simulator: &'a S,
    files: Vec<ExperimentFile>,
    n_ranks: usize,
    dynamic_lb: bool,
    /// Per-file solve times recorded by the previous objective call.
    timings: Mutex<Option<Vec<f64>>>,
    /// Length of the global error vector (max record count).
    max_records: usize,
}

impl<'a, S: Simulator> ParallelEstimator<'a, S> {
    /// Create an estimator over replicated data files.
    pub fn new(
        simulator: &'a S,
        files: Vec<ExperimentFile>,
        n_ranks: usize,
        dynamic_lb: bool,
    ) -> ParallelEstimator<'a, S> {
        assert!(n_ranks > 0, "need at least one rank");
        assert!(!files.is_empty(), "need at least one data file");
        let max_records = files.iter().map(ExperimentFile::len).max().unwrap_or(0);
        ParallelEstimator {
            simulator,
            files,
            n_ranks,
            dynamic_lb,
            timings: Mutex::new(None),
            max_records,
        }
    }

    /// Number of data files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// The schedule the next objective call will use.
    pub fn current_schedule(&self) -> Vec<Vec<usize>> {
        let timings = self.timings.lock();
        match (&*timings, self.dynamic_lb) {
            (Some(times), true) => lpt_schedule(times, self.n_ranks),
            _ => block_schedule(self.files.len(), self.n_ranks),
        }
    }

    /// Per-file solve times recorded by the most recent objective call.
    pub fn recorded_times(&self) -> Option<Vec<f64>> {
        self.timings.lock().clone()
    }

    /// The Fig. 9 objective function.
    pub fn objective(&self, rate_constants: &[f64]) -> Result<ObjectiveOutput, String> {
        let schedule = self.current_schedule();
        let n_files = self.files.len();
        let started = Instant::now();
        let per_rank = run_cluster(self.n_ranks, |comm| {
            let my_tasks = &schedule[comm.rank()];
            let mut error_vector = vec![0.0; self.max_records];
            let mut local_time = vec![0.0; n_files];
            let mut failure: Option<String> = None;
            for &file_idx in my_tasks {
                let file = &self.files[file_idx];
                let t0 = Instant::now();
                match self
                    .simulator
                    .simulate(rate_constants, file_idx, &file.times)
                {
                    Ok(simulated) => {
                        for (j, (sim, exp)) in simulated.iter().zip(&file.values).enumerate() {
                            error_vector[j] += sim - exp;
                        }
                    }
                    Err(e) => {
                        failure = Some(format!("file '{}': {e}", file.label));
                    }
                }
                local_time[file_idx] = t0.elapsed().as_secs_f64();
            }
            // All ranks participate in the reductions even on failure, so
            // the collective does not deadlock.
            let global_error = comm.all_reduce_sum(&error_vector);
            let global_time = comm.all_reduce_sum(&local_time);
            (global_error, global_time, failure)
        });
        let wall_time = started.elapsed().as_secs_f64();
        let (global_error, global_time, _) = per_rank[0].clone();
        if let Some(err) = per_rank.into_iter().find_map(|(_, _, f)| f) {
            return Err(err);
        }
        // Feed the dynamic load balancer for the next call.
        *self.timings.lock() = Some(global_time.clone());
        Ok(ObjectiveOutput {
            error_vector: global_error,
            file_times: global_time,
            wall_time,
        })
    }

    /// Run the full bounded least-squares estimation (Fig. 8): optimize
    /// the rate constants within the chemist's bounds so the simulation
    /// best matches the experimental files.
    pub fn estimate(
        &self,
        initial: &[f64],
        lo: &[f64],
        hi: &[f64],
        options: LmOptions,
    ) -> Result<LmResult, NloptError> {
        let wrapper = ObjectiveResidual {
            estimator: self,
            n_params: initial.len(),
        };
        optimize(&wrapper, initial, lo, hi, options)
    }
}

struct ObjectiveResidual<'a, 'b, S: Simulator> {
    estimator: &'a ParallelEstimator<'b, S>,
    n_params: usize,
}

impl<S: Simulator> Residual for ObjectiveResidual<'_, '_, S> {
    fn n_params(&self) -> usize {
        self.n_params
    }

    fn n_residuals(&self) -> usize {
        self.estimator.max_records
    }

    fn eval(&self, params: &[f64], out: &mut [f64]) -> Result<(), String> {
        let result = self.estimator.objective(params)?;
        out.copy_from_slice(&result.error_vector);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic "property": decaying exponential with rate p[0], offset
    /// p[1].
    fn model(p: &[f64], _file: usize, times: &[f64]) -> Result<Vec<f64>, String> {
        if p[0] < 0.0 {
            return Err("negative rate".to_string());
        }
        Ok(times.iter().map(|t| (-p[0] * t).exp() + p[1]).collect())
    }

    fn make_files(n: usize, records: usize, truth: &[f64]) -> Vec<ExperimentFile> {
        (0..n)
            .map(|i| {
                let times: Vec<f64> = (1..=records).map(|j| j as f64 * 0.05).collect();
                let values = model(truth, 0, &times).unwrap();
                ExperimentFile {
                    label: format!("exp{i:02}"),
                    times,
                    values,
                }
            })
            .collect()
    }

    #[test]
    fn objective_zero_at_truth() {
        let truth = [1.5, 0.2];
        let files = make_files(4, 50, &truth);
        let est = ParallelEstimator::new(&model, files, 2, false);
        let out = est.objective(&truth).unwrap();
        assert!(out.error_vector.iter().all(|v| v.abs() < 1e-12));
        assert_eq!(out.file_times.len(), 4);
    }

    #[test]
    fn objective_sums_across_files() {
        let truth = [1.0, 0.0];
        let files = make_files(3, 10, &truth);
        let est = ParallelEstimator::new(&model, files, 2, false);
        // Evaluate at an offset point: each file contributes the same
        // difference, so the global error is 3x one file's.
        let out = est.objective(&[1.0, 0.1]).unwrap();
        for v in &out.error_vector {
            assert!((v - 0.3).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let truth = [0.8, 0.1];
        let files = make_files(7, 20, &truth);
        let serial = ParallelEstimator::new(&model, files.clone(), 1, false)
            .objective(&[1.2, 0.0])
            .unwrap();
        for ranks in [2, 3, 5] {
            for lb in [false, true] {
                let par = ParallelEstimator::new(&model, files.clone(), ranks, lb)
                    .objective(&[1.2, 0.0])
                    .unwrap();
                for (a, b) in serial.error_vector.iter().zip(&par.error_vector) {
                    assert!((a - b).abs() < 1e-12, "ranks={ranks} lb={lb}");
                }
            }
        }
    }

    #[test]
    fn dynamic_lb_uses_recorded_times() {
        let truth = [1.0, 0.0];
        let files = make_files(6, 10, &truth);
        let est = ParallelEstimator::new(&model, files, 2, true);
        // Before any call: block schedule.
        assert_eq!(est.current_schedule(), vec![vec![0, 1, 2], vec![3, 4, 5]]);
        est.objective(&truth).unwrap();
        // After a call: timings recorded, schedule becomes LPT.
        assert!(est.recorded_times().is_some());
        let schedule = est.current_schedule();
        let total: usize = schedule.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn estimate_recovers_parameters() {
        let truth = [1.3, 0.25];
        let files = make_files(4, 40, &truth);
        let est = ParallelEstimator::new(&model, files, 2, true);
        let result = est
            .estimate(&[0.5, 0.0], &[0.0, 0.0], &[5.0, 1.0], LmOptions::default())
            .unwrap();
        assert!(
            (result.params[0] - truth[0]).abs() < 1e-5,
            "{:?}",
            result.params
        );
        assert!((result.params[1] - truth[1]).abs() < 1e-5);
    }

    #[test]
    fn simulation_failure_propagates() {
        let truth = [1.0, 0.0];
        let files = make_files(2, 5, &truth);
        let est = ParallelEstimator::new(&model, files, 2, false);
        assert!(est.objective(&[-1.0, 0.0]).is_err());
    }

    #[test]
    fn uneven_file_lengths() {
        let truth = [1.0, 0.0];
        let mut files = make_files(2, 10, &truth);
        files[1].times.truncate(4);
        files[1].values.truncate(4);
        let est = ParallelEstimator::new(&model, files, 2, false);
        let out = est.objective(&[1.0, 0.05]).unwrap();
        assert_eq!(out.error_vector.len(), 10);
        // First 4 records: both files contribute; rest: only file 0.
        for v in &out.error_vector[..4] {
            assert!((v - 0.1).abs() < 1e-9);
        }
        for v in &out.error_vector[4..] {
            assert!((v - 0.05).abs() < 1e-9);
        }
    }
}
