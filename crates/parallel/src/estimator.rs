//! The Parallel Parameter Estimator (paper §4, Fig. 8 & 9), hardened.
//!
//! The objective function distributes the experimental data files over
//! the ranks (block distribution, or the previous call's LPT schedule
//! when dynamic load balancing is on), solves the ODE system for each
//! assigned file's time grid, accumulates `simulated − experimental`
//! differences into a local error vector, and `MPI_Allreduce`-sums the
//! local vectors into the global error vector every rank receives. The
//! per-file solve times are reduced the same way and feed the next call's
//! schedule.
//!
//! On top of the paper's design this estimator adds **graceful
//! degradation**: generated ODE systems routinely hit stiffness
//! pathologies at the extreme parameter values an optimizer probes, and a
//! multi-hour estimation should not abort because one file's solve
//! diverged. A failed [`Simulator::simulate`] call is retried under a
//! configurable [`RetryPolicy`]; a file that keeps failing either aborts
//! the objective ([`FailurePolicy::Abort`], the classic behavior) or
//! contributes a bounded penalty residual and the run continues
//! ([`FailurePolicy::Penalize`]). Every objective call attaches a
//! [`HealthReport`] (per-file failures, retries, per-rank timings,
//! poisoned-collective events) to its [`ObjectiveOutput`], and the
//! estimator accumulates a cumulative report across the whole fit.
//!
//! When no failures occur, the error vectors are **bit-identical** to the
//! non-hardened implementation: the fault handling is pure overhead-free
//! control flow on the failure path.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use rms_nlopt::{fd_residual_jacobian, optimize, LmOptions, LmResult, NloptError, Residual};

use crate::comm::{run_cluster_with, CommConfig, CommError, RankPanic};
use crate::datafile::ExperimentFile;
use crate::loadbalance::{block_schedule, lpt_schedule};

/// A simulation backend: given kinetic rate constants, produce the
/// predicted property value at each requested time. This is where the
/// compiled ODE tape and the stiff solver plug in.
pub trait Simulator: Sync {
    /// Simulate the property time series for experiment `file_index` at
    /// the given sample times. The index lets the backend select that
    /// experiment's formulation (initial concentrations).
    fn simulate(
        &self,
        rate_constants: &[f64],
        file_index: usize,
        times: &[f64],
    ) -> Result<Vec<f64>, String>;

    /// Number of parameters for which the backend can produce analytic
    /// sensitivities (0 = none, the default). The estimator only routes
    /// Jacobian requests through
    /// [`simulate_with_sensitivities`](Simulator::simulate_with_sensitivities)
    /// when this matches the fit's parameter count; otherwise it falls
    /// back to bound-aware finite differences.
    fn sensitivity_params(&self) -> usize {
        0
    }

    /// Simulate the property time series *and* its parameter
    /// sensitivities: returns `(values, sens)` where `sens[r][k]` is
    /// `∂values[r]/∂p_k`, obtained from one forward-sensitivity-augmented
    /// ODE solve rather than `n_params` re-solves. The default errors;
    /// backends with compiled sensitivity tapes override it.
    fn simulate_with_sensitivities(
        &self,
        rate_constants: &[f64],
        file_index: usize,
        times: &[f64],
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>), String> {
        let _ = (rate_constants, file_index, times);
        Err("simulator provides no analytic parameter sensitivities".to_string())
    }
}

impl<F> Simulator for F
where
    F: Fn(&[f64], usize, &[f64]) -> Result<Vec<f64>, String> + Sync,
{
    fn simulate(
        &self,
        rate_constants: &[f64],
        file_index: usize,
        times: &[f64],
    ) -> Result<Vec<f64>, String> {
        self(rate_constants, file_index, times)
    }
}

/// How many times a failing simulation is re-attempted before the
/// failure policy kicks in, and how long to wait between attempts.
///
/// The wait for retry `k` (1-based) is exponential — `base_delay ·
/// 2^(k−1)`, capped at `max_delay` — plus deterministic jitter: a
/// splitmix64 hash of `(jitter_seed, task key, attempt)` scales the
/// delay by a factor in `[1.0, 1.5)`. Seeded jitter keeps concurrent
/// retries from stampeding in lock-step while staying byte-for-byte
/// reproducible across runs. The default `base_delay` of zero preserves
/// the classic immediate-retry behavior exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 = fail
    /// immediately).
    pub max_retries: usize,
    /// Delay before the first retry (zero = retry immediately, no
    /// sleeping anywhere — the classic behavior).
    pub base_delay: Duration,
    /// Upper bound on the exponential delay (before jitter).
    pub max_delay: Duration,
    /// Seed for the deterministic jitter hash.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::from_secs(5),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Classic immediate-retry policy with a given budget.
    pub fn with_max_retries(max_retries: usize) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// How long to wait before retry `attempt` (1-based) of the task
    /// identified by `key`. Zero when `base_delay` is zero.
    pub fn delay_for(&self, attempt: usize, key: u64) -> Duration {
        if self.base_delay.is_zero() || attempt == 0 {
            return Duration::ZERO;
        }
        let shift = (attempt - 1).min(32) as u32;
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX))
            .min(self.max_delay);
        // Jitter in [1.0, 1.5): deterministic in (seed, key, attempt).
        let h = splitmix64(
            self.jitter_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(key)
                .wrapping_add((attempt as u64) << 32),
        );
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(1.0 + 0.5 * frac)
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What to do with a file whose simulation keeps failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Abort the objective call with an error (the classic behavior).
    #[default]
    Abort,
    /// Keep going: the failed file contributes a bounded penalty
    /// residual, and the failure is recorded in the [`HealthReport`].
    Penalize,
}

impl std::str::FromStr for FailurePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<FailurePolicy, String> {
        match s {
            "abort" => Ok(FailurePolicy::Abort),
            "penalize" => Ok(FailurePolicy::Penalize),
            other => Err(format!(
                "unknown failure policy '{other}' (expected 'penalize' or 'abort')"
            )),
        }
    }
}

/// How the optimizer obtains the residual Jacobian `∂r_i/∂p_j` during a
/// fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResidualJacobianMode {
    /// Forward sensitivity analysis: one sensitivity-augmented ODE solve
    /// per file per Jacobian, independent of the parameter count. Falls
    /// back to finite differences when the simulator provides no
    /// sensitivities (or errors on a particular point).
    #[default]
    Analytic,
    /// Bound-aware forward finite differences: one full objective
    /// evaluation (every file re-solved) per parameter per Jacobian.
    Fd,
}

impl std::str::FromStr for ResidualJacobianMode {
    type Err = String;

    fn from_str(s: &str) -> Result<ResidualJacobianMode, String> {
        match s {
            "analytic" => Ok(ResidualJacobianMode::Analytic),
            "fd" => Ok(ResidualJacobianMode::Fd),
            other => Err(format!(
                "unknown residual-jacobian mode '{other}' (expected analytic or fd)"
            )),
        }
    }
}

impl std::fmt::Display for ResidualJacobianMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ResidualJacobianMode::Analytic => "analytic",
            ResidualJacobianMode::Fd => "fd",
        })
    }
}

/// Fault-tolerance configuration for the estimator.
#[derive(Debug, Clone, Copy)]
pub struct EstimatorConfig {
    /// Recompute the schedule from recorded times (LPT) after each call.
    pub dynamic_lb: bool,
    /// Retry budget for failing simulations.
    pub retry: RetryPolicy,
    /// Abort or penalize files that exhaust their retries.
    pub on_failure: FailurePolicy,
    /// Deadline for each collective; `None` waits forever.
    pub collective_timeout: Option<Duration>,
    /// Magnitude of the surrogate residual a penalized file contributes
    /// at each of its record indices. Bounded and finite by construction,
    /// so one sick file cannot poison the optimizer with NaNs.
    pub penalty: f64,
}

impl Default for EstimatorConfig {
    fn default() -> EstimatorConfig {
        EstimatorConfig {
            dynamic_lb: false,
            retry: RetryPolicy::default(),
            on_failure: FailurePolicy::default(),
            collective_timeout: None,
            penalty: 1e3,
        }
    }
}

/// One file that exhausted its retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct FileFailure {
    /// Index of the experiment file.
    pub file: usize,
    /// Its label.
    pub label: String,
    /// Attempts made (1 + retries).
    pub attempts: usize,
    /// The final simulator error.
    pub error: String,
    /// Whether a penalty residual was substituted (vs aborting).
    pub penalized: bool,
}

impl std::fmt::Display for FileFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "file '{}' failed after {} attempt(s): {}",
            self.label, self.attempts, self.error
        )
    }
}

/// Health telemetry for one objective call (or, via [`HealthReport::merge`],
/// a whole estimation run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Objective evaluations folded into this report.
    pub objective_calls: usize,
    /// Files that exhausted their retries.
    pub file_failures: Vec<FileFailure>,
    /// Simulation retry attempts performed.
    pub retries: usize,
    /// Files that failed at least once but succeeded on a retry.
    pub recovered: usize,
    /// Per-rank wall-clock (seconds) of the latest call's parallel region.
    pub per_rank_wall: Vec<f64>,
    /// Poisoned/failed collective events (`rank: error` strings).
    pub comm_errors: Vec<String>,
    /// Rank panics caught by the runtime.
    pub rank_panics: Vec<String>,
}

impl HealthReport {
    /// True when nothing failed, nothing was retried, and no collective
    /// was poisoned.
    pub fn is_healthy(&self) -> bool {
        self.file_failures.is_empty()
            && self.retries == 0
            && self.comm_errors.is_empty()
            && self.rank_panics.is_empty()
    }

    /// Fold another report into this one (per-rank timings keep the most
    /// recent call's values).
    pub fn merge(&mut self, other: &HealthReport) {
        self.objective_calls += other.objective_calls;
        self.file_failures
            .extend(other.file_failures.iter().cloned());
        self.retries += other.retries;
        self.recovered += other.recovered;
        if !other.per_rank_wall.is_empty() {
            self.per_rank_wall = other.per_rank_wall.clone();
        }
        self.comm_errors.extend(other.comm_errors.iter().cloned());
        self.rank_panics.extend(other.rank_panics.iter().cloned());
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "health: {} objective call(s), {} retry(ies), {} recovered, {} permanent failure(s)",
            self.objective_calls,
            self.retries,
            self.recovered,
            self.file_failures.len()
        );
        for failure in &self.file_failures {
            let _ = writeln!(
                out,
                "  {failure}{}",
                if failure.penalized {
                    " [penalized]"
                } else {
                    ""
                }
            );
        }
        for e in &self.comm_errors {
            let _ = writeln!(out, "  collective: {e}");
        }
        for p in &self.rank_panics {
            let _ = writeln!(out, "  panic: {p}");
        }
        if !self.per_rank_wall.is_empty() {
            let _ = write!(out, "  last-call rank seconds:");
            for w in &self.per_rank_wall {
                let _ = write!(out, " {w:.3}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Why an objective evaluation failed as a whole.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorError {
    /// One or more files failed under [`FailurePolicy::Abort`].
    Simulation {
        /// The files that exhausted their retries.
        failures: Vec<FileFailure>,
    },
    /// A collective failed (peer panic, timeout, length mismatch).
    Comm(CommError),
    /// A rank's objective body panicked; caught by the runtime.
    RankPanic(RankPanic),
}

impl std::fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimatorError::Simulation { failures } => {
                let first = failures.first().expect("at least one failure");
                if failures.len() == 1 {
                    write!(f, "{first}")
                } else {
                    write!(f, "{first} (+{} more failures)", failures.len() - 1)
                }
            }
            EstimatorError::Comm(e) => write!(f, "collective failed: {e}"),
            EstimatorError::RankPanic(p) => write!(f, "{p}"),
        }
    }
}

impl std::error::Error for EstimatorError {}

impl From<CommError> for EstimatorError {
    fn from(e: CommError) -> EstimatorError {
        EstimatorError::Comm(e)
    }
}

/// One objective-function evaluation's outputs.
#[derive(Debug, Clone)]
pub struct ObjectiveOutput {
    /// Global error vector: `Σ_files (simulated − experimental)` per
    /// record index (shorter files contribute zeros at the tail).
    pub error_vector: Vec<f64>,
    /// Per-file solve times (seconds) recorded this call.
    pub file_times: Vec<f64>,
    /// Wall-clock of the whole parallel region (seconds).
    pub wall_time: f64,
    /// Failure/degradation telemetry for this call.
    pub health: HealthReport,
}

/// What one rank hands back from the parallel region.
struct RankOutput {
    global_error: Vec<f64>,
    global_time: Vec<f64>,
    failures: Vec<FileFailure>,
    retries: usize,
    recovered: usize,
    wall: f64,
}

/// The parallel parameter estimator.
pub struct ParallelEstimator<'a, S: Simulator> {
    simulator: &'a S,
    files: Vec<ExperimentFile>,
    n_ranks: usize,
    config: EstimatorConfig,
    /// Per-file solve times recorded by the previous objective call.
    timings: Mutex<Option<Vec<f64>>>,
    /// Health accumulated over every objective call.
    cumulative: Mutex<HealthReport>,
    /// Length of the global error vector (max record count).
    max_records: usize,
}

impl<'a, S: Simulator> ParallelEstimator<'a, S> {
    /// Create an estimator over replicated data files with default fault
    /// handling (one retry, abort on permanent failure — the classic
    /// semantics).
    pub fn new(
        simulator: &'a S,
        files: Vec<ExperimentFile>,
        n_ranks: usize,
        dynamic_lb: bool,
    ) -> ParallelEstimator<'a, S> {
        Self::with_config(
            simulator,
            files,
            n_ranks,
            EstimatorConfig {
                dynamic_lb,
                ..EstimatorConfig::default()
            },
        )
    }

    /// Create an estimator with explicit fault-tolerance configuration.
    pub fn with_config(
        simulator: &'a S,
        files: Vec<ExperimentFile>,
        n_ranks: usize,
        config: EstimatorConfig,
    ) -> ParallelEstimator<'a, S> {
        assert!(n_ranks > 0, "need at least one rank");
        assert!(!files.is_empty(), "need at least one data file");
        let max_records = files.iter().map(ExperimentFile::len).max().unwrap_or(0);
        ParallelEstimator {
            simulator,
            files,
            n_ranks,
            config,
            timings: Mutex::new(None),
            cumulative: Mutex::new(HealthReport::default()),
            max_records,
        }
    }

    /// Number of data files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// The active configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// The schedule the next objective call will use.
    pub fn current_schedule(&self) -> Vec<Vec<usize>> {
        let timings = self.timings.lock().unwrap_or_else(|e| e.into_inner());
        match (&*timings, self.config.dynamic_lb) {
            (Some(times), true) => lpt_schedule(times, self.n_ranks),
            _ => block_schedule(self.files.len(), self.n_ranks),
        }
        .expect("n_ranks > 0 enforced at construction")
    }

    /// Per-file solve times recorded by the most recent objective call.
    pub fn recorded_times(&self) -> Option<Vec<f64>> {
        self.timings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Health accumulated across every objective call so far.
    pub fn cumulative_health(&self) -> HealthReport {
        self.cumulative
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Simulate one file with the retry policy applied.
    fn simulate_with_retry(
        &self,
        rate_constants: &[f64],
        file_idx: usize,
        retries: &mut usize,
    ) -> (usize, Result<Vec<f64>, String>) {
        let file = &self.files[file_idx];
        let mut attempts = 0;
        loop {
            attempts += 1;
            match self
                .simulator
                .simulate(rate_constants, file_idx, &file.times)
            {
                Ok(values) => return (attempts, Ok(values)),
                Err(_) if attempts <= self.config.retry.max_retries => {
                    *retries += 1;
                    let delay = self.config.retry.delay_for(attempts, file_idx as u64);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                Err(e) => return (attempts, Err(e)),
            }
        }
    }

    /// The Fig. 9 objective function.
    pub fn objective(&self, rate_constants: &[f64]) -> Result<ObjectiveOutput, EstimatorError> {
        let schedule = self.current_schedule();
        let n_files = self.files.len();
        let started = Instant::now();
        let comm_config = CommConfig {
            timeout: self.config.collective_timeout,
        };
        let per_rank = run_cluster_with(self.n_ranks, comm_config, |comm| {
            let rank_started = Instant::now();
            let my_tasks = &schedule[comm.rank()];
            let mut error_vector = vec![0.0; self.max_records];
            let mut local_time = vec![0.0; n_files];
            let mut failures: Vec<FileFailure> = Vec::new();
            let mut retries = 0;
            let mut recovered = 0;
            for &file_idx in my_tasks {
                let file = &self.files[file_idx];
                let t0 = Instant::now();
                let (attempts, outcome) =
                    self.simulate_with_retry(rate_constants, file_idx, &mut retries);
                match outcome {
                    Ok(simulated) => {
                        if attempts > 1 {
                            recovered += 1;
                        }
                        for (j, (sim, exp)) in simulated.iter().zip(&file.values).enumerate() {
                            error_vector[j] += sim - exp;
                        }
                    }
                    Err(error) => {
                        let penalized = self.config.on_failure == FailurePolicy::Penalize;
                        if penalized {
                            // Bounded surrogate residual at every record
                            // the file would have covered: finite, large
                            // enough to push the optimizer away, and it
                            // keeps the fit running.
                            for slot in error_vector.iter_mut().take(file.len()) {
                                *slot += self.config.penalty;
                            }
                        }
                        failures.push(FileFailure {
                            file: file_idx,
                            label: file.label.clone(),
                            attempts,
                            error,
                            penalized,
                        });
                    }
                }
                local_time[file_idx] = t0.elapsed().as_secs_f64();
            }
            // All ranks participate in the reductions even on failure, so
            // the collective stays synchronized; a panicked peer poisons
            // these reduces instead of deadlocking us.
            let global_error = comm.all_reduce_sum(&error_vector)?;
            let global_time = comm.all_reduce_sum(&local_time)?;
            Ok::<RankOutput, CommError>(RankOutput {
                global_error,
                global_time,
                failures,
                retries,
                recovered,
                wall: rank_started.elapsed().as_secs_f64(),
            })
        });
        let wall_time = started.elapsed().as_secs_f64();

        // Merge the per-rank outcomes into one call-level health report.
        let mut health = HealthReport {
            objective_calls: 1,
            per_rank_wall: vec![0.0; self.n_ranks],
            ..HealthReport::default()
        };
        let mut global: Option<(Vec<f64>, Vec<f64>)> = None;
        let mut first_comm_error: Option<CommError> = None;
        let mut first_panic: Option<RankPanic> = None;
        for (rank, outcome) in per_rank.into_iter().enumerate() {
            match outcome {
                Err(panic) => {
                    health.rank_panics.push(panic.to_string());
                    first_panic.get_or_insert(panic);
                }
                Ok(Err(comm_error)) => {
                    health
                        .comm_errors
                        .push(format!("rank {rank}: {comm_error}"));
                    first_comm_error.get_or_insert(comm_error);
                }
                Ok(Ok(output)) => {
                    health.per_rank_wall[rank] = output.wall;
                    health.retries += output.retries;
                    health.recovered += output.recovered;
                    health.file_failures.extend(output.failures);
                    if global.is_none() {
                        global = Some((output.global_error, output.global_time));
                    }
                }
            }
        }
        health.file_failures.sort_by_key(|f| f.file);
        self.cumulative
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(&health);

        if let Some(panic) = first_panic {
            return Err(EstimatorError::RankPanic(panic));
        }
        if let Some(comm_error) = first_comm_error {
            return Err(EstimatorError::Comm(comm_error));
        }
        let (global_error, global_time) = global.expect("some rank succeeded");
        if self.config.on_failure == FailurePolicy::Abort && !health.file_failures.is_empty() {
            return Err(EstimatorError::Simulation {
                failures: health.file_failures,
            });
        }
        // Feed the dynamic load balancer for the next call.
        *self.timings.lock().unwrap_or_else(|e| e.into_inner()) = Some(global_time.clone());
        Ok(ObjectiveOutput {
            error_vector: global_error,
            file_times: global_time,
            wall_time,
            health,
        })
    }

    /// The analytic counterpart of
    /// [`objective`](ParallelEstimator::objective): build the residual
    /// Jacobian `∂(error_vector)/∂p` from each file's forward
    /// sensitivities. Each rank runs one sensitivity-augmented solve per
    /// assigned file, accumulates `∂(simulated − experimental)_r/∂p_k`
    /// into a local row-major `max_records × n_params` matrix, and the
    /// local matrices are `MPI_Allreduce`-summed exactly like the error
    /// vectors. A file that exhausts its retries aborts under
    /// [`FailurePolicy::Abort`]; under [`FailurePolicy::Penalize`] it
    /// contributes zeros — the exact derivative of its constant penalty
    /// residual.
    pub fn objective_jacobian(&self, rate_constants: &[f64]) -> Result<Vec<f64>, EstimatorError> {
        let n_params = rate_constants.len();
        let schedule = self.current_schedule();
        let comm_config = CommConfig {
            timeout: self.config.collective_timeout,
        };
        let per_rank = run_cluster_with(self.n_ranks, comm_config, |comm| {
            let my_tasks = &schedule[comm.rank()];
            let mut jac = vec![0.0; self.max_records * n_params];
            let mut failures: Vec<FileFailure> = Vec::new();
            let mut retries = 0;
            for &file_idx in my_tasks {
                let file = &self.files[file_idx];
                let mut attempts = 0;
                let outcome = loop {
                    attempts += 1;
                    match self.simulator.simulate_with_sensitivities(
                        rate_constants,
                        file_idx,
                        &file.times,
                    ) {
                        Ok(out) => break Ok(out),
                        Err(_) if attempts <= self.config.retry.max_retries => {
                            retries += 1;
                            let delay = self.config.retry.delay_for(attempts, file_idx as u64);
                            if !delay.is_zero() {
                                std::thread::sleep(delay);
                            }
                        }
                        Err(e) => break Err(e),
                    }
                };
                match outcome {
                    Ok((_values, sens)) => {
                        for (r, row) in sens.iter().take(file.len()).enumerate() {
                            for (k, dv) in row.iter().take(n_params).enumerate() {
                                jac[r * n_params + k] += dv;
                            }
                        }
                    }
                    Err(error) => {
                        failures.push(FileFailure {
                            file: file_idx,
                            label: file.label.clone(),
                            attempts,
                            error,
                            penalized: self.config.on_failure == FailurePolicy::Penalize,
                        });
                    }
                }
            }
            let global = comm.all_reduce_sum(&jac)?;
            Ok::<(Vec<f64>, Vec<FileFailure>, usize), CommError>((global, failures, retries))
        });

        let mut health = HealthReport::default();
        let mut global: Option<Vec<f64>> = None;
        let mut first_comm_error: Option<CommError> = None;
        let mut first_panic: Option<RankPanic> = None;
        for (rank, outcome) in per_rank.into_iter().enumerate() {
            match outcome {
                Err(panic) => {
                    health.rank_panics.push(panic.to_string());
                    first_panic.get_or_insert(panic);
                }
                Ok(Err(comm_error)) => {
                    health
                        .comm_errors
                        .push(format!("rank {rank}: {comm_error}"));
                    first_comm_error.get_or_insert(comm_error);
                }
                Ok(Ok((jac, failures, retries))) => {
                    health.retries += retries;
                    health.file_failures.extend(failures);
                    if global.is_none() {
                        global = Some(jac);
                    }
                }
            }
        }
        health.file_failures.sort_by_key(|f| f.file);
        self.cumulative
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(&health);

        if let Some(panic) = first_panic {
            return Err(EstimatorError::RankPanic(panic));
        }
        if let Some(comm_error) = first_comm_error {
            return Err(EstimatorError::Comm(comm_error));
        }
        if self.config.on_failure == FailurePolicy::Abort && !health.file_failures.is_empty() {
            return Err(EstimatorError::Simulation {
                failures: health.file_failures,
            });
        }
        Ok(global.expect("some rank succeeded"))
    }

    /// Run the full bounded least-squares estimation (Fig. 8): optimize
    /// the rate constants within the chemist's bounds so the simulation
    /// best matches the experimental files. Uses the default
    /// [`ResidualJacobianMode::Analytic`], which falls back to finite
    /// differences when the simulator provides no sensitivities.
    pub fn estimate(
        &self,
        initial: &[f64],
        lo: &[f64],
        hi: &[f64],
        options: LmOptions,
    ) -> Result<LmResult, NloptError> {
        self.estimate_with_jacobian(initial, lo, hi, options, ResidualJacobianMode::default())
    }

    /// [`estimate`](ParallelEstimator::estimate) with an explicit choice
    /// of residual-Jacobian construction.
    pub fn estimate_with_jacobian(
        &self,
        initial: &[f64],
        lo: &[f64],
        hi: &[f64],
        options: LmOptions,
        mode: ResidualJacobianMode,
    ) -> Result<LmResult, NloptError> {
        let wrapper = ObjectiveResidual {
            estimator: self,
            n_params: initial.len(),
            mode,
        };
        optimize(&wrapper, initial, lo, hi, options)
    }
}

struct ObjectiveResidual<'a, 'b, S: Simulator> {
    estimator: &'a ParallelEstimator<'b, S>,
    n_params: usize,
    mode: ResidualJacobianMode,
}

impl<S: Simulator> Residual for ObjectiveResidual<'_, '_, S> {
    fn n_params(&self) -> usize {
        self.n_params
    }

    fn n_residuals(&self) -> usize {
        self.estimator.max_records
    }

    fn eval(&self, params: &[f64], out: &mut [f64]) -> Result<(), String> {
        let result = self
            .estimator
            .objective(params)
            .map_err(|e| e.to_string())?;
        out.copy_from_slice(&result.error_vector);
        Ok(())
    }

    /// Analytic mode spends one sensitivity-augmented sweep over the
    /// files (reported as 1 residual-evaluation-equivalent) instead of
    /// `n_params` full objective evaluations; it falls back to the
    /// bound-aware finite-difference sweep when the simulator has no
    /// sensitivities for this parameter count or the analytic sweep
    /// fails at this point.
    fn jacobian(
        &self,
        params: &[f64],
        base: &[f64],
        lo: &[f64],
        hi: &[f64],
        fd_step: f64,
        jac: &mut [f64],
    ) -> Result<usize, String> {
        if self.mode == ResidualJacobianMode::Analytic
            && self.estimator.simulator.sensitivity_params() == self.n_params
        {
            if let Ok(values) = self.estimator.objective_jacobian(params) {
                jac.copy_from_slice(&values);
                return Ok(1);
            }
        }
        fd_residual_jacobian(self, params, base, lo, hi, fd_step, jac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_retry_policy_never_sleeps() {
        let p = RetryPolicy::default();
        for attempt in 0..6 {
            for key in 0..4 {
                assert_eq!(p.delay_for(attempt, key), Duration::ZERO);
            }
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            jitter_seed: 7,
        };
        let d1 = p.delay_for(1, 0);
        let d2 = p.delay_for(2, 0);
        let d3 = p.delay_for(3, 0);
        // Exponential growth: each tier at least doubles the base, and
        // jitter only inflates by < 50%.
        assert!(d1 >= Duration::from_millis(10) && d1 < Duration::from_millis(15));
        assert!(d2 >= Duration::from_millis(20) && d2 < Duration::from_millis(30));
        assert!(d3 >= Duration::from_millis(40) && d3 < Duration::from_millis(60));
        // Far past the cap: bounded by max_delay * 1.5.
        let d9 = p.delay_for(9, 0);
        assert!(d9 >= Duration::from_millis(80) && d9 < Duration::from_millis(120));
    }

    #[test]
    fn jitter_is_deterministic_and_key_dependent() {
        let p = RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            jitter_seed: 42,
        };
        assert_eq!(p.delay_for(2, 3), p.delay_for(2, 3));
        // Different keys/attempts de-synchronize (no lock-step stampede).
        assert_ne!(p.delay_for(2, 3), p.delay_for(2, 4));
        let reseeded = RetryPolicy {
            jitter_seed: 43,
            ..p
        };
        assert_ne!(p.delay_for(2, 3), reseeded.delay_for(2, 3));
    }

    /// Synthetic "property": decaying exponential with rate p[0], offset
    /// p[1].
    fn model(p: &[f64], _file: usize, times: &[f64]) -> Result<Vec<f64>, String> {
        if p[0] < 0.0 {
            return Err("negative rate".to_string());
        }
        Ok(times.iter().map(|t| (-p[0] * t).exp() + p[1]).collect())
    }

    fn make_files(n: usize, records: usize, truth: &[f64]) -> Vec<ExperimentFile> {
        (0..n)
            .map(|i| {
                let times: Vec<f64> = (1..=records).map(|j| j as f64 * 0.05).collect();
                let values = model(truth, 0, &times).unwrap();
                ExperimentFile {
                    label: format!("exp{i:02}"),
                    times,
                    values,
                }
            })
            .collect()
    }

    #[test]
    fn objective_zero_at_truth() {
        let truth = [1.5, 0.2];
        let files = make_files(4, 50, &truth);
        let est = ParallelEstimator::new(&model, files, 2, false);
        let out = est.objective(&truth).unwrap();
        assert!(out.error_vector.iter().all(|v| v.abs() < 1e-12));
        assert_eq!(out.file_times.len(), 4);
        assert!(out.health.is_healthy(), "{}", out.health.summary());
    }

    #[test]
    fn objective_sums_across_files() {
        let truth = [1.0, 0.0];
        let files = make_files(3, 10, &truth);
        let est = ParallelEstimator::new(&model, files, 2, false);
        // Evaluate at an offset point: each file contributes the same
        // difference, so the global error is 3x one file's.
        let out = est.objective(&[1.0, 0.1]).unwrap();
        for v in &out.error_vector {
            assert!((v - 0.3).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let truth = [0.8, 0.1];
        let files = make_files(7, 20, &truth);
        let serial = ParallelEstimator::new(&model, files.clone(), 1, false)
            .objective(&[1.2, 0.0])
            .unwrap();
        for ranks in [2, 3, 5] {
            for lb in [false, true] {
                let par = ParallelEstimator::new(&model, files.clone(), ranks, lb)
                    .objective(&[1.2, 0.0])
                    .unwrap();
                for (a, b) in serial.error_vector.iter().zip(&par.error_vector) {
                    assert!((a - b).abs() < 1e-12, "ranks={ranks} lb={lb}");
                }
            }
        }
    }

    #[test]
    fn dynamic_lb_uses_recorded_times() {
        let truth = [1.0, 0.0];
        let files = make_files(6, 10, &truth);
        let est = ParallelEstimator::new(&model, files, 2, true);
        // Before any call: block schedule.
        assert_eq!(est.current_schedule(), vec![vec![0, 1, 2], vec![3, 4, 5]]);
        est.objective(&truth).unwrap();
        // After a call: timings recorded, schedule becomes LPT.
        assert!(est.recorded_times().is_some());
        let schedule = est.current_schedule();
        let total: usize = schedule.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn estimate_recovers_parameters() {
        let truth = [1.3, 0.25];
        let files = make_files(4, 40, &truth);
        let est = ParallelEstimator::new(&model, files, 2, true);
        let result = est
            .estimate(&[0.5, 0.0], &[0.0, 0.0], &[5.0, 1.0], LmOptions::default())
            .unwrap();
        assert!(
            (result.params[0] - truth[0]).abs() < 1e-5,
            "{:?}",
            result.params
        );
        assert!((result.params[1] - truth[1]).abs() < 1e-5);
    }

    #[test]
    fn simulation_failure_propagates() {
        let truth = [1.0, 0.0];
        let files = make_files(2, 5, &truth);
        let est = ParallelEstimator::new(&model, files, 2, false);
        let err = est.objective(&[-1.0, 0.0]).unwrap_err();
        assert!(
            matches!(&err, EstimatorError::Simulation { failures } if !failures.is_empty()),
            "{err:?}"
        );
        assert!(err.to_string().contains("negative rate"), "{err}");
    }

    #[test]
    fn penalize_policy_survives_deterministic_failure() {
        let truth = [1.0, 0.0];
        let files = make_files(3, 5, &truth);
        let est = ParallelEstimator::with_config(
            &model,
            files,
            2,
            EstimatorConfig {
                on_failure: FailurePolicy::Penalize,
                penalty: 100.0,
                ..EstimatorConfig::default()
            },
        );
        // Every file fails (negative rate): the objective still returns,
        // each record carrying 3 files × the penalty.
        let out = est.objective(&[-1.0, 0.0]).unwrap();
        for v in &out.error_vector {
            assert!((v - 300.0).abs() < 1e-12, "{v}");
        }
        assert_eq!(out.health.file_failures.len(), 3);
        assert!(out.health.file_failures.iter().all(|f| f.penalized));
        // Cumulative report tracks it too.
        assert_eq!(est.cumulative_health().file_failures.len(), 3);
    }

    /// The synthetic `model` with hand-derived parameter sensitivities:
    /// `v(t) = e^{−p₀t} + p₁`, `∂v/∂p₀ = −t·e^{−p₀t}`, `∂v/∂p₁ = 1`.
    struct SensModel;

    impl Simulator for SensModel {
        fn simulate(&self, p: &[f64], file: usize, times: &[f64]) -> Result<Vec<f64>, String> {
            model(p, file, times)
        }

        fn sensitivity_params(&self) -> usize {
            2
        }

        fn simulate_with_sensitivities(
            &self,
            p: &[f64],
            file: usize,
            times: &[f64],
        ) -> Result<(Vec<f64>, Vec<Vec<f64>>), String> {
            let values = model(p, file, times)?;
            let sens = times
                .iter()
                .map(|t| vec![-t * (-p[0] * t).exp(), 1.0])
                .collect();
            Ok((values, sens))
        }
    }

    #[test]
    fn analytic_objective_jacobian_matches_fd() {
        let truth = [1.2, 0.3];
        let files = make_files(3, 12, &truth);
        let sim = SensModel;
        let est = ParallelEstimator::new(&sim, files, 2, false);
        let p = [0.9, 0.1];
        let jac = est.objective_jacobian(&p).unwrap();
        assert_eq!(jac.len(), 12 * 2);
        // Central-difference reference over the objective itself.
        let h = 1e-6;
        for k in 0..2 {
            let mut up = p;
            up[k] += h;
            let mut dn = p;
            dn[k] -= h;
            let fwd = est.objective(&up).unwrap().error_vector;
            let bwd = est.objective(&dn).unwrap().error_vector;
            for r in 0..12 {
                let fd = (fwd[r] - bwd[r]) / (2.0 * h);
                assert!(
                    (jac[r * 2 + k] - fd).abs() < 1e-6 * fd.abs().max(1.0),
                    "r={r} k={k}: analytic {} vs fd {fd}",
                    jac[r * 2 + k]
                );
            }
        }
    }

    #[test]
    fn analytic_estimate_matches_fd_and_spends_fewer_evals() {
        let truth = [1.3, 0.25];
        let files = make_files(4, 40, &truth);
        let sim = SensModel;
        let est = ParallelEstimator::new(&sim, files, 2, false);
        let options = LmOptions::default();
        let analytic = est
            .estimate_with_jacobian(
                &[0.5, 0.0],
                &[0.0, 0.0],
                &[5.0, 1.0],
                options,
                ResidualJacobianMode::Analytic,
            )
            .unwrap();
        let fd = est
            .estimate_with_jacobian(
                &[0.5, 0.0],
                &[0.0, 0.0],
                &[5.0, 1.0],
                options,
                ResidualJacobianMode::Fd,
            )
            .unwrap();
        for (k, &truth_k) in truth.iter().enumerate() {
            assert!(
                (analytic.params[k] - truth_k).abs() < 1e-5,
                "{:?}",
                analytic.params
            );
            assert!(
                (analytic.params[k] - fd.params[k]).abs() < 1e-5,
                "analytic {:?} vs fd {:?}",
                analytic.params,
                fd.params
            );
        }
        // FD pays n_params objective evaluations per Jacobian; analytic
        // pays one augmented sweep.
        let analytic_per_jac = analytic.fevals as f64 / analytic.jevals.max(1) as f64;
        let fd_per_jac = fd.fevals as f64 / fd.jevals.max(1) as f64;
        assert!(
            analytic_per_jac < fd_per_jac,
            "analytic {analytic_per_jac} vs fd {fd_per_jac} evals per Jacobian"
        );
    }

    #[test]
    fn closure_simulators_fall_back_to_fd() {
        // A plain closure has no sensitivities; the default analytic mode
        // must silently use finite differences and still converge.
        let truth = [1.1, 0.2];
        let files = make_files(3, 30, &truth);
        let est = ParallelEstimator::new(&model, files, 2, false);
        let result = est
            .estimate(&[0.6, 0.0], &[0.0, 0.0], &[5.0, 1.0], LmOptions::default())
            .unwrap();
        assert!((result.params[0] - truth[0]).abs() < 1e-5);
        assert!((result.params[1] - truth[1]).abs() < 1e-5);
    }

    #[test]
    fn uneven_file_lengths() {
        let truth = [1.0, 0.0];
        let mut files = make_files(2, 10, &truth);
        files[1].times.truncate(4);
        files[1].values.truncate(4);
        let est = ParallelEstimator::new(&model, files, 2, false);
        let out = est.objective(&[1.0, 0.05]).unwrap();
        assert_eq!(out.error_vector.len(), 10);
        // First 4 records: both files contribute; rest: only file 0.
        for v in &out.error_vector[..4] {
            assert!((v - 0.1).abs() < 1e-9);
        }
        for v in &out.error_vector[4..] {
            assert!((v - 0.05).abs() < 1e-9);
        }
    }
}
