//! Dynamic load balancing (paper §4.4).
//!
//! "The time to solve each data file is recorded and put into a priority
//! queue built out of a non-increasing sorted time list. The next item,
//! which corresponds to the data file with the largest solving time among
//! remaining data files in the priority queue, is allocated to the
//! processor with least total allocated time so far." — i.e. classic LPT
//! (longest processing time first) scheduling, recomputed at every
//! objective-function call from the times the previous call recorded.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total-ordered f64 wrapper for heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A schedule could not be built from the given shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// `workers == 0`: there is nowhere to put the tasks.
    NoWorkers,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NoWorkers => {
                write!(f, "cannot schedule tasks onto zero workers")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Static block distribution (the no-load-balancing baseline):
/// contiguous blocks of `ceil(n/workers)` tasks per worker, matching the
/// paper's `BLOCK_SIZE()` loop over each rank's share of the files.
pub fn block_schedule(n_tasks: usize, workers: usize) -> Result<Vec<Vec<usize>>, ScheduleError> {
    if workers == 0 {
        return Err(ScheduleError::NoWorkers);
    }
    let per_worker = n_tasks.div_ceil(workers);
    let mut assignment = vec![Vec::new(); workers];
    for task in 0..n_tasks {
        assignment[(task / per_worker.max(1)).min(workers - 1)].push(task);
    }
    Ok(assignment)
}

/// LPT schedule from recorded per-task times: largest task first onto the
/// least-loaded worker. Returns per-worker task lists.
pub fn lpt_schedule(times: &[f64], workers: usize) -> Result<Vec<Vec<usize>>, ScheduleError> {
    if workers == 0 {
        return Err(ScheduleError::NoWorkers);
    }
    let mut order: Vec<usize> = (0..times.len()).collect();
    // Non-increasing sorted time list (the paper's priority queue).
    order.sort_by(|&a, &b| times[b].total_cmp(&times[a]));
    let mut assignment = vec![Vec::new(); workers];
    // Min-heap on (load, worker).
    let mut heap: BinaryHeap<Reverse<(OrdF64, usize)>> =
        (0..workers).map(|w| Reverse((OrdF64(0.0), w))).collect();
    for task in order {
        let Reverse((OrdF64(load), worker)) = heap.pop().expect("workers > 0");
        assignment[worker].push(task);
        heap.push(Reverse((OrdF64(load + times[task]), worker)));
    }
    Ok(assignment)
}

/// Makespan of a schedule under the given task times: the bottleneck
/// worker's total.
pub fn makespan(schedule: &[Vec<usize>], times: &[f64]) -> f64 {
    schedule
        .iter()
        .map(|tasks| tasks.iter().map(|&t| times[t]).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Lower bound on any schedule's makespan: `max(mean load, largest task)`.
pub fn makespan_lower_bound(times: &[f64], workers: usize) -> f64 {
    let total: f64 = times.iter().sum();
    let largest = times.iter().copied().fold(0.0, f64::max);
    (total / workers as f64).max(largest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn block_contiguous_covers_all_tasks() {
        let s = block_schedule(10, 3).unwrap();
        assert_eq!(s[0], vec![0, 1, 2, 3]);
        assert_eq!(s[1], vec![4, 5, 6, 7]);
        assert_eq!(s[2], vec![8, 9]);
        let total: usize = s.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
        // Degenerate shapes.
        assert_eq!(
            block_schedule(2, 4).unwrap(),
            vec![vec![0], vec![1], vec![], vec![]]
        );
        assert_eq!(
            block_schedule(0, 2).unwrap(),
            vec![Vec::<usize>::new(), Vec::new()]
        );
    }

    #[test]
    fn zero_workers_is_an_error_not_a_panic() {
        assert_eq!(block_schedule(5, 0), Err(ScheduleError::NoWorkers));
        assert_eq!(block_schedule(0, 0), Err(ScheduleError::NoWorkers));
        assert_eq!(lpt_schedule(&[1.0, 2.0], 0), Err(ScheduleError::NoWorkers));
        assert_eq!(lpt_schedule(&[], 0), Err(ScheduleError::NoWorkers));
        assert!(ScheduleError::NoWorkers
            .to_string()
            .contains("zero workers"));
    }

    #[test]
    fn lpt_assigns_every_task_once() {
        let times = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let s = lpt_schedule(&times, 2).unwrap();
        let mut seen: Vec<usize> = s.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lpt_beats_block_on_skewed_times() {
        // One huge task first: block piles big tasks onto worker 0.
        let times = vec![10.0, 9.0, 1.0, 1.0];
        let block = block_schedule(4, 2).unwrap();
        let lpt = lpt_schedule(&times, 2).unwrap();
        assert!(makespan(&lpt, &times) < makespan(&block, &times));
        assert_eq!(makespan(&lpt, &times), 11.0);
    }

    #[test]
    fn lpt_within_guarantee() {
        // LPT is a 4/3-approximation; check 2x against the lower bound on
        // random instances.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let n = rng.gen_range(1..40);
            let workers = rng.gen_range(1..10);
            let times: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..10.0)).collect();
            let s = lpt_schedule(&times, workers).unwrap();
            let bound = makespan_lower_bound(&times, workers);
            assert!(
                makespan(&s, &times) <= 2.0 * bound + 1e-9,
                "makespan {} vs bound {bound}",
                makespan(&s, &times)
            );
        }
    }

    #[test]
    fn one_task_per_worker_identical_schedules() {
        // Paper: "At 16 nodes, there is only one task to schedule per
        // processor, so the load balancing algorithm has no effect."
        let times: Vec<f64> = (1..=16).map(|i| i as f64).collect();
        let block = block_schedule(16, 16).unwrap();
        let lpt = lpt_schedule(&times, 16).unwrap();
        assert_eq!(makespan(&block, &times), makespan(&lpt, &times));
        assert_eq!(makespan(&lpt, &times), 16.0);
    }

    #[test]
    fn single_worker_gets_everything() {
        let times = vec![1.0, 2.0, 3.0];
        let s = lpt_schedule(&times, 1).unwrap();
        assert_eq!(s[0].len(), 3);
        assert_eq!(makespan(&s, &times), 6.0);
    }

    #[test]
    fn empty_tasks() {
        assert_eq!(makespan(&lpt_schedule(&[], 4).unwrap(), &[]), 0.0);
        assert_eq!(makespan_lower_bound(&[], 4), 0.0);
    }

    /// Assert `schedule` assigns each of `n_tasks` to exactly one worker.
    fn assert_exact_cover(schedule: &[Vec<usize>], n_tasks: usize) -> Result<(), TestCaseError> {
        let mut count = vec![0usize; n_tasks];
        for tasks in schedule {
            for &t in tasks {
                prop_assert!(t < n_tasks, "task {t} out of range ({n_tasks} tasks)");
                count[t] += 1;
            }
        }
        for (t, &c) in count.iter().enumerate() {
            prop_assert_eq!(c, 1, "task {} assigned {} times", t, c);
        }
        Ok(())
    }

    proptest! {
        // Every schedule is an exact cover: each task on exactly one
        // worker, no duplicates, no drops — for any task count, worker
        // count, and time distribution.
        #[test]
        fn schedules_cover_each_task_exactly_once(
            times in prop::collection::vec(0.0f64..100.0, 0..64),
            workers in 1usize..17,
        ) {
            let n_tasks = times.len();
            let block = block_schedule(n_tasks, workers).unwrap();
            prop_assert_eq!(block.len(), workers);
            assert_exact_cover(&block, n_tasks)?;
            let lpt = lpt_schedule(&times, workers).unwrap();
            prop_assert_eq!(lpt.len(), workers);
            assert_exact_cover(&lpt, n_tasks)?;
        }
    }
}
