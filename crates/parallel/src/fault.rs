//! Deterministic fault injection for the parallel runtime.
//!
//! Testing fault tolerance with real faults is flaky by construction, so
//! this module provides a deterministic harness instead: a [`FaultPlan`]
//! names exactly which simulator calls misbehave — by global call index
//! or by file index — and [`FaultySimulator`] wraps any real
//! [`Simulator`], consulting the plan on every call. The same plan always
//! produces the same fault sequence, so the integration tests in
//! `tests/fault_tolerance.rs` can assert exact failure counts, exact
//! [`HealthReport`](crate::estimator::HealthReport) contents, and
//! bit-identical no-fault behavior.
//!
//! Three fault kinds cover the failure model in DESIGN.md:
//!
//! * **simulator errors** — `simulate` returns `Err`, either for the
//!   first `n` attempts on a file (exercising retry/penalty paths) or
//!   unconditionally;
//! * **rank panics** — `simulate` panics at a chosen global call index,
//!   exercising `catch_unwind` containment and rendezvous poisoning;
//! * **slowdowns** — `simulate` sleeps before delegating, exercising
//!   collective deadlines and load-balance skew.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::estimator::Simulator;

/// One file's scripted failure behavior.
#[derive(Debug, Clone)]
struct FileFault {
    /// Fail this many attempts before letting the real simulator run;
    /// `usize::MAX` means fail every attempt.
    fail_attempts: usize,
    /// The error message to return.
    message: String,
}

/// A deterministic script of faults to inject.
///
/// Built with the `fail_file`/`panic_at_call`/`slow_call` builder
/// methods; attach it to a simulator with [`FaultySimulator::new`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Per-file scripted simulator errors.
    file_faults: HashMap<usize, FileFault>,
    /// Global call indices (0-based, counted across all ranks) at which
    /// `simulate` panics.
    panic_calls: Vec<usize>,
    /// Global call indices at which `simulate` sleeps first.
    slow_calls: HashMap<usize, Duration>,
    /// File indices whose every `simulate` call panics. Unlike
    /// `panic_at_call`, independent of scheduling order — the natural
    /// form for multi-tenant server tests where the global call order is
    /// nondeterministic.
    panic_files: Vec<usize>,
    /// Per-file sleeps applied before delegating, scheduling-independent
    /// like `panic_files`. Exercises deadline supervision.
    stall_files: HashMap<usize, Duration>,
}

impl FaultPlan {
    /// An empty plan: no faults; the wrapper is a transparent pass-through.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Make `simulate` for `file` fail its first `attempts` attempts with
    /// `message`, then succeed. Pass `usize::MAX` to fail permanently.
    pub fn fail_file(mut self, file: usize, attempts: usize, message: &str) -> FaultPlan {
        self.file_faults.insert(
            file,
            FileFault {
                fail_attempts: attempts,
                message: message.to_string(),
            },
        );
        self
    }

    /// Make `simulate` for `file` fail every attempt with `message`.
    pub fn fail_file_permanently(self, file: usize, message: &str) -> FaultPlan {
        self.fail_file(file, usize::MAX, message)
    }

    /// Panic inside the `call`-th `simulate` invocation (0-based, counted
    /// globally across ranks in arrival order).
    pub fn panic_at_call(mut self, call: usize) -> FaultPlan {
        self.panic_calls.push(call);
        self
    }

    /// Sleep for `delay` at the start of the `call`-th invocation.
    pub fn slow_call(mut self, call: usize, delay: Duration) -> FaultPlan {
        self.slow_calls.insert(call, delay);
        self
    }

    /// Panic on every `simulate` call for `file`, regardless of call
    /// order.
    pub fn panic_file(mut self, file: usize) -> FaultPlan {
        self.panic_files.push(file);
        self
    }

    /// Sleep for `delay` on every `simulate` call for `file`, regardless
    /// of call order.
    pub fn stall_file(mut self, file: usize, delay: Duration) -> FaultPlan {
        self.stall_files.insert(file, delay);
        self
    }

    /// Number of files with scripted errors.
    pub fn faulty_file_count(&self) -> usize {
        self.file_faults.len()
    }
}

/// A [`Simulator`] wrapper that injects the faults scripted in a
/// [`FaultPlan`] and otherwise delegates to the wrapped simulator.
pub struct FaultySimulator<S> {
    inner: S,
    plan: FaultPlan,
    /// Global `simulate` call counter (across all ranks).
    calls: AtomicUsize,
    /// Per-file attempt counters, for `fail_file`'s attempt budgets.
    attempts: Mutex<HashMap<usize, usize>>,
}

impl<S: Simulator> FaultySimulator<S> {
    /// Wrap `inner`, injecting the faults scripted in `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultySimulator<S> {
        FaultySimulator {
            inner,
            plan,
            calls: AtomicUsize::new(0),
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped simulator (e.g. to read its fallback statistics
    /// after a faulted run).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Total `simulate` calls observed so far (across all ranks,
    /// including failed and panicked ones).
    pub fn call_count(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }

    /// Attempts observed for `file` so far.
    pub fn attempts_for(&self, file: usize) -> usize {
        self.attempts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&file)
            .copied()
            .unwrap_or(0)
    }
}

impl<S: Simulator> Simulator for FaultySimulator<S> {
    fn simulate(
        &self,
        rate_constants: &[f64],
        file_index: usize,
        times: &[f64],
    ) -> Result<Vec<f64>, String> {
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        if let Some(delay) = self.plan.slow_calls.get(&call) {
            std::thread::sleep(*delay);
        }
        if self.plan.panic_calls.contains(&call) {
            panic!("injected panic at simulate call {call} (file {file_index})");
        }
        if let Some(delay) = self.plan.stall_files.get(&file_index) {
            std::thread::sleep(*delay);
        }
        if self.plan.panic_files.contains(&file_index) {
            panic!("injected panic for file {file_index}");
        }
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap_or_else(|e| e.into_inner());
            let slot = attempts.entry(file_index).or_insert(0);
            *slot += 1;
            *slot
        };
        if let Some(fault) = self.plan.file_faults.get(&file_index) {
            if attempt <= fault.fail_attempts {
                return Err(fault.message.clone());
            }
        }
        self.inner.simulate(rate_constants, file_index, times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_model(_p: &[f64], _file: usize, times: &[f64]) -> Result<Vec<f64>, String> {
        Ok(vec![1.0; times.len()])
    }

    #[test]
    fn empty_plan_is_transparent() {
        let sim = FaultySimulator::new(ok_model, FaultPlan::new());
        let out = sim.simulate(&[1.0], 0, &[0.1, 0.2]).unwrap();
        assert_eq!(out, vec![1.0, 1.0]);
        assert_eq!(sim.call_count(), 1);
    }

    #[test]
    fn fail_file_respects_attempt_budget() {
        let plan = FaultPlan::new().fail_file(3, 2, "transient");
        let sim = FaultySimulator::new(ok_model, plan);
        assert_eq!(sim.simulate(&[], 3, &[0.1]), Err("transient".to_string()));
        assert_eq!(sim.simulate(&[], 3, &[0.1]), Err("transient".to_string()));
        assert!(sim.simulate(&[], 3, &[0.1]).is_ok());
        // Other files are untouched.
        assert!(sim.simulate(&[], 0, &[0.1]).is_ok());
        assert_eq!(sim.attempts_for(3), 3);
    }

    #[test]
    fn permanent_failure_never_recovers() {
        let plan = FaultPlan::new().fail_file_permanently(0, "broken");
        let sim = FaultySimulator::new(ok_model, plan);
        for _ in 0..10 {
            assert!(sim.simulate(&[], 0, &[0.1]).is_err());
        }
    }

    #[test]
    fn panic_fires_at_exact_call_index() {
        let plan = FaultPlan::new().panic_at_call(1);
        let sim = FaultySimulator::new(ok_model, plan);
        assert!(sim.simulate(&[], 0, &[0.1]).is_ok());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = sim.simulate(&[], 0, &[0.1]);
        }));
        assert!(caught.is_err());
        assert!(sim.simulate(&[], 0, &[0.1]).is_ok());
    }

    #[test]
    fn panic_file_fires_on_every_call_for_that_file_only() {
        let plan = FaultPlan::new().panic_file(2);
        let sim = FaultySimulator::new(ok_model, plan);
        assert!(sim.simulate(&[], 0, &[0.1]).is_ok());
        for _ in 0..2 {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = sim.simulate(&[], 2, &[0.1]);
            }));
            assert!(caught.is_err());
        }
        assert!(sim.simulate(&[], 1, &[0.1]).is_ok());
    }

    #[test]
    fn stall_file_delays_only_that_file() {
        let plan = FaultPlan::new().stall_file(1, Duration::from_millis(30));
        let sim = FaultySimulator::new(ok_model, plan);
        let t0 = std::time::Instant::now();
        sim.simulate(&[], 0, &[0.1]).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(25));
        let t1 = std::time::Instant::now();
        sim.simulate(&[], 1, &[0.1]).unwrap();
        assert!(t1.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn slow_call_delays() {
        let plan = FaultPlan::new().slow_call(0, Duration::from_millis(30));
        let sim = FaultySimulator::new(ok_model, plan);
        let t0 = std::time::Instant::now();
        sim.simulate(&[], 0, &[0.1]).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }
}
