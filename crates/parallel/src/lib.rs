//! # rms-parallel — the parallel runtime
//!
//! Replaces the paper's MPI layer (§4.4) with a thread-backed SPMD
//! cluster:
//!
//! * [`comm`]: one thread per simulated node, `all_reduce`/`broadcast`/
//!   `all_gather` collectives matching the MPI calls of Fig. 9;
//! * [`loadbalance`]: the dynamic load-balancing algorithm — per-file
//!   solve times into a non-increasing priority queue, largest remaining
//!   file onto the least-loaded processor (LPT), plus the block baseline;
//! * [`datafile`]: the `<t, value>` experimental record files, replicated
//!   across ranks;
//! * [`estimator`]: the Parallel Parameter Estimator — the Fig. 9
//!   objective function and the Fig. 8 bounded least-squares driver,
//!   with retry/penalty degradation and per-call health reports;
//! * [`fault`]: deterministic fault injection (scripted simulator errors,
//!   rank panics, slowdowns) for the fault-tolerance test suite;
//! * [`pool`]: a fork/join index-ordered `scoped_map` used by the
//!   rule-closure frontend for deterministic parallel rule application.
//!
//! The runtime is panic-safe and deadline-capable: collectives return
//! `Result<_, CommError>`, a panicking rank poisons the rendezvous so its
//! peers fail fast instead of deadlocking, and an optional per-collective
//! timeout converts stalls into errors (see DESIGN.md §7).

#![warn(missing_docs)]

pub mod comm;
pub mod datafile;
pub mod estimator;
pub mod fault;
pub mod loadbalance;
pub mod pool;

pub use comm::{run_cluster, run_cluster_with, CommConfig, CommError, Communicator, RankPanic};
pub use datafile::{DataFileError, ExperimentFile};
pub use estimator::{
    EstimatorConfig, EstimatorError, FailurePolicy, FileFailure, HealthReport, ObjectiveOutput,
    ParallelEstimator, ResidualJacobianMode, RetryPolicy, Simulator,
};
pub use fault::{FaultPlan, FaultySimulator};
pub use loadbalance::{
    block_schedule, lpt_schedule, makespan, makespan_lower_bound, ScheduleError,
};
pub use pool::{available_threads, scoped_map};
