//! # rms-parallel — the parallel runtime
//!
//! Replaces the paper's MPI layer (§4.4) with a thread-backed SPMD
//! cluster:
//!
//! * [`comm`]: one thread per simulated node, `all_reduce`/`broadcast`/
//!   `all_gather` collectives matching the MPI calls of Fig. 9;
//! * [`loadbalance`]: the dynamic load-balancing algorithm — per-file
//!   solve times into a non-increasing priority queue, largest remaining
//!   file onto the least-loaded processor (LPT), plus the block baseline;
//! * [`datafile`]: the `<t, value>` experimental record files, replicated
//!   across ranks;
//! * [`estimator`]: the Parallel Parameter Estimator — the Fig. 9
//!   objective function and the Fig. 8 bounded least-squares driver.

#![warn(missing_docs)]

pub mod comm;
pub mod datafile;
pub mod estimator;
pub mod loadbalance;

pub use comm::{run_cluster, Communicator};
pub use datafile::{DataFileError, ExperimentFile};
pub use estimator::{ObjectiveOutput, ParallelEstimator, Simulator};
pub use loadbalance::{block_schedule, lpt_schedule, makespan, makespan_lower_bound};
