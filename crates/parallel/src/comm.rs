//! A thread-backed SPMD communicator: the MPI substitute.
//!
//! The paper parallelizes the objective function with MPI processes on an
//! IBM SP (one rank per node, constant process count, `MPI_AllReduce` on
//! the error vectors). We reproduce the same SPMD structure with one OS
//! thread per simulated node and shared-memory collectives. Only the
//! collectives the paper's code uses (plus a couple of obvious companions)
//! are provided.

use std::sync::Barrier;

use parking_lot::Mutex;

/// Shared collective state for one cluster.
struct Shared {
    /// Per-rank deposit slots for vector collectives.
    slots: Mutex<Vec<Vec<f64>>>,
    /// Reusable rendezvous barrier.
    barrier: Barrier,
    size: usize,
}

/// Handle held by one rank of a running cluster.
pub struct Communicator<'a> {
    shared: &'a Shared,
    rank: usize,
}

impl<'a> Communicator<'a> {
    /// This rank's id (`0..size`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Rendezvous of all ranks (`MPI_Barrier`).
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// `MPI_Allreduce(…, MPI_SUM)`: element-wise sum of every rank's
    /// vector, returned to all ranks. Vectors must share a length.
    pub fn all_reduce_sum(&self, local: &[f64]) -> Vec<f64> {
        self.deposit(local);
        self.shared.barrier.wait();
        let result = {
            let slots = self.shared.slots.lock();
            let mut acc = vec![0.0; local.len()];
            for slot in slots.iter() {
                assert_eq!(slot.len(), local.len(), "all_reduce length mismatch");
                for (a, v) in acc.iter_mut().zip(slot) {
                    *a += v;
                }
            }
            acc
        };
        // Second rendezvous so nobody deposits into the next collective
        // while a slow rank is still reading this one.
        self.shared.barrier.wait();
        result
    }

    /// `MPI_Allreduce(…, MPI_MAX)`.
    pub fn all_reduce_max(&self, local: &[f64]) -> Vec<f64> {
        self.deposit(local);
        self.shared.barrier.wait();
        let result = {
            let slots = self.shared.slots.lock();
            let mut acc = vec![f64::NEG_INFINITY; local.len()];
            for slot in slots.iter() {
                for (a, v) in acc.iter_mut().zip(slot) {
                    *a = a.max(*v);
                }
            }
            acc
        };
        self.shared.barrier.wait();
        result
    }

    /// `MPI_Bcast`: every rank receives root's vector.
    pub fn broadcast(&self, root: usize, data: &[f64]) -> Vec<f64> {
        if self.rank == root {
            self.deposit(data);
        }
        self.shared.barrier.wait();
        let result = self.shared.slots.lock()[root].clone();
        self.shared.barrier.wait();
        result
    }

    /// `MPI_Allgather`: concatenation of every rank's vector, in rank
    /// order, delivered to all ranks.
    pub fn all_gather(&self, local: &[f64]) -> Vec<Vec<f64>> {
        self.deposit(local);
        self.shared.barrier.wait();
        let result = self.shared.slots.lock().clone();
        self.shared.barrier.wait();
        result
    }

    fn deposit(&self, data: &[f64]) {
        let mut slots = self.shared.slots.lock();
        slots[self.rank] = data.to_vec();
    }
}

/// Run an SPMD region: `size` ranks execute `body` concurrently, each
/// with its own [`Communicator`]. Returns the per-rank results in rank
/// order (the analog of `mpirun -np <size>`).
pub fn run_cluster<T, F>(size: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Communicator<'_>) -> T + Sync,
{
    assert!(size > 0, "cluster needs at least one rank");
    let shared = Shared {
        slots: Mutex::new(vec![Vec::new(); size]),
        barrier: Barrier::new(size),
        size,
    };
    let mut results: Vec<Option<T>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for (rank, slot) in results.iter_mut().enumerate() {
            let shared = &shared;
            let body = &body;
            handles.push(scope.spawn(move || {
                let comm = Communicator { shared, rank };
                *slot = Some(body(&comm));
            }));
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("rank completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_size() {
        let out = run_cluster(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn all_reduce_sum_matches_sequential() {
        for size in [1, 2, 3, 8] {
            let out = run_cluster(size, |comm| {
                let local = vec![comm.rank() as f64, 1.0];
                comm.all_reduce_sum(&local)
            });
            let expected_first: f64 = (0..size).map(|r| r as f64).sum();
            for v in &out {
                assert_eq!(v[0], expected_first);
                assert_eq!(v[1], size as f64);
            }
        }
    }

    #[test]
    fn repeated_collectives_do_not_interleave() {
        // Back-to-back reduces with different values must not mix.
        let out = run_cluster(4, |comm| {
            let a = comm.all_reduce_sum(&[1.0]);
            let b = comm.all_reduce_sum(&[10.0]);
            let c = comm.all_reduce_sum(&[100.0]);
            (a[0], b[0], c[0])
        });
        for v in out {
            assert_eq!(v, (4.0, 40.0, 400.0));
        }
    }

    #[test]
    fn all_reduce_max() {
        let out = run_cluster(3, |comm| comm.all_reduce_max(&[comm.rank() as f64, -1.0]));
        for v in out {
            assert_eq!(v, vec![2.0, -1.0]);
        }
    }

    #[test]
    fn broadcast_from_root() {
        let out = run_cluster(3, |comm| {
            let data = if comm.rank() == 1 {
                vec![7.0, 8.0]
            } else {
                vec![]
            };
            comm.broadcast(1, &data)
        });
        for v in out {
            assert_eq!(v, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn all_gather_order() {
        let out = run_cluster(3, |comm| comm.all_gather(&[comm.rank() as f64]));
        for v in out {
            assert_eq!(v, vec![vec![0.0], vec![1.0], vec![2.0]]);
        }
    }

    #[test]
    fn single_rank_cluster() {
        let out = run_cluster(1, |comm| comm.all_reduce_sum(&[5.0]));
        assert_eq!(out, vec![vec![5.0]]);
    }

    #[test]
    fn real_parallel_execution() {
        // Ranks genuinely run concurrently: a barrier would deadlock
        // otherwise.
        let out = run_cluster(4, |comm| {
            comm.barrier();
            comm.rank()
        });
        assert_eq!(out.len(), 4);
    }
}
